"""Streaming run-health engine: declarative rules over online estimators.

A :class:`HealthMonitor` lives inside a sampler or SPMD rank program and
is fed from the measurement loop:

* ``observe(name, value, sweep)`` pushes one measured scalar into the
  per-observable streaming estimators (:class:`~repro.obs.online.Welford`
  + :class:`~repro.obs.online.StreamingBinning`), screening NaN/Inf.
* ``check(sweep, attempted=..., accepted=..., ...)`` evaluates the
  declarative :class:`HealthRules` at the observation cadence and emits
  :class:`HealthEvent` records on rule transitions.
* ``observe_rhat(name, rhat, sweep)`` records a cross-replica
  Gelman--Rubin value computed elsewhere (replica leaders over the
  ensemble communicator) and applies the ``rhat_max`` rule to it.

Events are *transition-based*: a rule fires one ``warning``/``critical``
event when its condition starts holding and one ``info`` "recovered"
event when it stops, so a persistently sick run does not flood the log
and the event stream stays deterministic and small.

The monitor is pure observation: it never draws random numbers, never
touches sampler state, and never communicates -- so enabling it cannot
perturb a trajectory.  Disabled call sites use :data:`NOOP_HEALTH`
(mirroring :data:`repro.obs.metrics.NOOP`), whose methods are all
no-ops, keeping the hot loop at one attribute check.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field

from .online import StreamingBinning, Welford

__all__ = [
    "SEVERITIES",
    "HealthRules",
    "HealthEvent",
    "HealthMonitor",
    "NoopHealthMonitor",
    "NOOP_HEALTH",
    "load_health_rules",
    "clock_comm_seconds",
]

SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class HealthRules:
    """Declarative check configuration, JSON-loadable via ``--health-rules``.

    ``interval`` is the check cadence in sweeps (the CLI overrides it
    with ``--obs-interval`` when that is set, so health checks align
    with metric snapshots).  A band or threshold of ``None`` disables
    the corresponding rule.
    """

    interval: int = 10
    acceptance_band: tuple[float, float] | None = (0.01, 0.99)
    acceptance_min_attempts: int = 1
    nan_check: bool = True
    stall_check: bool = True
    comm_fraction_max: float | None = 0.95
    rhat_max: float | None = 1.2

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError(f"interval must be >= 1, got {self.interval}")
        if self.acceptance_band is not None:
            lo, hi = self.acceptance_band
            if not (0.0 <= lo <= hi <= 1.0):
                raise ValueError(
                    f"acceptance_band must satisfy 0 <= lo <= hi <= 1, got {self.acceptance_band}"
                )
            object.__setattr__(self, "acceptance_band", (float(lo), float(hi)))
        if self.comm_fraction_max is not None and not 0.0 < self.comm_fraction_max <= 1.0:
            raise ValueError(
                f"comm_fraction_max must be in (0, 1], got {self.comm_fraction_max}"
            )
        if self.rhat_max is not None and self.rhat_max < 1.0:
            raise ValueError(f"rhat_max must be >= 1, got {self.rhat_max}")
        if self.acceptance_min_attempts < 1:
            raise ValueError(
                f"acceptance_min_attempts must be >= 1, got {self.acceptance_min_attempts}"
            )

    def to_doc(self) -> dict:
        doc = dataclasses.asdict(self)
        if self.acceptance_band is not None:
            doc["acceptance_band"] = list(self.acceptance_band)
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> HealthRules:
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(
                f"unknown health-rule keys {sorted(unknown)}; known keys: {sorted(known)}"
            )
        kwargs = dict(doc)
        band = kwargs.get("acceptance_band")
        if band is not None:
            kwargs["acceptance_band"] = tuple(band)
        return cls(**kwargs)


def clock_comm_seconds(clock) -> float:
    """Modeled seconds a rank's clock spent communicating or waiting.

    The numerator of the comm-fraction rule: every comm-side category
    (:data:`~repro.util.timer.COMM_CATEGORIES` plus
    :data:`~repro.util.timer.WAIT_CATEGORIES`) summed from the clock's
    breakdown, matching the scheduler's ``comm_fraction`` accounting.
    """
    from repro.util.timer import COMM_CATEGORIES, WAIT_CATEGORIES

    breakdown = clock.breakdown()
    return sum(breakdown.get(c, 0.0) for c in COMM_CATEGORIES + WAIT_CATEGORIES)


def load_health_rules(path: str) -> HealthRules:
    """Load :class:`HealthRules` from a JSON file (unknown keys rejected)."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"health rules file {path!r} must contain a JSON object")
    return HealthRules.from_doc(doc)


@dataclass(frozen=True)
class HealthEvent:
    """One structured alert emitted by the rules engine."""

    rule: str
    severity: str
    sweep: int
    rank: int
    message: str
    replica: int | None = None
    t_model: float = 0.0
    data: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}, got {self.severity!r}")

    def to_doc(self) -> dict:
        doc = {
            "kind": "health_event",
            "rule": self.rule,
            "severity": self.severity,
            "sweep": self.sweep,
            "rank": self.rank,
            "t_model": self.t_model,
            "message": self.message,
        }
        if self.replica is not None:
            doc["replica"] = self.replica
        if self.data:
            doc["data"] = self.data
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> HealthEvent:
        return cls(
            rule=doc["rule"],
            severity=doc["severity"],
            sweep=doc["sweep"],
            rank=doc["rank"],
            message=doc["message"],
            replica=doc.get("replica"),
            t_model=doc.get("t_model", 0.0),
            data=doc.get("data", {}),
        )


class _ObservableTracker:
    """Streaming estimators plus NaN bookkeeping for one observable."""

    __slots__ = ("welford", "binning", "nan_seen")

    def __init__(self) -> None:
        self.welford = Welford()
        self.binning = StreamingBinning()
        self.nan_seen = False

    def summary(self) -> dict:
        doc = self.binning.summary()
        doc["nan_seen"] = self.nan_seen
        return doc


class HealthMonitor:
    """Evaluates :class:`HealthRules` against streamed run state.

    One monitor per rank (``rank``/``replica`` stamp every event).  The
    driver feeds measurements via :meth:`observe` and calls
    :meth:`check` every ``rules.interval`` sweeps with the cumulative
    attempted/accepted counters and, for modeled SPMD runs, the model
    time and comm seconds from the rank's clock breakdown.
    """

    enabled = True

    def __init__(self, rules: HealthRules, *, rank: int = 0, replica: int | None = None):
        self.rules = rules
        self.rank = rank
        self.replica = replica
        #: Modeled-time coordinate stamped onto emitted events; drivers
        #: with a model clock refresh it (directly or via ``check``) so
        #: alerts land at the right spot on the Chrome-trace timeline.
        self.t_model = 0.0
        self.events: list[HealthEvent] = []
        self._trackers: dict[str, _ObservableTracker] = {}
        self._rhat: dict[str, float] = {}
        # Windowed acceptance: counters at the previous check.
        self._prev_attempted = 0
        self._prev_accepted = 0
        self._last_check_sweep: int | None = None
        # Transition state per rule (True = currently in violation).
        self._active: dict[str, bool] = {}

    # -- feeding ---------------------------------------------------------
    def observe(self, name: str, value: float, sweep: int) -> None:
        """Push one measured scalar; NaN/Inf raise a sentinel instead of
        poisoning the estimators."""
        tracker = self._trackers.get(name)
        if tracker is None:
            tracker = self._trackers[name] = _ObservableTracker()
        value = float(value)
        if not math.isfinite(value):
            if self.rules.nan_check and not tracker.nan_seen:
                self._emit(
                    f"nan:{name}",
                    "critical",
                    sweep,
                    f"non-finite value {value!r} measured for {name!r}",
                    data={"observable": name, "value": repr(value)},
                )
            tracker.nan_seen = True
            return
        tracker.welford.push(value)
        tracker.binning.push(value)

    def observe_rhat(self, name: str, rhat: float, sweep: int) -> None:
        """Record a cross-replica R-hat and apply the ``rhat_max`` rule."""
        self._rhat[name] = float(rhat)
        limit = self.rules.rhat_max
        if limit is None:
            return
        bad = not math.isfinite(rhat) or rhat > limit
        self._transition(
            f"rhat:{name}",
            bad,
            "warning",
            sweep,
            f"R-hat for {name!r} is {rhat:.4f} (limit {limit})",
            f"R-hat for {name!r} back to {rhat:.4f} (limit {limit})",
            data={"observable": name, "rhat": float(rhat), "limit": limit},
        )

    # -- checking --------------------------------------------------------
    def check(
        self,
        sweep: int,
        *,
        attempted: int,
        accepted: int,
        model_seconds: float | None = None,
        comm_seconds: float | None = None,
    ) -> None:
        """Evaluate the windowed rules at one check point.

        ``attempted``/``accepted`` are cumulative counters; the rules
        look at the delta since the previous check.  ``model_seconds``/
        ``comm_seconds`` come from the rank's modeled clock (omitted on
        serial samplers, which disables the comm-fraction rule).
        """
        if model_seconds is not None:
            self.t_model = model_seconds
        d_att = attempted - self._prev_attempted
        d_acc = accepted - self._prev_accepted
        first = self._last_check_sweep is None
        self._prev_attempted = attempted
        self._prev_accepted = accepted
        self._last_check_sweep = sweep

        if self.rules.stall_check and not first:
            self._transition(
                "stall",
                d_att == 0,
                "critical",
                sweep,
                "no moves attempted since the previous health check",
                "sweep progress resumed",
                data={"attempted": attempted},
            )

        band = self.rules.acceptance_band
        if band is not None and d_att >= self.rules.acceptance_min_attempts:
            rate = d_acc / d_att
            lo, hi = band
            self._transition(
                "acceptance",
                not lo <= rate <= hi,
                "warning",
                sweep,
                f"windowed acceptance rate {rate:.4f} outside [{lo}, {hi}]",
                f"windowed acceptance rate {rate:.4f} back inside [{lo}, {hi}]",
                data={"rate": rate, "band": [lo, hi], "attempted": d_att, "accepted": d_acc},
            )

        limit = self.rules.comm_fraction_max
        if (
            limit is not None
            and model_seconds is not None
            and comm_seconds is not None
            and model_seconds > 0.0
        ):
            fraction = comm_seconds / model_seconds
            self._transition(
                "comm_fraction",
                fraction > limit,
                "warning",
                sweep,
                f"comm fraction {fraction:.4f} exceeds {limit} of modeled time",
                f"comm fraction {fraction:.4f} back under {limit}",
                data={"fraction": fraction, "limit": limit},
            )

    # -- event plumbing --------------------------------------------------
    def _transition(
        self,
        rule: str,
        bad: bool,
        severity: str,
        sweep: int,
        message: str,
        recovered_message: str,
        *,
        data: dict,
    ) -> None:
        was_bad = self._active.get(rule, False)
        if bad and not was_bad:
            self._emit(rule, severity, sweep, message, data=data)
        elif not bad and was_bad:
            self._emit(rule, "info", sweep, recovered_message, data=data)
        self._active[rule] = bad

    def _emit(self, rule: str, severity: str, sweep: int, message: str, *, data: dict) -> None:
        self.events.append(
            HealthEvent(
                rule=rule,
                severity=severity,
                sweep=sweep,
                rank=self.rank,
                replica=self.replica,
                t_model=self.t_model,
                message=message,
                data=data,
            )
        )

    # -- results ---------------------------------------------------------
    def event_docs(self) -> list[dict]:
        """Events as JSON-able dicts (what rank programs return)."""
        return [e.to_doc() for e in self.events]

    def summary(self) -> dict:
        """JSON-able roll-up: event tallies plus per-observable estimator
        state; ``healthy`` means no warning/critical event fired."""
        by_severity = {s: 0 for s in SEVERITIES}
        by_rule: dict[str, int] = {}
        for event in self.events:
            by_severity[event.severity] += 1
            by_rule[event.rule] = by_rule.get(event.rule, 0) + 1
        doc = {
            "rank": self.rank,
            "n_events": len(self.events),
            "by_severity": by_severity,
            "by_rule": dict(sorted(by_rule.items())),
            "healthy": by_severity["warning"] == 0 and by_severity["critical"] == 0,
            "observables": {
                name: tracker.summary() for name, tracker in sorted(self._trackers.items())
            },
        }
        if self.replica is not None:
            doc["replica"] = self.replica
        if self._rhat:
            doc["rhat"] = dict(sorted(self._rhat.items()))
        return doc


class NoopHealthMonitor:
    """Inert stand-in used when health checks are disabled.

    Mirrors :class:`repro.obs.metrics.NoopMetrics`: every method is a
    no-op so call sites need no conditionals beyond ``enabled``.
    """

    enabled = False
    rank = -1
    replica = None
    t_model = 0.0
    events: list[HealthEvent] = []

    def observe(self, name: str, value: float, sweep: int) -> None:
        pass

    def observe_rhat(self, name: str, rhat: float, sweep: int) -> None:
        pass

    def check(self, sweep: int, **kwargs) -> None:
        pass

    def event_docs(self) -> list[dict]:
        return []

    def summary(self) -> dict:
        return {}


#: Shared inert monitor for disabled call sites.
NOOP_HEALTH = NoopHealthMonitor()
