"""Online (streaming) statistical estimators for run-health diagnostics.

The batch analysis in :mod:`repro.stats` answers "what is the error of
this finished series"; production monitoring needs the same answers
*while the series is still growing*, in O(1) amortized work per sample
and O(log N) memory.  Three estimators live here, each validated by the
test suite to agree with its batch counterpart on the same series:

* :class:`Welford` -- numerically stable running mean/variance
  (Welford's algorithm), matching ``numpy.mean``/``numpy.var(ddof=1)``.
* :class:`StreamingBinning` -- the logarithmic binning (blocking)
  ladder of :func:`repro.stats.binning.binning_levels`, maintained
  incrementally: level ``l`` accumulates raw-value sums into blocks of
  ``2**l`` samples and runs a Welford over the completed block means,
  so the per-level errors reproduce the batch ladder (same block
  means, same tail discard, same ``ddof=1``) up to float-summation
  order.  ``tau_int`` follows the binning convention
  ``0.5 * (err/naive)**2`` of :class:`~repro.stats.binning.BinningAnalysis`.
* :func:`gelman_rubin` / :func:`gelman_rubin_from_moments` -- the
  cross-replica potential scale reduction factor R-hat.  The moments
  form consumes exactly the ``(count, mean, variance)`` triples replica
  leaders can allreduce over PR 8's ensemble communicator, and agrees
  with the flat pooled computation over the stacked chains.

Everything here is pure arithmetic on the fed values: no RNG, no
clock reads, no shared state -- the bit-identity discipline the health
engine relies on.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "Welford",
    "StreamingBinning",
    "gelman_rubin",
    "gelman_rubin_from_moments",
    "gelman_rubin_from_pooled_sums",
]


class Welford:
    """Running count/mean/variance via Welford's update (ddof=1)."""

    __slots__ = ("count", "mean", "m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def push(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0.0 with fewer than two samples."""
        return self.m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def std_error(self) -> float:
        """Naive standard error of the mean, ``std / sqrt(count)``."""
        return self.std / math.sqrt(self.count) if self.count else 0.0

    def moments(self) -> tuple[int, float, float]:
        """``(count, mean, variance)`` -- what replica leaders pool."""
        return self.count, self.mean, self.variance


class _BinLevel:
    """One rung of the streaming binning ladder: blocks of ``2**level``.

    ``pending_sum``/``pending_n`` accumulate the raw-value sum of the
    block under construction (the streaming image of the batch tail
    discard: an incomplete block never contributes); completed block
    means feed ``stats``.
    """

    __slots__ = ("block", "pending_sum", "pending_n", "stats")

    def __init__(self, block: int) -> None:
        self.block = block
        self.pending_sum = 0.0
        self.pending_n = 0
        self.stats = Welford()


class StreamingBinning:
    """Streaming logarithmic binning analysis of one scalar series.

    Feeds like an accumulator::

        sb = StreamingBinning()
        for x in series:
            sb.push(x)
        sb.error, sb.tau_int, sb.levels(), sb.is_converged()

    and reproduces :class:`repro.stats.binning.BinningAnalysis` on the
    same series: levels are the power-of-two block sizes leaving at
    least ``min_blocks`` completed blocks, each level's error is the
    ``ddof=1`` standard error of its block means, and the tail of the
    series that fills no complete block is discarded exactly as the
    batch reshape does.  Block means are formed as ``block_sum /
    block`` from propagated raw sums, not as pairwise means of means,
    so they match the batch values to float-summation order.
    """

    def __init__(self, min_blocks: int = 8) -> None:
        if min_blocks < 2:
            raise ValueError("min_blocks must be >= 2")
        self.min_blocks = int(min_blocks)
        self._levels: list[_BinLevel] = [_BinLevel(1)]

    def push(self, value: float) -> None:
        """Feed one sample; O(1) amortized (O(log N) on power-of-two counts)."""
        carry = float(value)
        idx = 0
        while True:
            # Grow the ladder lazily: a new rung appears the first time
            # a block sum of the previous rung completes.
            if idx == len(self._levels):
                self._levels.append(_BinLevel(self._levels[-1].block * 2))
            level = self._levels[idx]
            level.pending_sum += carry
            level.pending_n += 1
            if level.pending_n < (2 if idx else 1):
                return
            block_sum = level.pending_sum
            level.stats.push(block_sum / level.block)
            level.pending_sum = 0.0
            level.pending_n = 0
            carry = block_sum
            idx += 1

    # -- batch-compatible views -----------------------------------------
    @property
    def count(self) -> int:
        """Number of samples fed so far."""
        return self._levels[0].stats.count

    @property
    def mean(self) -> float:
        return self._levels[0].stats.mean

    def levels(self) -> list[tuple[int, float]]:
        """The ``(block_size, error)`` ladder, batch-compatible.

        Exactly the levels :func:`~repro.stats.binning.binning_levels`
        would emit: every power-of-two block size with at least
        ``min_blocks`` completed blocks.
        """
        out = []
        for level in self._levels:
            if level.stats.count < self.min_blocks:
                break
            out.append((level.block, level.stats.std_error))
        return out

    @property
    def naive_error(self) -> float:
        """Level-0 (uncorrelated) standard error of the mean."""
        return self._levels[0].stats.std_error

    @property
    def error(self) -> float:
        """Plateau (largest usable block) error estimate."""
        ladder = self.levels()
        return ladder[-1][1] if ladder else self.naive_error

    @property
    def tau_int(self) -> float:
        """Binning estimate ``0.5 * (error/naive_error)**2`` (>= 0 only
        by the data; 0.5 for an uncorrelated series by convention)."""
        naive = self.naive_error
        if naive <= 0.0:
            return 0.5
        return 0.5 * (self.error / naive) ** 2

    def is_converged(self, rtol: float = 0.15) -> bool:
        """Whether the last two ladder levels agree within ``rtol``
        (the :meth:`BinningAnalysis.is_converged` criterion)."""
        ladder = self.levels()
        if len(ladder) < 2:
            return False
        (_, e1), (_, e2) = ladder[-2], ladder[-1]
        if e2 == 0:
            return e1 == 0
        return abs(e2 - e1) / e2 <= rtol

    def summary(self) -> dict:
        """JSON-able snapshot of the analysis (what health events embed)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "naive_error": self.naive_error,
            "error": self.error,
            "tau_int": self.tau_int,
            "n_levels": len(self.levels()),
            "converged": self.is_converged(),
        }


def gelman_rubin_from_moments(
    counts, means, variances
) -> float:
    """R-hat from per-chain ``(count, mean, variance)`` triples.

    The standard (non-split) Gelman--Rubin potential scale reduction
    factor for ``R`` chains of ``n`` samples each::

        W     = mean of the within-chain variances
        B / n = variance (ddof=1) of the chain means
        var+  = (n - 1)/n * W + B/n
        R-hat = sqrt(var+ / W)

    Chains must have equal lengths ``n >= 2`` (the replica-ensemble
    case: every replica measures on the same schedule).  Degenerate
    inputs follow the convention R-hat = 1.0 when both W and B vanish
    (identical constant chains) and ``inf`` when W vanishes but the
    chain means disagree.
    """
    counts = [int(c) for c in counts]
    means = [float(m) for m in means]
    variances = [float(v) for v in variances]
    r = len(counts)
    if not (r == len(means) == len(variances)):
        raise ValueError("counts/means/variances must have equal length")
    if r < 2:
        raise ValueError("R-hat needs at least two chains")
    n = counts[0]
    if any(c != n for c in counts):
        raise ValueError(f"R-hat needs equal-length chains, got {counts}")
    if n < 2:
        raise ValueError("R-hat needs at least two samples per chain")
    w = sum(variances) / r
    mean_of_means = sum(means) / r
    b_over_n = sum((m - mean_of_means) ** 2 for m in means) / (r - 1)
    if w <= 0.0:
        return 1.0 if b_over_n <= 0.0 else math.inf
    var_plus = (n - 1) / n * w + b_over_n
    return math.sqrt(var_plus / w)


def gelman_rubin_from_pooled_sums(
    n: int, n_chains: int, sum_means: float, sum_sq_means: float, sum_vars: float
) -> float:
    """R-hat from *summed* per-chain moments -- the allreduce form.

    Replica leaders each hold their own ``(mean, mean**2, variance)``
    and a single sum-allreduce over the ensemble communicator yields
    ``(sum_means, sum_sq_means, sum_vars)``; this reconstructs exactly
    :func:`gelman_rubin_from_moments` for ``n_chains`` chains of ``n``
    samples (``B/n`` via the sum-of-squares identity, clamped at zero
    against cancellation noise).
    """
    if n_chains < 2:
        raise ValueError("R-hat needs at least two chains")
    if n < 2:
        raise ValueError("R-hat needs at least two samples per chain")
    r = n_chains
    w = sum_vars / r
    mean_of_means = sum_means / r
    b_over_n = max(0.0, (sum_sq_means - r * mean_of_means**2) / (r - 1))
    if w <= 0.0:
        return 1.0 if b_over_n <= 0.0 else math.inf
    var_plus = (n - 1) / n * w + b_over_n
    return math.sqrt(var_plus / w)


def gelman_rubin(chains) -> float:
    """R-hat of equal-length 1-D chains (flat pooled reference form).

    ``chains`` is a sequence of 1-D arrays; longer chains are truncated
    to the shortest so the moments match what streaming replicas with a
    shared schedule would pool.
    """
    arrays = [np.asarray(c, dtype=float).ravel() for c in chains]
    if len(arrays) < 2:
        raise ValueError("R-hat needs at least two chains")
    n = min(a.size for a in arrays)
    arrays = [a[:n] for a in arrays]
    return gelman_rubin_from_moments(
        [n] * len(arrays),
        [float(a.mean()) for a in arrays],
        [float(a.var(ddof=1)) for a in arrays],
    )
