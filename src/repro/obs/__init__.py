"""Unified observability: metrics, phase spans, trace export, manifests.

See DESIGN.md "Observability" for the naming scheme and clock-domain
rules.  The short version: everything here is off by default (drivers
record against the free :data:`~repro.obs.metrics.NOOP` recorder),
modeled-time quantities are bit-reproducible, and wall-clock values are
always suffixed ``wall_seconds``.
"""

from repro.obs.chrome_trace import (
    CATEGORY_ALIASES,
    chrome_trace_doc,
    chrome_trace_events,
    write_chrome_trace,
)
from repro.obs.manifest import (
    build_manifest,
    config_hash,
    environment_info,
    git_revision,
    write_manifest,
)
from repro.obs.metrics import (
    ACCEPTANCE_EDGES,
    MESSAGE_BYTES_EDGES,
    NOOP,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopMetrics,
    RankMetrics,
)
from repro.obs.sinks import read_metrics_jsonl, write_metrics_jsonl
from repro.obs.spans import Span, SpanCollector

__all__ = [
    "ACCEPTANCE_EDGES",
    "MESSAGE_BYTES_EDGES",
    "CATEGORY_ALIASES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopMetrics",
    "NOOP",
    "RankMetrics",
    "Span",
    "SpanCollector",
    "build_manifest",
    "chrome_trace_doc",
    "chrome_trace_events",
    "config_hash",
    "environment_info",
    "git_revision",
    "read_metrics_jsonl",
    "write_chrome_trace",
    "write_manifest",
    "write_metrics_jsonl",
]
