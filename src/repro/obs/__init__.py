"""Unified observability: metrics, spans, traces, manifests, health.

See DESIGN.md "Observability" and "Run health & reporting" for the
naming scheme and clock-domain rules.  The short version: everything
here is off by default (drivers record against the free
:data:`~repro.obs.metrics.NOOP` recorder and the
:data:`~repro.obs.health.NOOP_HEALTH` monitor), modeled-time quantities
are bit-reproducible, and wall-clock values are always suffixed
``wall_seconds``.
"""

from repro.obs.chrome_trace import (
    CATEGORY_ALIASES,
    chrome_trace_doc,
    chrome_trace_events,
    write_chrome_trace,
)
from repro.obs.events import (
    EVENT_SCHEMA,
    EVENT_SCHEMA_VERSION,
    events_summary,
    health_instant_events,
    read_events_jsonl,
    sort_events,
    validate_event,
    write_events_jsonl,
)
from repro.obs.health import (
    NOOP_HEALTH,
    SEVERITIES,
    HealthEvent,
    HealthMonitor,
    HealthRules,
    NoopHealthMonitor,
    clock_comm_seconds,
    load_health_rules,
)
from repro.obs.manifest import (
    build_manifest,
    config_hash,
    environment_info,
    git_revision,
    write_manifest,
)
from repro.obs.metrics import (
    ACCEPTANCE_EDGES,
    MESSAGE_BYTES_EDGES,
    NOOP,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopMetrics,
    RankMetrics,
)
from repro.obs.online import (
    StreamingBinning,
    Welford,
    gelman_rubin,
    gelman_rubin_from_moments,
    gelman_rubin_from_pooled_sums,
)
from repro.obs.report import (
    REPORT_VERSION,
    build_report,
    discover_runs,
    load_run,
    render_html,
    render_text,
)
from repro.obs.sinks import (
    METRICS_SCHEMA,
    METRICS_SCHEMA_VERSION,
    read_metrics_jsonl,
    write_metrics_jsonl,
)
from repro.obs.spans import Span, SpanCollector

__all__ = [
    "ACCEPTANCE_EDGES",
    "MESSAGE_BYTES_EDGES",
    "CATEGORY_ALIASES",
    "EVENT_SCHEMA",
    "EVENT_SCHEMA_VERSION",
    "METRICS_SCHEMA",
    "METRICS_SCHEMA_VERSION",
    "REPORT_VERSION",
    "SEVERITIES",
    "Counter",
    "Gauge",
    "HealthEvent",
    "HealthMonitor",
    "HealthRules",
    "Histogram",
    "MetricsRegistry",
    "NoopHealthMonitor",
    "NoopMetrics",
    "NOOP",
    "NOOP_HEALTH",
    "RankMetrics",
    "Span",
    "SpanCollector",
    "StreamingBinning",
    "Welford",
    "build_manifest",
    "build_report",
    "chrome_trace_doc",
    "chrome_trace_events",
    "clock_comm_seconds",
    "config_hash",
    "discover_runs",
    "environment_info",
    "events_summary",
    "gelman_rubin",
    "gelman_rubin_from_moments",
    "gelman_rubin_from_pooled_sums",
    "git_revision",
    "health_instant_events",
    "load_health_rules",
    "load_run",
    "read_events_jsonl",
    "read_metrics_jsonl",
    "render_html",
    "render_text",
    "sort_events",
    "validate_event",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_manifest",
    "write_metrics_jsonl",
]
