"""Phase spans derived from the modeled clocks.

The text Gantt view in :mod:`repro.vmp.trace` shows only message
in-flight windows; production timeline tools (Perfetto,
``chrome://tracing``) want *phase spans*: contiguous intervals of
modeled time labeled compute / comm / idle per rank.  Rather than
instrumenting every call site, spans are derived at the source of
truth: every :meth:`~repro.util.timer.ModelClock.charge` (and every
``advance_to`` wait) is an interval ``[now - seconds, now]`` with a
category, so a :class:`SpanCollector` installed as the clock's
observer sees the complete, gap-free phase history of a rank.

Adjacent charges of the same category coalesce into one span (a sweep
charges compute hundreds of times back to back), keeping event counts
proportional to phase *transitions*, not to charges.  All span times
are modeled seconds -- deterministic, identical across reruns -- never
wall-clock readings.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Span", "SpanCollector"]


@dataclass(frozen=True)
class Span:
    """One contiguous phase interval of one rank (modeled seconds)."""

    rank: int
    category: str
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class SpanCollector:
    """Clock observer that coalesces charges into phase spans.

    Install with ``clock.observer = collector``; the clock calls
    ``collector(category, start, end)`` on every charge/wait.  The
    mutable tail is kept as a plain list to make the per-charge cost
    one comparison and (usually) one float store.
    """

    def __init__(self, rank: int):
        self.rank = int(rank)
        # Each entry: [category, t_start, t_end] (mutable tail).
        self._raw: list[list] = []

    def __call__(self, category: str, start: float, end: float) -> None:
        if end <= start:
            return  # zero-length charges carry no timeline information
        raw = self._raw
        if raw:
            last = raw[-1]
            if last[0] == category and last[2] == start:
                last[2] = end
                return
        raw.append([category, start, end])

    def spans(self) -> list[Span]:
        """The coalesced spans recorded so far (frozen copies)."""
        return [Span(self.rank, c, s, e) for c, s, e in self._raw]

    @property
    def n_spans(self) -> int:
        return len(self._raw)
