"""Health-event sinks: schema'd JSONL log + Chrome-trace instants.

The on-disk format is one JSON object per line.  The first line is a
schema header ``{"kind": "schema", "schema": "repro.health.events",
"version": 1}``; every following line is one
:meth:`~repro.obs.health.HealthEvent.to_doc` record.  Events are
written sorted by ``(sweep, rank, rule)`` so the file is deterministic
regardless of which backend's rank interleaving produced them.

:func:`health_instant_events` converts the same records into Trace
Event Format instant ("i") events so alerts show up as markers on the
Perfetto timeline of the run, pinned to the rank row and modeled time
where they fired.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.chrome_trace import _round_us

__all__ = [
    "EVENT_SCHEMA",
    "EVENT_SCHEMA_VERSION",
    "validate_event",
    "sort_events",
    "events_summary",
    "write_events_jsonl",
    "read_events_jsonl",
    "health_instant_events",
]

EVENT_SCHEMA = "repro.health.events"
EVENT_SCHEMA_VERSION = 1

_REQUIRED_FIELDS = {
    "kind": str,
    "rule": str,
    "severity": str,
    "sweep": int,
    "rank": int,
    "message": str,
}


def validate_event(doc: dict) -> dict:
    """Check one event record against the schema; returns it unchanged.

    Raises :class:`ValueError` naming the offending field -- used both
    by the writer (catch malformed producers early) and by CI schema
    validation over emitted artifacts.
    """
    if not isinstance(doc, dict):
        raise ValueError(f"event record must be an object, got {type(doc).__name__}")
    for name, typ in _REQUIRED_FIELDS.items():
        if name not in doc:
            raise ValueError(f"event record missing required field {name!r}: {doc}")
        if not isinstance(doc[name], typ):
            raise ValueError(
                f"event field {name!r} must be {typ.__name__}, got {type(doc[name]).__name__}"
            )
    if doc["kind"] != "health_event":
        raise ValueError(f"event kind must be 'health_event', got {doc['kind']!r}")
    from repro.obs.health import SEVERITIES

    if doc["severity"] not in SEVERITIES:
        raise ValueError(f"event severity must be one of {SEVERITIES}, got {doc['severity']!r}")
    return doc


def sort_events(events: Iterable[dict]) -> list[dict]:
    """Deterministic event order: by sweep, then rank, then rule."""
    return sorted(events, key=lambda e: (e.get("sweep", 0), e.get("rank", 0), e.get("rule", "")))


def events_summary(events: Sequence[dict]) -> dict:
    """Aggregate tallies over an event stream (manifest / report view)."""
    by_severity: dict[str, int] = {}
    by_rule: dict[str, int] = {}
    ranks: set[int] = set()
    for event in events:
        by_severity[event["severity"]] = by_severity.get(event["severity"], 0) + 1
        by_rule[event["rule"]] = by_rule.get(event["rule"], 0) + 1
        ranks.add(event["rank"])
    return {
        "n_events": len(events),
        "by_severity": dict(sorted(by_severity.items())),
        "by_rule": dict(sorted(by_rule.items())),
        "ranks": sorted(ranks),
        "healthy": by_severity.get("warning", 0) == 0 and by_severity.get("critical", 0) == 0,
    }


def write_events_jsonl(path: str | Path, events: Iterable[dict]) -> Path:
    """Write validated, sorted event records under a schema header."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {"kind": "schema", "schema": EVENT_SCHEMA, "version": EVENT_SCHEMA_VERSION}
    with path.open("w") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for event in sort_events(validate_event(e) for e in events):
            fh.write(json.dumps(event, sort_keys=True) + "\n")
    return path


def read_events_jsonl(path: str | Path) -> list[dict]:
    """Read an events JSONL file back, enforcing the schema header."""
    path = Path(path)
    rows: list[dict] = []
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    if not rows:
        return []
    header = rows[0]
    if header.get("kind") != "schema" or header.get("schema") != EVENT_SCHEMA:
        raise ValueError(
            f"{path} is not a health-events file: expected a "
            f"{{'kind': 'schema', 'schema': {EVENT_SCHEMA!r}}} header, got {header}"
        )
    version = header.get("version")
    if version != EVENT_SCHEMA_VERSION:
        raise ValueError(
            f"{path} has events schema version {version!r}; this reader "
            f"understands version {EVENT_SCHEMA_VERSION}"
        )
    return [validate_event(row) for row in rows[1:]]


def health_instant_events(events: Sequence[dict]) -> list[dict]:
    """Health events as Trace Event Format instant ("i") records.

    Thread-scoped instants on the emitting rank's row at the event's
    modeled time; ``args`` carries severity/sweep/message so hovering
    the marker in Perfetto shows the alert.
    """
    out = []
    for event in sort_events(events):
        args = {
            "severity": event["severity"],
            "sweep": event["sweep"],
            "message": event["message"],
        }
        if "replica" in event:
            args["replica"] = event["replica"]
        out.append(
            {
                "name": event["rule"],
                "cat": "health",
                "ph": "i",
                "s": "t",
                "pid": 0,
                "tid": event["rank"],
                "ts": _round_us(float(event.get("t_model", 0.0))),
                "args": args,
            }
        )
    return out
