"""Chrome ``trace_event`` JSON export of an SPMD run's timeline.

Converts per-rank phase spans (:mod:`repro.obs.spans`) and traced
point-to-point messages (:class:`repro.vmp.trace.MessageEvent`) into
the Trace Event Format understood by ``chrome://tracing`` and Perfetto
(https://ui.perfetto.dev): one process ("vmp"), one thread per rank,
complete ("X") events for phases, and flow ("s"/"f") event pairs
drawing message arrows from sender to receiver.

Timestamps are **modeled** microseconds -- the export of a run is
byte-identical across reruns of the same seed.  Category mapping: the
clock categories ``compute`` and ``comm`` pass through; ``comm_wait``
is exported as ``idle`` (the rank is stalled waiting for data -- what
an MPP timeline calls idle time); anything else keeps its own name.
In particular the overlap pipeline's ``interior`` / ``boundary`` /
``halo_wait`` spans stay visible under their own names, so a Perfetto
view of an overlapped run shows interior compute bracketed by the halo
post and the (usually tiny) residual wait.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.spans import Span

__all__ = [
    "CATEGORY_ALIASES",
    "chrome_trace_events",
    "chrome_trace_doc",
    "write_chrome_trace",
]

#: Clock-category -> exported span name (unlisted categories pass through).
CATEGORY_ALIASES = {"comm_wait": "idle"}

_US = 1e6  # trace_event timestamps are microseconds


def _round_us(t_seconds: float) -> float:
    """Modeled seconds -> microseconds, rounded to 1e-3 us.

    Rounding makes the JSON stable against last-bit float noise without
    losing resolution any viewer can display.
    """
    return round(t_seconds * _US, 3)


def chrome_trace_events(
    spans: Iterable[Span],
    messages: Sequence | None = None,
    ranks: Sequence[int] | None = None,
    instants: Sequence[dict] | None = None,
) -> list[dict]:
    """The flat ``traceEvents`` list: metadata + phase + message events.

    ``spans`` come from the ranks' :class:`~repro.obs.spans.SpanCollector`
    objects; ``messages`` (optional) are
    :class:`~repro.vmp.trace.MessageEvent` records to draw as flow
    arrows; ``ranks`` optionally forces thread-name metadata for ranks
    that recorded nothing; ``instants`` (optional) are pre-built
    instant ("i") event dicts -- e.g. health alerts from
    :func:`repro.obs.events.health_instant_events` -- appended verbatim
    so they show as markers on the timeline.
    """
    spans = list(spans)
    known_ranks = sorted(
        set(s.rank for s in spans) | set(int(r) for r in (ranks or ()))
    )
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "vmp"},
        }
    ]
    for r in known_ranks:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": r,
                "args": {"name": f"rank {r}"},
            }
        )
    for s in spans:
        name = CATEGORY_ALIASES.get(s.category, s.category)
        events.append(
            {
                "name": name,
                "cat": name,
                "ph": "X",
                "pid": 0,
                "tid": s.rank,
                "ts": _round_us(s.t_start),
                "dur": _round_us(s.duration),
            }
        )
    # Messages arrive in thread-scheduling order; sort by modeled send
    # time (and endpoints for cross-sender ties) so the export really is
    # byte-identical across reruns.
    messages = sorted(
        messages or (), key=lambda m: (m.t_send, m.src, m.dst, m.tag)
    )
    for i, m in enumerate(messages):
        common = {"cat": "msg", "name": f"msg tag={m.tag}", "id": i, "pid": 0}
        events.append(
            {**common, "ph": "s", "tid": m.src, "ts": _round_us(m.t_send),
             "args": {"nbytes": m.nbytes, "dst": m.dst}}
        )
        events.append(
            {**common, "ph": "f", "bp": "e", "tid": m.dst,
             "ts": _round_us(m.t_arrival), "args": {"nbytes": m.nbytes,
                                                    "src": m.src}}
        )
    events.extend(instants or ())
    return events


def chrome_trace_doc(
    spans: Iterable[Span],
    messages: Sequence | None = None,
    ranks: Sequence[int] | None = None,
    metadata: dict | None = None,
    instants: Sequence[dict] | None = None,
) -> dict:
    """The complete JSON-object form of the trace (what the file holds)."""
    doc = {
        "traceEvents": chrome_trace_events(spans, messages, ranks, instants),
        "displayTimeUnit": "ms",
    }
    if metadata:
        doc["otherData"] = metadata
    return doc


def write_chrome_trace(
    path: str | Path,
    spans: Iterable[Span],
    messages: Sequence | None = None,
    ranks: Sequence[int] | None = None,
    metadata: dict | None = None,
    instants: Sequence[dict] | None = None,
) -> Path:
    """Write the trace JSON to ``path`` (parents created); returns the path.

    Load it in ``chrome://tracing`` or drop it onto
    https://ui.perfetto.dev to browse the per-rank timeline.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = chrome_trace_doc(spans, messages, ranks, metadata, instants)
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return path
