"""Metrics sinks: JSONL time series on disk.

One JSON object per line, in arrival order.  The first line is a schema
header ``{"kind": "schema", "schema": "repro.metrics", "version": 2}``
so readers can refuse files written by a future format instead of
silently misparsing them.  The remaining rows are the snapshots a run's
:class:`~repro.obs.metrics.MetricsRegistry` accumulated (periodic
per-rank rows labeled with sweep index and modeled time) followed by
one ``{"kind": "summary"}`` row per rank holding the final cumulative
values.  JSONL keeps the sink append-friendly and greppable; the
structured end-of-run view lives in ``manifest.json``.

Version history: version 1 files had no header (``read_metrics_jsonl``
still accepts them); version 2 added the header row.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "METRICS_SCHEMA",
    "METRICS_SCHEMA_VERSION",
    "write_metrics_jsonl",
    "read_metrics_jsonl",
]

METRICS_SCHEMA = "repro.metrics"
METRICS_SCHEMA_VERSION = 2


def write_metrics_jsonl(path: str | Path, registry) -> Path:
    """Write a registry's snapshots + per-rank summary rows to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {"kind": "schema", "schema": METRICS_SCHEMA, "version": METRICS_SCHEMA_VERSION}
    with path.open("w") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for row in registry.snapshots():
            fh.write(json.dumps(row, sort_keys=True, default=str) + "\n")
        for rank, values in registry.summary().items():
            row = {"kind": "summary", "rank": rank, **values}
            fh.write(json.dumps(row, sort_keys=True, default=str) + "\n")
    return path


def read_metrics_jsonl(path: str | Path) -> list[dict]:
    """Parse a metrics JSONL file back into its data rows.

    The schema header is consumed (and validated), not returned, so
    callers see the same row list as before versioning.  Headerless
    files are accepted as legacy version 1; an unknown schema name or a
    version this reader does not understand raises :class:`ValueError`.
    """
    rows: list[dict] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    if rows and rows[0].get("kind") == "schema":
        header = rows.pop(0)
        if header.get("schema") != METRICS_SCHEMA:
            raise ValueError(
                f"{path} declares schema {header.get('schema')!r}; expected {METRICS_SCHEMA!r}"
            )
        version = header.get("version")
        if version not in (1, METRICS_SCHEMA_VERSION):
            raise ValueError(
                f"{path} has metrics schema version {version!r}; this reader "
                f"understands versions 1..{METRICS_SCHEMA_VERSION}"
            )
    return rows
