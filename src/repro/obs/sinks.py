"""Metrics sinks: JSONL time series on disk.

One JSON object per line, in arrival order.  Rows are the snapshots a
run's :class:`~repro.obs.metrics.MetricsRegistry` accumulated (periodic
per-rank rows labeled with sweep index and modeled time) followed by
one ``{"kind": "summary"}`` row per rank holding the final cumulative
values.  JSONL keeps the sink append-friendly and greppable; the
structured end-of-run view lives in ``manifest.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["write_metrics_jsonl", "read_metrics_jsonl"]


def write_metrics_jsonl(path: str | Path, registry) -> Path:
    """Write a registry's snapshots + per-rank summary rows to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for row in registry.snapshots():
            fh.write(json.dumps(row, sort_keys=True, default=str) + "\n")
        for rank, values in registry.summary().items():
            row = {"kind": "summary", "rank": rank, **values}
            fh.write(json.dumps(row, sort_keys=True, default=str) + "\n")
    return path


def read_metrics_jsonl(path: str | Path) -> list[dict]:
    """Parse a metrics JSONL file back into its row dicts."""
    rows: list[dict] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows
