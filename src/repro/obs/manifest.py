"""Per-run manifests: everything needed to attribute and replay a run.

Production QMC campaigns live and die on provenance -- which code, which
seeds, which configuration produced this number?  The manifest is one
JSON document per run holding:

* the run kind and full parameter dict, plus a ``config_hash`` (sha256
  of the canonical-JSON parameters) so runs are groupable/dedupable by
  configuration alone;
* the root RNG seed and derived sweep seeds;
* code provenance: package version, git revision (``"unknown"`` outside
  a checkout), python/numpy/scipy versions, platform;
* the fault plan, if any (repr of each fault event);
* the :class:`~repro.vmp.faults.RunReport` postmortem;
* per-rank metric summaries from the run's
  :class:`~repro.obs.metrics.MetricsRegistry`.

The wall-clock ``written_at`` stamp is the only nondeterministic field;
everything else is a pure function of code state and configuration.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
from dataclasses import asdict
from pathlib import Path

__all__ = [
    "config_hash",
    "git_revision",
    "environment_info",
    "build_manifest",
    "write_manifest",
]

_REPO_ROOT = Path(__file__).resolve().parents[3]


def config_hash(parameters: dict) -> str:
    """sha256 of the canonical-JSON encoding of a parameter dict."""
    canonical = json.dumps(parameters, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


def git_revision(repo_root: str | Path | None = None) -> str:
    """The checkout's HEAD sha, or ``"unknown"`` when git is unavailable."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root or _REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def environment_info() -> dict:
    """Interpreter/package/platform fingerprint of this run."""
    import numpy

    info = {
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "platform": platform.platform(),
    }
    try:
        import scipy

        info["scipy"] = scipy.__version__
    except ImportError:  # scipy is a hard dependency, but stay robust
        info["scipy"] = None
    try:
        from repro import __version__

        info["repro"] = __version__
    except ImportError:
        info["repro"] = None
    from repro import kernels

    # Compiled-kernel availability: versions are None for backends the
    # environment lacks, so manifests record what a run *could* use.
    info["numba"] = kernels.backend_version("numba")
    info["cupy"] = kernels.backend_version("cupy")
    info["kernel_backends"] = list(kernels.available_backends())
    return info


def _fault_plan_doc(fault_plan) -> list[str] | None:
    if fault_plan is None:
        return None
    return [repr(f) for f in fault_plan.faults]


def build_manifest(
    kind: str,
    parameters: dict,
    seed: int | None = None,
    registry=None,
    report=None,
    fault_plan=None,
    extra: dict | None = None,
) -> dict:
    """Assemble the manifest document (plain JSON-serializable dict).

    ``registry`` is the run's :class:`~repro.obs.metrics.MetricsRegistry`
    (or None); ``report`` the :class:`~repro.vmp.faults.RunReport` (or
    None); ``extra`` merges additional top-level fields (makespan, comm
    fraction, output paths...).
    """
    from datetime import datetime, timezone

    doc = {
        "manifest_version": 1,
        "kind": kind,
        "parameters": parameters,
        "config_hash": config_hash(parameters),
        "seed": seed,
        "git_revision": git_revision(),
        "environment": environment_info(),
        "fault_plan": _fault_plan_doc(fault_plan),
        "run_report": asdict(report) if report is not None else None,
        "rank_metrics": (
            {str(r): m for r, m in registry.summary().items()}
            if registry is not None
            else None
        ),
        "written_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    if extra:
        doc.update(extra)
    return doc


def write_manifest(path: str | Path, manifest: dict) -> Path:
    """Write the manifest JSON to ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True,
                               default=str) + "\n")
    return path
