"""Post-hoc run dashboard: ``repro report`` over manifests + JSONL sinks.

One entry point aggregates any number of finished runs -- each anchored
by the ``manifest.json`` the run wrote next to its metrics/events/trace
files -- into a single text or HTML dashboard: per-run parameter and
runtime summary, per-rank metric tables, convergence verdicts from the
streaming estimators, comm-fraction breakdowns, and the health-event
timeline.  This is the campaign-level view the ROADMAP's service layer
renders through: point it at one run directory or a whole sweep's
output tree.

The report itself is also available as a JSON document
(:func:`build_report`) so CI can validate its schema and downstream
tooling can consume it without scraping the rendered forms.
"""

from __future__ import annotations

import html as _html
import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.events import read_events_jsonl
from repro.obs.sinks import read_metrics_jsonl
from repro.util.tables import Table, format_float

__all__ = [
    "REPORT_VERSION",
    "discover_runs",
    "load_run",
    "build_report",
    "render_text",
    "render_html",
]

REPORT_VERSION = 1

#: Per-rank metric columns shown in the dashboard (when present).
_RANK_COLUMNS = (
    ("sweep.count", "sweeps"),
    ("sweep.attempted", "attempted"),
    ("sweep.accepted", "accepted"),
    ("comm.messages_sent", "msgs"),
    ("comm.bytes_sent", "bytes"),
    ("comm.wait_seconds", "wait[s]"),
)


def discover_runs(paths: Iterable[str | Path]) -> list[Path]:
    """Find run manifests under the given files/directories.

    A path that *is* a manifest (or any ``.json`` file with a
    ``manifest_version`` key) anchors one run; a directory is searched
    recursively for ``manifest.json`` files.  Returns sorted unique
    paths; raises :class:`ValueError` when nothing is found (a silent
    empty dashboard would read as "all healthy").
    """
    found: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            found.update(p.rglob("manifest.json"))
        elif p.is_file():
            found.add(p)
        else:
            raise ValueError(f"report path {p} does not exist")
    manifests = sorted(found)
    if not manifests:
        raise ValueError(
            f"no manifest.json found under {[str(p) for p in paths]}; "
            f"run with --metrics-out/--events-out to produce one"
        )
    return manifests


def load_run(manifest_path: str | Path) -> dict:
    """Load one run: its manifest plus whatever sinks it points at.

    Missing or unreadable side files degrade to empty lists -- the
    report renders what exists -- but a malformed manifest raises.
    """
    manifest_path = Path(manifest_path)
    manifest = json.loads(manifest_path.read_text())
    if "manifest_version" not in manifest:
        raise ValueError(f"{manifest_path} is not a run manifest")
    outputs = manifest.get("outputs", {})

    def _resolve(key: str) -> Path | None:
        raw = outputs.get(key)
        if not raw:
            return None
        p = Path(raw)
        if not p.is_file():
            # Artifacts may have been relocated together; try the
            # manifest's own directory before giving up.
            p = manifest_path.parent / Path(raw).name
        return p if p.is_file() else None

    metrics_rows: list[dict] = []
    metrics_path = _resolve("metrics_out")
    if metrics_path is not None:
        metrics_rows = read_metrics_jsonl(metrics_path)
    events: list[dict] = []
    events_path = _resolve("events_out")
    if events_path is not None:
        events = read_events_jsonl(events_path)
    return {
        "manifest_path": str(manifest_path),
        "manifest": manifest,
        "metrics_rows": metrics_rows,
        "events": events,
    }


def _rank_table_rows(manifest: dict) -> list[dict]:
    """Per-rank rows from the manifest's metric summaries."""
    rows = []
    for rank, values in sorted(
        manifest.get("rank_metrics", {}).items(), key=lambda kv: int(kv[0])
    ):
        row = {"rank": int(rank)}
        for name, _label in _RANK_COLUMNS:
            if name in values:
                row[name] = values[name]
        rows.append(row)
    return rows


def _convergence_rows(health: dict) -> list[dict]:
    """Per-rank/per-observable convergence verdicts from health output."""
    rows = []
    for summary in health.get("rank_summaries", []):
        for name, obs in summary.get("observables", {}).items():
            rows.append(
                {
                    "rank": summary.get("rank", 0),
                    "replica": summary.get("replica"),
                    "observable": name,
                    "mean": obs.get("mean"),
                    "error": obs.get("error"),
                    "tau_int": obs.get("tau_int"),
                    "converged": bool(obs.get("converged")),
                }
            )
        for name, rhat in summary.get("rhat", {}).items():
            rows.append(
                {
                    "rank": summary.get("rank", 0),
                    "replica": summary.get("replica"),
                    "observable": f"rhat:{name}",
                    "mean": rhat,
                    "error": None,
                    "tau_int": None,
                    "converged": None,
                }
            )
    return rows


def _comm_fractions(manifest: dict) -> dict:
    runtime = manifest.get("runtime", {})
    out = {}
    for key in ("comm_fraction", "comm_fraction_by_level"):
        if runtime.get(key) is not None:
            out[key] = runtime[key]
    return out


def build_report(runs: Sequence[dict]) -> dict:
    """The machine-readable dashboard document over loaded runs."""
    report_runs = []
    for run in runs:
        manifest = run["manifest"]
        health = manifest.get("health", {})
        report_runs.append(
            {
                "manifest_path": run["manifest_path"],
                "kind": manifest.get("kind"),
                "config_hash": manifest.get("config_hash"),
                "seed": manifest.get("seed"),
                "written_at": manifest.get("written_at"),
                "parameters": manifest.get("parameters", {}),
                "runtime": manifest.get("runtime", {}),
                "rank_table": _rank_table_rows(manifest),
                "health_summary": health.get("summary", {}),
                "convergence": _convergence_rows(health),
                "comm": _comm_fractions(manifest),
                "events": run.get("events", []),
                "n_metrics_rows": len(run.get("metrics_rows", [])),
            }
        )
    n_unhealthy = sum(
        1
        for r in report_runs
        if r["health_summary"] and not r["health_summary"].get("healthy", True)
    )
    return {
        "report_version": REPORT_VERSION,
        "n_runs": len(report_runs),
        "n_unhealthy": n_unhealthy,
        "runs": report_runs,
    }


def _run_title(run: dict) -> str:
    chash = run.get("config_hash") or "?"
    return f"{run.get('kind', '?')} run {str(chash)[:12]} (seed {run.get('seed')})"


def _verdict(run: dict) -> str:
    hs = run.get("health_summary") or {}
    if not hs:
        return "no health data"
    if hs.get("healthy", True):
        return "healthy"
    sev = hs.get("by_severity", {})
    parts = [f"{sev[s]} {s}" for s in ("critical", "warning") if sev.get(s)]
    return "ATTENTION: " + ", ".join(parts)


def render_text(report: dict) -> str:
    """Terminal dashboard: aligned tables per run plus a campaign header."""
    lines = [
        f"repro report v{report['report_version']}: {report['n_runs']} run(s), "
        f"{report['n_unhealthy']} unhealthy",
    ]
    for run in report["runs"]:
        lines.append("")
        lines.append(f"== {_run_title(run)} -- {_verdict(run)}")
        params = ", ".join(f"{k}={v}" for k, v in sorted(run["parameters"].items()))
        if params:
            lines.append(f"   parameters: {params}")
        runtime = run["runtime"]
        bits = []
        for key, label in (
            ("wall_seconds", "wall[s]"),
            ("sweeps_per_second", "sweeps/s"),
            ("n_attempted", "attempted"),
            ("n_accepted", "accepted"),
        ):
            if runtime.get(key) is not None:
                bits.append(f"{label}={format_float(runtime[key])}")
        comm = run["comm"].get("comm_fraction")
        if comm is not None:
            bits.append(f"comm_fraction={format_float(comm)}")
        if bits:
            lines.append(f"   runtime: {', '.join(bits)}")
        by_level = run["comm"].get("comm_fraction_by_level")
        if by_level:
            lines.append(
                "   comm by level: "
                + ", ".join(f"{k}={format_float(v)}" for k, v in sorted(by_level.items()))
            )
        if run["rank_table"]:
            t = Table(
                "per-rank metrics", ["rank"] + [lbl for _n, lbl in _RANK_COLUMNS]
            )
            for row in run["rank_table"]:
                t.add_row(
                    [row["rank"]] + [row.get(name, "-") for name, _l in _RANK_COLUMNS]
                )
            lines.append(_indent(t.render()))
        if run["convergence"]:
            t = Table(
                "convergence",
                ["rank", "replica", "observable", "mean", "error", "tau_int", "verdict"],
            )
            for row in run["convergence"]:
                verdict = (
                    "-" if row["converged"] is None
                    else ("converged" if row["converged"] else "NOT converged")
                )
                t.add_row(
                    [
                        row["rank"],
                        "-" if row["replica"] is None else row["replica"],
                        row["observable"],
                        "-" if row["mean"] is None else row["mean"],
                        "-" if row["error"] is None else row["error"],
                        "-" if row["tau_int"] is None else row["tau_int"],
                        verdict,
                    ]
                )
            lines.append(_indent(t.render()))
        if run["events"]:
            t = Table(
                "health timeline", ["sweep", "rank", "severity", "rule", "message"]
            )
            for e in run["events"]:
                t.add_row(
                    [e["sweep"], e["rank"], e["severity"], e["rule"], e["message"]]
                )
            lines.append(_indent(t.render()))
        elif run["health_summary"]:
            lines.append("   health timeline: no events")
    return "\n".join(lines) + "\n"


def _indent(block: str, prefix: str = "   ") -> str:
    return "\n".join(prefix + line for line in block.splitlines())


def _html_table(title: str, columns: Sequence[str], rows: Sequence[Sequence]) -> str:
    head = "".join(f"<th>{_html.escape(str(c))}</th>" for c in columns)
    body = "".join(
        "<tr>" + "".join(f"<td>{_html.escape(format_float(c))}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return (
        f"<h3>{_html.escape(title)}</h3>"
        f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"
    )


def render_html(report: dict) -> str:
    """Self-contained single-file HTML dashboard (no external assets)."""
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>repro report</title><style>",
        "body{font-family:system-ui,sans-serif;margin:2em;max-width:72em}",
        "table{border-collapse:collapse;margin:0.5em 0}",
        "th,td{border:1px solid #ccc;padding:0.25em 0.6em;text-align:right}",
        "th{background:#f0f0f0}td:first-child,th:first-child{text-align:left}",
        ".healthy{color:#1a7f37}.attention{color:#b91c1c;font-weight:bold}",
        ".params{color:#555;font-size:0.9em}",
        "</style></head><body>",
        f"<h1>repro report</h1><p>{report['n_runs']} run(s), "
        f"{report['n_unhealthy']} unhealthy "
        f"(report schema v{report['report_version']})</p>",
    ]
    for run in report["runs"]:
        verdict = _verdict(run)
        cls = "healthy" if verdict in ("healthy", "no health data") else "attention"
        parts.append(f"<h2>{_html.escape(_run_title(run))} "
                     f"<span class='{cls}'>[{_html.escape(verdict)}]</span></h2>")
        params = ", ".join(f"{k}={v}" for k, v in sorted(run["parameters"].items()))
        parts.append(f"<p class='params'>{_html.escape(params)}</p>")
        comm = run["comm"]
        if comm:
            items = []
            if comm.get("comm_fraction") is not None:
                items.append(("total", comm["comm_fraction"]))
            items.extend(sorted((comm.get("comm_fraction_by_level") or {}).items()))
            parts.append(
                _html_table("comm fractions", ["level", "fraction"], items)
            )
        if run["rank_table"]:
            parts.append(
                _html_table(
                    "per-rank metrics",
                    ["rank"] + [lbl for _n, lbl in _RANK_COLUMNS],
                    [
                        [row["rank"]]
                        + [row.get(name, "-") for name, _l in _RANK_COLUMNS]
                        for row in run["rank_table"]
                    ],
                )
            )
        if run["convergence"]:
            parts.append(
                _html_table(
                    "convergence",
                    ["rank", "replica", "observable", "mean", "error", "tau_int",
                     "verdict"],
                    [
                        [
                            row["rank"],
                            "-" if row["replica"] is None else row["replica"],
                            row["observable"],
                            "-" if row["mean"] is None else row["mean"],
                            "-" if row["error"] is None else row["error"],
                            "-" if row["tau_int"] is None else row["tau_int"],
                            "-" if row["converged"] is None
                            else ("converged" if row["converged"] else "NOT converged"),
                        ]
                        for row in run["convergence"]
                    ],
                )
            )
        if run["events"]:
            parts.append(
                _html_table(
                    "health timeline",
                    ["sweep", "rank", "severity", "rule", "message"],
                    [
                        [e["sweep"], e["rank"], e["severity"], e["rule"], e["message"]]
                        for e in run["events"]
                    ],
                )
            )
    parts.append("</body></html>")
    return "".join(parts)
