"""Post-hoc run dashboard: ``repro report`` over manifests + JSONL sinks.

One entry point aggregates any number of finished runs -- each anchored
by the ``manifest.json`` the run wrote next to its metrics/events/trace
files -- into a single text or HTML dashboard: per-run parameter and
runtime summary, per-rank metric tables, convergence verdicts from the
streaming estimators, comm-fraction breakdowns, and the health-event
timeline.  This is the campaign-level view the ROADMAP's service layer
renders through: point it at one run directory or a whole sweep's
output tree.

The report itself is also available as a JSON document
(:func:`build_report`) so CI can validate its schema and downstream
tooling can consume it without scraping the rendered forms.
"""

from __future__ import annotations

import html as _html
import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.events import read_events_jsonl
from repro.obs.sinks import read_metrics_jsonl
from repro.util.tables import Table, format_float

__all__ = [
    "REPORT_VERSION",
    "discover_runs",
    "discover_campaigns",
    "load_run",
    "load_campaign",
    "build_report",
    "render_text",
    "render_html",
]

REPORT_VERSION = 2

#: Per-rank metric columns shown in the dashboard (when present).
_RANK_COLUMNS = (
    ("sweep.count", "sweeps"),
    ("sweep.attempted", "attempted"),
    ("sweep.accepted", "accepted"),
    ("comm.messages_sent", "msgs"),
    ("comm.bytes_sent", "bytes"),
    ("comm.wait_seconds", "wait[s]"),
)


def discover_runs(paths: Iterable[str | Path]) -> list[Path]:
    """Find run manifests under the given files/directories.

    A path that *is* a manifest (or any ``.json`` file with a
    ``manifest_version`` key) anchors one run; a directory is searched
    recursively for ``manifest.json`` files.  Returns sorted unique
    paths; raises :class:`ValueError` when nothing is found (a silent
    empty dashboard would read as "all healthy").
    """
    found: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            found.update(p.rglob("manifest.json"))
        elif p.is_file():
            found.add(p)
        else:
            raise ValueError(f"report path {p} does not exist")
    manifests = sorted(found)
    if not manifests:
        raise ValueError(
            f"no manifest.json found under {[str(p) for p in paths]}; "
            f"run with --metrics-out/--events-out to produce one"
        )
    return manifests


def discover_campaigns(paths: Iterable[str | Path]) -> list[Path]:
    """Find campaign manifests (``campaign.json``) under files/directories.

    Campaigns are an optional layer on top of runs, so -- unlike
    :func:`discover_runs` -- finding nothing is not an error: a plain
    run directory simply has no campaign section.  Nonexistent paths
    are ignored here; :func:`discover_runs` already rejects them.
    """
    found: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            found.update(p.rglob("campaign.json"))
        elif p.is_file() and p.name == "campaign.json":
            found.add(p)
    return sorted(found)


def load_campaign(manifest_path: str | Path) -> dict:
    """Load one campaign manifest written by ``run-campaign``."""
    manifest_path = Path(manifest_path)
    doc = json.loads(manifest_path.read_text())
    if "campaign_version" not in doc:
        raise ValueError(f"{manifest_path} is not a campaign manifest")
    return {"manifest_path": str(manifest_path), "campaign": doc}


def load_run(manifest_path: str | Path) -> dict:
    """Load one run: its manifest plus whatever sinks it points at.

    Missing or unreadable side files degrade to empty lists -- the
    report renders what exists -- but a malformed manifest raises.
    """
    manifest_path = Path(manifest_path)
    manifest = json.loads(manifest_path.read_text())
    if "manifest_version" not in manifest:
        raise ValueError(f"{manifest_path} is not a run manifest")
    outputs = manifest.get("outputs", {})

    def _resolve(key: str) -> Path | None:
        raw = outputs.get(key)
        if not raw:
            return None
        p = Path(raw)
        if not p.is_file():
            # Artifacts may have been relocated together; try the
            # manifest's own directory before giving up.
            p = manifest_path.parent / Path(raw).name
        return p if p.is_file() else None

    metrics_rows: list[dict] = []
    metrics_path = _resolve("metrics_out")
    if metrics_path is not None:
        metrics_rows = read_metrics_jsonl(metrics_path)
    events: list[dict] = []
    events_path = _resolve("events_out")
    if events_path is not None:
        events = read_events_jsonl(events_path)
    return {
        "manifest_path": str(manifest_path),
        "manifest": manifest,
        "metrics_rows": metrics_rows,
        "events": events,
    }


def _rank_table_rows(manifest: dict) -> list[dict]:
    """Per-rank rows from the manifest's metric summaries."""
    rows = []
    for rank, values in sorted(
        manifest.get("rank_metrics", {}).items(), key=lambda kv: int(kv[0])
    ):
        row = {"rank": int(rank)}
        for name, _label in _RANK_COLUMNS:
            if name in values:
                row[name] = values[name]
        rows.append(row)
    return rows


def _convergence_rows(health: dict) -> list[dict]:
    """Per-rank/per-observable convergence verdicts from health output."""
    rows = []
    for summary in health.get("rank_summaries", []):
        for name, obs in summary.get("observables", {}).items():
            rows.append(
                {
                    "rank": summary.get("rank", 0),
                    "replica": summary.get("replica"),
                    "observable": name,
                    "mean": obs.get("mean"),
                    "error": obs.get("error"),
                    "tau_int": obs.get("tau_int"),
                    "converged": bool(obs.get("converged")),
                }
            )
        for name, rhat in summary.get("rhat", {}).items():
            rows.append(
                {
                    "rank": summary.get("rank", 0),
                    "replica": summary.get("replica"),
                    "observable": f"rhat:{name}",
                    "mean": rhat,
                    "error": None,
                    "tau_int": None,
                    "converged": None,
                }
            )
    return rows


def _comm_fractions(manifest: dict) -> dict:
    runtime = manifest.get("runtime", {})
    out = {}
    for key in ("comm_fraction", "comm_fraction_by_level"):
        if runtime.get(key) is not None:
            out[key] = runtime[key]
    return out


def _campaign_summary(loaded: dict) -> dict:
    """Compact per-campaign view for the report document."""
    doc = loaded["campaign"]
    counters = doc.get("counters", {})
    aggregate = doc.get("aggregate", {})
    return {
        "manifest_path": loaded["manifest_path"],
        "name": doc.get("name"),
        "kind": doc.get("kind"),
        "n_runs": doc.get("n_runs"),
        "jobs": doc.get("jobs"),
        "policy": doc.get("policy"),
        "interrupted": bool(doc.get("interrupted", False)),
        "counters": dict(counters),
        "aggregate": dict(aggregate),
        "runs": [
            {
                "run_id": r.get("run_id"),
                "status": r.get("status"),
                "cached": bool(r.get("cached", False)),
                "attempts": r.get("attempts"),
                "wall_seconds": r.get("wall_seconds"),
                "sweeps_per_second": r.get("sweeps_per_second"),
            }
            for r in doc.get("runs", [])
        ],
    }


def build_report(runs: Sequence[dict], campaigns: Sequence[dict] = ()) -> dict:
    """The machine-readable dashboard document over loaded runs.

    ``campaigns`` are :func:`load_campaign` documents; each contributes
    a campaign summary (scheduler counters, cache hits, aggregate
    throughput) on top of the per-run sections.
    """
    report_runs = []
    for run in runs:
        manifest = run["manifest"]
        health = manifest.get("health", {})
        report_runs.append(
            {
                "manifest_path": run["manifest_path"],
                "kind": manifest.get("kind"),
                "config_hash": manifest.get("config_hash"),
                "seed": manifest.get("seed"),
                "written_at": manifest.get("written_at"),
                "parameters": manifest.get("parameters", {}),
                "runtime": manifest.get("runtime", {}),
                "rank_table": _rank_table_rows(manifest),
                "health_summary": health.get("summary", {}),
                "convergence": _convergence_rows(health),
                "comm": _comm_fractions(manifest),
                "events": run.get("events", []),
                "n_metrics_rows": len(run.get("metrics_rows", [])),
            }
        )
    n_unhealthy = sum(
        1
        for r in report_runs
        if r["health_summary"] and not r["health_summary"].get("healthy", True)
    )
    return {
        "report_version": REPORT_VERSION,
        "n_runs": len(report_runs),
        "n_unhealthy": n_unhealthy,
        "campaigns": [_campaign_summary(c) for c in campaigns],
        "runs": report_runs,
    }


def _run_title(run: dict) -> str:
    chash = run.get("config_hash") or "?"
    return f"{run.get('kind', '?')} run {str(chash)[:12]} (seed {run.get('seed')})"


def _verdict(run: dict) -> str:
    hs = run.get("health_summary") or {}
    if not hs:
        return "no health data"
    if hs.get("healthy", True):
        return "healthy"
    sev = hs.get("by_severity", {})
    parts = [f"{sev[s]} {s}" for s in ("critical", "warning") if sev.get(s)]
    return "ATTENTION: " + ", ".join(parts)


def _campaign_verdict(c: dict) -> str:
    counters = c.get("counters", {})
    bits = [f"{counters.get('completed', 0)} fresh",
            f"{counters.get('cached', 0)} cached"]
    if counters.get("failed"):
        bits.append(f"{counters['failed']} FAILED")
    if counters.get("skipped"):
        bits.append(f"{counters['skipped']} skipped")
    if c.get("interrupted"):
        bits.append("INTERRUPTED")
    return ", ".join(bits)


def render_text(report: dict) -> str:
    """Terminal dashboard: aligned tables per run plus a campaign header."""
    lines = [
        f"repro report v{report['report_version']}: {report['n_runs']} run(s), "
        f"{report['n_unhealthy']} unhealthy",
    ]
    for c in report.get("campaigns", []):
        lines.append("")
        lines.append(
            f"== campaign {c.get('name', '?')!r} ({c.get('kind', '?')}, "
            f"{c.get('n_runs', '?')} runs, jobs={c.get('jobs', '?')}) -- "
            f"{_campaign_verdict(c)}"
        )
        agg = c.get("aggregate", {})
        if agg:
            lines.append(
                "   aggregate: "
                + ", ".join(
                    f"{k}={format_float(v)}" for k, v in sorted(agg.items())
                )
            )
        if c["runs"]:
            t = Table(
                "campaign runs",
                ["run", "status", "cached", "attempts", "wall[s]", "sweeps/s"],
            )
            for r in c["runs"]:
                t.add_row(
                    [
                        r.get("run_id", "?"),
                        r.get("status", "?"),
                        "yes" if r.get("cached") else "no",
                        r.get("attempts", "-"),
                        format_float(r.get("wall_seconds") or 0.0),
                        format_float(r.get("sweeps_per_second") or 0.0),
                    ]
                )
            lines.append(_indent(t.render()))
    for run in report["runs"]:
        lines.append("")
        lines.append(f"== {_run_title(run)} -- {_verdict(run)}")
        params = ", ".join(f"{k}={v}" for k, v in sorted(run["parameters"].items()))
        if params:
            lines.append(f"   parameters: {params}")
        runtime = run["runtime"]
        bits = []
        for key, label in (
            ("wall_seconds", "wall[s]"),
            ("sweeps_per_second", "sweeps/s"),
            ("n_attempted", "attempted"),
            ("n_accepted", "accepted"),
        ):
            if runtime.get(key) is not None:
                bits.append(f"{label}={format_float(runtime[key])}")
        comm = run["comm"].get("comm_fraction")
        if comm is not None:
            bits.append(f"comm_fraction={format_float(comm)}")
        if bits:
            lines.append(f"   runtime: {', '.join(bits)}")
        by_level = run["comm"].get("comm_fraction_by_level")
        if by_level:
            lines.append(
                "   comm by level: "
                + ", ".join(f"{k}={format_float(v)}" for k, v in sorted(by_level.items()))
            )
        if run["rank_table"]:
            t = Table(
                "per-rank metrics", ["rank"] + [lbl for _n, lbl in _RANK_COLUMNS]
            )
            for row in run["rank_table"]:
                t.add_row(
                    [row["rank"]] + [row.get(name, "-") for name, _l in _RANK_COLUMNS]
                )
            lines.append(_indent(t.render()))
        if run["convergence"]:
            t = Table(
                "convergence",
                ["rank", "replica", "observable", "mean", "error", "tau_int", "verdict"],
            )
            for row in run["convergence"]:
                verdict = (
                    "-" if row["converged"] is None
                    else ("converged" if row["converged"] else "NOT converged")
                )
                t.add_row(
                    [
                        row["rank"],
                        "-" if row["replica"] is None else row["replica"],
                        row["observable"],
                        "-" if row["mean"] is None else row["mean"],
                        "-" if row["error"] is None else row["error"],
                        "-" if row["tau_int"] is None else row["tau_int"],
                        verdict,
                    ]
                )
            lines.append(_indent(t.render()))
        if run["events"]:
            t = Table(
                "health timeline", ["sweep", "rank", "severity", "rule", "message"]
            )
            for e in run["events"]:
                t.add_row(
                    [e["sweep"], e["rank"], e["severity"], e["rule"], e["message"]]
                )
            lines.append(_indent(t.render()))
        elif run["health_summary"]:
            lines.append("   health timeline: no events")
    return "\n".join(lines) + "\n"


def _indent(block: str, prefix: str = "   ") -> str:
    return "\n".join(prefix + line for line in block.splitlines())


def _html_table(title: str, columns: Sequence[str], rows: Sequence[Sequence]) -> str:
    head = "".join(f"<th>{_html.escape(str(c))}</th>" for c in columns)
    body = "".join(
        "<tr>" + "".join(f"<td>{_html.escape(format_float(c))}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return (
        f"<h3>{_html.escape(title)}</h3>"
        f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"
    )


def render_html(report: dict) -> str:
    """Self-contained single-file HTML dashboard (no external assets)."""
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>repro report</title><style>",
        "body{font-family:system-ui,sans-serif;margin:2em;max-width:72em}",
        "table{border-collapse:collapse;margin:0.5em 0}",
        "th,td{border:1px solid #ccc;padding:0.25em 0.6em;text-align:right}",
        "th{background:#f0f0f0}td:first-child,th:first-child{text-align:left}",
        ".healthy{color:#1a7f37}.attention{color:#b91c1c;font-weight:bold}",
        ".params{color:#555;font-size:0.9em}",
        "</style></head><body>",
        f"<h1>repro report</h1><p>{report['n_runs']} run(s), "
        f"{report['n_unhealthy']} unhealthy "
        f"(report schema v{report['report_version']})</p>",
    ]
    for c in report.get("campaigns", []):
        verdict = _campaign_verdict(c)
        counters = c.get("counters", {})
        cls = (
            "attention"
            if counters.get("failed") or c.get("interrupted")
            else "healthy"
        )
        parts.append(
            f"<h2>campaign {_html.escape(str(c.get('name', '?')))} "
            f"<span class='{cls}'>[{_html.escape(verdict)}]</span></h2>"
        )
        agg = c.get("aggregate", {})
        parts.append(
            "<p class='params'>"
            + _html.escape(
                f"kind={c.get('kind')}, n_runs={c.get('n_runs')}, "
                f"jobs={c.get('jobs')}, policy={c.get('policy')}, "
                + ", ".join(
                    f"{k}={format_float(v)}" for k, v in sorted(agg.items())
                )
            )
            + "</p>"
        )
        if c["runs"]:
            parts.append(
                _html_table(
                    "campaign runs",
                    ["run", "status", "cached", "attempts", "wall[s]",
                     "sweeps/s"],
                    [
                        [
                            r.get("run_id", "?"),
                            r.get("status", "?"),
                            "yes" if r.get("cached") else "no",
                            r.get("attempts", "-"),
                            r.get("wall_seconds") or 0.0,
                            r.get("sweeps_per_second") or 0.0,
                        ]
                        for r in c["runs"]
                    ],
                )
            )
    for run in report["runs"]:
        verdict = _verdict(run)
        cls = "healthy" if verdict in ("healthy", "no health data") else "attention"
        parts.append(f"<h2>{_html.escape(_run_title(run))} "
                     f"<span class='{cls}'>[{_html.escape(verdict)}]</span></h2>")
        params = ", ".join(f"{k}={v}" for k, v in sorted(run["parameters"].items()))
        parts.append(f"<p class='params'>{_html.escape(params)}</p>")
        comm = run["comm"]
        if comm:
            items = []
            if comm.get("comm_fraction") is not None:
                items.append(("total", comm["comm_fraction"]))
            items.extend(sorted((comm.get("comm_fraction_by_level") or {}).items()))
            parts.append(
                _html_table("comm fractions", ["level", "fraction"], items)
            )
        if run["rank_table"]:
            parts.append(
                _html_table(
                    "per-rank metrics",
                    ["rank"] + [lbl for _n, lbl in _RANK_COLUMNS],
                    [
                        [row["rank"]]
                        + [row.get(name, "-") for name, _l in _RANK_COLUMNS]
                        for row in run["rank_table"]
                    ],
                )
            )
        if run["convergence"]:
            parts.append(
                _html_table(
                    "convergence",
                    ["rank", "replica", "observable", "mean", "error", "tau_int",
                     "verdict"],
                    [
                        [
                            row["rank"],
                            "-" if row["replica"] is None else row["replica"],
                            row["observable"],
                            "-" if row["mean"] is None else row["mean"],
                            "-" if row["error"] is None else row["error"],
                            "-" if row["tau_int"] is None else row["tau_int"],
                            "-" if row["converged"] is None
                            else ("converged" if row["converged"] else "NOT converged"),
                        ]
                        for row in run["convergence"]
                    ],
                )
            )
        if run["events"]:
            parts.append(
                _html_table(
                    "health timeline",
                    ["sweep", "rank", "severity", "rule", "message"],
                    [
                        [e["sweep"], e["rank"], e["severity"], e["rule"], e["message"]]
                        for e in run["events"]
                    ],
                )
            )
    parts.append("</body></html>")
    return "".join(parts)
