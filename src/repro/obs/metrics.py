"""Per-rank metrics registry: counters, gauges, fixed-bucket histograms.

The SC'93 genre sold itself on *measured* parallel behaviour -- update
rates, communication fractions, per-node byte counts -- so the runtime
needs an always-available, near-zero-cost way to ask "what did rank 2
do between sweeps 300 and 400".  This module is that substrate:

* :class:`MetricsRegistry` -- one per run.  Owns every metric, keyed by
  ``(rank, name)``; rank namespacing is structural (each rank writes
  into its own dict), so per-rank isolation holds even with all ranks
  recording concurrently from scheduler threads.
* :class:`RankMetrics` -- one rank's recording facade, obtained via
  :meth:`MetricsRegistry.scope`.  Hot paths cache the metric objects
  they touch (``counter(...)`` once, ``inc(...)`` per event), so the
  steady-state cost of an enabled counter is one attribute lookup and
  one float add.
* :data:`NOOP` -- the disabled recorder.  Every recording method is a
  ``pass``; ``enabled`` is False so hot loops can skip even the call
  with a single attribute test.  The communicator and the drivers
  default to it, which is what "off by default, ~0% overhead" means.

Metric naming scheme (see DESIGN.md "Observability"): dotted lowercase
``subsystem.quantity_unit`` -- e.g. ``comm.bytes_sent``,
``sweep.model_seconds``, ``checkpoint.wall_seconds``.  Quantities in
the *modeled* clock domain are derived exclusively from
:class:`~repro.util.timer.ModelClock` readings and are bit-reproducible
across runs; wall-clock quantities are always suffixed
``wall_seconds`` and are the only nondeterministic values in a run's
telemetry.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RankMetrics",
    "NoopMetrics",
    "NOOP",
    "ACCEPTANCE_EDGES",
    "MESSAGE_BYTES_EDGES",
]

#: Fixed bucket edges of the per-sweep acceptance-rate histogram.
ACCEPTANCE_EDGES = tuple(i / 10 for i in range(1, 10))

#: Fixed bucket edges of the per-message wire-size histogram (bytes).
MESSAGE_BYTES_EDGES = (64, 256, 1024, 4096, 16384, 65536, 262144)


class Counter:
    """A monotonically increasing sum (counts, bytes, seconds)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def to_value(self) -> float:
        return self.value


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_value(self) -> float:
        return self.value


class Histogram:
    """A fixed-bucket histogram (edges chosen at creation, never rebinned).

    ``edges`` are the *upper-inclusive right-open* bucket boundaries: a
    value ``v`` lands in the first bucket whose edge satisfies
    ``v <= edge`` -- i.e. bucket ``i`` counts ``edges[i-1] < v <=
    edges[i]`` -- with one overflow bucket past the last edge.  Count
    and sum ride along so means are recoverable without the raw stream.
    """

    __slots__ = ("name", "edges", "counts", "count", "sum")

    def __init__(self, name: str, edges: tuple[float, ...]):
        if not edges or list(edges) != sorted(edges):
            raise ValueError("histogram edges must be non-empty and sorted")
        self.name = name
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_value(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }


class RankMetrics:
    """One rank's recording facade over a shared :class:`MetricsRegistry`.

    Obtained from :meth:`MetricsRegistry.scope`; all writes land in the
    rank's own metric dict, so two scopes never contend on a metric
    object.  ``interval`` is the snapshot cadence the drivers honor
    (every N sweeps; 0 = end-of-run only).
    """

    enabled = True

    def __init__(self, registry: "MetricsRegistry", rank: int):
        self._registry = registry
        self.rank = int(rank)
        self._metrics = registry._rank_dict(self.rank)
        self.interval = registry.interval

    # -- metric handles (cache these in hot paths) ----------------------
    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), Gauge)

    def histogram(self, name: str, edges: tuple[float, ...]) -> Histogram:
        return self._get_or_create(name, lambda: Histogram(name, edges), Histogram)

    def _get_or_create(self, name, factory, kind):
        metric = self._metrics.get(name)
        if metric is None:
            with self._registry._lock:
                metric = self._metrics.setdefault(name, factory())
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} of rank {self.rank} is a "
                f"{type(metric).__name__}, not a {kind.__name__}"
            )
        return metric

    # -- convenience one-shot recorders ---------------------------------
    def count(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float,
                edges: tuple[float, ...] = ACCEPTANCE_EDGES) -> None:
        self.histogram(name, edges).observe(value)

    def snapshot(self, **labels) -> None:
        """Append one JSONL row: this rank's current metric values.

        ``labels`` become row fields (sweep index, modeled time...); the
        drivers call this every ``interval`` sweeps, so the JSONL sink
        is a time series of cumulative values per rank.
        """
        row = {"rank": self.rank, **labels}
        for name, metric in sorted(self._metrics.items()):
            row[name] = metric.to_value()
        self._registry.add_snapshot(row)


class NoopMetrics:
    """The disabled recorder: every method is free, ``enabled`` is False.

    Hot paths either test ``metrics.enabled`` once per batch or just
    call the recording methods (a no-op call is still cheap); neither
    allocates, locks, or touches shared state.
    """

    enabled = False
    rank = -1
    interval = 0

    def counter(self, name: str) -> "_NoopMetric":
        return _NOOP_METRIC

    def gauge(self, name: str) -> "_NoopMetric":
        return _NOOP_METRIC

    def histogram(self, name, edges) -> "_NoopMetric":
        return _NOOP_METRIC

    def count(self, name: str, amount: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name, value, edges=()) -> None:
        pass

    def snapshot(self, **labels) -> None:
        pass


class _NoopMetric:
    """Inert Counter/Gauge/Histogram stand-in returned by :data:`NOOP`."""

    name = "noop"
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def to_value(self) -> float:
        return 0.0


_NOOP_METRIC = _NoopMetric()

#: The process-wide disabled recorder (identity matters: ``metrics is
#: NOOP`` is how code asks "is telemetry off?").
NOOP = NoopMetrics()


class MetricsRegistry:
    """All metrics of one run, namespaced per rank.

    ``interval`` is the snapshot cadence (sweeps) handed to every
    :class:`RankMetrics` scope; ``namespace`` tags exported rows so
    multi-run sinks stay attributable.
    """

    def __init__(self, interval: int = 0, namespace: str = "run"):
        if interval < 0:
            raise ValueError("snapshot interval must be >= 0")
        self.interval = int(interval)
        self.namespace = namespace
        self._lock = threading.Lock()
        self._ranks: dict[int, dict[str, object]] = {}
        self._snapshots: list[dict] = []

    def _rank_dict(self, rank: int) -> dict:
        with self._lock:
            return self._ranks.setdefault(int(rank), {})

    def scope(self, rank: int) -> RankMetrics:
        """The recording facade of one rank (create-on-first-use)."""
        return RankMetrics(self, rank)

    @property
    def ranks(self) -> list[int]:
        with self._lock:
            return sorted(self._ranks)

    def add_snapshot(self, row: dict) -> None:
        with self._lock:
            self._snapshots.append(row)

    def snapshots(self) -> list[dict]:
        """All JSONL rows recorded so far, in arrival order."""
        with self._lock:
            return list(self._snapshots)

    def summary(self) -> dict[int, dict]:
        """``{rank: {metric_name: value}}`` of every registered metric.

        Histogram values are dicts (edges/counts/count/sum); counters
        and gauges are plain numbers -- directly JSON-serializable, and
        what the run manifest embeds per rank.
        """
        with self._lock:
            return {
                rank: {name: m.to_value() for name, m in sorted(metrics.items())}
                for rank, metrics in sorted(self._ranks.items())
            }
