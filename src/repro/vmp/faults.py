"""Deterministic fault injection and failure reporting for the VMP runtime.

Long world-line QMC runs on 1993-era space-shared MPPs lived with node
failure and preemption as routine events; a runtime that cannot *inject*
those events cannot test its recovery paths.  This module provides a
seeded, fully deterministic fault plan that both execution backends (the
thread scheduler in :mod:`repro.vmp.scheduler` and the multiprocessing
backend in :mod:`repro.vmp.process_backend`) honor identically:

* :class:`CrashFault` -- a rank raises :class:`InjectedRankCrash` when
  its communication-op counter reaches ``at_step`` (each ``send`` or
  ``recv`` entry advances the counter by one).
* :class:`MessageDelayFault` -- the ``nth`` message on one ``src -> dst``
  edge arrives late by ``seconds`` of *modeled* time, or -- with
  ``drop=True`` -- never arrives at all (the receiver's configured
  timeout then fires).
* :class:`StallFault` -- a rank charges ``seconds`` of modeled time (and
  optionally sleeps ``wall_seconds`` of real time, which is what trips
  wall-clock receive timeouts in the multiprocessing backend) when its
  op counter reaches ``at_step``.

Failure *surfacing* is shared between backends too:

* :class:`RankFailure` -- the structured error a surviving rank raises
  when a peer is detected dead (poison pill, dead-rank registry, or
  receive timeout).  It names the originally failed rank, the detecting
  rank, and how the failure was noticed.
* :class:`RunReport` -- per-run postmortem: which ranks failed, when
  (modeled clock at death), which survivors aborted, which completed.
  Attached as ``run_report`` to the exception a failed run raises and as
  ``report`` to the result of a successful one.

All plan objects are frozen dataclasses (hashable, picklable), so the
same plan object drives threads and forked processes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "CrashFault",
    "MessageDelayFault",
    "StallFault",
    "FaultPlan",
    "RankFaultState",
    "InjectedRankCrash",
    "RankFailure",
    "RankFailureRecord",
    "RunReport",
]


# ======================================================================
# exceptions
# ======================================================================


class InjectedRankCrash(RuntimeError):
    """Raised *inside* a rank killed by a :class:`CrashFault`.

    Attributes
    ----------
    rank:
        The rank that died.
    step:
        The communication-op count at which it died.
    model_time:
        The rank's modeled clock at death.
    """

    def __init__(self, rank: int, step: int, model_time: float = 0.0):
        super().__init__(
            f"injected crash: rank {rank} died at comm step {step} "
            f"(model t={model_time:.6g}s)"
        )
        self.rank = rank
        self.step = step
        self.model_time = model_time


class RankFailure(RuntimeError):
    """Raised in a *surviving* rank when a peer's death is detected.

    Structured so tests and callers can name the culprit without parsing
    the message:

    Attributes
    ----------
    failed_rank:
        The originally failed rank (``None`` when a timeout fired with a
        wildcard source, where no culprit can be named).
    detected_by:
        The rank that noticed.
    via:
        How the failure surfaced: ``"dead-rank"`` (registry / poison
        pill) or ``"timeout"`` (configured receive timeout expired).
    detail:
        Free-form diagnostics (stash/inbox contents on timeouts, the
        original exception repr on propagated deaths).
    """

    def __init__(
        self,
        failed_rank: int | None,
        detected_by: int,
        via: str = "dead-rank",
        detail: str = "",
    ):
        culprit = "unknown rank" if failed_rank is None else f"rank {failed_rank}"
        msg = f"rank {detected_by} detected failure of {culprit} via {via}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)
        self.failed_rank = failed_rank
        self.detected_by = detected_by
        self.via = via
        self.detail = detail


# ======================================================================
# fault plan
# ======================================================================


@dataclass(frozen=True)
class CrashFault:
    """Kill ``rank`` when its comm-op counter reaches ``at_step`` (1-based)."""

    rank: int
    at_step: int

    def __post_init__(self):
        if self.at_step < 1:
            raise ValueError("at_step counts comm ops from 1")


@dataclass(frozen=True)
class MessageDelayFault:
    """Delay (or drop) the ``nth`` message sent on the ``src -> dst`` edge.

    ``seconds`` is *modeled* time added to the arrival stamp; ``nth`` is
    0-based over the messages that edge actually carries.  ``drop=True``
    discards the message after charging the sender normally -- the
    receiver's timeout machinery is what notices.
    """

    src: int
    dst: int
    nth: int = 0
    seconds: float = 0.0
    drop: bool = False

    def __post_init__(self):
        if self.seconds < 0:
            raise ValueError("delay must be non-negative")
        if self.nth < 0:
            raise ValueError("nth is a 0-based message index")


@dataclass(frozen=True)
class StallFault:
    """Stall ``rank`` at op ``at_step``: modeled seconds + optional real sleep."""

    rank: int
    at_step: int
    seconds: float = 0.0
    wall_seconds: float = 0.0

    def __post_init__(self):
        if self.at_step < 1:
            raise ValueError("at_step counts comm ops from 1")
        if self.seconds < 0 or self.wall_seconds < 0:
            raise ValueError("stall durations must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable set of faults applied to one SPMD run.

    Construct explicitly from fault events, or derive a reproducible
    random plan with :meth:`seeded`.  Backends obtain the per-rank view
    with :meth:`for_rank`.
    """

    faults: tuple = ()

    def __post_init__(self):
        for f in self.faults:
            if not isinstance(f, (CrashFault, MessageDelayFault, StallFault)):
                raise TypeError(f"unknown fault type {type(f).__name__}")

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_ranks: int,
        n_crashes: int = 1,
        max_step: int = 32,
    ) -> "FaultPlan":
        """A deterministic random plan: ``n_crashes`` crashes at steps <= max_step.

        The same ``(seed, n_ranks, n_crashes, max_step)`` always yields
        the same plan on every platform (PCG64 under a SeedSequence).
        """
        if n_crashes > n_ranks:
            raise ValueError("cannot crash more ranks than exist")
        gen = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence(entropy=seed, spawn_key=(97,)))
        )
        victims = gen.choice(n_ranks, size=n_crashes, replace=False)
        steps = gen.integers(1, max_step + 1, size=n_crashes)
        return cls(
            tuple(
                CrashFault(rank=int(r), at_step=int(s))
                for r, s in zip(victims, steps)
            )
        )

    def for_rank(self, rank: int) -> "RankFaultState":
        """The mutable per-rank execution state of this plan."""
        return RankFaultState(self, rank)

    def crash_ranks(self) -> list[int]:
        """Ranks this plan will kill (sorted, unique)."""
        return sorted({f.rank for f in self.faults if isinstance(f, CrashFault)})


class RankFaultState:
    """One rank's live view of a :class:`FaultPlan`.

    Both communicator implementations call :meth:`on_op` on entry to
    every ``send``/``recv`` and :meth:`outgoing` once per send to learn
    the injected delay/drop of that particular message.  Because both
    backends count the same ops in the same order, a plan produces the
    same failure trajectory on threads and on processes.
    """

    def __init__(self, plan: FaultPlan, rank: int):
        self.rank = rank
        self.step = 0
        crash_steps = [
            f.at_step for f in plan.faults
            if isinstance(f, CrashFault) and f.rank == rank
        ]
        self._crash_at = min(crash_steps) if crash_steps else None
        self._stalls = {
            f.at_step: f
            for f in plan.faults
            if isinstance(f, StallFault) and f.rank == rank
        }
        self._delays: dict[int, list[MessageDelayFault]] = {}
        for f in plan.faults:
            if isinstance(f, MessageDelayFault) and f.src == rank:
                self._delays.setdefault(f.dst, []).append(f)
        self._sent: dict[int, int] = {}

    def on_op(self, clock) -> None:
        """Advance the op counter; apply any stall; raise any due crash."""
        self.step += 1
        stall = self._stalls.get(self.step)
        if stall is not None:
            if stall.seconds:
                clock.charge(stall.seconds, "stall")
            if stall.wall_seconds:
                time.sleep(stall.wall_seconds)
        if self._crash_at is not None and self.step >= self._crash_at:
            raise InjectedRankCrash(self.rank, self.step, model_time=clock.now)

    def outgoing(self, dst: int) -> tuple[float, bool]:
        """(extra modeled delay, drop?) of the next message to ``dst``."""
        k = self._sent.get(dst, 0)
        self._sent[dst] = k + 1
        for f in self._delays.get(dst, ()):
            if f.nth == k:
                return f.seconds, f.drop
        return 0.0, False


# ======================================================================
# run report
# ======================================================================


@dataclass
class RankFailureRecord:
    """One rank's failure entry in a :class:`RunReport`."""

    rank: int
    error: str
    model_time: float = 0.0
    injected: bool = False


@dataclass
class AbortRecord:
    """A surviving rank that aborted after detecting a peer failure."""

    rank: int
    failed_rank: int | None
    via: str
    model_time: float = 0.0


@dataclass
class RunReport:
    """Postmortem of one SPMD run (both backends produce one).

    ``failures`` are ranks whose *own* program raised (injected crashes,
    hard process deaths, genuine bugs); ``aborted`` are survivors that
    raised :class:`RankFailure` after detecting a peer's death;
    ``completed`` ran to the end.
    """

    n_ranks: int
    failures: list[RankFailureRecord] = field(default_factory=list)
    aborted: list[AbortRecord] = field(default_factory=list)
    completed: list[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.aborted

    def failed_ranks(self) -> list[int]:
        return sorted(r.rank for r in self.failures)

    def summary(self) -> str:
        if self.ok:
            return f"all {self.n_ranks} ranks completed"
        lines = [
            f"{len(self.failures)} of {self.n_ranks} ranks failed, "
            f"{len(self.aborted)} aborted, {len(self.completed)} completed"
        ]
        for f in self.failures:
            kind = "injected" if f.injected else "error"
            lines.append(
                f"  rank {f.rank} died ({kind}) at model t={f.model_time:.6g}s: {f.error}"
            )
        for a in self.aborted:
            culprit = "?" if a.failed_rank is None else a.failed_rank
            lines.append(
                f"  rank {a.rank} aborted via {a.via} "
                f"(peer {culprit}) at model t={a.model_time:.6g}s"
            )
        return "\n".join(lines)
