"""Rank entry point of the mpiexec launcher: one process per MPI rank.

Started by :func:`repro.vmp.mpi_backend.run_mpiexec` as

    mpiexec -n P python -m repro.vmp.mpi_worker payload.pkl result.pkl

Every rank loads the pickled run request (program object, machine
model, topology, seed, args), executes the rank program collectively
through :func:`~repro.vmp.mpi_backend.run_mpi_world`, and rank 0
writes the gathered :class:`~repro.vmp.mpi_backend.MpiRunResult` to
``result.pkl`` (atomically, via a rename) for the launching process to
collect.  Program exceptions abort the whole job inside
``run_mpi_world``; the launcher turns the nonzero exit status into a
structured :class:`~repro.vmp.faults.RankFailure`.
"""

from __future__ import annotations

import pickle
import sys
from pathlib import Path

from repro.vmp.mpi_backend import run_mpi_world


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(
            "usage: python -m repro.vmp.mpi_worker payload.pkl result.pkl",
            file=sys.stderr,
        )
        return 2
    payload_path, result_path = Path(argv[0]), Path(argv[1])
    payload = pickle.loads(payload_path.read_bytes())
    result = run_mpi_world(
        payload["program"],
        machine=payload["machine"],
        topology=payload["topology"],
        seed=payload["seed"],
        args=payload["args"],
        recv_timeout=payload["recv_timeout"],
    )
    from mpi4py import MPI

    if MPI.COMM_WORLD.Get_rank() == 0:
        tmp = result_path.with_suffix(".tmp")
        tmp.write_bytes(pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))
        tmp.replace(result_path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
