"""Message tracing and text timelines for the virtual machine.

Era papers illustrated their communication behaviour with per-node
timelines; this module reproduces that instrumentationally: when a
:class:`~repro.vmp.comm.Fabric` is created with ``trace=True`` every
point-to-point message is recorded as a :class:`MessageEvent` (modeled
send time, arrival time, endpoints, size, tag), and
:func:`render_timeline` draws a character-cell Gantt view -- one row
per rank, ``#`` where the rank is computing, ``~`` where it is inside
communication, ``.`` idle/waiting.

Tracing costs one list append per message; leave it off (the default)
for production sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MessageEvent", "render_timeline", "summarize_traffic"]


@dataclass(frozen=True)
class MessageEvent:
    """One traced point-to-point message (modeled times in seconds)."""

    src: int
    dst: int
    tag: int
    nbytes: int
    t_send: float  # sender's clock when the send started
    t_arrival: float  # modeled arrival time at the destination


def summarize_traffic(events: list[MessageEvent], n_ranks: int) -> dict:
    """Aggregate counts/bytes per (src, dst) pair and totals."""
    pair_bytes: dict[tuple[int, int], int] = {}
    pair_count: dict[tuple[int, int], int] = {}
    for e in events:
        key = (e.src, e.dst)
        pair_bytes[key] = pair_bytes.get(key, 0) + e.nbytes
        pair_count[key] = pair_count.get(key, 0) + 1
    return {
        "n_messages": len(events),
        "total_bytes": sum(e.nbytes for e in events),
        "pair_bytes": pair_bytes,
        "pair_count": pair_count,
        "busiest_pair": max(pair_bytes, key=pair_bytes.get) if pair_bytes else None,
    }


def render_timeline(
    events: list[MessageEvent],
    breakdowns: list[dict[str, float]],
    makespan: float,
    width: int = 72,
) -> str:
    """Character-cell timeline of message activity per rank.

    Parameters
    ----------
    events:
        Traced messages (from ``SpmdResult.trace``).
    breakdowns:
        Per-rank clock category breakdowns (``outcome.breakdown``) --
        used for the legend totals.
    makespan:
        Total modeled time spanned by the row (seconds).
    width:
        Characters per row.
    """
    if makespan <= 0:
        return "(empty timeline)"
    n_ranks = len(breakdowns)
    rows = [["."] * width for _ in range(n_ranks)]

    def cell(t: float) -> int:
        return min(int(t / makespan * width), width - 1)

    for e in events:
        a, b = cell(e.t_send), cell(e.t_arrival)
        for rank in (e.src, e.dst):
            if 0 <= rank < n_ranks:
                for k in range(a, b + 1):
                    rows[rank][k] = "~"
    lines = [f"timeline ({makespan:.4g} s across {width} cells; ~ = in-flight msg)"]
    for r in range(n_ranks):
        comm = breakdowns[r].get("comm", 0.0) + breakdowns[r].get("comm_wait", 0.0)
        comp = breakdowns[r].get("compute", 0.0)
        lines.append(
            f"rank {r:>3} |{''.join(rows[r])}| comp {comp:.3g}s comm {comm:.3g}s"
        )
    return "\n".join(lines)
