"""Message tracing and text timelines for the virtual machine.

Era papers illustrated their communication behaviour with per-node
timelines; this module reproduces that instrumentationally: when a
:class:`~repro.vmp.comm.Fabric` is created with ``trace=True`` every
point-to-point message is recorded as a :class:`MessageEvent` (modeled
send time, arrival time, endpoints, size, tag), and
:func:`render_timeline` draws a character-cell Gantt view -- one row
per rank, ``#`` where the rank is computing, ``~`` where it is inside
communication, ``.`` idle/waiting.

Tracing costs one list append per message; leave it off (the default)
for production sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.timer import COMM_CATEGORIES, COMPUTE_CATEGORIES, WAIT_CATEGORIES

__all__ = ["MessageEvent", "render_timeline", "summarize_traffic"]


@dataclass(frozen=True)
class MessageEvent:
    """One traced point-to-point message (modeled times in seconds)."""

    src: int
    dst: int
    tag: int
    nbytes: int
    t_send: float  # sender's clock when the send started
    t_arrival: float  # modeled arrival time at the destination


def _interval_union(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of (start, end) intervals."""
    total = 0.0
    end = float("-inf")
    for a, b in sorted(intervals):
        if b <= end:
            continue
        total += b - max(a, end)
        end = b
    return total


def summarize_traffic(
    events: list[MessageEvent],
    n_ranks: int,
    breakdowns: list[dict[str, float]] | None = None,
) -> dict:
    """Aggregate counts/bytes per (src, dst) pair, per tag, and totals.

    ``comm_fraction`` is a per-rank list.  With ``breakdowns`` (the
    per-rank clock category splits from ``outcome.breakdown``) it is
    the exact modeled ``(comm + comm_wait) / total``; without them it
    falls back to the rank's in-flight message window union over the
    traced makespan -- an estimate, but one derivable from the event
    stream alone.
    """
    pair_bytes: dict[tuple[int, int], int] = {}
    pair_count: dict[tuple[int, int], int] = {}
    tag_bytes: dict[int, int] = {}
    tag_count: dict[int, int] = {}
    windows: list[list[tuple[float, float]]] = [[] for _ in range(n_ranks)]
    for e in events:
        key = (e.src, e.dst)
        pair_bytes[key] = pair_bytes.get(key, 0) + e.nbytes
        pair_count[key] = pair_count.get(key, 0) + 1
        tag_bytes[e.tag] = tag_bytes.get(e.tag, 0) + e.nbytes
        tag_count[e.tag] = tag_count.get(e.tag, 0) + 1
        for rank in (e.src, e.dst):
            if 0 <= rank < n_ranks:
                windows[rank].append((e.t_send, e.t_arrival))
    if breakdowns is not None:
        comm_fraction = []
        for b in breakdowns:
            total = sum(b.values())
            comm = sum(
                b.get(c, 0.0) for c in COMM_CATEGORIES + WAIT_CATEGORIES
            )
            comm_fraction.append(comm / total if total > 0 else 0.0)
    else:
        makespan = max((e.t_arrival for e in events), default=0.0)
        comm_fraction = [
            _interval_union(w) / makespan if makespan > 0 else 0.0
            for w in windows
        ]
    return {
        "n_messages": len(events),
        "total_bytes": sum(e.nbytes for e in events),
        "pair_bytes": pair_bytes,
        "pair_count": pair_count,
        "tag_bytes": tag_bytes,
        "tag_count": tag_count,
        "comm_fraction": comm_fraction,
        "busiest_pair": max(pair_bytes, key=pair_bytes.get) if pair_bytes else None,
    }


def render_timeline(
    events: list[MessageEvent],
    breakdowns: list[dict[str, float]],
    makespan: float,
    width: int = 72,
) -> str:
    """Character-cell timeline of message activity per rank.

    Parameters
    ----------
    events:
        Traced messages (from ``SpmdResult.trace``).
    breakdowns:
        Per-rank clock category breakdowns (``outcome.breakdown``) --
        used for the legend totals.
    makespan:
        Total modeled time spanned by the row (seconds).  Events past
        the makespan extend the rendered span instead of piling up in
        the last cell, so long runs stay readable at any ``width``.
    width:
        Characters per row (>= 8).
    """
    if width < 8:
        raise ValueError(f"timeline width must be >= 8 characters, got {width}")
    # Late arrivals (e.g. a message still in flight when its sender
    # finished) extend the rendered span rather than clip.
    makespan = max([makespan] + [e.t_arrival for e in events])
    if makespan <= 0:
        return "(empty timeline)"
    n_ranks = len(breakdowns)
    rows = [["."] * width for _ in range(n_ranks)]

    def cell(t: float) -> int:
        return min(int(t / makespan * width), width - 1)

    for e in events:
        a, b = cell(e.t_send), cell(e.t_arrival)
        for rank in (e.src, e.dst):
            if 0 <= rank < n_ranks:
                for k in range(a, b + 1):
                    rows[rank][k] = "~"
    lines = [f"timeline ({makespan:.4g} s across {width} cells; ~ = in-flight msg)"]
    for r in range(n_ranks):
        b = breakdowns[r]
        comm = sum(b.get(c, 0.0) for c in COMM_CATEGORIES + WAIT_CATEGORIES)
        comp = sum(b.get(c, 0.0) for c in COMPUTE_CATEGORIES)
        lines.append(
            f"rank {r:>3} |{''.join(rows[r])}| comp {comp:.3g}s comm {comm:.3g}s"
        )
    return "\n".join(lines)
