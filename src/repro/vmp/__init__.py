"""Virtual massively parallel machine (VMP).

This subpackage stands in for the 1993-era MPP hardware the paper ran
on.  It provides:

* :mod:`repro.vmp.topology` -- interconnect topologies (hypercube,
  2-D/3-D mesh and torus, fat-tree, crossbar) with hop-count metrics.
* :mod:`repro.vmp.machines` -- calibrated machine models (CM-5, Intel
  Paragon, Intel Delta, nCUBE-2, plus an ideal PRAM-like machine):
  per-node sustained flop rate and an alpha--beta message cost model.
* :mod:`repro.vmp.comm` -- an MPI-like communicator (send/recv,
  sendrecv, barrier, bcast, reduce, allreduce, gather, scatter,
  allgather, alltoall) whose point-to-point layer *actually moves data*
  between rank address spaces while charging modeled time.
* :mod:`repro.vmp.scheduler` -- the SPMD runner: executes one Python
  callable per rank on threads, with deterministic message matching.
* :mod:`repro.vmp.process_backend` -- the same program API executed on
  real OS processes via :mod:`multiprocessing` (small rank counts).
* :mod:`repro.vmp.mpi_backend` -- the same program API executed under a
  real MPI launcher via mpi4py (``mpiexec -n P python -m repro ...``);
  degrades gracefully when mpi4py is absent.
* :mod:`repro.vmp.performance` -- closed-form performance model used
  for large-P scaling sweeps, cross-validated against the simulator.

The split between *executed* communication (correctness) and *modeled*
time (performance) is the key substitution documented in DESIGN.md.
"""

from repro.vmp.comm import AbortError, Communicator, ReduceOp
from repro.vmp.faults import (
    CrashFault,
    FaultPlan,
    InjectedRankCrash,
    MessageDelayFault,
    RankFailure,
    RunReport,
    StallFault,
)
from repro.vmp.machines import (
    CM5,
    DELTA,
    IDEAL,
    MACHINES,
    NCUBE2,
    PARAGON,
    MachineModel,
)
from repro.vmp.mpi_backend import (
    MpiCommunicator,
    MpiUnavailableError,
    in_mpi_world,
    mpi_available,
    mpiexec_available,
    run_mpi_world,
    run_mpiexec,
)
from repro.vmp.performance import (
    PerformanceModel,
    WorkloadShape,
    efficiency,
    gustafson_scaled_speedup,
    speedup,
)
from repro.vmp.scheduler import SpmdResult, run_spmd
from repro.vmp.trace import MessageEvent, render_timeline, summarize_traffic
from repro.vmp.topology import (
    Crossbar,
    FatTree,
    Hypercube,
    Mesh2D,
    Mesh3D,
    Ring,
    Topology,
    topology_for,
)

__all__ = [
    "AbortError",
    "Communicator",
    "ReduceOp",
    "CrashFault",
    "MessageDelayFault",
    "StallFault",
    "FaultPlan",
    "InjectedRankCrash",
    "RankFailure",
    "RunReport",
    "MachineModel",
    "MACHINES",
    "CM5",
    "PARAGON",
    "DELTA",
    "NCUBE2",
    "IDEAL",
    "PerformanceModel",
    "WorkloadShape",
    "speedup",
    "efficiency",
    "gustafson_scaled_speedup",
    "SpmdResult",
    "run_spmd",
    "MpiCommunicator",
    "MpiUnavailableError",
    "in_mpi_world",
    "mpi_available",
    "mpiexec_available",
    "run_mpi_world",
    "run_mpiexec",
    "MessageEvent",
    "render_timeline",
    "summarize_traffic",
    "Topology",
    "Hypercube",
    "Mesh2D",
    "Mesh3D",
    "FatTree",
    "Ring",
    "Crossbar",
    "topology_for",
]
