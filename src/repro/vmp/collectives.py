"""Collective operations built from point-to-point messages.

Each collective uses the standard distributed-memory algorithm of the
era, so its *modeled* cost has the right asymptotic structure:

=============  =============================  =======================
collective     algorithm                      modeled cost structure
=============  =============================  =======================
barrier        dissemination                  ceil(log2 P) rounds
bcast          binomial tree                  ceil(log2 P) (alpha+n*beta)
reduce         binomial tree (reversed)       ceil(log2 P) (alpha+n*beta)
allreduce      reduce + bcast                 2 ceil(log2 P) (alpha+n*beta)
gather         binomial tree                  log P rounds, growing n
allgather      ring                           (P-1)(alpha + n*beta)
scatter        root-sequential                (P-1)(alpha + n*beta)
alltoall       pairwise exchange              (P-1)(alpha + n*beta)
=============  =============================  =======================

``allreduce`` is deliberately reduce-then-broadcast rather than
recursive doubling: every rank then holds the *bitwise identical*
result (one combination order), which keeps SPMD programs deterministic
under floating-point non-associativity.  The recursive-doubling variant
is provided separately for the ablation benchmark.

Collective calls must be made by all ranks in the same order (the usual
SPMD contract).  A per-communicator sequence number namespaces the
message tags of consecutive collectives so they cannot interleave.
"""

from __future__ import annotations

from typing import Any

from repro.vmp.comm import Communicator, ReduceOp

__all__ = [
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "allreduce_recursive_doubling",
    "gather",
    "allgather",
    "scatter",
    "alltoall",
]

_TAG_BASE = 1 << 20  # tags above this value are reserved for collectives
_TAG_STRIDE = 64  # max rounds per collective


def _next_tag(comm: Communicator) -> int:
    seq = getattr(comm, "_coll_seq", 0)
    comm._coll_seq = seq + 1
    return _TAG_BASE + (seq % (1 << 16)) * _TAG_STRIDE


def _vrank(rank: int, root: int, size: int) -> int:
    return (rank - root) % size


def _rank_of(vrank: int, root: int, size: int) -> int:
    return (vrank + root) % size


def barrier(comm: Communicator) -> None:
    """Dissemination barrier; also synchronizes modeled clocks.

    After the final round every rank's clock is at least the maximum
    participant clock at entry (plus the modeled rounds), which is the
    physical semantics of a barrier.
    """
    tag = _next_tag(comm)
    p, r = comm.size, comm.rank
    if p == 1:
        return
    step, rnd = 1, 0
    while step < p:
        comm.send(None, (r + step) % p, tag=tag + rnd)
        comm.recv(source=(r - step) % p, tag=tag + rnd)
        step <<= 1
        rnd += 1


def bcast(comm: Communicator, obj: Any, root: int = 0) -> Any:
    """Binomial-tree broadcast of ``obj`` from ``root``; returns the object."""
    tag = _next_tag(comm)
    p = comm.size
    if p == 1:
        return obj
    v = _vrank(comm.rank, root, p)
    mask = 1
    received = obj if v == 0 else None
    # Ranks below `mask` already hold the object and fan it out.
    while mask < p:
        if v < mask:
            partner = v + mask
            if partner < p:
                comm.send(received, _rank_of(partner, root, p), tag=tag)
        elif v < 2 * mask:
            received = comm.recv(source=_rank_of(v - mask, root, p), tag=tag)
        mask <<= 1
    return received


def reduce(
    comm: Communicator, value: Any, op: ReduceOp = ReduceOp.SUM, root: int = 0
) -> Any:
    """Binomial-tree reduction; only ``root`` receives the result.

    Non-root ranks return ``None``.  Combination order is fixed by the
    tree (child-into-parent, ascending mask), so the result is
    deterministic for a given P.
    """
    tag = _next_tag(comm)
    p = comm.size
    v = _vrank(comm.rank, root, p)
    acc = value
    mask = 1
    while mask < p:
        if v & mask:
            comm.send(acc, _rank_of(v & ~mask, root, p), tag=tag)
            return None
        partner = v | mask
        if partner < p:
            incoming = comm.recv(source=_rank_of(partner, root, p), tag=tag)
            acc = op.combine(acc, incoming)
        mask <<= 1
    return acc if v == 0 else None


def allreduce(comm: Communicator, value: Any, op: ReduceOp = ReduceOp.SUM) -> Any:
    """Reduce to rank 0 then broadcast: every rank gets an identical result."""
    total = reduce(comm, value, op, root=0)
    return bcast(comm, total, root=0)


def allreduce_recursive_doubling(
    comm: Communicator, value: Any, op: ReduceOp = ReduceOp.SUM
) -> Any:
    """Classic recursive-doubling allreduce (ablation variant).

    Requires a power-of-two number of ranks.  Each rank combines in a
    different order, so floating-point results may differ across ranks
    in the last ulp -- the reason the default is reduce+bcast.
    """
    p = comm.size
    if p & (p - 1):
        raise ValueError("recursive doubling requires a power-of-two rank count")
    tag = _next_tag(comm)
    acc = value
    mask = 1
    rnd = 0
    while mask < p:
        partner = comm.rank ^ mask
        incoming = comm.sendrecv(
            acc, partner, partner, sendtag=tag + rnd, recvtag=tag + rnd
        )
        # Fixed combination order (lower rank first) for reproducibility.
        acc = op.combine(acc, incoming) if comm.rank < partner else op.combine(incoming, acc)
        mask <<= 1
        rnd += 1
    return acc


def gather(comm: Communicator, value: Any, root: int = 0) -> list[Any] | None:
    """Binomial-tree gather; root returns the rank-ordered list."""
    tag = _next_tag(comm)
    p = comm.size
    v = _vrank(comm.rank, root, p)
    # Each node accumulates {vrank: value} from its binomial subtree.
    acc: dict[int, Any] = {v: value}
    mask = 1
    while mask < p:
        if v & mask:
            comm.send(acc, _rank_of(v & ~mask, root, p), tag=tag)
            return None
        partner = v | mask
        if partner < p:
            incoming = comm.recv(source=_rank_of(partner, root, p), tag=tag)
            acc.update(incoming)
        mask <<= 1
    if v != 0:
        return None
    return [acc[_vrank(r, root, p)] for r in range(p)]


def allgather(comm: Communicator, value: Any) -> list[Any]:
    """Ring allgather: P-1 neighbor exchanges, every rank gets all values."""
    tag = _next_tag(comm)
    p, r = comm.size, comm.rank
    out: list[Any] = [None] * p
    out[r] = value
    if p == 1:
        return out
    right = (r + 1) % p
    left = (r - 1) % p
    carried = value
    carried_owner = r
    for step in range(p - 1):
        comm.send((carried_owner, carried), right, tag=tag + step % _TAG_STRIDE)
        carried_owner, carried = comm.recv(
            source=left, tag=tag + step % _TAG_STRIDE
        )
        out[carried_owner] = carried
    return out


def scatter(comm: Communicator, values: list[Any] | None, root: int = 0) -> Any:
    """Root-sequential scatter of one value per rank."""
    tag = _next_tag(comm)
    p = comm.size
    if comm.rank == root:
        if values is None or len(values) != p:
            raise ValueError(f"root must supply exactly {p} values")
        for r in range(p):
            if r != root:
                comm.send(values[r], r, tag=tag)
        return values[root]
    return comm.recv(source=root, tag=tag)


def alltoall(comm: Communicator, values: list[Any]) -> list[Any]:
    """Pairwise-exchange alltoall: element ``j`` of ``values`` goes to rank ``j``."""
    p, r = comm.size, comm.rank
    if len(values) != p:
        raise ValueError(f"alltoall needs exactly {p} values, got {len(values)}")
    tag = _next_tag(comm)
    out: list[Any] = [None] * p
    out[r] = values[r]
    for step in range(1, p):
        dst = (r + step) % p
        src = (r - step) % p
        out[src] = comm.sendrecv(
            values[dst],
            dst,
            src,
            sendtag=tag + step % _TAG_STRIDE,
            recvtag=tag + step % _TAG_STRIDE,
        )
    return out
