"""SPMD runner: execute one rank program per logical processor.

A *rank program* is any callable ``program(comm, *args) -> result``
taking a :class:`~repro.vmp.comm.Communicator` as its first argument --
the same shape as an mpi4py ``main(comm)``.  :func:`run_spmd` launches
one OS thread per rank over a shared in-process fabric.  Threads (not
processes) are the right default here: payloads move by deep copy, the
GIL serializes the NumPy-light control flow anyway, and modeled time --
not wall time -- is what the benchmarks report.  The ``backend``
parameter routes the *same program object* to real OS processes
(``"mp"``, :mod:`repro.vmp.process_backend`) or real message passing
under an MPI launcher (``"mpi"``, :mod:`repro.vmp.mpi_backend`), all
three returning a uniform :class:`SpmdResult` with bit-identical
trajectories.

Failure handling: if any rank raises, the rank is registered in the
fabric's dead-rank registry; blocked peers wake immediately with a
structured :class:`~repro.vmp.faults.RankFailure` naming the culprit
(fail-fast, instead of hanging until a timeout).  The caller receives
the original exception with a :class:`~repro.vmp.faults.RunReport`
attached as ``run_report``, recording which ranks failed, when (modeled
clock at death), and which survivors aborted.  Deterministic fault
injection -- crashes, message delays/drops, stalls -- is driven by a
:class:`~repro.vmp.faults.FaultPlan` passed to :func:`run_spmd`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.obs.metrics import NOOP, MetricsRegistry
from repro.obs.spans import SpanCollector
from repro.util.rng import SeedSequenceFactory
from repro.util.timer import COMM_CATEGORIES, COMPUTE_CATEGORIES, WAIT_CATEGORIES
from repro.vmp.comm import AbortError, Communicator, Fabric
from repro.vmp.faults import (
    AbortRecord,
    FaultPlan,
    InjectedRankCrash,
    RankFailure,
    RankFailureRecord,
    RunReport,
)
from repro.vmp.machines import IDEAL, MachineModel
from repro.vmp.topology import Topology

__all__ = ["BACKENDS", "SpmdResult", "run_spmd"]


@dataclass
class RankOutcome:
    """Result and accounting of one rank."""

    rank: int
    value: Any
    model_time: float
    breakdown: dict[str, float]
    messages_sent: int
    bytes_sent: int


@dataclass
class SpmdResult:
    """Aggregate outcome of an SPMD run.

    ``elapsed_model_time`` is the makespan -- the slowest rank's clock --
    which is what "time to solution" means on a space-shared MPP.
    ``trace`` holds per-message events when the run was launched with
    ``trace=True`` (else None); render with
    :func:`repro.vmp.trace.render_timeline`.  ``report`` is the run's
    :class:`~repro.vmp.faults.RunReport` (all-completed on success).
    """

    outcomes: list[RankOutcome]
    machine: MachineModel
    topology: Topology
    trace: list | None = None
    report: RunReport | None = None
    #: The run's MetricsRegistry when telemetry was enabled (else None).
    metrics: MetricsRegistry | None = None
    #: Per-rank phase spans when launched with ``spans=True`` (else None).
    spans: list | None = None

    def health_events(self) -> list[dict]:
        """All ranks' health-event records, deterministically ordered.

        Rank programs that run with health rules return their monitor's
        events under a ``"health_events"`` key in the value dict; this
        gathers them across ranks (empty when health was off).
        """
        from repro.obs.events import sort_events

        events: list[dict] = []
        for o in self.outcomes:
            if isinstance(o.value, dict):
                events.extend(o.value.get("health_events") or ())
        return sort_events(events)

    def chrome_trace(self, metadata: dict | None = None) -> dict:
        """Chrome ``trace_event`` document of the run (requires spans=True).

        Health events, when any rank emitted them, appear as instant
        markers on the emitting rank's timeline row.
        """
        from repro.obs.chrome_trace import chrome_trace_doc
        from repro.obs.events import health_instant_events

        if self.spans is None:
            raise ValueError("run has no phase spans; pass spans=True to run_spmd")
        return chrome_trace_doc(
            self.spans,
            messages=self.trace,
            ranks=[o.rank for o in self.outcomes],
            metadata=metadata,
            instants=health_instant_events(self.health_events()),
        )

    def write_chrome_trace(self, path, metadata: dict | None = None):
        """Write the Chrome trace JSON to ``path`` (see chrome_trace)."""
        from repro.obs.chrome_trace import write_chrome_trace
        from repro.obs.events import health_instant_events

        if self.spans is None:
            raise ValueError("run has no phase spans; pass spans=True to run_spmd")
        return write_chrome_trace(
            path,
            self.spans,
            messages=self.trace,
            ranks=[o.rank for o in self.outcomes],
            metadata=metadata,
            instants=health_instant_events(self.health_events()),
        )

    def render_timeline(self, width: int = 72) -> str:
        """Text Gantt view of traced messages (requires trace=True)."""
        from repro.vmp.trace import render_timeline

        if self.trace is None:
            raise ValueError("run was not traced; pass trace=True to run_spmd")
        return render_timeline(
            self.trace,
            [o.breakdown for o in self.outcomes],
            self.elapsed_model_time,
            width=width,
        )

    @property
    def values(self) -> list[Any]:
        return [o.value for o in self.outcomes]

    @property
    def elapsed_model_time(self) -> float:
        return max(o.model_time for o in self.outcomes)

    @property
    def total_messages(self) -> int:
        return sum(o.messages_sent for o in self.outcomes)

    @property
    def total_bytes(self) -> int:
        return sum(o.bytes_sent for o in self.outcomes)

    def comm_fraction(self) -> float:
        """Share of the makespan rank 0 spent communicating or waiting.

        Counts the comm categories plus every wait category (both the
        blocking path's ``comm_wait`` and the overlap pipeline's
        ``halo_wait``), so overlapped and lockstep runs are directly
        comparable.  Rank 0 is representative for the homogeneous SPMD
        workloads in this repository; the per-rank breakdown is in
        ``outcomes``.
        """
        o = self.outcomes[0]
        if o.model_time == 0:
            return 0.0
        comm = sum(
            o.breakdown.get(c, 0.0) for c in COMM_CATEGORIES + WAIT_CATEGORIES
        )
        return comm / o.model_time

    def category_seconds(self, category: str) -> float:
        """Max-over-ranks seconds spent in one clock category."""
        return max(o.breakdown.get(category, 0.0) for o in self.outcomes)

    def comm_fraction_by_level(self) -> dict[str, float]:
        """Rank-0 comm fraction split per communication level.

        One entry per comm category (``comm`` for domain-level halo
        traffic, ``ensemble`` for ensemble-level traffic in two-level
        layouts), each counting its overhead plus matching wait
        categories.  The plain ``halo_wait`` of the overlap pipeline
        belongs to the domain level.  Values sum to
        :meth:`comm_fraction`.
        """
        o = self.outcomes[0]
        if o.model_time == 0:
            return {c: 0.0 for c in COMM_CATEGORIES}
        by_level: dict[str, float] = {}
        for cat in COMM_CATEGORIES:
            waits = [w for w in WAIT_CATEGORIES if w.startswith(f"{cat}_")]
            if cat == "comm":
                waits.append("halo_wait")
            seconds = o.breakdown.get(cat, 0.0) + sum(
                o.breakdown.get(w, 0.0) for w in waits
            )
            by_level[cat] = seconds / o.model_time
        return by_level


@dataclass
class _RankBox:
    value: Any = None
    error: BaseException | None = None
    comm: Communicator | None = None
    done: bool = field(default=False)


#: Execution backends selectable via ``run_spmd(backend=...)``.
BACKENDS = ("thread", "mp", "mpi")


def _fold_backend_metrics(metrics, outcomes) -> None:
    """Fold per-rank comm stats and phase breakdowns into a registry.

    The mp and mpi backends run ranks in separate processes, so the
    live in-run recorders cannot be shared; what *can* be reported
    faithfully after the fact is exactly what the thread backend's
    ``sync_metrics`` + scheduler phase gauges record: comm counters and
    the modeled-clock phase split.  Sweep-level counters (attempted /
    accepted / wall time) stay thread-backend-only; DESIGN.md carries
    the support matrix.
    """
    for o in outcomes:
        b = o.breakdown
        scope = metrics.scope(o.rank)
        scope.counter("comm.messages_sent").value = float(o.messages_sent)
        scope.counter("comm.bytes_sent").value = float(o.bytes_sent)
        scope.counter("comm.wait_seconds").value = sum(
            b.get(c, 0.0) for c in WAIT_CATEGORIES
        )
        scope.set_gauge(
            "phase.compute_seconds",
            sum(b.get(c, 0.0) for c in COMPUTE_CATEGORIES),
        )
        scope.set_gauge(
            "phase.comm_seconds", sum(b.get(c, 0.0) for c in COMM_CATEGORIES)
        )
        scope.set_gauge(
            "phase.idle_seconds", sum(b.get(c, 0.0) for c in WAIT_CATEGORIES)
        )
        scope.set_gauge("phase.model_seconds", o.model_time)


def _result_from_backend(
    backend_result, machine: MachineModel, topo: Topology, metrics
) -> SpmdResult:
    """Present an Mp/MpiRunResult as a uniform :class:`SpmdResult`."""
    stats = backend_result.stats or [None] * len(backend_result.values)
    breakdowns = backend_result.breakdowns or [{}] * len(backend_result.values)
    outcomes = [
        RankOutcome(
            rank=r,
            value=value,
            model_time=backend_result.model_times[r],
            breakdown=breakdowns[r] or {},
            messages_sent=stats[r].messages_sent if stats[r] else 0,
            bytes_sent=stats[r].bytes_sent if stats[r] else 0,
        )
        for r, value in enumerate(backend_result.values)
    ]
    if metrics is not None:
        _fold_backend_metrics(metrics, outcomes)
    return SpmdResult(
        outcomes=outcomes,
        machine=machine,
        topology=topo,
        trace=None,
        report=backend_result.report,
        metrics=metrics,
        spans=None,
    )


def _run_spmd_dispatch(
    backend: str,
    program: Callable[..., Any],
    n_ranks: int,
    machine: MachineModel,
    topo: Topology,
    seed: int,
    args: Sequence[Any],
    trace: bool,
    fault_plan: FaultPlan | None,
    recv_timeout: float | None,
    metrics: MetricsRegistry | None,
    spans: bool,
) -> SpmdResult:
    """Route a run to the mp or mpi backend, normalizing the result."""
    if trace or spans:
        raise ValueError(
            f"message tracing and phase spans need the in-process clock "
            f"observers of the thread backend; backend={backend!r} cannot "
            f"export them (see the DESIGN.md support matrix)"
        )
    if backend == "mp":
        from repro.vmp import process_backend

        mp_kwargs = {}
        if recv_timeout is not None:
            mp_kwargs["recv_timeout"] = recv_timeout
        res = process_backend.run_multiprocessing(
            program, n_ranks, machine=machine, topology=topo, seed=seed,
            args=args, fault_plan=fault_plan, **mp_kwargs,
        )
        return _result_from_backend(res, machine, topo, metrics)
    # mpi
    if fault_plan is not None:
        raise ValueError(
            "fault injection is a thread/mp-only feature: an injected "
            "crash under real MPI aborts the whole job instead of "
            "exercising recovery (see DESIGN.md)"
        )
    from repro.vmp import mpi_backend

    if mpi_backend.in_mpi_world():
        res = mpi_backend.run_mpi_world(
            program, n_ranks=n_ranks, machine=machine, topology=topo,
            seed=seed, args=args, recv_timeout=recv_timeout,
        )
    else:
        res = mpi_backend.run_mpiexec(
            program, n_ranks, machine=machine, topology=topo, seed=seed,
            args=args, recv_timeout=recv_timeout,
        )
    return _result_from_backend(res, machine, topo, metrics)


def run_spmd(
    program: Callable[..., Any],
    n_ranks: int,
    machine: MachineModel = IDEAL,
    topology: Topology | None = None,
    seed: int = 0,
    args: Sequence[Any] = (),
    trace: bool = False,
    fault_plan: FaultPlan | None = None,
    recv_timeout: float | None = None,
    metrics: MetricsRegistry | None = None,
    spans: bool = False,
    backend: str = "thread",
) -> SpmdResult:
    """Run ``program(comm, *args)`` on ``n_ranks`` simulated processors.

    Parameters
    ----------
    program:
        The rank program.  All ranks execute the same callable with the
        same extra ``args``; rank-dependent behaviour comes from
        ``comm.rank`` (ordinary SPMD style).
    n_ranks:
        Number of logical processors.
    machine:
        Cost model used to charge the modeled clocks.
    topology:
        Interconnect; defaults to the machine's native topology.
    seed:
        Root seed; each rank receives an independent child stream at
        ``comm.stream``.
    fault_plan:
        Deterministic fault injection (crashes, delays, stalls); see
        :mod:`repro.vmp.faults`.  Thread and mp backends only.
    recv_timeout:
        Wall-clock bound on every blocking receive; expiry raises a
        structured :class:`~repro.vmp.faults.RankFailure` in the
        waiting rank.  ``None`` waits indefinitely (the dead-rank
        registry still fails survivors fast on peer death).
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` to record into;
        each rank gets its own scope.  ``None`` (default) records
        nothing.  On the mp/mpi backends the registry receives the
        end-of-run comm counters and phase gauges (recorders cannot
        cross process boundaries mid-run).
    spans:
        When True, attach a :class:`~repro.obs.spans.SpanCollector` to
        every rank's modeled clock; the result's ``spans`` field then
        holds the per-rank compute/comm/idle phase history, exportable
        via ``SpmdResult.chrome_trace()``.  Thread backend only.
    backend:
        Execution backend: ``"thread"`` (default; cooperative threads
        over the in-process fabric), ``"mp"`` (real OS processes via
        :mod:`repro.vmp.process_backend`), or ``"mpi"`` (real message
        passing via :mod:`repro.vmp.mpi_backend`; runs in the current
        MPI world under ``mpiexec``, else launches one).  All three
        run the identical program object and produce bit-identical
        trajectories.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    if n_ranks > machine.max_nodes:
        raise ValueError(
            f"{machine.name} supports at most {machine.max_nodes} nodes, asked for {n_ranks}"
        )
    topo = topology if topology is not None else machine.topology(n_ranks)
    if backend != "thread":
        return _run_spmd_dispatch(
            backend, program, n_ranks, machine, topo, seed, args, trace,
            fault_plan, recv_timeout, metrics, spans,
        )
    fabric = Fabric(n_ranks, machine, topo, trace=trace)
    factory = SeedSequenceFactory(seed)
    boxes = [_RankBox() for _ in range(n_ranks)]
    collectors = [SpanCollector(r) for r in range(n_ranks)] if spans else None

    def runner(rank: int) -> None:
        comm = Communicator(
            fabric,
            rank,
            factory.rank_stream(rank),
            recv_timeout=recv_timeout,
            fault_state=fault_plan.for_rank(rank) if fault_plan is not None else None,
            metrics=metrics.scope(rank) if metrics is not None else NOOP,
        )
        if collectors is not None:
            comm.clock.observer = collectors[rank]
        boxes[rank].comm = comm
        try:
            boxes[rank].value = program(comm, *args)
            boxes[rank].done = True
        except AbortError:
            pass  # secondary failure; the primary exception is reported
        except RankFailure as exc:
            # This rank survived but detected a peer death; record the
            # abort and propagate the *original* culprit to ranks still
            # blocked on us.
            boxes[rank].error = exc
            fabric.mark_dead(rank, exc, model_time=comm.clock.now)
        except BaseException as exc:  # noqa: BLE001 - must propagate everything
            boxes[rank].error = exc
            fabric.mark_dead(rank, exc, model_time=comm.clock.now)

    if n_ranks == 1:
        runner(0)
    else:
        threads = [
            threading.Thread(target=runner, args=(r,), name=f"vmp-rank-{r}", daemon=True)
            for r in range(n_ranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    report = RunReport(n_ranks=n_ranks)
    for r, box in enumerate(boxes):
        model_time = box.comm.clock.now if box.comm is not None else 0.0
        if box.done:
            report.completed.append(r)
        elif isinstance(box.error, RankFailure):
            report.aborted.append(
                AbortRecord(
                    rank=r,
                    failed_rank=box.error.failed_rank,
                    via=box.error.via,
                    model_time=model_time,
                )
            )
        elif box.error is not None:
            report.failures.append(
                RankFailureRecord(
                    rank=r,
                    error=repr(box.error),
                    model_time=model_time,
                    injected=isinstance(box.error, InjectedRankCrash),
                )
            )
        else:  # legacy AbortError path: released without a culprit
            report.aborted.append(
                AbortRecord(rank=r, failed_rank=None, via="abort",
                            model_time=model_time)
            )

    # Primary exception: a rank's own failure outranks the RankFailure
    # aborts it triggered in its peers.
    primary = next(
        (b.error for b in boxes
         if b.error is not None and not isinstance(b.error, RankFailure)),
        None,
    ) or next((b.error for b in boxes if b.error is not None), None)
    if primary is not None:
        primary.run_report = report
        raise primary

    outcomes = []
    for r, box in enumerate(boxes):
        comm = box.comm
        assert comm is not None
        breakdown = comm.clock.breakdown()
        if metrics is not None:
            # Scheduler-level phase accounting: how the rank's modeled
            # makespan splits into compute / comm overhead / idle wait.
            comm.sync_metrics()
            scope = comm.metrics
            scope.set_gauge(
                "phase.compute_seconds",
                sum(breakdown.get(c, 0.0) for c in COMPUTE_CATEGORIES),
            )
            scope.set_gauge(
                "phase.comm_seconds",
                sum(breakdown.get(c, 0.0) for c in COMM_CATEGORIES),
            )
            scope.set_gauge(
                "phase.idle_seconds",
                sum(breakdown.get(c, 0.0) for c in WAIT_CATEGORIES),
            )
            scope.set_gauge("phase.model_seconds", comm.clock.now)
        outcomes.append(
            RankOutcome(
                rank=r,
                value=box.value,
                model_time=comm.clock.now,
                breakdown=breakdown,
                messages_sent=comm.stats.messages_sent,
                bytes_sent=comm.stats.bytes_sent,
            )
        )
    return SpmdResult(
        outcomes=outcomes,
        machine=machine,
        topology=topo,
        trace=fabric.trace_events,
        report=report,
        metrics=metrics,
        spans=(
            [s for c in collectors for s in c.spans()]
            if collectors is not None
            else None
        ),
    )
