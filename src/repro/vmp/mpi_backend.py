"""Real MPI execution of SPMD rank programs via mpi4py.

Third execution backend, after the cooperative thread scheduler
(:mod:`repro.vmp.scheduler`) and the multiprocessing backend
(:mod:`repro.vmp.process_backend`): the *unchanged* rank programs --
the strip/block world-line drivers, :func:`~repro.qmc.tempering.
tempering_program`, every collective -- run under a real MPI launcher,

    mpiexec -n 4 python -m repro run-xxz --sites 64 --beta 1.0 \\
        --strategy strip --ranks 4 --backend mpi

which is exactly how the 1993 genre paper's codes executed.  The
module adapts the repository's :class:`~repro.vmp.comm.Communicator`
surface (``send``/``recv``/``sendrecv``/``isend``/``irecv``, logical
tags, ``CommStats``, modeled clock, collectives via
:mod:`repro.vmp.collectives`) onto ``MPI.COMM_WORLD``:

* **Transport.**  Every point-to-point message travels as one mpi4py
  lowercase (pickle) message carrying ``(src, logical_tag, arrival,
  payload)`` under a single wire-level MPI tag.  Folding the logical
  tag in-band -- matched from a rank-local stash exactly like the
  multiprocessing backend -- keeps the repository's unbounded tag space
  (collectives use tags above ``1 << 20``) independent of the MPI
  implementation's ``MPI_TAG_UB``.  Per-pair ordering is preserved (MPI
  guarantees it on one communicator/tag), so message matching is
  deterministic wherever it is deterministic on the other backends.
* **Buffered sends.**  ``send`` issues ``MPI.Comm.isend`` and parks the
  request on a pending list that is reaped opportunistically and
  drained at finalize, so sends never rendezvous-block and the
  :class:`~repro.vmp.comm.Request` contract (send handles complete on
  return) holds identically to the thread and mp backends.
* **Modeled time.**  Each rank carries the same
  :class:`~repro.util.timer.ModelClock` charged by the alpha--beta
  machine model; the sender's modeled arrival stamp travels with each
  message, so ``comm``/``comm_wait`` accounting -- and therefore
  trajectories *and* modeled makespans -- are identical across all
  three backends.  Wall-clock throughput comes from the real hardware.
* **Failure handling.**  A rank whose program raises prints the
  traceback and calls ``MPI.COMM_WORLD.Abort`` (the standard MPI
  idiom); the launcher surfaces a structured
  :class:`~repro.vmp.faults.RankFailure` from the exit status.
  Deterministic *fault injection* (FaultPlan) is a thread/mp-only
  feature: an injected crash under real MPI would abort the whole job
  rather than exercise recovery paths, so the backend dispatcher
  rejects fault plans up front.

When mpi4py is not installed everything here degrades gracefully:
:func:`mpi_available` is False, the backends raise
:class:`MpiUnavailableError` with an actionable message, and the test
suite skips its MPI legs.
"""

from __future__ import annotations

import os
import pickle
import shutil
import subprocess
import sys
import tempfile
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.obs.metrics import NOOP
from repro.util.rng import SeedSequenceFactory
from repro.util.timer import ModelClock
from repro.vmp.comm import (
    ANY_SOURCE,
    ANY_TAG,
    CommStats,
    Request,
    _copy_payload,
    payload_nbytes,
)
from repro.vmp.faults import RankFailure, RunReport
from repro.vmp.machines import IDEAL, MachineModel
from repro.vmp.topology import Topology

__all__ = [
    "MpiUnavailableError",
    "MpiCommunicator",
    "MpiRunResult",
    "mpi_available",
    "mpiexec_available",
    "world_size_hint",
    "world_rank_hint",
    "in_mpi_world",
    "run_mpi_world",
    "run_mpiexec",
]

#: The single wire-level MPI tag; logical tags travel in-band (see the
#: module docstring for why).
_WIRE_TAG = 7

#: Default wall-clock bound on the whole mpiexec subprocess.
_DEFAULT_LAUNCH_TIMEOUT_S = 600.0


class MpiUnavailableError(RuntimeError):
    """Raised when the mpi backend is requested but mpi4py/mpiexec is absent."""


def mpi_available() -> bool:
    """True when :mod:`mpi4py` is importable (without initializing MPI)."""
    try:
        import importlib.util

        return importlib.util.find_spec("mpi4py") is not None
    except (ImportError, ValueError):
        return False


def mpiexec_available() -> bool:
    """True when an ``mpiexec`` launcher is on PATH."""
    return shutil.which("mpiexec") is not None


def world_size_hint() -> int:
    """Rank count of the surrounding MPI launch, from the launcher's env.

    Reads the environment instead of importing mpi4py so that asking
    "am I under mpiexec?" never initializes MPI in a plain process.
    Returns 1 outside any launcher.
    """
    for var in ("OMPI_COMM_WORLD_SIZE", "PMI_SIZE", "SLURM_NTASKS"):
        value = os.environ.get(var)
        if value:
            try:
                return max(1, int(value))
            except ValueError:
                continue
    return 1


def world_rank_hint() -> int:
    """This process's rank in the surrounding MPI launch (0 outside one).

    The CLI uses this to restrict printing and file output to rank 0
    without importing mpi4py on non-MPI runs.
    """
    for var in ("OMPI_COMM_WORLD_RANK", "PMI_RANK", "SLURM_PROCID"):
        value = os.environ.get(var)
        if value:
            try:
                return max(0, int(value))
            except ValueError:
                continue
    return 0


def in_mpi_world() -> bool:
    """True when this process was started by an MPI launcher."""
    return world_size_hint() > 1


def _require_mpi():
    """Import and return :mod:`mpi4py.MPI`, or raise MpiUnavailableError."""
    try:
        from mpi4py import MPI
    except ImportError as exc:
        raise MpiUnavailableError(
            "the mpi backend needs mpi4py (pip install mpi4py) and an MPI "
            "runtime (e.g. OpenMPI); use backend='thread' or 'mp' otherwise"
        ) from exc
    return MPI


def _sub_topology(parent: Topology, members) -> Topology:
    """Embedded-subset topology of a split child (lazy import, no cycle)."""
    from repro.vmp.split import SubTopology

    return SubTopology(parent, members)


class MpiCommunicator:
    """One rank's endpoint over a real mpi4py communicator.

    Same public surface as :class:`~repro.vmp.comm.Communicator` and
    :class:`~repro.vmp.process_backend.MpCommunicator`: point-to-point
    ops with logical tags, the full collective set (reused from
    :mod:`repro.vmp.collectives`), a modeled clock, per-rank
    :class:`~repro.vmp.comm.CommStats`, and the rank's seeded random
    stream.  ``recv_timeout`` bounds blocking receives in wall-clock
    seconds (None: wait forever, like the thread backend's default).
    """

    def __init__(
        self,
        mpi_comm,
        machine: MachineModel,
        topology: Topology,
        stream,
        recv_timeout: float | None = None,
        metrics=NOOP,
    ):
        self._MPI = _require_mpi()
        self._mpi = mpi_comm
        self.rank = int(mpi_comm.Get_rank())
        self.size = int(mpi_comm.Get_size())
        self.machine = machine
        self.topology = topology
        self.stream = stream
        self.recv_timeout = recv_timeout
        self.clock = ModelClock()
        self.stats = CommStats()
        #: Fault injection is thread/mp-only (see module docstring);
        #: the attribute exists so shared driver code can test it.
        self.fault_state = None
        #: Per-rank recorders cannot be aggregated across MPI processes
        #: mid-run; the launcher folds CommStats and the clock breakdown
        #: into the run registry afterwards (run_spmd backend dispatch).
        self.metrics = metrics
        #: Unmatched in-band messages: (src, logical_tag, arrival, payload).
        self._stash: list[tuple[int, int, float, Any]] = []
        #: Outstanding MPI isend requests (reaped opportunistically).
        self._pending_sends: list = []
        #: Sub-communicators created by :meth:`split` (finalized with us).
        self._children: list[MpiCommunicator] = []
        #: Optional display name (set on split children); prefixed to
        #: RankFailure details so failures name the replica/level.
        self.name: str | None = None
        # Clock categories this endpoint charges; a labeled split child
        # gets per-level categories instead (see repro.vmp.split).
        self._cat_comm = "comm"
        self._cat_wait = "comm_wait"
        self._cat_halo_wait = "halo_wait"

    def sync_metrics(self) -> None:
        """No-op counterpart of Communicator.sync_metrics (metrics is NOOP)."""

    # -- modeled compute ---------------------------------------------------
    def charge_compute(self, flops: float) -> None:
        self.clock.charge(self.machine.compute_time(flops), "compute")

    def charge_seconds(self, seconds: float, category: str = "compute") -> None:
        self.clock.charge(seconds, category)

    # -- point-to-point ----------------------------------------------------
    def _reap_sends(self) -> None:
        """Drop completed isend requests without blocking."""
        if self._pending_sends:
            self._pending_sends = [
                req for req in self._pending_sends if not req.Test()
            ]

    def send(self, obj: Any, dest: int, tag: int = 0, offload: bool = False) -> None:
        """Buffered send: returns once the message is en route.

        ``offload=True`` uses the coprocessor cost convention shared
        with the other backends: only the post overhead is charged, the
        arrival stamp is unchanged.  On this backend the isend really
        is eager, so the overlap is physical as well as modeled.
        """
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        nbytes = payload_nbytes(obj)
        hops = self.topology.hops(self.rank, dest)
        start = self.clock.now
        if offload:
            self.clock.charge(self.machine.post_overhead, self._cat_comm)
        else:
            self.clock.charge(
                self.machine.latency + self.machine.byte_time * nbytes,
                self._cat_comm,
            )
        arrival = (
            start
            + self.machine.latency
            + self.machine.hop_time * hops
            + self.machine.byte_time * nbytes
        )
        self.stats.messages_sent += 1
        self.stats.bytes_sent += nbytes
        wire = (self.rank, tag, arrival, obj)
        if dest == self.rank:
            # Self-delivery never touches MPI; copy to preserve the
            # disjoint-address-space semantics of the other backends.
            self._stash.append((self.rank, tag, arrival, _copy_payload(obj)))
            return
        self._pending_sends.append(
            self._mpi.isend(wire, dest=dest, tag=_WIRE_TAG)
        )
        self._reap_sends()

    def _stash_match(self, source: int, tag: int):
        """Pop and return the first stashed match, or None."""
        for i, (src, t, _arrival, _obj) in enumerate(self._stash):
            if source in (ANY_SOURCE, src) and tag in (ANY_TAG, t):
                return self._stash.pop(i)
        return None

    def _drain_inbox(self) -> bool:
        """Move every already-arrived wire message into the stash."""
        got_any = False
        while self._mpi.iprobe(source=self._MPI.ANY_SOURCE, tag=_WIRE_TAG):
            self._stash.append(
                self._mpi.recv(source=self._MPI.ANY_SOURCE, tag=_WIRE_TAG)
            )
            got_any = True
        return got_any

    # -- collect hooks shared with :class:`repro.vmp.comm.Request` ---------
    def _try_collect(self, source: int, tag: int):
        """Nonblocking matching receive (None: no match available)."""
        match = self._stash_match(source, tag)
        if match is not None:
            return match
        self._reap_sends()
        self._drain_inbox()
        return self._stash_match(source, tag)

    def _collect(self, source: int, tag: int):
        """Blocking matching receive honoring ``recv_timeout``."""
        deadline = (
            None
            if self.recv_timeout is None
            else time.monotonic() + self.recv_timeout
        )
        wait = 0.0005
        while True:
            match = self._stash_match(source, tag)
            if match is not None:
                return match
            self._reap_sends()
            if deadline is None:
                # Nothing stashed matches: block on the wire.  Any
                # message unblocks us; non-matching ones are stashed
                # and the loop re-scans.
                self._stash.append(
                    self._mpi.recv(source=self._MPI.ANY_SOURCE, tag=_WIRE_TAG)
                )
                continue
            if self._drain_inbox():
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                stashed = [(s, t) for s, t, _, _ in self._stash]
                prefix = f"[{self.name}] " if self.name else ""
                raise RankFailure(
                    failed_rank=None if source == ANY_SOURCE else source,
                    detected_by=self.rank,
                    via="timeout",
                    detail=(
                        f"{prefix}no message (source={source}, tag={tag}) "
                        f"within {self.recv_timeout}s; stash holds "
                        f"{len(stashed)} unmatched message(s) {stashed[:8]}"
                    ),
                )
            # Exponential backoff (0.5 ms doubling to 50 ms): prompt
            # matching without busy-spinning the MPI progress engine.
            time.sleep(min(wait, remaining))
            wait = min(wait * 2, 0.05)

    def _complete_recv(self, msg, offload: bool = False) -> Any:
        """Charge and count one completed receive; returns the payload."""
        _src, _tag, arrival, payload = msg
        if offload:
            self.clock.advance_to(arrival, self._cat_halo_wait)
        else:
            self.clock.charge(self.machine.latency, self._cat_comm)
            self.clock.advance_to(arrival, self._cat_wait)
        self.stats.messages_received += 1
        self.stats.bytes_received += payload_nbytes(payload)
        return payload

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive; returns the payload object."""
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise ValueError(f"invalid source rank {source}")
        return self._complete_recv(self._collect(source, tag))

    def sendrecv(self, obj, dest, source, sendtag=0, recvtag=0):
        """Combined exchange; sends never block, so no deadlock."""
        self.send(obj, dest, tag=sendtag)
        return self.recv(source=source, tag=recvtag)

    def isend(self, obj, dest: int, tag: int = 0, offload: bool = False) -> Request:
        """Nonblocking send; complete on return (isend buffers eagerly)."""
        self.send(obj, dest, tag=tag, offload=offload)
        return Request(self, "send")

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              offload: bool = False) -> Request:
        """Nonblocking receive with the shared :class:`Request` semantics."""
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise ValueError(f"invalid source rank {source}")
        if offload:
            self.clock.charge(self.machine.post_overhead, self._cat_comm)
        return Request(self, "recv", source=source, tag=tag, offload=offload)

    def finalize(self) -> None:
        """Complete every outstanding send (call after the program returns)."""
        for child in self._children:
            child.finalize()
        if self._pending_sends:
            self._MPI.Request.Waitall(self._pending_sends)
            self._pending_sends = []

    # -- communicator splitting --------------------------------------------
    def split(self, color: int | None, key: int = 0, *,
              label: str | None = None, name: str | None = None):
        """MPI-style collective split, backed by a real ``MPI.Comm.Split``.

        The membership exchange runs as a *modeled* allgather over this
        communicator first -- the same exchange the thread and mp
        backends perform -- so modeled makespans stay bit-identical
        across transports; the real ``Split`` then provides genuinely
        scoped point-to-point and collective traffic.  The child shares
        this rank's clock and stats (one rank, one clock), charges
        ``label``-derived categories when a label is given, and is
        finalized together with its parent.
        """
        from repro.vmp.split import _validate_label, split_membership

        _validate_label(label)
        members, my_rank = split_membership(self, color, key)
        mpi_color = self._MPI.UNDEFINED if color is None else int(color)
        sub_mpi = self._mpi.Split(mpi_color, int(key))
        if color is None:
            return None
        child = MpiCommunicator(
            sub_mpi,
            self.machine,
            _sub_topology(self.topology, members),
            self.stream,
            recv_timeout=self.recv_timeout,
            metrics=self.metrics,
        )
        # MPI_Comm_split orders by (key, parent rank) -- the same order
        # split_membership computed; the check guards the assumption.
        if child.rank != my_rank:
            raise RuntimeError(
                f"MPI split rank {child.rank} != modeled rank {my_rank}"
            )
        child.clock = self.clock
        child.stats = self.stats
        child.name = name
        if label is not None:
            child._cat_comm = label
            child._cat_wait = f"{label}_wait"
            child._cat_halo_wait = f"{label}_wait"
        else:
            child._cat_comm = self._cat_comm
            child._cat_wait = self._cat_wait
            child._cat_halo_wait = self._cat_halo_wait
        self._children.append(child)
        return child

    # -- collectives: identical algorithms as the other backends -----------
    def barrier(self) -> None:
        from repro.vmp import collectives

        collectives.barrier(self)

    def bcast(self, obj, root: int = 0):
        from repro.vmp import collectives

        return collectives.bcast(self, obj, root)

    def reduce(self, value, op=None, root: int = 0):
        from repro.vmp import collectives
        from repro.vmp.comm import ReduceOp

        return collectives.reduce(self, value, op or ReduceOp.SUM, root)

    def allreduce(self, value, op=None):
        from repro.vmp import collectives
        from repro.vmp.comm import ReduceOp

        return collectives.allreduce(self, value, op or ReduceOp.SUM)

    def gather(self, value, root: int = 0):
        from repro.vmp import collectives

        return collectives.gather(self, value, root)

    def allgather(self, value):
        from repro.vmp import collectives

        return collectives.allgather(self, value)

    def scatter(self, values, root: int = 0):
        from repro.vmp import collectives

        return collectives.scatter(self, values, root)

    def alltoall(self, values):
        from repro.vmp import collectives

        return collectives.alltoall(self, values)

    def __repr__(self) -> str:
        return (
            f"MpiCommunicator(rank={self.rank}, size={self.size}, "
            f"machine={self.machine.name})"
        )


@dataclass
class MpiRunResult:
    """Outcome of an MPI-backed SPMD run (rank-ordered, like MpRunResult)."""

    values: list[Any]
    model_times: list[float]
    breakdowns: list[dict]
    stats: list[CommStats]
    report: RunReport


def run_mpi_world(
    program: Callable[..., Any],
    n_ranks: int | None = None,
    machine: MachineModel = IDEAL,
    topology: Topology | None = None,
    seed: int = 0,
    args: Sequence[Any] = (),
    recv_timeout: float | None = None,
) -> MpiRunResult:
    """Run ``program(comm, *args)`` on every rank of ``MPI.COMM_WORLD``.

    Must be called collectively from a process already launched by
    ``mpiexec`` (every rank executes it, ordinary SPMD style).  Returns
    the same :class:`MpiRunResult` -- with *all* ranks' values,
    modeled clocks, breakdowns and comm stats -- on every rank, so the
    calling code (the Simulation facade, the CLI) runs identically
    everywhere and only output needs a rank-0 guard.

    ``n_ranks`` asserts the expected world size; a mismatch means the
    user forgot ``-n`` or asked for a different ``--ranks``.
    """
    MPI = _require_mpi()
    world = MPI.COMM_WORLD
    size = world.Get_size()
    if n_ranks is not None and n_ranks != size:
        raise ValueError(
            f"MPI world has {size} rank(s) but the run asked for "
            f"{n_ranks}; launch with: mpiexec -n {n_ranks} python ..."
        )
    if size > machine.max_nodes:
        raise ValueError(
            f"{machine.name} supports at most {machine.max_nodes} nodes, "
            f"asked for {size}"
        )
    topo = topology if topology is not None else machine.topology(size)
    if topo.size != size:
        raise ValueError(f"topology size {topo.size} != world size {size}")
    stream = SeedSequenceFactory(seed).rank_stream(world.Get_rank())
    comm = MpiCommunicator(
        world, machine, topo, stream, recv_timeout=recv_timeout
    )
    try:
        value = program(comm, *args)
        comm.finalize()
    except BaseException:
        # The standard MPI idiom: a failed rank takes the job down.
        # Graceful per-rank failure reporting (poison pills, dead-rank
        # registry) is a thread/mp feature; see DESIGN.md.
        traceback.print_exc()
        sys.stderr.flush()
        world.Abort(13)
        raise  # unreachable; keeps static analysis honest
    outcomes = world.allgather(
        (value, comm.clock.now, comm.clock.breakdown(), comm.stats)
    )
    report = RunReport(n_ranks=size)
    report.completed = list(range(size))
    return MpiRunResult(
        values=[o[0] for o in outcomes],
        model_times=[o[1] for o in outcomes],
        breakdowns=[o[2] for o in outcomes],
        stats=[o[3] for o in outcomes],
        report=report,
    )


def _mpiexec_cmd(
    mpiexec: str, n_ranks: int, worker_args: list[str], oversubscribe: bool
) -> list[str]:
    cmd = [mpiexec, "-n", str(n_ranks)]
    if oversubscribe:
        cmd.append("--oversubscribe")
    return cmd + [sys.executable, "-m", "repro.vmp.mpi_worker", *worker_args]


def run_mpiexec(
    program: Callable[..., Any],
    n_ranks: int,
    machine: MachineModel = IDEAL,
    topology: Topology | None = None,
    seed: int = 0,
    args: Sequence[Any] = (),
    recv_timeout: float | None = None,
    launch_timeout: float = _DEFAULT_LAUNCH_TIMEOUT_S,
    mpiexec: str = "mpiexec",
) -> MpiRunResult:
    """Launch ``mpiexec -n P python -m repro.vmp.mpi_worker`` and collect.

    For callers *not* already under an MPI launcher (pytest, the
    cross-backend agreement suite): the run request -- program object,
    machine model, topology, seed, args -- is pickled to a scratch
    file, ``mpiexec`` starts ``n_ranks`` fresh interpreters running
    :mod:`repro.vmp.mpi_worker`, rank 0 writes the gathered
    :class:`MpiRunResult` back, and this process loads and returns it.
    ``program`` must be picklable (defined at module top level), the
    same constraint the multiprocessing backend imposes.

    Raises :class:`MpiUnavailableError` when mpi4py or ``mpiexec`` is
    missing, and :class:`~repro.vmp.faults.RankFailure` (via
    ``"mpiexec"``) when the job exits nonzero.
    """
    if not mpi_available():
        raise MpiUnavailableError(
            "mpi4py is not installed; the mpi backend cannot run "
            "(pip install mpi4py, plus an MPI runtime such as OpenMPI)"
        )
    if shutil.which(mpiexec) is None:
        raise MpiUnavailableError(
            f"no {mpiexec!r} launcher on PATH; install an MPI runtime "
            f"(e.g. OpenMPI) or run under an existing MPI world"
        )
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    payload = {
        "program": program,
        "machine": machine,
        "topology": topology,
        "seed": seed,
        "args": tuple(args),
        "recv_timeout": recv_timeout,
    }
    env = dict(os.environ)
    # The workers must import repro from the same tree as this process.
    import repro

    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = (
        src_root + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src_root
    )
    with tempfile.TemporaryDirectory(prefix="vmp-mpi-") as tmp:
        payload_path = Path(tmp) / "payload.pkl"
        result_path = Path(tmp) / "result.pkl"
        payload_path.write_bytes(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )
        worker_args = [str(payload_path), str(result_path)]
        proc = subprocess.run(
            _mpiexec_cmd(mpiexec, n_ranks, worker_args, oversubscribe=False),
            capture_output=True,
            text=True,
            timeout=launch_timeout,
            env=env,
        )
        if proc.returncode != 0 and "not enough slots" in (
            proc.stderr + proc.stdout
        ):
            # OpenMPI refuses P > cores by default; retry oversubscribed
            # (QMC ranks are compute-light at test sizes).
            proc = subprocess.run(
                _mpiexec_cmd(mpiexec, n_ranks, worker_args, oversubscribe=True),
                capture_output=True,
                text=True,
                timeout=launch_timeout,
                env=env,
            )
        if proc.returncode != 0:
            tail = "\n".join(
                (proc.stderr or proc.stdout or "").strip().splitlines()[-12:]
            )
            raise RankFailure(
                failed_rank=None,
                detected_by=-1,
                via="mpiexec",
                detail=(
                    f"mpiexec exited with status {proc.returncode}; "
                    f"output tail:\n{tail}"
                ),
            )
        if not result_path.exists():
            raise RankFailure(
                failed_rank=None,
                detected_by=-1,
                via="mpiexec",
                detail="mpiexec exited cleanly but rank 0 wrote no result",
            )
        result: MpiRunResult = pickle.loads(result_path.read_bytes())
    return result
