"""Real-process execution of SPMD rank programs via multiprocessing.

The cooperative thread scheduler in :mod:`repro.vmp.scheduler` is the
default backend; this module runs the *same program objects* on real OS
processes with genuinely disjoint address spaces, demonstrating that
nothing in the programming model depends on shared memory.  It supports
the full collective set by reusing :mod:`repro.vmp.collectives`, which
only needs ``send``/``recv``/``sendrecv``.

Fault tolerance mirrors the thread backend:

* every blocking receive has a configurable wall-clock timeout
  (:class:`MpCommunicator` constructor parameter, default 120 s) with
  exponential backoff polling; expiry raises a structured
  :class:`~repro.vmp.faults.RankFailure` carrying stash/inbox
  diagnostics instead of a bare ``TimeoutError``;
* a failing worker broadcasts a *poison pill* to every peer inbox
  before dying, so survivors blocked in ``recv`` fail fast with a
  :class:`RankFailure` naming the dead rank rather than waiting out
  their timeout;
* the launcher monitors process liveness: a rank that dies without
  reporting (e.g. SIGKILL mid-sweep) is detected from its exit code and
  poison pills are injected on its behalf;
* :func:`run_multiprocessing` returns an :class:`MpRunResult` whose
  :class:`~repro.vmp.faults.RunReport` records who failed, when
  (modeled clock at death), and who aborted -- and raises a
  :class:`RankFailure` with that report attached when any rank failed.

Deterministic fault injection (:class:`~repro.vmp.faults.FaultPlan`) is
honored identically to the thread scheduler: the plan ships to each
worker and drives the same per-op counters.

Intended for small rank counts (P <= 8 on this container); programs
must be picklable (defined at module top level).
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.obs.metrics import NOOP
from repro.util.rng import SeedSequenceFactory
from repro.util.timer import ModelClock
from repro.vmp.comm import ANY_SOURCE, ANY_TAG, CommStats, Request, payload_nbytes
from repro.vmp.faults import (
    AbortRecord,
    FaultPlan,
    InjectedRankCrash,
    RankFailure,
    RankFailureRecord,
    RunReport,
)
from repro.vmp.machines import IDEAL, MachineModel
from repro.vmp.topology import Topology

__all__ = ["MpCommunicator", "MpRunResult", "run_multiprocessing"]

#: Default wall-clock bound on a blocking receive (and on the whole run).
_DEFAULT_TIMEOUT_S = 120.0

#: Wire marker of an ndarray encoded by :func:`_pack_payload`.
_ND_MARKER = "__vmp_ndarray__"

#: First element of a poison-pill inbox item: ``(_POISON, origin_rank, reason)``.
_POISON = "__vmp_poison__"

#: Grace period between noticing a dead worker process and declaring it
#: failed-without-result (its result may still be in the queue's pipe).
_DEATH_GRACE_S = 1.0


def _pack_payload(obj: Any) -> Any:
    """Encode ndarrays as ``(marker, dtype, shape, buffer-bytes)``.

    ``mp.Queue`` pickles whatever it is handed; shipping the raw
    C-contiguous buffer instead of the array object skips the generic
    object-graph pickle for the hot halo payloads.  Containers recurse
    so tuples/dicts of arrays take the same fast path; non-numeric
    dtypes (object, structured) fall back to the queue's own pickle.
    """
    if isinstance(obj, np.ndarray) and obj.dtype.kind in "biufc":
        a = np.ascontiguousarray(obj)
        return (_ND_MARKER, a.dtype.str, a.shape, a.tobytes())
    if isinstance(obj, tuple):
        return tuple(_pack_payload(x) for x in obj)
    if isinstance(obj, list):
        return [_pack_payload(x) for x in obj]
    if isinstance(obj, dict):
        return {k: _pack_payload(v) for k, v in obj.items()}
    return obj


def _unpack_payload(obj: Any) -> Any:
    """Inverse of :func:`_pack_payload`; arrays come back owned and writable."""
    if isinstance(obj, tuple):
        if len(obj) == 4 and obj[0] == _ND_MARKER:
            _, dtype_str, shape, data = obj
            return np.frombuffer(data, dtype=np.dtype(dtype_str)).reshape(shape).copy()
        return tuple(_unpack_payload(x) for x in obj)
    if isinstance(obj, list):
        return [_unpack_payload(x) for x in obj]
    if isinstance(obj, dict):
        return {k: _unpack_payload(v) for k, v in obj.items()}
    return obj


class MpCommunicator:
    """Communicator over multiprocessing queues (one inbox per rank).

    Implements the same cost convention as the in-process fabric: the
    sender's clock time travels with each message so arrival stamps and
    ``comm_wait`` accounting behave identically across backends.

    ``recv_timeout`` bounds every blocking receive in wall-clock
    seconds; ``fault_state`` is this rank's view of an injected
    :class:`~repro.vmp.faults.FaultPlan` (None = no faults).
    """

    def __init__(
        self,
        rank: int,
        size: int,
        inboxes: Sequence[mp.Queue],
        machine: MachineModel,
        topology: Topology,
        stream,
        recv_timeout: float = _DEFAULT_TIMEOUT_S,
        fault_state=None,
    ):
        if recv_timeout <= 0:
            raise ValueError("recv_timeout must be positive")
        self.rank = rank
        self.size = size
        self.machine = machine
        self.topology = topology
        self.stream = stream
        self.recv_timeout = recv_timeout
        self.fault_state = fault_state
        self._inboxes = inboxes
        #: Unmatched messages keyed per ``(source, tag)`` as FIFO deques
        #: of ``(seq, item)``; the monotone ``seq`` keeps wildcard
        #: matches (ANY_SOURCE / ANY_TAG) globally FIFO.  Keyed access
        #: makes the hot specific-match path O(1) instead of a linear
        #: re-scan of the whole stash on every poll.
        self._stash: dict[tuple[int, int], deque] = {}
        self._stash_seq = 0
        self.clock = ModelClock()
        self.stats = CommStats()
        # Telemetry recorders cannot cross process boundaries; driver
        # code can still reference comm.metrics uniformly.  The launcher
        # folds CommStats and the clock breakdown into the run's
        # registry after the fact (see run_spmd backend dispatch).
        self.metrics = NOOP
        # Clock categories this endpoint charges; a labeled
        # sub-communicator swaps these around delegated operations
        # (see repro.vmp.split).
        self._cat_comm = "comm"
        self._cat_wait = "comm_wait"
        self._cat_halo_wait = "halo_wait"

    def sync_metrics(self) -> None:
        """No-op counterpart of Communicator.sync_metrics (metrics is NOOP)."""

    # -- modeled compute ---------------------------------------------------
    def charge_compute(self, flops: float) -> None:
        self.clock.charge(self.machine.compute_time(flops), "compute")

    def charge_seconds(self, seconds: float, category: str = "compute") -> None:
        self.clock.charge(seconds, category)

    # -- point-to-point ------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0, offload: bool = False) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        if self.fault_state is not None:
            self.fault_state.on_op(self.clock)
        nbytes = payload_nbytes(obj)
        hops = self.topology.hops(self.rank, dest)
        start = self.clock.now
        if offload:
            self.clock.charge(self.machine.post_overhead, self._cat_comm)
        else:
            self.clock.charge(
                self.machine.latency + self.machine.byte_time * nbytes,
                self._cat_comm,
            )
        arrival = (
            start
            + self.machine.latency
            + self.machine.hop_time * hops
            + self.machine.byte_time * nbytes
        )
        drop = False
        if self.fault_state is not None:
            extra, drop = self.fault_state.outgoing(dest)
            arrival += extra
        self.stats.messages_sent += 1
        self.stats.bytes_sent += nbytes
        if drop:
            return  # injected loss: sender charged, message never delivered
        self._inboxes[dest].put((self.rank, tag, arrival, _pack_payload(obj)))

    def _timeout_diagnostics(self, source: int, tag: int) -> str:
        """Stash/inbox state for the RankFailure a timed-out recv raises."""
        stashed = [key for key, q in self._stash.items() for _ in q]
        try:
            inbox_n = self._inboxes[self.rank].qsize()
        except (NotImplementedError, OSError):  # qsize is platform-dependent
            inbox_n = -1
        return (
            f"no message (source={source}, tag={tag}) within "
            f"{self.recv_timeout}s; stash holds {len(stashed)} unmatched "
            f"message(s) {stashed[:8]}, inbox qsize={inbox_n}"
        )

    def _raise_poison(self, item) -> None:
        _, origin, reason = item
        raise RankFailure(
            failed_rank=origin,
            detected_by=self.rank,
            via="poison-pill",
            detail=reason,
        )

    def _stash_put(self, item) -> None:
        """File an unmatched inbox item under its (source, tag) deque."""
        key = (item[0], item[1])
        self._stash.setdefault(key, deque()).append((self._stash_seq, item))
        self._stash_seq += 1

    def _stash_match(self, source: int, tag: int):
        """Pop and return the oldest stashed match, or None.

        Specific (source, tag) lookups are a single dict probe +
        popleft; wildcard lookups scan only the deque *heads* (one per
        distinct key) and pick the globally oldest by sequence number,
        preserving FIFO order across sources and tags.
        """
        if source != ANY_SOURCE and tag != ANY_TAG:
            q = self._stash.get((source, tag))
            if not q:
                return None
            item = q.popleft()[1]
            if not q:
                del self._stash[(source, tag)]
            return item
        best_key = None
        best_seq = -1
        for (src, t), q in self._stash.items():
            if source in (ANY_SOURCE, src) and tag in (ANY_TAG, t):
                seq = q[0][0]
                if best_key is None or seq < best_seq:
                    best_key, best_seq = (src, t), seq
        if best_key is None:
            return None
        q = self._stash[best_key]
        item = q.popleft()[1]
        if not q:
            del self._stash[best_key]
        return item

    def stash_size(self) -> int:
        """Total unmatched messages currently stashed (for diagnostics)."""
        return sum(len(q) for q in self._stash.values())

    # -- collect hooks shared with :class:`repro.vmp.comm.Request` ---------
    def _try_collect(self, source: int, tag: int):
        """Nonblocking matching receive (drains the inbox; None: no match)."""
        match = self._stash_match(source, tag)
        if match is not None:
            return match
        while True:
            try:
                item = self._inboxes[self.rank].get_nowait()
            except queue_mod.Empty:
                return self._stash_match(source, tag)
            if item[0] == _POISON:
                self._raise_poison(item)
            self._stash_put(item)

    def _collect(self, source: int, tag: int):
        """Blocking matching receive with the configured wall-clock bound."""
        deadline = time.monotonic() + self.recv_timeout
        wait = 0.005
        while True:
            match = self._stash_match(source, tag)
            if match is not None:
                return match
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RankFailure(
                    failed_rank=None if source == ANY_SOURCE else source,
                    detected_by=self.rank,
                    via="timeout",
                    detail=self._timeout_diagnostics(source, tag),
                )
            try:
                # Exponential backoff (5 ms doubling to 250 ms) keeps
                # failure detection prompt without busy-spinning.
                item = self._inboxes[self.rank].get(timeout=min(wait, remaining))
            except queue_mod.Empty:
                wait = min(wait * 2, 0.25)
                continue
            if item[0] == _POISON:
                self._raise_poison(item)
            self._stash_put(item)

    def _complete_recv(self, msg, offload: bool = False) -> Any:
        """Charge and count one completed receive; returns the payload."""
        _src, _t, arrival, obj = msg
        payload = _unpack_payload(obj)
        if offload:
            self.clock.advance_to(arrival, self._cat_halo_wait)
        else:
            self.clock.charge(self.machine.latency, self._cat_comm)
            self.clock.advance_to(arrival, self._cat_wait)
        self.stats.messages_received += 1
        self.stats.bytes_received += payload_nbytes(payload)
        return payload

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        if self.fault_state is not None:
            self.fault_state.on_op(self.clock)
        return self._complete_recv(self._collect(source, tag))

    def sendrecv(self, obj, dest, source, sendtag=0, recvtag=0):
        self.send(obj, dest, tag=sendtag)
        return self.recv(source=source, tag=recvtag)

    def isend(self, obj, dest: int, tag: int = 0, offload: bool = False) -> Request:
        """Nonblocking send; complete on return (queue put buffers eagerly)."""
        self.send(obj, dest, tag=tag, offload=offload)
        return Request(self, "send")

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              offload: bool = False) -> Request:
        """Nonblocking receive with the shared :class:`Request` semantics."""
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise ValueError(f"invalid source rank {source}")
        if offload:
            self.clock.charge(self.machine.post_overhead, self._cat_comm)
        return Request(self, "recv", source=source, tag=tag, offload=offload)

    # -- communicator splitting ---------------------------------------------
    def split(self, color: int | None, key: int = 0, *,
              label: str | None = None, name: str | None = None):
        """MPI-style collective split (see :meth:`Communicator.split`)."""
        from repro.vmp.split import split_communicator

        return split_communicator(self, color, key, label=label, name=name)

    # -- collectives: identical algorithms as the thread backend -------------
    def barrier(self) -> None:
        from repro.vmp import collectives

        collectives.barrier(self)

    def bcast(self, obj, root: int = 0):
        from repro.vmp import collectives

        return collectives.bcast(self, obj, root)

    def reduce(self, value, op=None, root: int = 0):
        from repro.vmp import collectives
        from repro.vmp.comm import ReduceOp

        return collectives.reduce(self, value, op or ReduceOp.SUM, root)

    def allreduce(self, value, op=None):
        from repro.vmp import collectives
        from repro.vmp.comm import ReduceOp

        return collectives.allreduce(self, value, op or ReduceOp.SUM)

    def gather(self, value, root: int = 0):
        from repro.vmp import collectives

        return collectives.gather(self, value, root)

    def allgather(self, value):
        from repro.vmp import collectives

        return collectives.allgather(self, value)

    def scatter(self, values, root: int = 0):
        from repro.vmp import collectives

        return collectives.scatter(self, values, root)

    def alltoall(self, values):
        from repro.vmp import collectives

        return collectives.alltoall(self, values)


@dataclass
class MpRunResult:
    """Outcome of a :func:`run_multiprocessing` run.

    ``values``, ``model_times``, ``breakdowns`` and ``stats`` are
    rank-ordered; ``report`` is the run's
    :class:`~repro.vmp.faults.RunReport` (all-completed here -- failed
    runs raise instead of returning).  ``breakdowns`` holds each rank's
    modeled-clock category split and ``stats`` its
    :class:`~repro.vmp.comm.CommStats`, which is what lets the backend
    dispatcher present mp runs as ordinary
    :class:`~repro.vmp.scheduler.SpmdResult` objects.
    """

    values: list[Any]
    model_times: list[float]
    report: RunReport
    breakdowns: list[dict] = None
    stats: list[CommStats] = None


def _poison_all(inboxes, skip: int, origin: int, reason: str) -> None:
    """Deposit a poison pill naming ``origin`` in every inbox but ``skip``."""
    for d, box in enumerate(inboxes):
        if d != skip:
            try:
                box.put((_POISON, origin, reason))
            except (OSError, ValueError):
                pass  # inbox already torn down


def _worker(
    program: Callable[..., Any],
    rank: int,
    size: int,
    inboxes,
    machine: MachineModel,
    topology: Topology,
    seed: int,
    args: tuple,
    results: mp.Queue,
    recv_timeout: float,
    fault_plan: FaultPlan | None,
) -> None:
    comm = None
    try:
        stream = SeedSequenceFactory(seed).rank_stream(rank)
        fault_state = fault_plan.for_rank(rank) if fault_plan is not None else None
        comm = MpCommunicator(
            rank, size, inboxes, machine, topology, stream,
            recv_timeout=recv_timeout, fault_state=fault_state,
        )
        value = program(comm, *args)
        results.put((rank, "ok", value, comm.clock.now,
                     comm.clock.breakdown(), comm.stats))
    except RankFailure as exc:
        # Survivor that detected a peer death: report the abort and
        # forward the culprit so ranks blocked on *us* also fail fast.
        model_time = comm.clock.now if comm is not None else 0.0
        _poison_all(inboxes, rank, exc.failed_rank if exc.failed_rank is not None
                    else rank, str(exc))
        results.put((rank, "detected", (exc.failed_rank, exc.via, str(exc)),
                     model_time, {}, None))
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        model_time = comm.clock.now if comm is not None else 0.0
        _poison_all(inboxes, rank, rank, repr(exc))
        results.put(
            (rank, "error", (repr(exc), isinstance(exc, InjectedRankCrash)),
             model_time, {}, None)
        )


def run_multiprocessing(
    program: Callable[..., Any],
    n_ranks: int,
    machine: MachineModel = IDEAL,
    topology: Topology | None = None,
    seed: int = 0,
    args: Sequence[Any] = (),
    recv_timeout: float = _DEFAULT_TIMEOUT_S,
    join_timeout: float = _DEFAULT_TIMEOUT_S,
    fault_plan: FaultPlan | None = None,
) -> MpRunResult:
    """Run ``program(comm, *args)`` on ``n_ranks`` OS processes.

    Returns an :class:`MpRunResult` with rank-ordered program values,
    modeled per-rank clocks, and the run's
    :class:`~repro.vmp.faults.RunReport`.  If any rank fails, raises a
    :class:`~repro.vmp.faults.RankFailure` naming the first failed rank
    with the full report attached as ``run_report``.

    ``recv_timeout`` is handed to every rank's communicator (per-recv
    wall-clock bound); ``join_timeout`` bounds the whole run from the
    launcher's side.  ``fault_plan`` injects deterministic faults (see
    :mod:`repro.vmp.faults`).
    """
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    topo = topology if topology is not None else machine.topology(n_ranks)
    if topo.size != n_ranks:
        raise ValueError("topology size mismatch")

    ctx = mp.get_context("fork")
    inboxes = [ctx.Queue() for _ in range(n_ranks)]
    results: mp.Queue = ctx.Queue()
    procs = [
        ctx.Process(
            target=_worker,
            args=(program, r, n_ranks, inboxes, machine, topo, seed, tuple(args),
                  results, recv_timeout, fault_plan),
            daemon=True,
        )
        for r in range(n_ranks)
    ]
    for p in procs:
        p.start()

    outcomes: dict[int, Any] = {}
    model_times: dict[int, float] = {}
    breakdowns: dict[int, dict] = {}
    stats: dict[int, CommStats] = {}
    report = RunReport(n_ranks=n_ranks)
    pending = set(range(n_ranks))
    dead_since: dict[int, float] = {}
    start = time.monotonic()
    while pending:
        if time.monotonic() - start > join_timeout:
            for p in procs:
                p.terminate()
            raise TimeoutError(
                f"multiprocessing SPMD run did not complete within "
                f"{join_timeout}s; ranks {sorted(pending)} never reported"
            )
        try:
            rank, status, value, model_time, breakdown, rank_stats = results.get(
                timeout=0.05
            )
        except queue_mod.Empty:
            # Liveness sweep: a worker that died without reporting
            # (SIGKILL, interpreter abort) is detected from its exit
            # code; pills are injected on its behalf so survivors
            # blocked on it fail fast instead of timing out.
            now = time.monotonic()
            for r in sorted(pending):
                proc = procs[r]
                if proc.exitcode is None:
                    continue
                died_at = dead_since.setdefault(r, now)
                if now - died_at >= _DEATH_GRACE_S:
                    pending.discard(r)
                    reason = (
                        f"process exited with code {proc.exitcode} "
                        f"without reporting a result"
                    )
                    report.failures.append(
                        RankFailureRecord(rank=r, error=reason, model_time=0.0)
                    )
                    _poison_all(inboxes, r, r, reason)
            continue
        pending.discard(rank)
        model_times[rank] = model_time
        breakdowns[rank] = breakdown or {}
        if status == "ok":
            outcomes[rank] = value
            stats[rank] = rank_stats if rank_stats is not None else CommStats()
        elif status == "detected":
            failed_rank, via, detail = value
            report.aborted.append(
                AbortRecord(rank=rank, failed_rank=failed_rank, via=via,
                            model_time=model_time)
            )
        else:
            error_repr, injected = value
            report.failures.append(
                RankFailureRecord(rank=rank, error=error_repr,
                                  model_time=model_time, injected=injected)
            )
    for p in procs:
        p.join(timeout=5.0)
        if p.is_alive():
            p.terminate()
    report.completed = sorted(outcomes)

    if report.failures or report.aborted:
        if report.failures:
            first = report.failures[0]
            exc = RankFailure(
                failed_rank=first.rank,
                detected_by=-1,  # -1: detected by the launcher
                via="worker-death",
                detail=f"rank {first.rank} failed: {first.error}",
            )
        else:
            a = report.aborted[0]
            exc = RankFailure(
                failed_rank=a.failed_rank, detected_by=a.rank, via=a.via,
                detail="peer failure detected but no rank reported a crash",
            )
        exc.run_report = report
        raise exc
    return MpRunResult(
        values=[outcomes[r] for r in range(n_ranks)],
        model_times=[model_times[r] for r in range(n_ranks)],
        report=report,
        breakdowns=[breakdowns[r] for r in range(n_ranks)],
        stats=[stats[r] for r in range(n_ranks)],
    )
