"""Real-process execution of SPMD rank programs via multiprocessing.

The cooperative thread scheduler in :mod:`repro.vmp.scheduler` is the
default backend; this module runs the *same program objects* on real OS
processes with genuinely disjoint address spaces, demonstrating that
nothing in the programming model depends on shared memory.  It supports
the full collective set by reusing :mod:`repro.vmp.collectives`, which
only needs ``send``/``recv``/``sendrecv``.

Intended for small rank counts (P <= 8 on this container); programs
must be picklable (defined at module top level).
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
from typing import Any, Callable, Sequence

import numpy as np

from repro.util.rng import SeedSequenceFactory
from repro.util.timer import ModelClock
from repro.vmp.comm import ANY_SOURCE, ANY_TAG, payload_nbytes
from repro.vmp.machines import IDEAL, MachineModel
from repro.vmp.topology import Topology

__all__ = ["MpCommunicator", "run_multiprocessing"]

_JOIN_TIMEOUT_S = 120.0

#: Wire marker of an ndarray encoded by :func:`_pack_payload`.
_ND_MARKER = "__vmp_ndarray__"


def _pack_payload(obj: Any) -> Any:
    """Encode ndarrays as ``(marker, dtype, shape, buffer-bytes)``.

    ``mp.Queue`` pickles whatever it is handed; shipping the raw
    C-contiguous buffer instead of the array object skips the generic
    object-graph pickle for the hot halo payloads.  Containers recurse
    so tuples/dicts of arrays take the same fast path; non-numeric
    dtypes (object, structured) fall back to the queue's own pickle.
    """
    if isinstance(obj, np.ndarray) and obj.dtype.kind in "biufc":
        a = np.ascontiguousarray(obj)
        return (_ND_MARKER, a.dtype.str, a.shape, a.tobytes())
    if isinstance(obj, tuple):
        return tuple(_pack_payload(x) for x in obj)
    if isinstance(obj, list):
        return [_pack_payload(x) for x in obj]
    if isinstance(obj, dict):
        return {k: _pack_payload(v) for k, v in obj.items()}
    return obj


def _unpack_payload(obj: Any) -> Any:
    """Inverse of :func:`_pack_payload`; arrays come back owned and writable."""
    if isinstance(obj, tuple):
        if len(obj) == 4 and obj[0] == _ND_MARKER:
            _, dtype_str, shape, data = obj
            return np.frombuffer(data, dtype=np.dtype(dtype_str)).reshape(shape).copy()
        return tuple(_unpack_payload(x) for x in obj)
    if isinstance(obj, list):
        return [_unpack_payload(x) for x in obj]
    if isinstance(obj, dict):
        return {k: _unpack_payload(v) for k, v in obj.items()}
    return obj


class MpCommunicator:
    """Communicator over multiprocessing queues (one inbox per rank).

    Implements the same cost convention as the in-process fabric: the
    sender's clock time travels with each message so arrival stamps and
    ``comm_wait`` accounting behave identically across backends.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        inboxes: Sequence[mp.Queue],
        machine: MachineModel,
        topology: Topology,
        stream,
    ):
        self.rank = rank
        self.size = size
        self.machine = machine
        self.topology = topology
        self.stream = stream
        self._inboxes = inboxes
        self._stash: list[tuple[int, int, float, Any]] = []
        self.clock = ModelClock()

    # -- modeled compute ---------------------------------------------------
    def charge_compute(self, flops: float) -> None:
        self.clock.charge(self.machine.compute_time(flops), "compute")

    def charge_seconds(self, seconds: float, category: str = "compute") -> None:
        self.clock.charge(seconds, category)

    # -- point-to-point ------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        nbytes = payload_nbytes(obj)
        hops = self.topology.hops(self.rank, dest)
        start = self.clock.now
        self.clock.charge(self.machine.latency + self.machine.byte_time * nbytes, "comm")
        arrival = (
            start
            + self.machine.latency
            + self.machine.hop_time * hops
            + self.machine.byte_time * nbytes
        )
        self._inboxes[dest].put((self.rank, tag, arrival, _pack_payload(obj)))

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        while True:
            for i, (src, t, arrival, obj) in enumerate(self._stash):
                if source in (ANY_SOURCE, src) and tag in (ANY_TAG, t):
                    self._stash.pop(i)
                    self.clock.charge(self.machine.latency, "comm")
                    self.clock.advance_to(arrival, "comm_wait")
                    return _unpack_payload(obj)
            try:
                item = self._inboxes[self.rank].get(timeout=_JOIN_TIMEOUT_S)
            except queue_mod.Empty:
                raise TimeoutError(
                    f"rank {self.rank} waited {_JOIN_TIMEOUT_S}s for a message "
                    f"(source={source}, tag={tag}); peer likely died"
                ) from None
            self._stash.append(item)

    def sendrecv(self, obj, dest, source, sendtag=0, recvtag=0):
        self.send(obj, dest, tag=sendtag)
        return self.recv(source=source, tag=recvtag)

    # -- collectives: identical algorithms as the thread backend -------------
    def barrier(self) -> None:
        from repro.vmp import collectives

        collectives.barrier(self)

    def bcast(self, obj, root: int = 0):
        from repro.vmp import collectives

        return collectives.bcast(self, obj, root)

    def reduce(self, value, op=None, root: int = 0):
        from repro.vmp import collectives
        from repro.vmp.comm import ReduceOp

        return collectives.reduce(self, value, op or ReduceOp.SUM, root)

    def allreduce(self, value, op=None):
        from repro.vmp import collectives
        from repro.vmp.comm import ReduceOp

        return collectives.allreduce(self, value, op or ReduceOp.SUM)

    def gather(self, value, root: int = 0):
        from repro.vmp import collectives

        return collectives.gather(self, value, root)

    def allgather(self, value):
        from repro.vmp import collectives

        return collectives.allgather(self, value)

    def scatter(self, values, root: int = 0):
        from repro.vmp import collectives

        return collectives.scatter(self, values, root)

    def alltoall(self, values):
        from repro.vmp import collectives

        return collectives.alltoall(self, values)


def _worker(
    program: Callable[..., Any],
    rank: int,
    size: int,
    inboxes,
    machine: MachineModel,
    topology: Topology,
    seed: int,
    args: tuple,
    results: mp.Queue,
) -> None:
    try:
        stream = SeedSequenceFactory(seed).rank_stream(rank)
        comm = MpCommunicator(rank, size, inboxes, machine, topology, stream)
        value = program(comm, *args)
        results.put((rank, "ok", value, comm.clock.now))
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        results.put((rank, "error", repr(exc), 0.0))


def run_multiprocessing(
    program: Callable[..., Any],
    n_ranks: int,
    machine: MachineModel = IDEAL,
    topology: Topology | None = None,
    seed: int = 0,
    args: Sequence[Any] = (),
) -> list[Any]:
    """Run ``program(comm, *args)`` on ``n_ranks`` OS processes.

    Returns the rank-ordered list of program return values.  Raises
    :class:`RuntimeError` carrying the first failing rank's exception
    repr if any process fails.
    """
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    topo = topology if topology is not None else machine.topology(n_ranks)
    if topo.size != n_ranks:
        raise ValueError("topology size mismatch")

    ctx = mp.get_context("fork")
    inboxes = [ctx.Queue() for _ in range(n_ranks)]
    results: mp.Queue = ctx.Queue()
    procs = [
        ctx.Process(
            target=_worker,
            args=(program, r, n_ranks, inboxes, machine, topo, seed, tuple(args), results),
            daemon=True,
        )
        for r in range(n_ranks)
    ]
    for p in procs:
        p.start()

    outcomes: dict[int, Any] = {}
    errors: list[tuple[int, str]] = []
    for _ in range(n_ranks):
        try:
            rank, status, value, _model_time = results.get(timeout=_JOIN_TIMEOUT_S)
        except queue_mod.Empty:
            for p in procs:
                p.terminate()
            raise TimeoutError("multiprocessing SPMD run did not complete") from None
        if status == "ok":
            outcomes[rank] = value
        else:
            errors.append((rank, value))
    for p in procs:
        p.join(timeout=5.0)
        if p.is_alive():
            p.terminate()
    if errors:
        rank, msg = errors[0]
        raise RuntimeError(f"rank {rank} failed: {msg}")
    return [outcomes[r] for r in range(n_ranks)]
