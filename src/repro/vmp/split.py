"""MPI-style communicator splitting for the thread and mp transports.

``comm.split(color, key)`` is a collective: every rank of the parent
communicator calls it with its own ``color``/``key``, and each color
class becomes one sub-communicator whose ranks ``0..n-1`` follow MPI's
``MPI_Comm_split`` ordering -- sort by ``key``, ties broken by parent
rank.  Ranks passing ``color=None`` participate in the membership
exchange but receive ``None`` (the analogue of ``MPI_UNDEFINED``).

The membership exchange is one modeled ``allgather`` of ``(color,
key)`` pairs over the *parent* communicator, so splitting charges the
same modeled time on every backend (the mpi backend reuses this
exchange before calling the real ``MPI.Comm.Split``, keeping makespans
bit-identical across transports).

:class:`SubCommunicator` (thread/mp) is a view onto the parent: it
shares the parent's :class:`~repro.util.timer.ModelClock`, RNG stream,
``CommStats`` and fault state, translates local ranks to parent ranks,
and namespaces message tags by wrapping them as ``(uid, tag)`` tuples
-- all three transports match tags by equality, so traffic of one
sub-communicator can never be received by another (or by the parent).
Collectives come from :mod:`repro.vmp.collectives` unchanged, scoped
by the same mechanism.

Per-level clock accounting: ``split(..., label="ensemble")`` makes the
sub-communicator charge its traffic to the ``ensemble`` /
``ensemble_wait`` categories instead of ``comm`` / ``comm_wait``, so
two-level runs report ensemble-swap and halo traffic as separate phase
tags (see ``COMM_CATEGORIES`` / ``WAIT_CATEGORIES`` in
:mod:`repro.util.timer`).

``split(..., name="replica3")`` names the sub-communicator; a
:class:`~repro.vmp.faults.RankFailure` detected through it is re-raised
with the name prefixed to its detail, so a crash inside one replica's
domain is reported as such.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any

from repro.util.timer import COMM_CATEGORIES, WAIT_CATEGORIES
from repro.vmp.comm import ANY_SOURCE, ANY_TAG, RankFailure, Request
from repro.vmp.topology import Topology

__all__ = ["SubCommunicator", "SubTopology", "split_communicator"]

#: Sentinel exchanged for ``color=None`` (never a valid color: colors
#: must be non-negative, as in MPI).
_NO_COLOR = -1


def _validate_label(label: str | None) -> None:
    if label is None:
        return
    if label not in COMM_CATEGORIES or f"{label}_wait" not in WAIT_CATEGORIES:
        raise ValueError(
            f"unknown split label {label!r}: the label and '{label}_wait' "
            f"must be registered in COMM_CATEGORIES/WAIT_CATEGORIES "
            f"(repro.util.timer) so comm fractions stay complete"
        )


def split_membership(comm, color: int | None, key: int) -> tuple[tuple[int, ...], int | None]:
    """Collective membership exchange of one ``split`` call.

    Returns ``(parent_ranks, my_sub_rank)``: the parent ranks of the
    caller's color class in sub-rank order, and the caller's position in
    it (``None`` for ``color=None`` callers, whose ``parent_ranks`` is
    empty).  Every parent rank must call this; the exchange is one
    modeled allgather over the parent.
    """
    if color is not None and int(color) < 0:
        raise ValueError(f"split color must be non-negative or None, got {color}")
    mine = _NO_COLOR if color is None else int(color)
    pairs = comm.allgather((mine, int(key)))
    if mine == _NO_COLOR:
        return (), None
    members = [r for r, (c, _k) in enumerate(pairs) if c == mine]
    members.sort(key=lambda r: (pairs[r][1], r))
    return tuple(members), members.index(comm.rank)


def split_communicator(parent, color: int | None, key: int = 0, *,
                       label: str | None = None, name: str | None = None):
    """Shared ``split`` implementation of the thread and mp backends."""
    _validate_label(label)
    members, my_rank = split_membership(parent, color, key)
    # Collective call order gives every rank the same sequence number;
    # chained with the parent's uid it namespaces nested splits too.
    seq = getattr(parent, "_split_seq", 0)
    parent._split_seq = seq + 1
    if my_rank is None:
        return None
    uid = getattr(parent, "_uid", ()) + (seq,)
    return SubCommunicator(parent, members, my_rank, uid, label=label, name=name)


class SubTopology(Topology):
    """A subset of a parent topology, distances measured in the parent.

    Hop counts between sub-ranks are the parent-fabric distances of the
    underlying parent ranks: an embedded sub-communicator does not get a
    private network.
    """

    def __init__(self, parent: Topology, parent_ranks: tuple[int, ...]):
        super().__init__(len(parent_ranks))
        self.parent = parent
        self.parent_ranks = tuple(parent_ranks)
        self._local = {pr: i for i, pr in enumerate(self.parent_ranks)}

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        return self.parent.hops(self.parent_ranks[src], self.parent_ranks[dst])

    def neighbors(self, rank: int) -> list[int]:
        self._check(rank)
        return [
            self._local[n]
            for n in self.parent.neighbors(self.parent_ranks[rank])
            if n in self._local
        ]

    @property
    def diameter(self) -> int:
        return max(
            (self.hops(a, b) for a in range(self.size) for b in range(self.size)),
            default=0,
        )

    @property
    def bisection_width(self) -> int:
        # Of the enclosing fabric; the embedded subset shares its links.
        return self.parent.bisection_width

    def __repr__(self) -> str:
        return f"SubTopology({self.size} of {self.parent!r})"


class SubCommunicator:
    """One rank's endpoint in a split-off sub-communicator (thread/mp).

    Shares the parent's clock, stats, RNG stream and fault state;
    translates ranks and namespaces tags.  The public surface mirrors
    the parent's, so SPMD programs (including the strip world-line
    driver) run unchanged inside a domain sub-communicator.  Wildcard
    ``ANY_SOURCE``/``ANY_TAG`` receives are rejected: matching them
    against parent-level traffic would break scoping, and no driver
    uses them.
    """

    def __init__(self, parent, parent_ranks: tuple[int, ...], rank: int,
                 uid: tuple[int, ...], label: str | None = None,
                 name: str | None = None):
        self._parent = parent
        self._parent_ranks = tuple(parent_ranks)
        self._uid = uid
        self.rank = int(rank)
        self.size = len(self._parent_ranks)
        self.name = name
        self.label = label
        self.machine = parent.machine
        self.topology = SubTopology(parent.topology, self._parent_ranks)
        self.clock = parent.clock
        self.stream = parent.stream
        self.stats = parent.stats
        self.recv_timeout = parent.recv_timeout
        self.metrics = parent.metrics
        if label is None:
            self._cat_comm = parent._cat_comm
            self._cat_wait = parent._cat_wait
            self._cat_halo_wait = parent._cat_halo_wait
        else:
            self._cat_comm = label
            self._cat_wait = f"{label}_wait"
            self._cat_halo_wait = f"{label}_wait"

    # -- category override -------------------------------------------------
    @contextmanager
    def _charged(self):
        """Route the parent's clock charges to this comm's categories.

        Each rank is single-threaded, so temporarily swapping the
        parent's category attributes around one delegated operation is
        race-free (and nests correctly through chained splits).
        """
        p = self._parent
        saved = (p._cat_comm, p._cat_wait, p._cat_halo_wait)
        p._cat_comm = self._cat_comm
        p._cat_wait = self._cat_wait
        p._cat_halo_wait = self._cat_halo_wait
        try:
            yield
        finally:
            p._cat_comm, p._cat_wait, p._cat_halo_wait = saved

    # -- rank/tag translation ----------------------------------------------
    def _wrap(self, tag: int):
        return (self._uid, tag)

    def _check_rank(self, rank: int, what: str) -> int:
        if not 0 <= rank < self.size:
            raise ValueError(f"invalid {what} rank {rank} in {self!r}")
        return self._parent_ranks[rank]

    def _named(self, exc: RankFailure) -> RankFailure:
        if self.name is None:
            return exc
        return RankFailure(
            failed_rank=exc.failed_rank,
            detected_by=exc.detected_by,
            via=exc.via,
            detail=f"[{self.name}] {exc.detail}",
        )

    # -- modeled compute ---------------------------------------------------
    def charge_compute(self, flops: float) -> None:
        self.clock.charge(self.machine.compute_time(flops), "compute")

    def charge_seconds(self, seconds: float, category: str = "compute") -> None:
        self.clock.charge(seconds, category)

    # -- point-to-point ----------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0, offload: bool = False) -> None:
        parent_dest = self._check_rank(dest, "destination")
        with self._charged():
            self._parent.send(obj, parent_dest, tag=self._wrap(tag),
                              offload=offload)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        self._reject_wildcards(source, tag)
        self._check_rank(source, "source")
        fault_state = getattr(self._parent, "fault_state", None)
        if fault_state is not None:
            fault_state.on_op(self.clock)
        return self._complete_recv(self._collect(source, tag))

    def sendrecv(self, obj: Any, dest: int, source: int, sendtag: int = 0,
                 recvtag: int = 0) -> Any:
        self.send(obj, dest, tag=sendtag)
        return self.recv(source=source, tag=recvtag)

    def isend(self, obj: Any, dest: int, tag: int = 0,
              offload: bool = False) -> Request:
        self.send(obj, dest, tag=tag, offload=offload)
        return Request(self, "send")

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              offload: bool = False) -> Request:
        self._reject_wildcards(source, tag)
        self._check_rank(source, "source")
        if offload:
            self.clock.charge(self.machine.post_overhead, self._cat_comm)
        return Request(self, "recv", source=source, tag=tag, offload=offload)

    def _reject_wildcards(self, source: int, tag) -> None:
        if source == ANY_SOURCE or tag == ANY_TAG:
            raise ValueError(
                "wildcard ANY_SOURCE/ANY_TAG receives are not supported on "
                "a sub-communicator (they would match parent-level traffic)"
            )

    # -- collect hooks shared with :class:`Request` ------------------------
    def _try_collect(self, source: int, tag):
        try:
            return self._parent._try_collect(
                self._parent_ranks[source], self._wrap(tag)
            )
        except RankFailure as exc:
            raise self._named(exc) from None

    def _collect(self, source: int, tag):
        try:
            return self._parent._collect(
                self._parent_ranks[source], self._wrap(tag)
            )
        except RankFailure as exc:
            raise self._named(exc) from None

    def _complete_recv(self, msg, offload: bool = False) -> Any:
        with self._charged():
            return self._parent._complete_recv(msg, offload=offload)

    # -- nested splitting --------------------------------------------------
    def split(self, color: int | None, key: int = 0, *,
              label: str | None = None, name: str | None = None):
        return split_communicator(self, color, key, label=label, name=name)

    # -- collectives (implemented in repro.vmp.collectives) ----------------
    def barrier(self) -> None:
        from repro.vmp import collectives

        collectives.barrier(self)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        from repro.vmp import collectives

        return collectives.bcast(self, obj, root)

    def reduce(self, value: Any, op=None, root: int = 0) -> Any:
        from repro.vmp import collectives
        from repro.vmp.comm import ReduceOp

        return collectives.reduce(self, value, op or ReduceOp.SUM, root)

    def allreduce(self, value: Any, op=None) -> Any:
        from repro.vmp import collectives
        from repro.vmp.comm import ReduceOp

        return collectives.allreduce(self, value, op or ReduceOp.SUM)

    def gather(self, value: Any, root: int = 0):
        from repro.vmp import collectives

        return collectives.gather(self, value, root)

    def allgather(self, value: Any) -> list[Any]:
        from repro.vmp import collectives

        return collectives.allgather(self, value)

    def scatter(self, values, root: int = 0) -> Any:
        from repro.vmp import collectives

        return collectives.scatter(self, values, root)

    def alltoall(self, values: list[Any]) -> list[Any]:
        from repro.vmp import collectives

        return collectives.alltoall(self, values)

    def sync_metrics(self) -> None:
        self._parent.sync_metrics()

    def __repr__(self) -> str:
        label = f", label={self.label!r}" if self.label else ""
        name = f", name={self.name!r}" if self.name else ""
        return (
            f"SubCommunicator(rank={self.rank}, size={self.size}, "
            f"parent_ranks={list(self._parent_ranks)}{label}{name})"
        )
