"""Interconnect topologies and their distance metrics.

A topology answers one question for the cost model -- how many network
hops separate ranks ``a`` and ``b`` -- plus a few aggregate figures
(diameter, bisection width) used by the analytic performance model and
reported in the machine-comparison benchmark.

All topologies are defined over ranks ``0..n-1``.  Rank-to-coordinate
embeddings follow the conventions of the era: binary-reflected
positions on hypercubes, row-major grids on meshes.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

__all__ = [
    "Topology",
    "Hypercube",
    "Ring",
    "Mesh2D",
    "Mesh3D",
    "FatTree",
    "Crossbar",
    "topology_for",
]


def _is_power_of_two(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


class Topology(ABC):
    """Abstract interconnect over ranks ``0..size-1``."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("topology size must be >= 1")
        self.size = int(size)

    @abstractmethod
    def hops(self, src: int, dst: int) -> int:
        """Number of network hops on a shortest route from src to dst."""

    @abstractmethod
    def neighbors(self, rank: int) -> list[int]:
        """Directly connected ranks."""

    @property
    @abstractmethod
    def diameter(self) -> int:
        """Maximum hop distance between any two ranks."""

    @property
    @abstractmethod
    def bisection_width(self) -> int:
        """Number of links cut by a best balanced bisection."""

    def _check(self, *ranks: int) -> None:
        for r in ranks:
            if not 0 <= r < self.size:
                raise ValueError(f"rank {r} outside topology of size {self.size}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(size={self.size})"


class Hypercube(Topology):
    """Binary hypercube (nCUBE-2, early Caltech machines).

    Size must be a power of two; hop distance is Hamming distance.
    """

    def __init__(self, size: int):
        if not _is_power_of_two(size):
            raise ValueError(f"hypercube size must be a power of two, got {size}")
        super().__init__(size)
        self.dimension = size.bit_length() - 1

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        return (src ^ dst).bit_count()

    def neighbors(self, rank: int) -> list[int]:
        self._check(rank)
        return [rank ^ (1 << d) for d in range(self.dimension)]

    @property
    def diameter(self) -> int:
        return self.dimension

    @property
    def bisection_width(self) -> int:
        return self.size // 2 if self.size > 1 else 0


class Ring(Topology):
    """Bidirectional ring (the degenerate 1-D torus)."""

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        d = abs(src - dst)
        return min(d, self.size - d)

    def neighbors(self, rank: int) -> list[int]:
        self._check(rank)
        if self.size == 1:
            return []
        if self.size == 2:
            return [1 - rank]
        return [(rank - 1) % self.size, (rank + 1) % self.size]

    @property
    def diameter(self) -> int:
        return self.size // 2

    @property
    def bisection_width(self) -> int:
        return 2 if self.size > 2 else (1 if self.size == 2 else 0)


class Mesh2D(Topology):
    """2-D mesh or torus (Intel Paragon / Delta class).

    Ranks are laid out row-major on an ``nx x ny`` grid.  ``torus=True``
    adds wraparound links.
    """

    def __init__(self, nx: int, ny: int, torus: bool = False):
        if nx < 1 or ny < 1:
            raise ValueError("mesh extents must be >= 1")
        super().__init__(nx * ny)
        self.nx, self.ny, self.torus = int(nx), int(ny), bool(torus)

    @classmethod
    def square_for(cls, size: int, torus: bool = False) -> "Mesh2D":
        """Most-square factorization of ``size`` into nx*ny."""
        nx = int(math.isqrt(size))
        while size % nx:
            nx -= 1
        return cls(nx, size // nx, torus=torus)

    def coords(self, rank: int) -> tuple[int, int]:
        self._check(rank)
        return rank // self.ny, rank % self.ny

    def rank_of(self, x: int, y: int) -> int:
        return (x % self.nx) * self.ny + (y % self.ny)

    def _axis_dist(self, a: int, b: int, n: int) -> int:
        d = abs(a - b)
        return min(d, n - d) if self.torus else d

    def hops(self, src: int, dst: int) -> int:
        (x1, y1), (x2, y2) = self.coords(src), self.coords(dst)
        return self._axis_dist(x1, x2, self.nx) + self._axis_dist(y1, y2, self.ny)

    def neighbors(self, rank: int) -> list[int]:
        x, y = self.coords(rank)
        out = []
        for dx, dy in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            nx_, ny_ = x + dx, y + dy
            if self.torus:
                cand = self.rank_of(nx_, ny_)
                if cand != rank and cand not in out:
                    out.append(cand)
            elif 0 <= nx_ < self.nx and 0 <= ny_ < self.ny:
                out.append(nx_ * self.ny + ny_)
        return out

    @property
    def diameter(self) -> int:
        if self.torus:
            return self.nx // 2 + self.ny // 2
        return (self.nx - 1) + (self.ny - 1)

    @property
    def bisection_width(self) -> int:
        # Cut across the longer axis.
        short = min(self.nx, self.ny)
        return short * (2 if self.torus else 1)

    def __repr__(self) -> str:
        kind = "Torus2D" if self.torus else "Mesh2D"
        return f"{kind}({self.nx}x{self.ny})"


class Mesh3D(Topology):
    """3-D mesh or torus, row-major ranks on nx x ny x nz."""

    def __init__(self, nx: int, ny: int, nz: int, torus: bool = False):
        if min(nx, ny, nz) < 1:
            raise ValueError("mesh extents must be >= 1")
        super().__init__(nx * ny * nz)
        self.nx, self.ny, self.nz, self.torus = int(nx), int(ny), int(nz), bool(torus)

    def coords(self, rank: int) -> tuple[int, int, int]:
        self._check(rank)
        x, rem = divmod(rank, self.ny * self.nz)
        y, z = divmod(rem, self.nz)
        return x, y, z

    def _axis_dist(self, a: int, b: int, n: int) -> int:
        d = abs(a - b)
        return min(d, n - d) if self.torus else d

    def hops(self, src: int, dst: int) -> int:
        c1, c2 = self.coords(src), self.coords(dst)
        return (
            self._axis_dist(c1[0], c2[0], self.nx)
            + self._axis_dist(c1[1], c2[1], self.ny)
            + self._axis_dist(c1[2], c2[2], self.nz)
        )

    def neighbors(self, rank: int) -> list[int]:
        x, y, z = self.coords(rank)
        out = []
        for dx, dy, dz in (
            (-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0), (0, 0, -1), (0, 0, 1)
        ):
            nx_, ny_, nz_ = x + dx, y + dy, z + dz
            if self.torus:
                cand = ((nx_ % self.nx) * self.ny + (ny_ % self.ny)) * self.nz + (
                    nz_ % self.nz
                )
                if cand != rank and cand not in out:
                    out.append(cand)
            elif 0 <= nx_ < self.nx and 0 <= ny_ < self.ny and 0 <= nz_ < self.nz:
                out.append((nx_ * self.ny + ny_) * self.nz + nz_)
        return out

    @property
    def diameter(self) -> int:
        if self.torus:
            return self.nx // 2 + self.ny // 2 + self.nz // 2
        return (self.nx - 1) + (self.ny - 1) + (self.nz - 1)

    @property
    def bisection_width(self) -> int:
        dims = sorted([self.nx, self.ny, self.nz])
        return dims[0] * dims[1] * (2 if self.torus else 1)


class FatTree(Topology):
    """Fat-tree with uniform arity (the CM-5 data network, arity 4).

    Hop distance between leaves is twice the height of their lowest
    common ancestor.  The fat-tree's defining property -- full bisection
    bandwidth -- is reflected in :attr:`bisection_width`.
    """

    def __init__(self, size: int, arity: int = 4):
        if arity < 2:
            raise ValueError("fat-tree arity must be >= 2")
        super().__init__(size)
        self.arity = int(arity)
        self.height = max(1, math.ceil(math.log(size, arity))) if size > 1 else 1

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        if src == dst:
            return 0
        a, b, level = src, dst, 0
        while a != b:
            a //= self.arity
            b //= self.arity
            level += 1
        return 2 * level

    def neighbors(self, rank: int) -> list[int]:
        # Leaves sharing the first-level switch.
        self._check(rank)
        base = (rank // self.arity) * self.arity
        return [r for r in range(base, min(base + self.arity, self.size)) if r != rank]

    @property
    def diameter(self) -> int:
        return 2 * self.height if self.size > 1 else 0

    @property
    def bisection_width(self) -> int:
        return self.size // 2 if self.size > 1 else 0


class Crossbar(Topology):
    """Idealized full crossbar: every pair one hop apart."""

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        return 0 if src == dst else 1

    def neighbors(self, rank: int) -> list[int]:
        self._check(rank)
        return [r for r in range(self.size) if r != rank]

    @property
    def diameter(self) -> int:
        return 1 if self.size > 1 else 0

    @property
    def bisection_width(self) -> int:
        return (self.size // 2) * ((self.size + 1) // 2)


_FACTORIES = {
    "hypercube": Hypercube,
    "ring": Ring,
    "mesh2d": lambda n: Mesh2D.square_for(n, torus=False),
    "torus2d": lambda n: Mesh2D.square_for(n, torus=True),
    "fattree": FatTree,
    "crossbar": Crossbar,
}


def topology_for(name: str, size: int) -> Topology:
    """Construct a topology by name (``hypercube``, ``mesh2d``, ...)."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; expected one of {sorted(_FACTORIES)}"
        ) from None
    return factory(size)
