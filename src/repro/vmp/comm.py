"""MPI-like communicator with executed data movement and modeled time.

Every rank of an SPMD program owns one :class:`Communicator`.  Point-to-
point messages *really* transfer (deep copies of) payloads between rank
address spaces through a shared in-process fabric, so the correctness
of a parallel algorithm -- halo exchanges, reductions, tempering swaps
-- is exercised, not assumed.  Time, by contrast, is *modeled*: each
rank carries a :class:`~repro.util.timer.ModelClock` charged according
to the machine's alpha--beta--hops cost model, which is what lets a
2-core container report 1024-node scaling behaviour.

Cost convention (documented once, used everywhere):

* ``send`` charges the sender ``alpha + n*beta`` (category ``comm``);
  the message is stamped with arrival time
  ``t_send_start + alpha + hops*hop_time + n*beta``.
* ``recv`` charges the receiver ``alpha`` (category ``comm``) and then
  advances its clock to the arrival stamp if that lies in the future
  (category ``comm_wait``).  Receives posted after arrival wait for
  nothing, exactly like an eager-protocol MPI.
* **Offloaded** nonblocking operations (``isend``/``irecv`` with
  ``offload=True``) model a dedicated message coprocessor (the
  Paragon's second i860, the CM-5 NI): the CPU pays only the small
  LogP post overhead ``o`` (category ``comm``) at post time, the wire
  transfer proceeds off-CPU with the *same* arrival stamp as above,
  and completing an offloaded receive charges no alpha -- it only
  waits to the arrival stamp (category ``halo_wait``) if the message
  has not landed yet.  This is the cost convention the overlap
  pipeline in :mod:`repro.qmc.parallel` relies on; payload movement
  and matching are identical to the non-offloaded path, so
  trajectories are bit-identical either way.

Collectives are built from point-to-point messages with the standard
algorithms (binomial trees, recursive doubling, ring), so their modeled
cost has the correct ``log P`` / ``P`` structure by construction; see
:mod:`repro.vmp.collectives`.
"""

from __future__ import annotations

import enum
import pickle
import threading
import time as _time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.obs.metrics import MESSAGE_BYTES_EDGES, NOOP
from repro.util.rng import RankStream
from repro.util.timer import WAIT_CATEGORIES, ModelClock
from repro.vmp.faults import RankFailure, RankFaultState
from repro.vmp.machines import MachineModel
from repro.vmp.topology import Topology

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "AbortError",
    "RankFailure",
    "ReduceOp",
    "Communicator",
    "Fabric",
    "Request",
]

#: Wildcard source for :meth:`Communicator.recv`.  Matching order then
#: depends on thread interleaving; prefer explicit sources in
#: deterministic code.
ANY_SOURCE = -1
#: Wildcard tag.
ANY_TAG = -1


class AbortError(RuntimeError):
    """Raised in blocked ranks when a peer rank died with an exception."""


class ReduceOp(enum.Enum):
    """Reduction operators understood by reduce/allreduce."""

    SUM = "sum"
    PROD = "prod"
    MAX = "max"
    MIN = "min"

    def combine(self, a: Any, b: Any) -> Any:
        """Elementwise combination; supports scalars and ndarrays."""
        if self is ReduceOp.SUM:
            return a + b
        if self is ReduceOp.PROD:
            return a * b
        if self is ReduceOp.MAX:
            return np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b)
        return np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b)


def payload_nbytes(obj: Any) -> int:
    """Wire size of a payload for the cost model.

    NumPy arrays count their raw buffer (the fast path of the era's
    message layers) and containers recurse over their elements, so a
    halo tuple of large arrays is costed at buffer size without ever
    serializing the arrays.  Only opaque objects fall back to their
    pickled size, as mpi4py does for generic objects.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (bool, int, float, complex, np.generic)):
        return 8
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, (tuple, list)):
        return sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def _copy_payload(obj: Any) -> Any:
    """Deep-copy a payload to emulate distributed address spaces.

    ndarrays copy their buffer directly and containers recurse, so the
    common halo payloads (arrays, tuples/dicts of arrays) never take
    the pickle round-trip; only opaque objects do.
    """
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, (bool, int, float, complex, str, bytes, np.generic)):
        return obj
    if isinstance(obj, tuple):
        return tuple(_copy_payload(x) for x in obj)
    if isinstance(obj, list):
        return [_copy_payload(x) for x in obj]
    if isinstance(obj, dict):
        return {k: _copy_payload(v) for k, v in obj.items()}
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


@dataclass
class _Message:
    src: int
    tag: int
    payload: Any
    nbytes: int
    arrival: float  # modeled arrival time at the destination


class Request:
    """Handle of a nonblocking operation (mpi4py ``isend``/``irecv`` style).

    The semantics are the *contract* every backend honors identically
    (thread fabric, multiprocessing queues, real MPI -- asserted by
    ``tests/vmp/test_nonblocking.py`` across all three):

    * a **send** request is complete the moment ``isend`` returns --
      every backend buffers the payload eagerly (mailbox deposit, queue
      put, or an internal send buffer), so ``test()`` is True and
      ``wait()`` returns ``None`` without blocking;
    * a **recv** request completes when a matching message is consumed:
      ``test()`` polls without blocking (consuming a ready message),
      ``wait()`` blocks until the match arrives and returns the
      payload.  Either way the receive is charged exactly like the
      blocking path: latency plus any ``comm_wait`` to the arrival
      stamp, counted once, on whichever call completed the request.
    * an **offloaded** recv request (posted via ``irecv(...,
      offload=True)``) was already charged the post overhead at post
      time; completion charges no further alpha, only the residual
      ``halo_wait`` to the arrival stamp.

    The mechanics are delegated to the owning communicator through the
    private collect hooks (``_try_collect`` / ``_collect`` /
    ``_complete_recv``), which is what lets the three transports share
    this single implementation.
    """

    def __init__(self, comm, kind: str, source: int = ANY_SOURCE,
                 tag: int = ANY_TAG, offload: bool = False):
        self._comm = comm
        self._kind = kind  # "send" | "recv"
        self._source = source
        self._tag = tag
        self._offload = offload
        self._done = kind == "send"  # buffered sends complete immediately
        self._payload: Any = None

    def test(self) -> bool:
        """Nonblocking completion check; a ready receive is consumed."""
        if self._done:
            return True
        msg = self._comm._try_collect(self._source, self._tag)
        if msg is None:
            return False
        self._payload = self._comm._complete_recv(msg, offload=self._offload)
        self._done = True
        return True

    def wait(self) -> Any:
        """Block until complete; returns the payload (None for sends)."""
        if not self._done:
            msg = self._comm._collect(self._source, self._tag)
            self._payload = self._comm._complete_recv(msg, offload=self._offload)
            self._done = True
        return self._payload


@dataclass
class CommStats:
    """Per-rank message counters (reported by the comm-fraction bench)."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    bytes_received: int = 0

    def merge(self, other: "CommStats") -> None:
        self.messages_sent += other.messages_sent
        self.bytes_sent += other.bytes_sent
        self.messages_received += other.messages_received
        self.bytes_received += other.bytes_received


@dataclass
class _DeadRank:
    """Registry entry of a failed rank (see :meth:`Fabric.mark_dead`)."""

    rank: int
    origin: int  # the originally failed rank (!= rank for cascades)
    error: str
    model_time: float = 0.0


class Fabric:
    """Shared in-process message fabric connecting ``n`` ranks.

    One instance per SPMD run; owns the mailboxes, the dead-rank
    registry, and the legacy abort flag.
    """

    def __init__(
        self,
        n_ranks: int,
        machine: MachineModel,
        topology: Topology,
        trace: bool = False,
    ):
        if topology.size != n_ranks:
            raise ValueError(
                f"topology size {topology.size} != number of ranks {n_ranks}"
            )
        self.n_ranks = n_ranks
        self.machine = machine
        self.topology = topology
        self._lock = threading.Lock()
        self._conditions = [threading.Condition(self._lock) for _ in range(n_ranks)]
        self._mailboxes: list[list[_Message]] = [[] for _ in range(n_ranks)]
        self.abort_exc: BaseException | None = None
        #: rank -> _DeadRank for every rank whose program raised.  Blocked
        #: receivers waiting on a dead source fail fast with RankFailure.
        self.dead_ranks: dict[int, _DeadRank] = {}
        #: When tracing, every message is appended here as a MessageEvent.
        self.trace_events: list | None = [] if trace else None
        self._trace_lock = threading.Lock()

    def record_event(self, event) -> None:
        if self.trace_events is not None:
            with self._trace_lock:
                self.trace_events.append(event)

    def deposit(self, dst: int, msg: _Message) -> None:
        with self._conditions[dst]:
            self._mailboxes[dst].append(msg)
            self._conditions[dst].notify_all()

    def _check_dead(self, dst: int, src: int) -> None:
        """Raise RankFailure if ``dst``'s wait on ``src`` can never complete.

        Caller holds the lock.  A specific dead source fails immediately;
        a wildcard source fails only once *every* peer is dead (a live
        peer might still send).  The raised failure names the *original*
        culprit so cascades report the root cause, not the messenger.
        """
        if src != ANY_SOURCE:
            entry = self.dead_ranks.get(src)
            if entry is not None:
                raise RankFailure(
                    failed_rank=entry.origin,
                    detected_by=dst,
                    via="dead-rank",
                    detail=f"waiting on rank {src}: {entry.error}",
                )
        elif len(self.dead_ranks) >= self.n_ranks - 1 and self.n_ranks > 1:
            entry = next(iter(self.dead_ranks.values()))
            raise RankFailure(
                failed_rank=entry.origin,
                detected_by=dst,
                via="dead-rank",
                detail=f"all peers dead: {entry.error}",
            )

    def collect(
        self, dst: int, src: int, tag: int, timeout: float | None = None
    ) -> _Message:
        """Block until a message matching (src, tag) is available.

        ``timeout`` bounds the *wall-clock* wait; waiting uses
        exponentially backed-off condition waits (1 ms doubling to
        250 ms) so failures surface quickly without busy-spinning.
        Expiry raises :class:`RankFailure` (via="timeout") carrying
        mailbox diagnostics.
        """
        cond = self._conditions[dst]
        deadline = None if timeout is None else _time.monotonic() + timeout
        wait = 0.001
        with cond:
            while True:
                if self.abort_exc is not None:
                    raise AbortError(f"peer rank failed: {self.abort_exc!r}")
                box = self._mailboxes[dst]
                for i, m in enumerate(box):
                    if (src in (ANY_SOURCE, m.src)) and (tag in (ANY_TAG, m.tag)):
                        return box.pop(i)
                self._check_dead(dst, src)
                if deadline is not None:
                    remaining = deadline - _time.monotonic()
                    if remaining <= 0:
                        pending = [(m.src, m.tag) for m in box]
                        raise RankFailure(
                            failed_rank=None if src == ANY_SOURCE else src,
                            detected_by=dst,
                            via="timeout",
                            detail=(
                                f"no message (source={src}, tag={tag}) within "
                                f"{timeout}s; mailbox holds {len(pending)} "
                                f"unmatched message(s) {pending[:8]}"
                            ),
                        )
                    cond.wait(timeout=min(wait, remaining))
                else:
                    # Bounded waits so aborts/deaths are noticed even
                    # with no traffic.
                    cond.wait(timeout=wait)
                wait = min(wait * 2, 0.25)

    def try_collect(self, dst: int, src: int, tag: int) -> _Message | None:
        """Nonblocking matching receive; None when nothing matches."""
        with self._conditions[dst]:
            if self.abort_exc is not None:
                raise AbortError(f"peer rank failed: {self.abort_exc!r}")
            box = self._mailboxes[dst]
            for i, m in enumerate(box):
                if (src in (ANY_SOURCE, m.src)) and (tag in (ANY_TAG, m.tag)):
                    return box.pop(i)
            self._check_dead(dst, src)
            return None

    def abort(self, exc: BaseException) -> None:
        with self._lock:
            if self.abort_exc is None:
                self.abort_exc = exc
        self._notify_all()

    def mark_dead(self, rank: int, exc: BaseException, model_time: float = 0.0) -> None:
        """Register ``rank`` as dead and wake every blocked receiver.

        A rank dying *because it detected another death* (its program
        raised :class:`RankFailure`) propagates the original culprit, so
        transitive detection still names the root failure.
        """
        origin = rank
        if isinstance(exc, RankFailure) and exc.failed_rank is not None:
            origin = exc.failed_rank
        with self._lock:
            if rank not in self.dead_ranks:
                self.dead_ranks[rank] = _DeadRank(
                    rank=rank, origin=origin, error=repr(exc), model_time=model_time
                )
        self._notify_all()

    def _notify_all(self) -> None:
        for cond in self._conditions:
            with cond:
                cond.notify_all()

    def pending(self, dst: int) -> int:
        """Number of undelivered messages in a rank's mailbox."""
        with self._conditions[dst]:
            return len(self._mailboxes[dst])


class Communicator:
    """One rank's endpoint: point-to-point ops, collectives, clock, RNG.

    The public surface deliberately mirrors mpi4py's lowercase
    (pickle-based) API -- ``send``/``recv``/``bcast``/``allreduce``/... --
    so the SPMD programs in :mod:`repro.qmc` read like ordinary MPI
    codes and could be ported to real MPI verbatim.
    """

    def __init__(
        self,
        fabric: Fabric,
        rank: int,
        stream: RankStream,
        recv_timeout: float | None = None,
        fault_state: RankFaultState | None = None,
        metrics=NOOP,
    ):
        self.fabric = fabric
        self.rank = int(rank)
        self.size = fabric.n_ranks
        self.machine = fabric.machine
        self.topology = fabric.topology
        self.clock = ModelClock()
        self.stream = stream
        self.stats = CommStats()
        #: Wall-clock bound on every blocking receive (None = wait forever,
        #: relying on the dead-rank registry for failure detection).
        self.recv_timeout = recv_timeout
        #: Per-rank fault-injection state (None = no faults).
        self.fault_state = fault_state
        #: Rank-scoped metrics recorder (the free NOOP unless the run
        #: enables telemetry).  CommStats already counts messages and
        #: bytes on every op, so the comm.* counters are *synced* from
        #: it lazily (:meth:`sync_metrics`, called at snapshot cadence
        #: and at end of run) rather than bumped per message -- the only
        #: per-message cost when enabled is the wire-size histogram.
        self.metrics = metrics
        #: Clock categories this endpoint charges (see util.timer).  A
        #: sub-communicator created with ``split(..., label=...)``
        #: temporarily swaps these around delegated operations so its
        #: traffic is attributed to its own per-level categories.
        self._cat_comm = "comm"
        self._cat_wait = "comm_wait"
        self._cat_halo_wait = "halo_wait"
        self._obs = bool(metrics.enabled)
        if self._obs:
            self._m_msg_hist = metrics.histogram(
                "comm.message_bytes", MESSAGE_BYTES_EDGES
            )

    def sync_metrics(self) -> None:
        """Fold CommStats and the clock's wait total into the registry.

        ``comm.wait_seconds`` is the modeled time this rank spent
        blocked past the latency charge -- the clock's wait categories
        (``comm_wait`` plus the overlap pipeline's ``halo_wait``), so
        no per-message accounting is needed.
        """
        if not self._obs:
            return
        m, s = self.metrics, self.stats
        m.counter("comm.messages_sent").value = float(s.messages_sent)
        m.counter("comm.bytes_sent").value = float(s.bytes_sent)
        m.counter("comm.messages_received").value = float(s.messages_received)
        m.counter("comm.bytes_received").value = float(s.bytes_received)
        b = self.clock.breakdown()
        m.counter("comm.wait_seconds").value = sum(
            b.get(c, 0.0) for c in WAIT_CATEGORIES
        )

    # -- modeled compute -------------------------------------------------
    def charge_compute(self, flops: float) -> None:
        """Charge modeled compute time for ``flops`` floating-point ops."""
        self.clock.charge(self.machine.compute_time(flops), "compute")

    def charge_seconds(self, seconds: float, category: str = "compute") -> None:
        """Charge an explicit modeled duration (e.g. measurement I/O)."""
        self.clock.charge(seconds, category)

    # -- point-to-point ----------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0, offload: bool = False) -> None:
        """Blocking-buffered send (returns once the message is en route).

        With ``offload=True`` the CPU is charged only the machine's
        post overhead; the wire transfer is carried by the message
        coprocessor and the arrival stamp is unchanged (see the module
        cost convention).
        """
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        if self.fault_state is not None:
            self.fault_state.on_op(self.clock)
        nbytes = payload_nbytes(obj)
        hops = self.topology.hops(self.rank, dest)
        start = self.clock.now
        if offload:
            self.clock.charge(self.machine.post_overhead, self._cat_comm)
        else:
            self.clock.charge(
                self.machine.latency + self.machine.byte_time * nbytes,
                self._cat_comm,
            )
        arrival = (
            start
            + self.machine.latency
            + self.machine.hop_time * hops
            + self.machine.byte_time * nbytes
        )
        drop = False
        if self.fault_state is not None:
            extra, drop = self.fault_state.outgoing(dest)
            arrival += extra
        self.stats.messages_sent += 1
        self.stats.bytes_sent += nbytes
        if self._obs:
            self._m_msg_hist.observe(nbytes)
        if self.fabric.trace_events is not None:
            from repro.vmp.trace import MessageEvent

            self.fabric.record_event(
                MessageEvent(
                    src=self.rank,
                    dst=dest,
                    tag=tag,
                    nbytes=nbytes,
                    t_send=start,
                    t_arrival=arrival,
                )
            )
        if drop:
            return  # injected loss: sender charged, message never delivered
        self.fabric.deposit(
            dest,
            _Message(
                src=self.rank,
                tag=tag,
                payload=_copy_payload(obj),
                nbytes=nbytes,
                arrival=arrival,
            ),
        )

    # -- collect hooks shared with :class:`Request` ------------------------
    def _try_collect(self, source: int, tag: int) -> _Message | None:
        """Nonblocking matching receive from the fabric (None: no match)."""
        return self.fabric.try_collect(self.rank, source, tag)

    def _collect(self, source: int, tag: int) -> _Message:
        """Blocking matching receive from the fabric."""
        return self.fabric.collect(self.rank, source, tag, timeout=self.recv_timeout)

    def _complete_recv(self, msg: _Message, offload: bool = False) -> Any:
        """Charge and count one completed receive; returns the payload.

        Offloaded receives were charged their post overhead at post
        time, so completion only absorbs the residual wait to the
        arrival stamp (``halo_wait``).
        """
        if offload:
            self.clock.advance_to(msg.arrival, self._cat_halo_wait)
        else:
            self.clock.charge(self.machine.latency, self._cat_comm)
            self.clock.advance_to(msg.arrival, self._cat_wait)
        self.stats.messages_received += 1
        self.stats.bytes_received += msg.nbytes
        return msg.payload

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive; returns the payload object."""
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise ValueError(f"invalid source rank {source}")
        if self.fault_state is not None:
            self.fault_state.on_op(self.clock)
        return self._complete_recv(self._collect(source, tag))

    def sendrecv(
        self,
        obj: Any,
        dest: int,
        source: int,
        sendtag: int = 0,
        recvtag: int = 0,
    ) -> Any:
        """Combined exchange; safe against the head-to-head deadlock."""
        self.send(obj, dest, tag=sendtag)
        return self.recv(source=source, tag=recvtag)

    def isend(self, obj: Any, dest: int, tag: int = 0,
              offload: bool = False) -> Request:
        """Nonblocking send; the returned request is already complete.

        All three backends buffer sends eagerly (the payload is copied
        before ``isend`` returns), so ``test()`` is True and ``wait()``
        returns ``None`` immediately -- the documented contract of
        :class:`Request`, identical on thread, mp and mpi transports.
        With ``offload=True`` only the post overhead is charged.
        """
        self.send(obj, dest, tag=tag, offload=offload)
        return Request(self, "send")

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              offload: bool = False) -> Request:
        """Nonblocking receive: returns a :class:`Request` to wait/test on.

        With ``offload=True`` the post overhead is charged now and
        completion later waits under ``halo_wait`` with no alpha.
        """
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise ValueError(f"invalid source rank {source}")
        if offload:
            self.clock.charge(self.machine.post_overhead, self._cat_comm)
        return Request(self, "recv", source=source, tag=tag, offload=offload)

    # -- communicator splitting --------------------------------------------
    def split(self, color: int | None, key: int = 0, *,
              label: str | None = None, name: str | None = None):
        """MPI-style collective split into sub-communicators.

        Every rank calls this with its own ``color``/``key``; ranks of
        equal color form one sub-communicator, ordered by ``(key,
        parent rank)``.  ``color=None`` (the MPI_UNDEFINED analogue)
        returns ``None``.  See :mod:`repro.vmp.split` for scoping,
        clock-accounting (``label=``) and naming (``name=``) semantics.
        """
        from repro.vmp.split import split_communicator

        return split_communicator(self, color, key, label=label, name=name)

    # -- collectives (implemented in repro.vmp.collectives) ----------------
    def barrier(self) -> None:
        from repro.vmp import collectives

        collectives.barrier(self)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        from repro.vmp import collectives

        return collectives.bcast(self, obj, root)

    def reduce(self, value: Any, op: ReduceOp = ReduceOp.SUM, root: int = 0) -> Any:
        from repro.vmp import collectives

        return collectives.reduce(self, value, op, root)

    def allreduce(self, value: Any, op: ReduceOp = ReduceOp.SUM) -> Any:
        from repro.vmp import collectives

        return collectives.allreduce(self, value, op)

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        from repro.vmp import collectives

        return collectives.gather(self, value, root)

    def allgather(self, value: Any) -> list[Any]:
        from repro.vmp import collectives

        return collectives.allgather(self, value)

    def scatter(self, values: list[Any] | None, root: int = 0) -> Any:
        from repro.vmp import collectives

        return collectives.scatter(self, values, root)

    def alltoall(self, values: list[Any]) -> list[Any]:
        from repro.vmp import collectives

        return collectives.alltoall(self, values)

    def __repr__(self) -> str:
        return f"Communicator(rank={self.rank}, size={self.size}, machine={self.machine.name})"
