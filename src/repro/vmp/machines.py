"""Calibrated models of early-1990s massively parallel machines.

Each :class:`MachineModel` carries the handful of numbers the cost
model needs:

* ``flops`` -- *sustained* per-node floating-point rate on this kind of
  lattice kernel (a small fraction of peak, as was typical),
* ``latency`` -- per-message software overhead alpha (seconds),
* ``byte_time`` -- inverse bandwidth beta (seconds per byte),
* ``hop_time`` -- additional per-hop wire/switch latency,
* ``post_overhead`` -- CPU cost of *posting* a nonblocking operation
  to the machine's message coprocessor (the LogP ``o`` parameter),
* ``topology`` -- the interconnect family the machine shipped with.

The absolute numbers are calibrated to published figures of the era
(CM-5 vector units, Paragon i860 nodes, nCUBE-2, Intel Delta); their
*ratios* are what shape the scaling curves, and those ratios are
faithful: hypercube machines pay log-distance routing, mesh machines
pay sqrt(P) distances, the CM-5 fat-tree is distance-flat but has
higher per-message software overhead than its wormhole-routed rivals.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.vmp.topology import Topology, topology_for

__all__ = [
    "MachineModel",
    "CM5",
    "PARAGON",
    "DELTA",
    "NCUBE2",
    "IDEAL",
    "MACHINES",
]


@dataclass(frozen=True)
class MachineModel:
    """Alpha--beta--hops cost model of one machine family."""

    name: str
    #: Sustained per-node flop rate on lattice-update kernels [flop/s].
    flops: float
    #: Per-message software latency alpha [s].
    latency: float
    #: Transfer time per byte beta (inverse bandwidth) [s/B].
    byte_time: float
    #: Extra latency per network hop [s].
    hop_time: float
    #: Interconnect family name understood by :func:`topology_for`.
    topology_name: str
    #: Maximum configuration size sold (used to clamp sweeps).
    max_nodes: int = 4096
    #: CPU seconds to post one nonblocking send/recv to the message
    #: coprocessor (LogP overhead ``o``).  Much smaller than ``latency``
    #: on machines whose nodes carried a dedicated comm processor (the
    #: Paragon's second i860, the CM-5's NI); the wire transfer itself
    #: then proceeds off-CPU and can be overlapped with computation.
    post_overhead: float = 0.0

    def topology(self, size: int) -> Topology:
        """Instantiate this machine's interconnect for ``size`` nodes."""
        return topology_for(self.topology_name, size)

    # -- elementary cost formulas ---------------------------------------
    def compute_time(self, flops: float) -> float:
        """Seconds to execute ``flops`` floating-point operations."""
        if flops < 0:
            raise ValueError("negative flop count")
        return flops / self.flops

    def message_time(self, nbytes: int, hops: int = 1) -> float:
        """Seconds for one point-to-point message of ``nbytes`` over ``hops``."""
        if nbytes < 0:
            raise ValueError("negative message size")
        if hops < 0:
            raise ValueError("negative hop count")
        return self.latency + self.hop_time * hops + self.byte_time * nbytes

    def with_overrides(self, **kwargs) -> "MachineModel":
        """A copy with selected fields replaced (for ablations)."""
        return replace(self, **kwargs)

    def __str__(self) -> str:
        return self.name


#: Thinking Machines CM-5 (1993: 32-1024 nodes, SPARC + vector units,
#: fat-tree data network).  ~25 sustained MFLOP/s per node on stencil
#: kernels, ~80 us message latency through CMMD, ~8 MB/s per-node
#: point-to-point bandwidth.
CM5 = MachineModel(
    name="CM-5",
    flops=25e6,
    latency=80e-6,
    byte_time=1.0 / 8e6,
    hop_time=0.5e-6,
    topology_name="fattree",
    max_nodes=1024,
    post_overhead=22e-6,
)

#: Intel Paragon XP/S (i860 XP nodes on a 2-D mesh).  ~10 sustained
#: MFLOP/s, NX message passing ~60 us latency, ~70 MB/s bandwidth.
PARAGON = MachineModel(
    name="Paragon",
    flops=10e6,
    latency=60e-6,
    byte_time=1.0 / 70e6,
    hop_time=0.1e-6,
    topology_name="mesh2d",
    max_nodes=2048,
    post_overhead=12e-6,
)

#: Intel Touchstone Delta (the Paragon's 1991 prototype; slower network).
DELTA = MachineModel(
    name="Delta",
    flops=8e6,
    latency=75e-6,
    byte_time=1.0 / 22e6,
    hop_time=0.2e-6,
    topology_name="mesh2d",
    max_nodes=512,
    post_overhead=18e-6,
)

#: nCUBE-2: slow custom CISC nodes on a dense hypercube.
NCUBE2 = MachineModel(
    name="nCUBE-2",
    flops=2.4e6,
    latency=100e-6,
    byte_time=1.0 / 2.2e6,
    hop_time=0.4e-6,
    topology_name="hypercube",
    max_nodes=8192,
    post_overhead=35e-6,
)

#: Zero-communication-cost reference machine (exposes Amdahl limits only).
IDEAL = MachineModel(
    name="Ideal",
    flops=25e6,
    latency=0.0,
    byte_time=0.0,
    hop_time=0.0,
    topology_name="crossbar",
    max_nodes=1 << 20,
)

MACHINES: dict[str, MachineModel] = {
    m.name: m for m in (CM5, PARAGON, DELTA, NCUBE2, IDEAL)
}
