"""Closed-form parallel performance model for QMC lattice sweeps.

The scaling tables of the paper genre (fixed-size speedup, scaled
speedup, communication fractions) are generated from this analytic
model, which charges exactly the same alpha--beta--hops costs as the
executed simulator in :mod:`repro.vmp.comm` -- the two are
cross-validated by integration tests.  The model covers the three
parallelization strategies implemented in :mod:`repro.qmc.parallel`:

``strip``
    1-D spatial decomposition of the space--time lattice: each of P
    ranks owns ``ceil(Lx/P)`` site columns over all ``Lt`` Trotter
    slices and exchanges one boundary column with each spatial
    neighbor per checkerboard half-sweep.

``block``
    2-D spatial decomposition on a ``px x py`` process grid; halos are
    the four boundary edges of the owned block, again over all slices.

``replica``
    Trivial parallelism: each rank runs an independent Markov chain
    over the full lattice for ``1/P`` of the sweeps, and results are
    combined with one allreduce per measurement.  No halo traffic, but
    also no reduction of equilibration time -- modeled via the
    ``serial_fraction`` parameter (Amdahl term).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.vmp.machines import MachineModel
from repro.vmp.topology import Topology

__all__ = [
    "WorkloadShape",
    "PerformanceModel",
    "worldline2d_workload",
    "worldline_strip_workload",
    "speedup",
    "efficiency",
    "gustafson_scaled_speedup",
]


def speedup(t1: float, tp: float) -> float:
    """Fixed-size speedup ``T(1)/T(P)``."""
    if tp <= 0:
        raise ValueError("parallel time must be positive")
    return t1 / tp


def efficiency(t1: float, tp: float, p: int) -> float:
    """Parallel efficiency ``S(P)/P``."""
    return speedup(t1, tp) / p


def gustafson_scaled_speedup(serial_fraction: float, p: int) -> float:
    """Gustafson's scaled speedup ``P - s(P-1)`` for serial fraction ``s``."""
    if not 0 <= serial_fraction <= 1:
        raise ValueError("serial fraction must lie in [0, 1]")
    return p - serial_fraction * (p - 1)


@dataclass(frozen=True)
class WorkloadShape:
    """Static description of one domain-decomposed QMC sweep workload.

    Attributes
    ----------
    lx, ly:
        Spatial lattice extents (``ly = 1`` for chains).
    lt:
        Trotter (imaginary-time) slices.
    flops_per_site:
        Floating-point work per space--time site per full sweep
        (plaquette weight evaluations + Metropolis logic).
    sweeps:
        Monte Carlo sweeps in the run.
    bytes_per_site:
        Wire bytes per transferred boundary site (1 spin packs into a
        byte, but era codes shipped word-aligned buffers: default 8).
    strategy:
        ``strip`` | ``block`` | ``replica``.
    measurement_interval:
        Sweeps between measurements; each measurement costs one
        allreduce of ``allreduce_doubles`` doubles.
    allreduce_doubles:
        Accumulator width reduced per measurement.
    serial_fraction:
        Non-parallelizable fraction of the total work (equilibration
        bookkeeping, global RNG setup, output).  Dominates the replica
        strategy's Amdahl limit.
    halo_messages_per_sweep:
        Override for the number of halo messages a rank sends per sweep
        (default ``None`` = the strategy's half-sweep-batched count:
        2 half-sweeps x neighbors).  Set it to model fine-grained
        schedules such as the executed 10-stage world-line driver.
    halo_sites_per_message:
        Override for the lattice sites packed into one halo message
        (default ``None`` = one boundary column/plane).  Set it to
        model aggregated-halo protocols that pack several boundary
        columns -- e.g. the strip driver's two-column ghost buffer --
        into a single message: the alpha (latency) charge stays
        per-message while the beta (bandwidth) charge follows the
        aggregated byte count.
    overlap:
        Model the five-stage overlap pipeline (pack -> post -> update
        interior -> wait -> update boundary): each halo message charges
        only the machine's ``post_overhead`` (twice: isend + irecv) on
        the critical path, and the wire delay counts only through the
        residual left after the interior compute of that exchange.
    """

    lx: int
    ly: int
    lt: int
    flops_per_site: float
    sweeps: int
    bytes_per_site: int = 8
    strategy: str = "strip"
    measurement_interval: int = 1
    allreduce_doubles: int = 8
    serial_fraction: float = 0.0
    halo_messages_per_sweep: int | None = None
    halo_sites_per_message: float | None = None
    overlap: bool = False

    def __post_init__(self):
        if self.strategy not in ("strip", "block", "replica"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if min(self.lx, self.ly, self.lt) < 1:
            raise ValueError("lattice extents must be positive")
        if self.sweeps < 1:
            raise ValueError("need at least one sweep")
        if not 0 <= self.serial_fraction < 1:
            raise ValueError("serial_fraction must lie in [0, 1)")

    @property
    def sites(self) -> int:
        """Total space--time sites."""
        return self.lx * self.ly * self.lt

    @property
    def total_flops(self) -> float:
        return self.sites * self.flops_per_site * self.sweeps

    def scaled_to(self, p: int) -> "WorkloadShape":
        """Grow the spatial lattice so per-rank work is constant (weak scaling).

        The x extent is multiplied by ``p``; this keeps strip halos
        constant per rank, the memory-per-node constraint that drove
        scaled-speedup reporting on real MPPs.
        """
        import dataclasses

        return dataclasses.replace(self, lx=self.lx * p)


def worldline2d_workload(
    lx: int, ly: int, n_slices: int, sweeps: int, **overrides
) -> WorkloadShape:
    """Workload of the batched 2-D world-line sampler, replica strategy.

    FLOP accounting matches what the executed driver
    (:func:`repro.qmc.parallel.worldline2d_replica_program`) charges per
    sweep: each space--time site sees half a segment proposal (one
    proposal per bond and activation interval, ``2 N_sites`` bonds over
    ``T/4`` intervals, eight plaquettes each) plus the straight-column
    Metropolis pass, so per site-slice

        flops = FLOPS_PER_SEGMENT_MOVE / 2 + 2.

    Keyword overrides pass through to :class:`WorkloadShape` (e.g.
    ``strategy="strip"`` to model a domain-decomposed variant, or
    ``serial_fraction`` for the replica Amdahl term).
    """
    from repro.qmc.worldline2d import FLOPS_PER_SEGMENT_MOVE

    kwargs = dict(
        lx=lx,
        ly=ly,
        lt=n_slices,
        flops_per_site=FLOPS_PER_SEGMENT_MOVE / 2.0 + 2.0,
        sweeps=sweeps,
        strategy="replica",
        allreduce_doubles=2,
    )
    kwargs.update(overrides)
    return WorkloadShape(**kwargs)


def worldline_strip_workload(
    n_sites: int, n_slices: int, sweeps: int, **overrides
) -> WorkloadShape:
    """Workload of the strip-decomposed world-line chain driver.

    Mirrors what :func:`repro.qmc.parallel.worldline_strip_program`
    executes and charges per sweep:

    * compute -- one corner proposal per unshaded plaquette (half the
      space--time sites) plus the straight-column pass, so per
      site-slice ``flops = FLOPS_PER_CORNER_MOVE / 2 + 2``;
    * halos -- ten stages (eight corner classes + two column
      parities), each refreshing ghosts with ONE aggregated two-column
      message per neighbor: ``halo_messages_per_sweep = 20`` and
      ``halo_sites_per_message = 2 * n_slices``.  Under alpha--beta
      this is the aggregation the executed driver implements; spins
      ship as single bytes.

    Pass ``overlap=True`` to model the five-stage pipeline variant the
    driver runs under ``WorldlineStripConfig(overlap=True)``.
    """
    from repro.qmc.parallel import N_WL_STAGES
    from repro.qmc.worldline import FLOPS_PER_CORNER_MOVE

    kwargs = dict(
        lx=n_sites,
        ly=1,
        lt=n_slices,
        flops_per_site=FLOPS_PER_CORNER_MOVE / 2.0 + 2.0,
        sweeps=sweeps,
        strategy="strip",
        bytes_per_site=1,
        halo_messages_per_sweep=2 * N_WL_STAGES,
        halo_sites_per_message=2.0 * n_slices,
        allreduce_doubles=2,
    )
    kwargs.update(overrides)
    return WorkloadShape(**kwargs)


class PerformanceModel:
    """Predict run time, speedup and communication split for a workload."""

    def __init__(self, machine: MachineModel, workload: WorkloadShape):
        self.machine = machine
        self.workload = workload

    # -- geometry helpers -------------------------------------------------
    @staticmethod
    def _process_grid(p: int) -> tuple[int, int]:
        """Most-square px*py = p factorization (px <= py)."""
        px = int(math.isqrt(p))
        while p % px:
            px -= 1
        return px, p // px

    def _neighbor_hops(self, p: int) -> int:
        """Representative hop count for a nearest-neighbor exchange.

        Adjacent subdomains map to consecutive ranks; we take the worst
        consecutive-rank distance on the machine topology, which is the
        honest number for a non-embedded mapping.
        """
        if p == 1:
            return 0
        topo: Topology = self.machine.topology(p)
        return max(topo.hops(r, (r + 1) % p) for r in range(p))

    def _collective_hop(self, p: int) -> int:
        """Representative per-round hop count inside a tree collective."""
        if p == 1:
            return 0
        topo = self.machine.topology(p)
        return max(1, topo.diameter // max(1, int(math.log2(p)) or 1))

    # -- per-sweep cost terms ----------------------------------------------
    def compute_seconds_per_sweep(self, p: int) -> float:
        """Modeled compute seconds per sweep on the slowest rank."""
        w = self.workload
        if w.strategy == "replica":
            owned_sites = w.sites
        elif w.strategy == "strip":
            if p > w.lx:
                raise ValueError(f"strip decomposition needs P <= Lx ({w.lx}), got {p}")
            owned_sites = math.ceil(w.lx / p) * w.ly * w.lt
        else:  # block
            px, py = self._process_grid(p)
            if px > w.lx or py > w.ly:
                raise ValueError(
                    f"block decomposition grid {px}x{py} exceeds lattice {w.lx}x{w.ly}"
                )
            owned_sites = math.ceil(w.lx / px) * math.ceil(w.ly / py) * w.lt
        return self.machine.compute_time(owned_sites * w.flops_per_site)

    def interior_fraction(self, p: int) -> float:
        """Fraction of a rank's sweep compute overlappable with its halo.

        Mirrors the executed drivers' partition tables: a strip rank of
        ``n`` owned columns has four ghost-adjacent move rows per
        independence class, a block rank loses its first/last plane
        along every axis the process grid splits.  Zero when the
        subdomain is too thin to have an interior (the drivers fall
        back to lockstep there) or when nothing is decomposed.
        """
        w = self.workload
        if p == 1 or w.strategy == "replica":
            return 0.0
        if w.strategy == "strip":
            owned = math.ceil(w.lx / p)
            return max(0.0, (owned - 4.0) / owned)
        px, py = self._process_grid(p)
        bx = math.ceil(w.lx / px)
        by = math.ceil(w.ly / py)
        ix = bx - 2 if px > 1 else bx
        iy = by - 2 if py > 1 else by
        if ix <= 0 or iy <= 0:
            return 0.0
        return (ix * iy) / float(bx * by)

    def halo_seconds_per_sweep(self, p: int) -> float:
        """Modeled halo-exchange seconds per sweep on one rank.

        Two checkerboard half-sweeps per sweep; each half-sweep sends
        and receives the full boundary.  With ``workload.overlap`` the
        critical path instead carries ``2 * post_overhead`` per message
        plus, per exchange, whatever wire delay the exchange's interior
        compute fails to hide.
        """
        w = self.workload
        if p == 1 or w.strategy == "replica":
            return 0.0
        hops = self._neighbor_hops(p)
        if w.strategy == "strip":
            neighbor_messages = 2  # left + right
            halo_sites = w.ly * w.lt
        else:
            px, py = self._process_grid(p)
            bx = math.ceil(w.lx / px)
            by = math.ceil(w.ly / py)
            neighbor_messages = (2 if px > 1 else 0) + (2 if py > 1 else 0)
            # Mean boundary-edge sites per message across the two axes.
            edges = ([by * w.lt] * 2 if px > 1 else []) + ([bx * w.lt] * 2 if py > 1 else [])
            halo_sites = sum(edges) / len(edges) if edges else 0
        if w.halo_sites_per_message is not None:
            halo_sites = w.halo_sites_per_message
        per_message = self.machine.message_time(
            int(halo_sites * w.bytes_per_site), hops
        )
        if w.halo_messages_per_sweep is not None:
            n_messages = w.halo_messages_per_sweep
        else:
            n_messages = 2 * neighbor_messages  # two half-sweeps
        if not w.overlap or neighbor_messages == 0:
            return n_messages * per_message
        f_int = self.interior_fraction(p)
        if f_int <= 0.0:
            # Degenerate subdomain: the drivers warn and run lockstep.
            return n_messages * per_message
        n_exchanges = max(1.0, n_messages / neighbor_messages)
        interior_per_exchange = (
            f_int * self.compute_seconds_per_sweep(p) / n_exchanges
        )
        posts = 2.0 * self.machine.post_overhead  # isend + irecv
        residual = max(0.0, per_message - interior_per_exchange)
        return n_messages * posts + n_exchanges * residual

    def collective_seconds_per_sweep(self, p: int) -> float:
        """Allreduce cost amortized per sweep."""
        w = self.workload
        if p == 1:
            return 0.0
        rounds = 2 * math.ceil(math.log2(p))  # reduce + bcast trees
        per_round = self.machine.message_time(
            8 * w.allreduce_doubles, self._collective_hop(p)
        )
        return rounds * per_round / w.measurement_interval

    # -- totals -------------------------------------------------------------
    def time(self, p: int) -> float:
        """Modeled wall time of the full run on ``p`` nodes."""
        if p < 1:
            raise ValueError("need at least one node")
        w = self.workload
        serial = w.serial_fraction * self.machine.compute_time(w.total_flops)
        if w.strategy == "replica":
            sweeps_per_rank = math.ceil(w.sweeps / p)
            parallel = sweeps_per_rank * (
                self.compute_seconds_per_sweep(p) + self.collective_seconds_per_sweep(p)
            )
        else:
            parallel = (1 - w.serial_fraction) * w.sweeps * (
                self.compute_seconds_per_sweep(p)
                + self.halo_seconds_per_sweep(p)
                + self.collective_seconds_per_sweep(p)
            )
            return serial + parallel
        return serial + parallel

    def speedup(self, p: int) -> float:
        return speedup(self.time(1), self.time(p))

    def efficiency(self, p: int) -> float:
        return self.speedup(p) / p

    def comm_fraction(self, p: int) -> float:
        """Fraction of per-sweep time spent in halo + collective traffic."""
        comp = self.compute_seconds_per_sweep(p)
        halo = self.halo_seconds_per_sweep(p)
        coll = self.collective_seconds_per_sweep(p)
        total = comp + halo + coll
        return (halo + coll) / total if total > 0 else 0.0

    def scaled_speedup(self, p: int) -> float:
        """Weak-scaling speedup: work grows with P (Gustafson regime).

        Defined as ``p * T_1(W) / T_p(W_p)`` with ``W_p = p*W`` -- equals
        ``p`` when halos and collectives are free.
        """
        grown = PerformanceModel(self.machine, self.workload.scaled_to(p))
        return p * self.time(1) / grown.time(p)

    def updates_per_second(self, p: int) -> float:
        """Site updates per second of the whole machine (Table 3 metric)."""
        w = self.workload
        if w.strategy == "replica":
            total_updates = w.sites * math.ceil(w.sweeps / p) * p
        else:
            total_updates = w.sites * w.sweeps
        return total_updates / self.time(p)
