"""Replica parallelism: independent Markov chains averaged at the end.

The trivially parallel strategy of the era (and still the right answer
when the lattice fits on one node): every rank runs the *same* sampler
with an independent random stream, and only the measurement
accumulators are combined.  Strengths and weaknesses are exactly those
the scaling benchmarks show -- zero halo traffic and perfect sweep
throughput, but equilibration is not accelerated (every rank pays the
full thermalization: the Amdahl term of benchmark F1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

__all__ = ["ReplicaConfig", "replica_program", "combined_mean_error"]


@dataclass(frozen=True)
class ReplicaConfig:
    """Parameters of a replica-parallel run.

    ``sampler_factory(stream) -> sampler`` must build a sampler whose
    ``run(n_sweeps, n_thermalize, measure_every)`` returns an object with
    array-valued attributes; ``observables`` names the attributes to
    collect (e.g. ``("energy", "magnetization")``).
    """

    sampler_factory: Callable[[Any], Any]
    observables: tuple[str, ...]
    n_sweeps: int
    n_thermalize: int = 0
    measure_every: int = 1
    #: Modeled flops charged per sweep (workload accounting).
    flops_per_sweep: float = 0.0


def replica_program(comm, cfg: ReplicaConfig) -> dict:
    """SPMD rank program: run one replica, gather all series on rank 0.

    Every rank returns the pooled mean per observable (via allreduce);
    rank 0 additionally returns the per-replica series under
    ``"series"`` for error analysis across replicas.
    """
    sampler = cfg.sampler_factory(comm.stream)
    measurement = sampler.run(
        cfg.n_sweeps, n_thermalize=cfg.n_thermalize, measure_every=cfg.measure_every
    )
    if cfg.flops_per_sweep:
        comm.charge_compute(cfg.flops_per_sweep * (cfg.n_sweeps + cfg.n_thermalize))
    out: dict[str, Any] = {"pooled_mean": {}}
    local_series = {}
    for name in cfg.observables:
        series = np.asarray(getattr(measurement, name), dtype=float)
        local_series[name] = series
        total = comm.allreduce(float(series.sum()))
        count = comm.allreduce(float(series.size))
        out["pooled_mean"][name] = total / count
    gathered = comm.gather(local_series, root=0)
    if comm.rank == 0:
        out["series"] = {
            name: [g[name] for g in gathered] for name in cfg.observables
        }
    return out


def combined_mean_error(per_replica_series: list[np.ndarray]) -> tuple[float, float]:
    """Mean and error from independent replica series.

    The replica means are i.i.d. (independent chains), so the standard
    error of their mean needs no autocorrelation analysis -- the
    classic statistical advantage of replica parallelism.
    """
    means = np.array([np.mean(s) for s in per_replica_series], dtype=float)
    r = means.size
    if r < 2:
        raise ValueError("need at least two replicas for an error estimate")
    return float(means.mean()), float(means.std(ddof=1) / np.sqrt(r))
