"""Vectorized checkerboard Metropolis for anisotropic classical Ising models.

This is the workhorse classical engine: the Suzuki--Trotter mapping
turns a d-dimensional transverse-field Ising model into a
(d+1)-dimensional *anisotropic* classical Ising model, so one sampler
serves the 1-D TFIM (2-D classical), the 2-D TFIM (3-D classical) and
-- run isotropically -- the plain 2-D Ising model validated against
Onsager.

Conventions: spins ``s = +-1`` on a periodic hypercubic lattice of even
extents; the *reduced* Hamiltonian is

    beta H = - sum_a K_a sum_<ij>_a s_i s_j

with one dimensionless coupling ``K_a`` per axis.  The two-color
checkerboard (color = parity of the coordinate sum) makes all
same-color sites non-interacting, so a whole color is updated in one
vectorized Metropolis step -- and, crucially for the parallel driver,
simultaneous acceptance within a color is *exactly* equivalent to any
sequential order, which is what makes domain-decomposed runs
bit-identical to serial ones given the same per-site random numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import kernels
from repro.util.rng import RankStream, SeedSequenceFactory

__all__ = ["AnisotropicIsing", "IsingObservables", "FLOPS_PER_SPIN_UPDATE"]

#: Modeled floating-point work per spin-update attempt (2d neighbor
#: loads, d multiply-adds, one exp-table lookup, one compare).
FLOPS_PER_SPIN_UPDATE = 14.0


@dataclass
class IsingObservables:
    """Per-measurement time series from a classical run.

    ``bond_sums[a]`` is ``sum_<ij>_a s_i s_j`` along axis ``a`` -- the
    sufficient statistics from which every energy-like estimator
    (classical energy, quantum TFIM estimators) is assembled.
    """

    magnetization: np.ndarray  # mean spin per config
    abs_magnetization: np.ndarray
    bond_sums: np.ndarray  # (n_measurements, ndim)

    @property
    def n_measurements(self) -> int:
        return len(self.magnetization)

    def binder_cumulant(self) -> float:
        """``U4 = 1 - <m^4> / (3 <m^2>^2)``."""
        m2 = float(np.mean(self.magnetization**2))
        m4 = float(np.mean(self.magnetization**4))
        if m2 == 0:
            return 0.0
        return 1.0 - m4 / (3.0 * m2 * m2)


class AnisotropicIsing:
    """Checkerboard Metropolis sampler on a periodic hypercubic lattice."""

    def __init__(
        self,
        shape: Sequence[int],
        couplings: Sequence[float],
        seed: int | None = 0,
        stream: RankStream | None = None,
        hot_start: bool = False,
        kernel: str = "auto",
    ):
        shape = tuple(int(n) for n in shape)
        if len(shape) < 1:
            raise ValueError("need at least one axis")
        if len(couplings) != len(shape):
            raise ValueError("need one coupling per axis")
        for n, k in zip(shape, couplings):
            if n == 1:
                # Inert embedding axis (used to lift a 2-D problem into the
                # 3-D block driver); it must not carry interactions.
                if k != 0.0:
                    raise ValueError(
                        "extent-1 axes must have zero coupling (a periodic "
                        "size-1 axis would self-interact)"
                    )
            elif n < 2 or n % 2:
                raise ValueError(
                    f"periodic checkerboard lattices need even extents >= 2 "
                    f"(or inert extent-1 axes), got {shape}"
                )
        self.shape = shape
        self.ndim = len(shape)
        self.couplings = np.asarray(couplings, dtype=float)
        self.stream = stream if stream is not None else SeedSequenceFactory(
            seed if seed is not None else 0
        ).rank_stream(0)
        if hot_start:
            self.spins = (
                2 * self.stream.integers(0, 2, size=shape).astype(np.int8) - 1
            )
        else:
            self.spins = np.ones(shape, dtype=np.int8)
        # color[i] = parity of coordinate sum
        grids = np.indices(shape).sum(axis=0)
        self._color_masks = [(grids % 2) == c for c in (0, 1)]
        # Kernel backend for the color updates ("auto": registry best;
        # every backend yields the bit-identical trajectory).
        self.kernel = kernels.resolve_kernel(kernel)
        self._ops = kernels.get_ops(self.kernel)
        self.n_attempted = 0
        self.n_accepted = 0

    @property
    def n_sites(self) -> int:
        return int(np.prod(self.shape))

    # ------------------------------------------------------------------
    def local_field(self) -> np.ndarray:
        """``sum_a K_a (s_{i+e_a} + s_{i-e_a})`` for every site (vectorized)."""
        field = np.zeros(self.shape)
        for a in range(self.ndim):
            field += self.couplings[a] * (
                np.roll(self.spins, 1, axis=a) + np.roll(self.spins, -1, axis=a)
            )
        return field

    def sweep(self, uniforms: np.ndarray | None = None) -> None:
        """One full lattice sweep: both checkerboard colors.

        ``uniforms`` (same shape as the lattice) lets a caller supply
        the per-site random numbers -- the hook the parallel driver
        uses to achieve bit-identical serial/parallel trajectories.
        """
        if uniforms is None:
            uniforms = self.stream.uniform(size=self.shape)
        elif uniforms.shape != self.shape:
            raise ValueError(f"uniforms shape {uniforms.shape} != lattice {self.shape}")
        # Metropolis ratio exp(-2 s_i field_i); accept where u < ratio.
        log_u = np.log(np.maximum(uniforms, 1e-300))
        op = self._ops["ising_color"]
        for mask in self._color_masks:
            self.spins, n_acc = op(self.spins, self.couplings, mask, log_u)
            self.n_attempted += int(mask.sum())
            self.n_accepted += n_acc

    @property
    def acceptance_rate(self) -> float:
        return self.n_accepted / self.n_attempted if self.n_attempted else 0.0

    # ------------------------------------------------------------------
    def bond_sum(self, axis: int) -> float:
        """``sum_<ij> s_i s_j`` along one axis (all periodic bonds)."""
        return float(np.sum(self.spins * np.roll(self.spins, -1, axis=axis)))

    def bond_sums(self) -> np.ndarray:
        return np.array([self.bond_sum(a) for a in range(self.ndim)])

    def reduced_energy(self) -> float:
        """``beta H = -sum_a K_a bond_sum(a)`` of the current configuration."""
        return float(-np.dot(self.couplings, self.bond_sums()))

    def magnetization(self) -> float:
        return float(self.spins.mean())

    # ------------------------------------------------------------------
    def run(
        self,
        n_sweeps: int,
        n_thermalize: int = 0,
        measure_every: int = 1,
    ) -> IsingObservables:
        """Thermalize, sweep, and record the standard time series."""
        if n_sweeps < 1:
            raise ValueError("need at least one measured sweep")
        for _ in range(n_thermalize):
            self.sweep()
        mags, amags, bsums = [], [], []
        for s in range(n_sweeps):
            self.sweep()
            if s % measure_every == 0:
                m = self.magnetization()
                mags.append(m)
                amags.append(abs(m))
                bsums.append(self.bond_sums())
        return IsingObservables(
            magnetization=np.array(mags),
            abs_magnetization=np.array(amags),
            bond_sums=np.array(bsums),
        )
