"""Text visualization of world-line configurations.

Renders the space--time spin lattice the way the original papers drew
it: imaginary time running down the page, one column per site, with the
up-spin world lines shown as filled tracks.  Purely for inspection and
teaching -- estimators never go through this path.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_worldlines", "kink_positions"]


def kink_positions(spins: np.ndarray) -> list[tuple[int, int]]:
    """(site, slice) pairs where a world line enters or leaves a site.

    A "kink" here is any slice boundary where a site's occupation
    changes -- the space-time locations of the off-diagonal plaquettes.
    """
    s = np.asarray(spins)
    if s.ndim != 2:
        raise ValueError("spins must be a (sites, slices) array")
    changed = s != np.roll(s, -1, axis=1)
    sites, slices = np.nonzero(changed)
    return list(zip(sites.tolist(), slices.tolist()))


def render_worldlines(
    spins: np.ndarray,
    up_char: str = "#",
    down_char: str = ".",
    max_sites: int = 64,
    max_slices: int = 64,
) -> str:
    """ASCII picture of a world-line configuration.

    Rows are imaginary-time slices (time increases downward), columns
    are lattice sites; ``up_char`` marks sites carrying an up-spin world
    line.  Larger configurations are cropped with an ellipsis note.
    """
    s = np.asarray(spins)
    if s.ndim != 2:
        raise ValueError("spins must be a (sites, slices) array")
    n_sites, n_slices = s.shape
    cropped = n_sites > max_sites or n_slices > max_slices
    view = s[:max_sites, :max_slices]

    header = "sites " + "".join(str(i % 10) for i in range(view.shape[0]))
    lines = [header]
    for t in range(view.shape[1]):
        row = "".join(
            up_char if view[i, t] else down_char for i in range(view.shape[0])
        )
        lines.append(f"t={t:<3d} {row}")
    n_kinks = len(kink_positions(s))
    lines.append(
        f"({n_sites} sites x {n_slices} slices, {n_kinks} kinks"
        + (", cropped)" if cropped else ")")
    )
    return "\n".join(lines)
