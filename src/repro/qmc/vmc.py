"""Variational Monte Carlo baseline: Marshall--Jastrow wave function.

The era's standard cheap comparison point for ground-state energies.
For the spin-1/2 Heisenberg/XXZ antiferromagnetic chain the trial state
is

    psi(sigma) = (-1)^(N_up on sublattice B) * exp(-alpha sum_<ij> s_i s_j)

with ``s = +-1/2`` the S^z eigenvalues: the Marshall sign rule times a
nearest-neighbor Jastrow factor.  Sampling runs in the S^z = 0 sector
with nearest-neighbor pair-exchange Metropolis moves on ``|psi|^2``;
the variational energy is the average local energy

    E_L(sigma) = sum_b Jz s_i s_j
                 - (|Jxy|/2) sum_{b antiparallel} exp(-alpha * dJastrow_b)

(the minus sign is the Marshall sign of a nearest-neighbor exchange on
a bipartite lattice).  ``E_vmc >= E_0`` is a theorem; the test suite
checks it against Lanczos.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.hamiltonians import XXZChainModel
from repro.util.rng import RankStream, SeedSequenceFactory

__all__ = ["MarshallJastrowVmc", "VmcResult"]


@dataclass
class VmcResult:
    """Outcome of one VMC run at fixed variational parameter."""

    alpha: float
    local_energies: np.ndarray
    acceptance_rate: float

    @property
    def energy(self) -> float:
        return float(self.local_energies.mean())

    @property
    def energy_error_naive(self) -> float:
        e = self.local_energies
        return float(e.std(ddof=1) / np.sqrt(e.size))


class MarshallJastrowVmc:
    """VMC sampler for the XXZ chain ground state in the S^z = 0 sector."""

    def __init__(
        self,
        model: XXZChainModel,
        alpha: float,
        seed: int | None = 0,
        stream: RankStream | None = None,
    ):
        if model.n_sites % 2:
            raise ValueError("S^z = 0 sector needs an even site count")
        if model.field != 0.0:
            raise ValueError("VMC baseline is for the zero-field chain")
        self.model = model
        self.alpha = float(alpha)
        self.L = model.n_sites
        self.periodic = model.periodic
        self.stream = stream if stream is not None else SeedSequenceFactory(
            seed if seed is not None else 0
        ).rank_stream(0)
        # Neel start: alternating up/down, S^z = 0.
        self.spins = np.where(np.arange(self.L) % 2 == 0, 0.5, -0.5)

    @property
    def n_bonds(self) -> int:
        return self.L if self.periodic else self.L - 1

    def _bond_sites(self, b: int) -> tuple[int, int]:
        return b, (b + 1) % self.L

    def log_psi_sq(self, spins: np.ndarray | None = None) -> float:
        """``2 ln |psi|`` of a configuration (sign excluded: it squares away)."""
        s = self.spins if spins is None else spins
        total = 0.0
        for b in range(self.n_bonds):
            i, j = self._bond_sites(b)
            total += s[i] * s[j]
        return -2.0 * self.alpha * total

    def _jastrow_exchange_delta(self, i: int, j: int) -> float:
        """Change of ``sum_<ab> s_a s_b`` under exchanging spins at NN sites i, j.

        Only the bonds adjacent to i and j (excluding bond (i,j) itself,
        which is invariant) change.
        """
        s = self.spins
        delta = 0.0
        for site, other in ((i, j), (j, i)):
            for nb in self._neighbors(site):
                if nb == other:
                    continue
                delta += (s[other] - s[site]) * s[nb]
        return delta

    def _neighbors(self, site: int) -> list[int]:
        if self.periodic:
            return [(site - 1) % self.L, (site + 1) % self.L]
        out = []
        if site > 0:
            out.append(site - 1)
        if site < self.L - 1:
            out.append(site + 1)
        return out

    def local_energy(self) -> float:
        """``E_L`` of the current configuration."""
        s = self.spins
        jz, jxy = self.model.jz, abs(self.model.jxy)
        diag = 0.0
        offdiag = 0.0
        for b in range(self.n_bonds):
            i, j = self._bond_sites(b)
            diag += jz * s[i] * s[j]
            if s[i] != s[j]:
                delta = self._jastrow_exchange_delta(i, j)
                offdiag += -(jxy / 2.0) * np.exp(-self.alpha * delta)
        return float(diag + offdiag)

    def sweep(self) -> int:
        """One Metropolis sweep of NN exchange attempts; returns acceptances."""
        accepted = 0
        for _ in range(self.n_bonds):
            b = self.stream.choice(self.n_bonds)
            i, j = self._bond_sites(b)
            if self.spins[i] == self.spins[j]:
                continue
            delta = self._jastrow_exchange_delta(i, j)
            # |psi'|^2 / |psi|^2 = exp(-2 alpha delta)
            log_ratio = -2.0 * self.alpha * delta
            if log_ratio >= 0 or self.stream.uniform() < np.exp(log_ratio):
                self.spins[i], self.spins[j] = self.spins[j], self.spins[i]
                accepted += 1
        return accepted

    def run(self, n_sweeps: int, n_thermalize: int = 50) -> VmcResult:
        """Thermalize, sweep and accumulate local energies."""
        if n_sweeps < 1:
            raise ValueError("need at least one sweep")
        for _ in range(n_thermalize):
            self.sweep()
        energies = np.empty(n_sweeps)
        accepted = 0
        for k in range(n_sweeps):
            accepted += self.sweep()
            energies[k] = self.local_energy()
        return VmcResult(
            alpha=self.alpha,
            local_energies=energies,
            acceptance_rate=accepted / (n_sweeps * self.n_bonds),
        )

    @classmethod
    def optimize_alpha(
        cls,
        model: XXZChainModel,
        alphas: np.ndarray,
        n_sweeps: int = 400,
        seed: int = 0,
    ) -> tuple[float, list[VmcResult]]:
        """Grid-search the variational parameter; returns (best_alpha, results)."""
        results = []
        for k, alpha in enumerate(alphas):
            vmc = cls(model, float(alpha), seed=seed + k)
            results.append(vmc.run(n_sweeps))
        best = min(results, key=lambda r: r.energy)
        return best.alpha, results
