"""Two-level ensemble x domain parallelism for the strip driver.

The paper's massively-parallel story composes two orthogonal axes on
one machine: an *ensemble* of independent replicas (different seeds,
optionally different temperatures) where each replica is itself
*domain-decomposed* over a strip of processors.  This module builds
that composition out of :meth:`Communicator.split`:

* world ranks ``[r*P, (r+1)*P)`` form replica ``r``'s **domain
  sub-communicator** (``split(color=replica, ...)``), inside which the
  unchanged :func:`~repro.qmc.parallel.worldline_strip_program` logic
  runs -- the strip driver only ever uses comm-relative ranks, so a
  P-rank domain behaves exactly like a flat P-rank world;
* the ``R`` domain leaders (domain rank 0) form the **ensemble
  sub-communicator** (``split(..., label="ensemble")``), over which
  replica statistics are pooled.  The ``ensemble`` label routes its
  clock charges to the ``ensemble``/``ensemble_wait`` categories, so
  telemetry reports ensemble-swap and halo traffic as separate
  per-level comm fractions.

**Bit-identity anchor.**  A replica's trajectory consumes randomness
only from the strip driver's rank-count-independent sweep streams
(seeded by ``sweep_seed``), never from communicator traffic, and a
domain allreduce at ``P`` ranks combines in exactly the order a flat
``P``-rank run uses.  A composed ``R x P`` run is therefore
bit-identical, replica by replica, to ``R`` independent flat strip
runs with the same per-replica seeds -- the correctness anchor the
test suite asserts on all three backends.

**Fault containment.**  Ensemble traffic is the only coupling between
replicas, and every ensemble operation here tolerates a
:class:`~repro.vmp.faults.RankFailure`: if one replica's domain dies,
the surviving replicas complete their own trajectories (with
``ensemble_degraded=True`` and no pooled series) instead of cascading.

**Checkpointing.**  Each replica checkpoints into its own
``replica####/`` subdirectory using the strip driver's per-rank
bundles (fingerprinted at ``n_ranks=P``), and world rank 0 writes a
``layout.json`` manifest recording ``R x P``.  A resume validates the
manifest first: a flat-layout checkpoint directory (no manifest) or a
mismatched geometry is rejected with a clear error before any rank
state is touched.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.obs.health import NOOP_HEALTH, HealthMonitor, clock_comm_seconds
from repro.obs.online import Welford, gelman_rubin_from_pooled_sums
from repro.qmc.parallel import WorldlineStripConfig, _StripState
from repro.vmp.faults import RankFailure

__all__ = [
    "TwoLevelConfig",
    "two_level_program",
    "replica_checkpoint_dir",
    "read_layout_manifest",
]

_MANIFEST = "layout.json"


@dataclass(frozen=True)
class TwoLevelConfig:
    """Composed ensemble x domain run: ``replicas`` strips of ``domain_ranks``.

    ``base`` is the per-replica strip configuration; replica ``r`` runs
    it with ``sweep_seed = sweep_seeds[r]`` (default: ``base.sweep_seed
    + r``, giving independent trajectories) and ``beta = betas[r]``
    when a temperature ladder is given.  ``ensemble_every`` is the
    cadence, in measurement steps, of the in-run ensemble heartbeat
    (leaders pool the latest energy estimate; 0 disables it).
    """

    replicas: int
    domain_ranks: int
    base: WorldlineStripConfig
    sweep_seeds: tuple[int, ...] | None = None
    betas: tuple[float, ...] | None = None
    ensemble_every: int = 1

    def __post_init__(self):
        if self.replicas < 1:
            raise ValueError("need at least one replica")
        if self.domain_ranks < 1:
            raise ValueError("need at least one domain rank per replica")
        if self.sweep_seeds is not None and len(self.sweep_seeds) != self.replicas:
            raise ValueError(
                f"sweep_seeds has {len(self.sweep_seeds)} entries for "
                f"{self.replicas} replicas"
            )
        if self.betas is not None and len(self.betas) != self.replicas:
            raise ValueError(
                f"betas has {len(self.betas)} entries for {self.replicas} replicas"
            )
        if self.ensemble_every < 0:
            raise ValueError("ensemble_every must be >= 0")

    @property
    def n_ranks(self) -> int:
        """World size of the composed run."""
        return self.replicas * self.domain_ranks

    def seed_for(self, replica: int) -> int:
        if self.sweep_seeds is not None:
            return int(self.sweep_seeds[replica])
        return int(self.base.sweep_seed) + replica

    def config_for(self, replica: int) -> WorldlineStripConfig:
        """The flat strip config replica ``replica`` executes."""
        kwargs = {"sweep_seed": self.seed_for(replica)}
        if self.betas is not None:
            kwargs["beta"] = float(self.betas[replica])
        return replace(self.base, **kwargs)


def replica_checkpoint_dir(directory: str | Path, replica: int) -> Path:
    """One replica's bundle subdirectory: ``<directory>/replica0003/``."""
    return Path(directory) / f"replica{replica:04d}"


def read_layout_manifest(directory: str | Path) -> dict:
    """Load and return a checkpoint directory's two-level manifest.

    Raises ``ValueError`` when the manifest is absent (a flat-layout
    checkpoint cannot seed a two-level resume) or malformed.
    """
    path = Path(directory) / _MANIFEST
    if not path.exists():
        raise ValueError(
            f"checkpoint directory {directory} has no {_MANIFEST} manifest: "
            f"it holds a flat-layout checkpoint, which cannot resume a "
            f"two-level (replicas x strip) run"
        )
    manifest = json.loads(path.read_text())
    if manifest.get("layout") != "two-level":
        raise ValueError(
            f"manifest {path} declares layout {manifest.get('layout')!r}, "
            f"expected 'two-level'"
        )
    return manifest


def _write_layout_manifest(directory: str | Path, cfg: TwoLevelConfig) -> None:
    """Atomically write the composed layout's manifest (world rank 0)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / _MANIFEST
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(
        json.dumps(
            {
                "layout": "two-level",
                "replicas": cfg.replicas,
                "domain_ranks": cfg.domain_ranks,
            }
        )
    )
    os.replace(tmp, path)


def _validate_resume_layout(directory: str | Path, cfg: TwoLevelConfig) -> None:
    manifest = read_layout_manifest(directory)
    for key, want in (
        ("replicas", cfg.replicas),
        ("domain_ranks", cfg.domain_ranks),
    ):
        got = manifest.get(key)
        if got != want:
            raise ValueError(
                f"checkpoint layout mismatch in {directory}: {key} is "
                f"{got!r}, this run expects {want!r}"
            )


def two_level_program(comm, cfg: TwoLevelConfig, checkpoint=None, health=None) -> dict:
    """SPMD rank program: ``R`` strip replicas over domain sub-communicators.

    Returns on every rank its replica's trajectory (``energy`` /
    ``magnetization`` series, final owned spins, move counters --
    bit-identical to the equivalent flat strip run) plus the
    ensemble-pooled mean series (``ensemble_energy`` /
    ``ensemble_magnetization``; None when pooling was degraded by a
    peer-replica failure).

    ``health`` (a :class:`~repro.obs.health.HealthRules`) enables the
    streaming run-health monitor exactly as in
    :func:`~repro.qmc.parallel.worldline_strip_program`, plus the
    two-level-only diagnostic: at the ensemble heartbeat cadence the
    ``R`` replica leaders pool their streaming energy moments with one
    sum-allreduce over the ensemble communicator (charged to the
    ``ensemble`` clock categories) and evaluate the cross-replica
    Gelman--Rubin R-hat against ``health.rhat_max``.  The monitor adds
    no RNG draws and no domain-level traffic, so trajectories stay
    bit-identical with health on or off.
    """
    R, P = cfg.replicas, cfg.domain_ranks
    if comm.size != R * P:
        raise ValueError(
            f"two-level layout {R} x {P} needs {R * P} ranks, got {comm.size}"
        )
    replica = comm.rank // P
    domain = comm.split(replica, key=comm.rank, name=f"replica{replica}")
    is_leader = domain.rank == 0
    ensemble = comm.split(
        0 if is_leader else None,
        key=comm.rank,
        label="ensemble",
        name="ensemble",
    )

    monitor = (
        HealthMonitor(health, rank=comm.rank, replica=replica)
        if health is not None
        else NOOP_HEALTH
    )
    health_on = monitor.enabled
    check_every = health.interval if health is not None else 0
    energy_stats = Welford()

    rep_cfg = cfg.config_for(replica)
    if checkpoint is not None and checkpoint.resume:
        _validate_resume_layout(checkpoint.directory, cfg)
    state = _StripState(domain, rep_cfg)
    energies: list[float] = []
    mags: list[float] = []
    first_sweep = 0
    rep_dir = (
        replica_checkpoint_dir(checkpoint.directory, replica)
        if checkpoint is not None
        else None
    )
    if checkpoint is not None and checkpoint.resume:
        first_sweep, energies, mags = state.restore_rank_state(rep_dir)
    else:
        for _ in range(rep_cfg.n_thermalize):
            state.sweep()

    degraded = False
    n_syncs = 0
    measured = 0
    for s in range(first_sweep, rep_cfg.n_sweeps):
        state.sweep()
        if s % rep_cfg.measure_every == 0:
            state.exchange_ghosts()
            dlog = domain.allreduce(state.local_dlog_sum())
            mag = domain.allreduce(state.local_magnetization())
            energies.append(-dlog / state.n_trotter)
            mags.append(mag)
            measured += 1
            if health_on:
                monitor.t_model = comm.clock.now
                monitor.observe("energy", energies[-1], s)
                monitor.observe("magnetization", mag, s)
                energy_stats.push(energies[-1])
            # Ensemble heartbeat: leaders pool the latest estimate so
            # the run exercises (and telemetry measures) ensemble-level
            # traffic at a controlled cadence.  A peer-replica failure
            # degrades pooling but never this replica's trajectory.
            if (
                ensemble is not None
                and not degraded
                and cfg.ensemble_every
                and measured % cfg.ensemble_every == 0
            ):
                try:
                    ensemble.allreduce(energies[-1])
                    n_syncs += 1
                    # Cross-replica convergence: pool the leaders'
                    # streaming energy moments and check R-hat.  One
                    # extra ensemble-charged allreduce per heartbeat;
                    # no domain traffic, no RNG, so the trajectory is
                    # untouched.
                    if health_on and R >= 2 and measured >= 2:
                        count, mean, var = energy_stats.moments()
                        sums = ensemble.allreduce(
                            np.array([mean, mean * mean, var], dtype=np.float64)
                        )
                        rhat = gelman_rubin_from_pooled_sums(
                            count, R, sums[0], sums[1], sums[2]
                        )
                        monitor.t_model = comm.clock.now
                        monitor.observe_rhat("energy", rhat, s)
                except RankFailure:
                    degraded = True
        if (
            checkpoint is not None
            and checkpoint.every
            and (s + 1) % checkpoint.every == 0
        ):
            if comm.rank == 0:
                _write_layout_manifest(checkpoint.directory, cfg)
            state.save_rank_state(rep_dir, s + 1, energies, mags)
        if check_every and (s + 1) % check_every == 0:
            monitor.check(
                s + 1,
                attempted=state.n_attempted,
                accepted=state.n_accepted,
                model_seconds=comm.clock.now,
                comm_seconds=clock_comm_seconds(comm.clock),
            )

    # Pooled mean series, computed once from the full series so resumed
    # runs pool bit-identically to uninterrupted ones.
    pooled_e = pooled_m = None
    if ensemble is not None and not degraded:
        try:
            pooled_e = ensemble.allreduce(np.asarray(energies, dtype=np.float64))
            pooled_m = ensemble.allreduce(np.asarray(mags, dtype=np.float64))
            pooled_e = pooled_e / R
            pooled_m = pooled_m / R
        except RankFailure:
            degraded = True
            pooled_e = pooled_m = None
    if is_leader:
        pooled = domain.bcast((pooled_e, pooled_m, degraded), root=0)
    else:
        pooled = domain.bcast(None, root=0)
    pooled_e, pooled_m, degraded = pooled

    owned = state.loc[2 : state.n_owned + 2].copy()
    out = {
        "replica": replica,
        "energy": np.array(energies),
        "magnetization": np.array(mags),
        "owned_spins": owned,
        "start": state.start,
        "stop": state.stop,
        "beta": rep_cfg.beta,
        "dtau": state.dtau,
        "mode": rep_cfg.mode,
        "n_attempted": state.n_attempted,
        "n_accepted": state.n_accepted,
        "ensemble_energy": pooled_e,
        "ensemble_magnetization": pooled_m,
        "n_ensemble_syncs": n_syncs,
        "ensemble_degraded": degraded,
    }
    if health_on:
        out["health_events"] = monitor.event_docs()
        out["health_summary"] = monitor.summary()
    return out
