"""Trotter-error extrapolation: E(dtau) -> E(0).

The checkerboard breakup carries a systematic error O(dtau^2) in every
observable.  The standard procedure -- run at several Trotter numbers
M, fit ``E(dtau) = E_0 + c dtau^2`` and quote the intercept -- is what
figure F6 of the reconstructed evaluation reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.stats.binning import binned_error

__all__ = ["TrotterPoint", "trotter_extrapolate", "fit_dtau_squared"]


@dataclass(frozen=True)
class TrotterPoint:
    """One (dtau, estimate, error) measurement."""

    dtau: float
    value: float
    error: float


def fit_dtau_squared(points: Sequence[TrotterPoint]) -> tuple[float, float]:
    """Weighted least-squares fit of ``v = v0 + c dtau^2``.

    Returns ``(v0, c)``.  Weights are inverse-variance; points with
    zero quoted error get the median weight (guards against degenerate
    exact entries).
    """
    if len(points) < 2:
        raise ValueError("need at least two Trotter points to extrapolate")
    x = np.array([p.dtau**2 for p in points])
    y = np.array([p.value for p in points])
    err = np.array([p.error for p in points])
    pos = err[err > 0]
    fallback = float(np.median(pos)) if pos.size else 1.0
    w = 1.0 / np.where(err > 0, err, fallback) ** 2
    # Solve the 2x2 normal equations of the weighted linear fit.
    s0, s1, s2 = w.sum(), (w * x).sum(), (w * x * x).sum()
    t0, t1 = (w * y).sum(), (w * x * y).sum()
    det = s0 * s2 - s1 * s1
    if det == 0:
        raise ValueError("degenerate Trotter grid (all dtau equal?)")
    v0 = (s2 * t0 - s1 * t1) / det
    c = (s0 * t1 - s1 * t0) / det
    return float(v0), float(c)


def trotter_extrapolate(
    run_at: Callable[[int], np.ndarray],
    beta: float,
    trotter_numbers: Sequence[int],
) -> tuple[float, list[TrotterPoint]]:
    """Run a sampler at several Trotter numbers and extrapolate to dtau = 0.

    Parameters
    ----------
    run_at:
        ``run_at(M)`` must return the energy *time series* measured
        with M Trotter slices-per-color at inverse temperature beta.
    beta:
        Inverse temperature (fixes dtau = beta / M).
    trotter_numbers:
        The M values to run (at least two distinct).

    Returns
    -------
    (extrapolated_value, points)
    """
    if len(set(trotter_numbers)) < 2:
        raise ValueError("need at least two distinct Trotter numbers")
    points = []
    for m in trotter_numbers:
        series = np.asarray(run_at(int(m)), dtype=float)
        err = binned_error(series) if series.size >= 16 else float(
            series.std(ddof=1) / np.sqrt(series.size)
        )
        points.append(TrotterPoint(dtau=beta / m, value=float(series.mean()), error=err))
    v0, _c = fit_dtau_squared(points)
    return v0, points
