"""Swendsen--Wang cluster updates for the anisotropic Ising engine.

The era's (1987) answer to critical slowing down: activate each
*satisfied* bond with probability ``1 - exp(-2|K_a|)``, find the
connected clusters, and flip every cluster with probability 1/2.  The
algorithm is exact (Fortuin--Kasteleyn identity) for any sign and any
anisotropy of the couplings -- which matters here because the TFIM
mapping produces strongly anisotropic lattices (``K_tau`` grows like
``-ln(dtau Gamma)/2``), where single-spin flips crawl but clusters
percolate along the time axis freely.

Implementation notes: bonds are enumerated per axis with ``np.roll``
(periodic); cluster labeling uses
:func:`scipy.sparse.csgraph.connected_components` on the activated-bond
graph, so a full cluster decomposition of a 64x64x16 lattice is a few
milliseconds.  Extent-1 (inert) axes carry zero coupling and activate
nothing.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.qmc.classical_ising import AnisotropicIsing

__all__ = ["SwendsenWangIsing"]


class SwendsenWangIsing(AnisotropicIsing):
    """Anisotropic Ising sampler with Swendsen--Wang cluster sweeps.

    Inherits the whole observable surface (bond sums, magnetization,
    ``run``) from :class:`AnisotropicIsing`; ``sweep`` performs one full
    cluster decomposition + flip.  ``mix_local`` interleaves a local
    Metropolis sweep after every cluster sweep, the standard recipe when
    both short- and long-wavelength modes matter.
    """

    def __init__(self, *args, mix_local: bool = False, **kwargs):
        super().__init__(*args, **kwargs)
        self.mix_local = bool(mix_local)
        self._site_index = np.arange(self.n_sites).reshape(self.shape)
        # Per-axis activation probability of a satisfied bond.
        self._p_activate = 1.0 - np.exp(-2.0 * np.abs(self.couplings))
        # The +1-neighbor index table per active axis is pure geometry:
        # build it once instead of re-rolling every sweep.
        self._rolled_index = [
            np.roll(self._site_index, -1, axis=a)
            if (self.couplings[a] != 0.0 and self.shape[a] > 1)
            else None
            for a in range(self.ndim)
        ]
        # Reusable all-ones edge weights for the activated-bond graph.
        self._edge_ones = np.ones(self.ndim * self.n_sites, dtype=np.int8)
        self.last_n_clusters = self.n_sites

    def _activated_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Endpoint index arrays of all activated bonds this sweep."""
        rows, cols = [], []
        for a in range(self.ndim):
            if self._rolled_index[a] is None:
                continue
            k = self.couplings[a]
            neighbor = np.roll(self.spins, -1, axis=a)
            satisfied = (k * self.spins * neighbor) > 0
            u = self.stream.uniform(size=self.shape)
            active = satisfied & (u < self._p_activate[a])
            rows.append(self._site_index[active])
            cols.append(self._rolled_index[a][active])
        if not rows:
            return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
        return np.concatenate(rows), np.concatenate(cols)

    def cluster_sweep(self) -> int:
        """One Swendsen--Wang update; returns the number of clusters."""
        rows, cols = self._activated_edges()
        n = self.n_sites
        graph = sp.coo_matrix(
            (self._edge_ones[: rows.size], (rows, cols)), shape=(n, n)
        )
        n_clusters, labels = connected_components(graph, directed=False)
        flip = self.stream.uniform(size=n_clusters) < 0.5
        signs = np.where(flip[labels], -1, 1).astype(np.int8).reshape(self.shape)
        self.spins = self.spins * signs
        self.last_n_clusters = int(n_clusters)
        # Every spin was 'attempted' and flipped with probability 1/2.
        self.n_attempted += n
        self.n_accepted += int(flip[labels].sum())
        return n_clusters

    def sweep(self, uniforms: np.ndarray | None = None) -> None:
        """Cluster sweep (optionally followed by one local sweep).

        ``uniforms`` is accepted for signature compatibility with the
        local sampler but only drives the *local* half; cluster bonds
        always draw from the sampler's own stream.
        """
        self.cluster_sweep()
        if self.mix_local:
            super().sweep(uniforms=uniforms)

    def mean_cluster_size(self) -> float:
        """Sites per cluster of the most recent decomposition."""
        return self.n_sites / max(self.last_n_clusters, 1)
