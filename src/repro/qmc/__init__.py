"""Quantum Monte Carlo kernels -- the paper's primary contribution.

* :mod:`repro.qmc.plaquette` -- exact Suzuki--Trotter two-site
  plaquette weights for the spin-1/2 XXZ bond Hamiltonian.
* :mod:`repro.qmc.worldline` -- world-line QMC for XXZ chains:
  checkerboard space--time lattice, local corner-flip updates,
  straight-line (magnetization) updates; scalar reference sweep and a
  vectorized multi-color sweep.
* :mod:`repro.qmc.classical_ising` -- vectorized checkerboard
  Metropolis for anisotropic classical Ising models in 2-D/3-D, the
  engine behind the TFIM mapping.
* :mod:`repro.qmc.tfim` -- transverse-field Ising QMC via the
  quantum--classical mapping, with quantum estimators.
* :mod:`repro.qmc.vmc` -- variational Monte Carlo (Marshall--Jastrow)
  baseline for the Heisenberg chain.
* :mod:`repro.qmc.trotter` -- Delta-tau -> 0 extrapolation driver.
* :mod:`repro.qmc.parallel` -- domain-decomposed SPMD drivers (strip
  world-line, block classical/TFIM) over :mod:`repro.vmp`.
* :mod:`repro.qmc.replica` -- replica (independent Markov chain)
  parallelism.
* :mod:`repro.qmc.tempering` -- parallel tempering across ranks.
"""

from repro.qmc.classical_ising import AnisotropicIsing, IsingObservables
from repro.qmc.cluster import SwendsenWangIsing
from repro.qmc.multicanonical import (
    MulticanonicalSampler,
    WangLandauResult,
    WangLandauSampler,
)
from repro.qmc.plaquette import PlaquetteTable
from repro.qmc.tfim import TfimQmc, TfimMeasurement
from repro.qmc.trotter import TrotterPoint, trotter_extrapolate
from repro.qmc.vmc import MarshallJastrowVmc, VmcResult
from repro.qmc.worldline import WorldlineChainQmc, WorldlineMeasurement
from repro.qmc.worldline2d import Worldline2DMeasurement, WorldlineSquareQmc

__all__ = [
    "PlaquetteTable",
    "WorldlineChainQmc",
    "WorldlineMeasurement",
    "WorldlineSquareQmc",
    "Worldline2DMeasurement",
    "AnisotropicIsing",
    "IsingObservables",
    "SwendsenWangIsing",
    "WangLandauSampler",
    "WangLandauResult",
    "MulticanonicalSampler",
    "TfimQmc",
    "TfimMeasurement",
    "MarshallJastrowVmc",
    "VmcResult",
    "TrotterPoint",
    "trotter_extrapolate",
]
