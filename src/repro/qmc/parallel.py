"""Domain-decomposed SPMD drivers for the QMC kernels.

Two production drivers, each an ordinary rank program runnable under
:func:`repro.vmp.run_spmd` (threads), the multiprocessing backend, or
-- the API being mpi4py-shaped -- real MPI:

* :func:`worldline_strip_program` -- the world-line XXZ chain split
  into contiguous site strips.  Updates proceed stage-by-stage through
  the eight independence classes of the corner moves (stride-4 grids in
  both bond and interval index) and the two straight-line column
  parities.  Each sweep draws one *shared* uniform block (every rank
  derives the same numbers from ``sweep_seed``), sliced per stage, so
  the trajectory is bit-identical across rank counts and across the
  ``mode="scalar"`` / ``mode="vectorized"`` kernels.

* :func:`ising_block_program` -- the anisotropic classical Ising model
  (and therefore the TFIM) split into 2-D spatial blocks over a process
  grid.  Given the same per-site uniforms the parallel trajectory is
  **bit-identical** to the serial one (same-color sites do not
  interact), which the integration tests assert literally.

Halo protocol (both drivers): ghost copies of the boundary data are
refreshed by ONE aggregated contiguous-buffer message per neighbor per
exchange -- two packed spin columns for the strip, a parity-packed
boundary plane for the Ising blocks -- instead of one message per
boundary column/plane.  Under the alpha--beta cost model
(``alpha + n * beta`` per message) aggregation cuts the latency term
by the aggregation factor while leaving the bandwidth term unchanged;
see :class:`repro.lattice.decomposition.HaloSpec` for the accounting.

Ownership conventions (world-line strip, global column indices):

* rank ``r`` owns columns ``[start, stop)`` plus two ghost columns on
  each side; block sizes are even and ``>= 4``.
* corner moves at the seam bonds ``start - 1`` and ``stop - 1`` are
  executed redundantly by *both* adjacent ranks.  Shared stage uniforms
  plus identical ghost neighborhoods make the two decisions identical,
  which eliminates the boundary write-back message entirely.
* straight-line move at column ``c`` is executed by its owner only and
  writes only ``c``.

Overlap pipeline (``overlap=True`` on either driver config): each
independence class runs as **pack -> post isend/irecv -> update
interior -> wait -> update boundary** instead of the lockstep exchange
-> full update.  Interior sites touch no ghost data, so they update
while the halo messages are in flight (offloaded-post cost convention,
see :mod:`repro.vmp.comm`); boundary sites update after the wait.
Within one class no move reads data another move writes (stride-4 /
checkerboard separation exceeds the stencil reach) and the shared
uniforms are indexed by *global* coordinates, so the interior-then-
boundary order produces bit-identical trajectories -- the same spins
flip, in a different wall order, charged to the new ``interior`` /
``boundary`` / ``halo_wait`` clock categories.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING

import numpy as np

from repro import kernels
from repro.lattice.decomposition import (
    BlockDecomposition,
    StripDecomposition,
    pack_plane,
    unpack_plane,
)
from repro.qmc.classical_ising import FLOPS_PER_SPIN_UPDATE
from repro.qmc.plaquette import PlaquetteTable
from repro.models.hamiltonians import XXZSquareModel
from repro.qmc.worldline import FLOPS_PER_CORNER_MOVE
from repro.obs.health import NOOP_HEALTH, HealthMonitor, clock_comm_seconds
from repro.obs.metrics import ACCEPTANCE_EDGES
from repro.qmc.worldline2d import FLOPS_PER_SEGMENT_MOVE, WorldlineSquareQmc
from repro.util.rng import SeedSequenceFactory

if TYPE_CHECKING:  # runtime import would cycle through repro.run.__init__
    from repro.obs.health import HealthRules
    from repro.run.checkpoint import CheckpointConfig

__all__ = [
    "WL_STAGES",
    "N_WL_STAGES",
    "WorldlineStripConfig",
    "worldline_strip_program",
    "IsingBlockConfig",
    "ising_block_program",
    "Worldline2DReplicaConfig",
    "worldline2d_replica_program",
    "worldline2d_replica_flops_per_sweep",
]

# Tag bases for the two drivers (distinct from the collective range).
_TAG_WL = 4096
_TAG_ISING = 8192


def _bind_sweep_metrics(state, metrics) -> None:
    """Pre-bind the shared per-sweep metric handles onto a driver state.

    Both decomposed drivers record the same sweep-level telemetry;
    pre-binding keeps the enabled hot path at one bool test plus float
    adds, and the disabled path at a single bool test.  The states
    additionally bind a ``sweep.kernel_seconds.<backend>`` counter once
    their kernel backend is resolved, so per-sweep kernel time lands in
    the metrics tagged by backend.
    """
    state._obs = bool(metrics.enabled)
    if state._obs:
        state._m_sweeps = metrics.counter("sweep.count")
        state._m_attempted = metrics.counter("sweep.attempted")
        state._m_accepted = metrics.counter("sweep.accepted")
        state._m_model = metrics.counter("sweep.model_seconds")
        state._m_wall = metrics.counter("sweep.wall_seconds")
        state._m_acc_hist = metrics.histogram(
            "sweep.acceptance", ACCEPTANCE_EDGES
        )


def _validate_mode(mode: str) -> None:
    """Config-time check of a driver ``mode`` string (names only --
    availability of a compiled backend is resolved at state init /
    Simulation start, where the structured error can name the run)."""
    if mode in ("scalar", "vectorized", "auto"):
        return
    if mode not in kernels.known_backends():
        raise ValueError(
            f"unknown sweep mode {mode!r}; expected 'scalar', 'vectorized', "
            f"'auto', or a kernel backend ({', '.join(kernels.known_backends())})"
        )

#: Update stages of one world-line sweep: the eight independence
#: classes of the corner moves -- (bond a, interval b) stride-4 grids
#: with (a + b) odd, which are entirely unshaded plaquettes -- followed
#: by the two straight-line column parities.  One shared uniform block
#: is drawn per sweep and sliced per stage.
WL_STAGES = tuple(
    [("corner", a, b) for a in range(4) for b in range(4) if (a + b) % 2 == 1]
    + [("column", p, None) for p in (0, 1)]
)
N_WL_STAGES = len(WL_STAGES)


# ======================================================================
# world-line strip driver
# ======================================================================


@dataclass(frozen=True)
class WorldlineStripConfig:
    """Run parameters of the strip-decomposed world-line chain.

    ``sweep_seed`` drives the shared per-stage uniforms that make the
    trajectory independent of the rank count; ``mode`` selects the
    batched NumPy kernels (default) or the per-move scalar reference,
    which produce bit-identical trajectories.  ``overlap`` switches
    each stage to the five-stage pipeline (pack -> post isend/irecv ->
    update interior -> wait -> update boundary), hiding halo latency
    behind interior moves; trajectories stay bit-identical to the
    lockstep path (the knob is deliberately absent from the checkpoint
    fingerprint, so resumes may toggle it).
    """

    n_sites: int
    jz: float
    jxy: float
    beta: float
    n_slices: int
    n_sweeps: int
    n_thermalize: int = 0
    measure_every: int = 1
    mode: str = "vectorized"
    sweep_seed: int = 12345
    overlap: bool = False

    def __post_init__(self):
        if self.n_sites % 4:
            raise ValueError("parallel world-line driver needs L % 4 == 0")
        if self.n_slices % 4:
            raise ValueError("parallel world-line driver needs n_slices % 4 == 0")
        if self.beta <= 0:
            raise ValueError("beta must be positive")
        if self.n_sweeps < 1:
            raise ValueError("need at least one sweep")
        _validate_mode(self.mode)


class _StripState:
    """Per-rank world-line state: owned columns plus two ghosts per side.

    Local layout along axis 0: ``[ghost(start-2), ghost(start-1),
    owned..., ghost(stop), ghost(stop+1)]``; local index of global
    column ``g`` is ``g - start + 2``.  Two-wide ghosts are exactly the
    neighborhood a redundant seam corner move needs (it reads columns
    ``seam - 1 .. seam + 2``).
    """

    def __init__(self, comm, cfg: WorldlineStripConfig):
        self.comm = comm
        self.cfg = cfg
        self.L = cfg.n_sites
        self.T = cfg.n_slices
        self.n_trotter = cfg.n_slices // 2
        self.dtau = cfg.beta / self.n_trotter
        self.table = PlaquetteTable.build(cfg.jz, cfg.jxy, self.dtau)
        self._logw = np.where(
            self.table.weights > 0,
            np.log(np.maximum(self.table.weights, 1e-300)),
            -np.inf,
        )
        decomp = StripDecomposition(self.L, comm.size, require_even=True)
        self.decomp = decomp
        piece = decomp.piece(comm.rank)
        self.start, self.stop = piece.start, piece.stop
        self.n_owned = piece.n_owned
        self.left, self.right = piece.left_rank, piece.right_rank
        if comm.size > 1 and self.n_owned < 4:
            raise ValueError(
                "strip world-line driver needs >= 4 owned columns per rank"
            )
        # Neel start, straight world lines (legal everywhere).
        g = np.arange(self.start - 2, self.stop + 2)
        self.loc = np.repeat((g % 2).astype(np.int8)[:, None], self.T, axis=1)
        self._t_even = np.arange(0, self.T, 2, dtype=np.intp)
        self._t_odd = np.arange(1, self.T, 2, dtype=np.intp)
        self.sweep_factory = SeedSequenceFactory(cfg.sweep_seed)
        self.sweep_index = 0
        self._n_exchanges = 0
        #: Cumulative Metropolis accounting across the rank's lifetime
        #: (always maintained -- the CLI summary prints acceptance
        #: without telemetry flags).
        self.n_attempted = 0
        self.n_accepted = 0
        # Resolve the kernel backend once per rank ("scalar" bypasses
        # the registry; every registry backend is trajectory-identical).
        self.kernel = kernels.resolve_sweep_mode(cfg.mode)
        self._kops = (
            None if self.kernel == "scalar" else kernels.get_ops(self.kernel)
        )
        _bind_sweep_metrics(self, comm.metrics)
        if self._obs:
            self._m_kernel = comm.metrics.counter(
                f"sweep.kernel_seconds.{self.kernel}"
            )
        # One shared uniform block per sweep, sliced per stage: corner
        # classes consume an (L/4, T/4) lattice, column parities L/2.
        sizes = [
            (self.L // 4) * (self.T // 4) if kind == "corner" else self.L // 2
            for kind, _, _ in WL_STAGES
        ]
        self._u_offsets = np.concatenate(([0], np.cumsum(sizes)))
        self._u_total = int(self._u_offsets[-1])
        self._build_stage_caches()
        #: Overlap pipeline engages only with real neighbors (P > 1) and
        #: a non-degenerate interior in every independence class.
        self.overlap_active = False
        if cfg.overlap and comm.size > 1:
            self._build_overlap_caches()

    # -- static per-stage geometry ----------------------------------------

    #: XOR masks turning a neighbor-plaquette code into its post-flip
    #: value.  A corner move flips the four spins (J, t), (J, t1),
    #: (J+1, t), (J+1, t1); in the code ``s00 + 2 s10 + 4 s01 + 8 s11``
    #: of the neighbors -- rows ordered (J-1, t), (J+1, t), (J, tm1),
    #: (J, t1) -- those spins occupy bits {1,3}, {0,2}, {2,3}, {0,1}.
    _CORNER_XMASK = np.array([[10], [5], [12], [3]], dtype=np.int8)

    def _build_stage_caches(self) -> None:
        """Precompute the index tables of every stage (geometry is static).

        Corner class (a, b): local bonds ``j`` in ``[1, n+1]`` (global
        bonds ``start-1 .. stop-1``, the two ends being the redundant
        seam bonds) with global bond index ``== a (mod 4)``, crossed
        with intervals ``t == b (mod 4)``.  ``ui``/``ut`` index the
        shared ``(L/4, T/4)`` stage-uniform lattice.

        For the batched kernel the four spin gathers of the four
        neighbor plaquettes are fused into flat-index tables of shape
        ``(4, n_moves)`` into ``loc.reshape(-1)``; ``flip`` holds the
        flat positions of the four spins a move toggles.
        """
        n, T, L = self.n_owned, self.T, self.L
        self._corner_cache: dict[tuple[int, int], dict | None] = {}
        for kind, a, b in WL_STAGES:
            if kind != "corner":
                continue
            j0 = 1 + ((a - (self.start - 1)) % 4)
            lj = np.arange(j0, n + 2, 4, dtype=np.intp)
            tt = np.arange(b, T, 4, dtype=np.intp)
            if lj.size == 0 or tt.size == 0:
                self._corner_cache[(a, b)] = None
                continue
            J, Tt = np.meshgrid(lj, tt, indexing="ij")
            J, Tt = J.ravel(), Tt.ravel()
            gb = (self.start - 2 + J) % L
            t1 = (Tt + 1) % T
            tm1 = (Tt - 1) % T
            # Neighbor plaquettes (lb, tt): same row order as the
            # scalar reference's weight product.
            lb = np.stack([J - 1, J + 1, J, J])
            pt = np.stack([Tt, Tt, tm1, t1])
            pt1 = (pt + 1) % T
            self._corner_cache[(a, b)] = {
                "j": J,
                "t": Tt,
                "t1": t1,
                "tm1": tm1,
                "ui": (gb - a) // 4,
                "ut": (Tt - b) // 4,
                "uflat": (gb - a) // 4 * (T // 4) + (Tt - b) // 4,
                "i00": lb * T + pt,
                "i10": (lb + 1) * T + pt,
                "i01": lb * T + pt1,
                "i11": (lb + 1) * T + pt1,
                "flip": np.stack(
                    [J * T + Tt, J * T + t1, (J + 1) * T + Tt, (J + 1) * T + t1]
                ),
            }
        self._column_cache: dict[int, dict] = {}
        for p in (0, 1):
            first = self.start + ((p - self.start) % 2)
            gc = np.arange(first, self.stop, 2, dtype=np.intp)
            cache = {
                "gc": gc,
                "lc": gc - self.start + 2,
                "uc": (gc - p) // 2,
            }
            if gc.size:
                # Bond-columns gc-1 and gc, as (2, n_cols, T/2) flat
                # spin indices; a column flip XORs the off=-1 codes
                # with 10 (bits 1,3) and the off=0 codes with 5.
                i00, i10, i01, i11 = [], [], [], []
                for off in (-1, 0):
                    lb = cache["lc"] + off
                    ts = self._t_even if (p + off) % 2 == 0 else self._t_odd
                    ts1 = (ts + 1) % T
                    i00.append(lb[:, None] * T + ts[None, :])
                    i10.append((lb[:, None] + 1) * T + ts[None, :])
                    i01.append(lb[:, None] * T + ts1[None, :])
                    i11.append((lb[:, None] + 1) * T + ts1[None, :])
                cache.update(
                    c00=np.stack(i00), c10=np.stack(i10),
                    c01=np.stack(i01), c11=np.stack(i11),
                )
            self._column_cache[p] = cache

    @staticmethod
    def _subset_cache(cache: dict, sel: np.ndarray) -> dict | None:
        """The sub-table of a stage cache selected by a boolean mask.

        1-D entries subset along their only axis; the fused gather
        tables subset along their move axis (axis 1).  ``None`` when
        the selection is empty, matching the empty-class convention.
        """
        if not np.any(sel):
            return None
        out = {}
        for k, v in cache.items():
            if isinstance(v, np.ndarray) and v.ndim > 1:
                out[k] = v[:, sel]
            else:
                out[k] = v[sel] if isinstance(v, np.ndarray) else v
        return out

    def _build_overlap_caches(self) -> None:
        """Split every stage cache into interior/boundary sub-tables.

        A corner move at local bond ``J`` reads rows ``J-1 .. J+2``, so
        it is interior iff ``3 <= J <= n-1`` (owned rows are
        ``2 .. n+1``); a column move at local column ``lc`` reads
        ``lc-1 .. lc+1``, interior iff ``3 <= lc <= n``.  Degenerate
        geometries (a populated class with no interior moves -- thin
        strips) disable the overlap with a warning and fall back to the
        lockstep path.
        """
        n = self.n_owned
        self._corner_split: dict[tuple[int, int], tuple[dict | None, dict | None]] = {}
        self._column_split: dict[int, tuple[dict | None, dict | None]] = {}
        rank = self.comm.rank
        for kind, a, b in WL_STAGES:
            if kind == "corner":
                cache = self._corner_cache[(a, b)]
                if cache is None:
                    self._corner_split[(a, b)] = (None, None)
                    continue
                part = self.decomp.overlap_partition(
                    ("wl-corner", rank, a, b), cache["j"], 3, n - 1
                )
                if part.all_boundary:
                    warnings.warn(
                        f"strip overlap disabled: corner class ({a}, {b}) has "
                        f"no interior moves on rank {rank} ({n} owned "
                        f"columns); falling back to the lockstep exchange",
                        stacklevel=3,
                    )
                    self.overlap_active = False
                    return
                self._corner_split[(a, b)] = (
                    self._subset_cache(cache, part.interior),
                    self._subset_cache(cache, part.boundary),
                )
            else:
                cache = self._column_cache[a]
                if cache["lc"].size == 0:
                    self._column_split[a] = (None, None)
                    continue
                part = self.decomp.overlap_partition(
                    ("wl-col", rank, a), cache["lc"], 3, n
                )
                if part.all_boundary:
                    warnings.warn(
                        f"strip overlap disabled: column parity {a} has no "
                        f"interior columns on rank {rank} ({n} owned "
                        f"columns); falling back to the lockstep exchange",
                        stacklevel=3,
                    )
                    self.overlap_active = False
                    return
                self._column_split[a] = (
                    self._subset_cache(cache, part.interior),
                    self._subset_cache(cache, part.boundary),
                )
        self.overlap_active = True

    # -- indexing helpers -------------------------------------------------
    def _codes(self, li: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Corner codes of plaquettes at *local* bond index li, interval t."""
        s = self.loc
        t1 = (t + 1) % self.T
        return (
            s[li, t].astype(np.intp)
            + 2 * s[li + 1, t].astype(np.intp)
            + 4 * s[li, t1].astype(np.intp)
            + 8 * s[li + 1, t1].astype(np.intp)
        )

    def _code1(self, j: int, t: int) -> int:
        """Scalar corner code at one local bond/interval."""
        s = self.loc
        t1 = (t + 1) % self.T
        return (
            int(s[j, t])
            + 2 * int(s[j + 1, t])
            + 4 * int(s[j, t1])
            + 8 * int(s[j + 1, t1])
        )

    # -- communication -----------------------------------------------------
    def exchange_ghosts(self) -> None:
        """Refresh all four ghost columns: ONE message per neighbor.

        The two boundary columns a neighbor needs travel as a single
        contiguous ``(2, T)`` int8 buffer -- the aggregated-halo
        protocol (one alpha charge instead of two).  Single-rank runs
        wrap locally.
        """
        n = self.n_owned
        loc = self.loc
        if self.comm.size == 1:
            loc[0:2] = loc[n : n + 2]
            loc[n + 2 : n + 4] = loc[2:4]
            return
        tag = _TAG_WL + (self._n_exchanges % 16) * 2
        self._n_exchanges += 1
        comm = self.comm
        comm.send(np.ascontiguousarray(loc[n : n + 2]), self.right, tag=tag)
        comm.send(np.ascontiguousarray(loc[2:4]), self.left, tag=tag + 1)
        loc[0:2] = comm.recv(source=self.left, tag=tag)
        loc[n + 2 : n + 4] = comm.recv(source=self.right, tag=tag + 1)

    def _exchange_begin(self) -> tuple | None:
        """Overlap stage 1-2: pack boundary columns, post offloaded sends/recvs.

        Same payloads, destinations, and tag schedule as
        :meth:`exchange_ghosts`; the packing copy
        (``ascontiguousarray``) happens here, before any interior
        update, so the in-flight data is the pre-stage state exactly as
        in the lockstep path.  Single-rank runs wrap locally and return
        ``None``.
        """
        n = self.n_owned
        loc = self.loc
        if self.comm.size == 1:
            loc[0:2] = loc[n : n + 2]
            loc[n + 2 : n + 4] = loc[2:4]
            return None
        tag = _TAG_WL + (self._n_exchanges % 16) * 2
        self._n_exchanges += 1
        comm = self.comm
        comm.isend(
            np.ascontiguousarray(loc[n : n + 2]), self.right, tag=tag,
            offload=True,
        )
        comm.isend(
            np.ascontiguousarray(loc[2:4]), self.left, tag=tag + 1,
            offload=True,
        )
        r_left = comm.irecv(source=self.left, tag=tag, offload=True)
        r_right = comm.irecv(source=self.right, tag=tag + 1, offload=True)
        return (r_left, r_right)

    def _exchange_complete(self, reqs: tuple | None) -> None:
        """Overlap stage 4: wait for the halo and unpack the ghost columns.

        Waits in the same left-then-right order the lockstep path
        receives in, so the modeled clock advances through identical
        arrival stamps.
        """
        if reqs is None:
            return
        r_left, r_right = reqs
        n = self.n_owned
        self.loc[0:2] = r_left.wait()
        self.loc[n + 2 : n + 4] = r_right.wait()

    # -- shared randomness --------------------------------------------------
    def _sweep_uniforms(self) -> np.ndarray:
        """This sweep's uniforms; every rank draws the identical block.

        One generator per sweep yields the ten stage lattices as slices
        of a single draw (corner classes consume the compact
        ``(L/4, T/4)`` class grid, column parities ``L/2`` values).
        Both modes and all rank counts index the same numbers, the
        source of bit-identity; amortizing the generator construction
        over the sweep keeps the shared-randomness cost off the
        vectorized kernels' critical path.
        """
        gen = self.sweep_factory.stream("wl-sweep", self.sweep_index).generator
        return gen.random(self._u_total)

    def _stage_slice(self, u_sweep: np.ndarray, stage_idx: int) -> np.ndarray:
        u = u_sweep[self._u_offsets[stage_idx] : self._u_offsets[stage_idx + 1]]
        if WL_STAGES[stage_idx][0] == "corner":
            return u.reshape(self.L // 4, self.T // 4)
        return u

    # -- corner moves --------------------------------------------------------
    def _corner_class_vectorized(
        self, cache: dict | None, u: np.ndarray, category: str = "compute"
    ) -> None:
        """One corner class (or an interior/boundary sub-table) batched.

        The gather -> XOR-code -> accept -> scatter body is the
        ``strip_corner`` op of the resolved kernel backend (see
        :mod:`repro.kernels`); every backend reproduces the scalar
        reference's weight-product order, keeping accept decisions
        bit-identical.  ``category`` attributes the compute charge
        (``interior``/``boundary`` under the overlap pipeline).
        """
        if cache is None:
            return
        flat = self.loc.reshape(-1)
        uu = u.reshape(-1)[cache["uflat"]]
        n_acc = self._kops["strip_corner"](
            flat, self.table.weights,
            cache["i00"], cache["i10"], cache["i01"], cache["i11"],
            self._CORNER_XMASK, cache["flip"], uu,
        )
        self.n_attempted += cache["j"].size
        self.n_accepted += n_acc
        self.comm.charge_seconds(
            self.comm.machine.compute_time(
                FLOPS_PER_CORNER_MOVE * cache["j"].size
            ),
            category,
        )

    def _corner_class_scalar(
        self, cache: dict | None, u: np.ndarray, category: str = "compute"
    ) -> None:
        """Per-move reference loop; identical op order to the batched kernel."""
        if cache is None:
            return
        w = self.table.weights
        loc = self.loc
        T = self.T
        n_acc = 0
        for j, tt, ai, at in zip(
            cache["j"].tolist(),
            cache["t"].tolist(),
            cache["ui"].tolist(),
            cache["ut"].tolist(),
        ):
            t1 = (tt + 1) % T
            tm1 = (tt - 1) % T
            old = (
                w[self._code1(j - 1, tt)]
                * w[self._code1(j + 1, tt)]
                * w[self._code1(j, tm1)]
                * w[self._code1(j, t1)]
            )
            loc[j, tt] ^= 1
            loc[j, t1] ^= 1
            loc[j + 1, tt] ^= 1
            loc[j + 1, t1] ^= 1
            new = (
                w[self._code1(j - 1, tt)]
                * w[self._code1(j + 1, tt)]
                * w[self._code1(j, tm1)]
                * w[self._code1(j, t1)]
            )
            if new > 0.0 and u[ai, at] * old < new:
                n_acc += 1
            else:
                loc[j, tt] ^= 1
                loc[j, t1] ^= 1
                loc[j + 1, tt] ^= 1
                loc[j + 1, t1] ^= 1
        self.n_attempted += cache["j"].size
        self.n_accepted += n_acc
        self.comm.charge_seconds(
            self.comm.machine.compute_time(
                FLOPS_PER_CORNER_MOVE * cache["j"].size
            ),
            category,
        )

    # -- straight-line column moves -----------------------------------------
    def _col_log_weight1(self, l: int, g: int) -> float:
        """ln W of the two bond-columns adjacent to one local column."""
        total = 0.0
        for off in (-1, 0):
            ts = self._t_even if ((g + off) % 2 == 0) else self._t_odd
            lb = np.full(ts.size, l + off, dtype=np.intp)
            total += float(self._logw[self._codes(lb, ts)].sum())
        return total

    def _column_parity_vectorized(
        self, cache: dict | None, u: np.ndarray, category: str = "compute"
    ) -> None:
        """Straight-line moves of one parity (or an overlap sub-table).

        Straight detection and the flip evaluation run inside the
        backend's ``strip_column`` op over the cached ``(2, n_cols,
        T/2)`` bond-column index matrix (post-flip codes are pre-flip
        codes XORed with 10 / 5, so no speculative column flips); the
        log of the stage's uniforms is taken here with NumPy so every
        backend compares against identical values.
        """
        if cache is None:
            return
        lc = cache["lc"]
        if lc.size == 0:
            return
        log_uu = np.log(np.maximum(u[cache["uc"]], 1e-300))
        n_straight, n_acc = self._kops["strip_column"](
            self.loc, self._logw, lc,
            cache["c00"], cache["c10"], cache["c01"], cache["c11"], log_uu,
        )
        if n_straight == 0:
            return
        self.n_attempted += n_straight
        self.n_accepted += n_acc
        self.comm.charge_seconds(
            self.comm.machine.compute_time(2.0 * self.T * n_straight), category
        )

    def _column_parity_scalar(
        self, cache: dict | None, u: np.ndarray, category: str = "compute"
    ) -> None:
        """Per-column reference loop; identical op order to the batched kernel."""
        if cache is None:
            return
        n_straight = 0
        n_acc = 0
        for g, l, uci in zip(
            cache["gc"].tolist(), cache["lc"].tolist(), cache["uc"].tolist()
        ):
            col = self.loc[l]
            if col.min() != col.max():
                continue
            n_straight += 1
            old_lw = self._col_log_weight1(l, g)
            self.loc[l] ^= 1
            new_lw = self._col_log_weight1(l, g)
            log_ratio = new_lw - old_lw  # -inf - -inf -> nan -> rejected
            if (
                np.isfinite(log_ratio)
                and np.log(np.maximum(u[uci], 1e-300)) < log_ratio
            ):
                n_acc += 1
            else:
                self.loc[l] ^= 1
        self.n_attempted += n_straight
        self.n_accepted += n_acc
        self.comm.charge_seconds(
            self.comm.machine.compute_time(2.0 * self.T * n_straight), category
        )

    def _stage_kernel(self, kind: str, cache: dict | None, u: np.ndarray,
                      category: str = "compute") -> None:
        """Dispatch one stage's (sub-)table to the resolved kernel backend."""
        obs = self._obs
        if obs:
            t0 = perf_counter()
        if kind == "corner":
            if self._kops is None:
                self._corner_class_scalar(cache, u, category)
            else:
                self._corner_class_vectorized(cache, u, category)
        elif self._kops is None:
            self._column_parity_scalar(cache, u, category)
        else:
            self._column_parity_vectorized(cache, u, category)
        if obs:
            self._m_kernel.inc(perf_counter() - t0)

    def sweep(self) -> None:
        """One full sweep: 10 stages, one aggregated ghost exchange each.

        With the overlap pipeline active, each stage instead posts its
        exchange, updates the interior sub-table while the halo is in
        flight, waits, and finishes with the boundary sub-table.
        """
        obs = self._obs
        if obs:
            t0_wall = perf_counter()
            t0_model = self.comm.clock.now
            att0, acc0 = self.n_attempted, self.n_accepted
        u_sweep = self._sweep_uniforms()
        if self.overlap_active:
            for s_idx, (kind, x, y) in enumerate(WL_STAGES):
                reqs = self._exchange_begin()
                u = self._stage_slice(u_sweep, s_idx)
                split = (
                    self._corner_split[(x, y)]
                    if kind == "corner"
                    else self._column_split[x]
                )
                self._stage_kernel(kind, split[0], u, "interior")
                self._exchange_complete(reqs)
                self._stage_kernel(kind, split[1], u, "boundary")
        else:
            for s_idx, (kind, x, y) in enumerate(WL_STAGES):
                self.exchange_ghosts()
                u = self._stage_slice(u_sweep, s_idx)
                cache = (
                    self._corner_cache[(x, y)]
                    if kind == "corner"
                    else self._column_cache[x]
                )
                self._stage_kernel(kind, cache, u)
        self.sweep_index += 1
        if obs:
            att = self.n_attempted - att0
            acc = self.n_accepted - acc0
            self._m_sweeps.inc()
            self._m_attempted.inc(att)
            self._m_accepted.inc(acc)
            self._m_model.inc(self.comm.clock.now - t0_model)
            self._m_wall.inc(perf_counter() - t0_wall)
            if att:
                self._m_acc_hist.observe(acc / att)

    # -- checkpoint/restart --------------------------------------------------
    def _checkpoint_expect(self) -> dict:
        """Geometry/seed fingerprint a resume must match exactly."""
        cfg = self.cfg
        return {
            "driver": "worldline_strip",
            "n_ranks": self.comm.size,
            "n_sites": self.L,
            "n_slices": self.T,
            "jz": cfg.jz,
            "jxy": cfg.jxy,
            "beta": cfg.beta,
            "sweep_seed": cfg.sweep_seed,
            "n_thermalize": cfg.n_thermalize,
        }

    def save_rank_state(self, directory, sweeps_done: int, energies, mags) -> None:
        """Snapshot this rank's complete resumable state to its bundle.

        Captures the ghosted local spins, the sweep and halo-exchange
        counters, the rank's RNG stream, and the accumulated series --
        everything a restarted rank needs to continue the trajectory
        bit-identically (``mode`` is deliberately absent: scalar and
        vectorized kernels share trajectories, so resumes may switch).
        """
        from repro.run.checkpoint import pack_rng_state, save_rank_checkpoint

        meta = self._checkpoint_expect()
        meta["sweeps_done"] = int(sweeps_done)
        meta["sweep_index"] = int(self.sweep_index)
        meta["n_exchanges"] = int(self._n_exchanges)
        save_rank_checkpoint(
            directory,
            self.comm.rank,
            meta,
            {
                "loc": self.loc,
                "energy": np.asarray(energies, dtype=np.float64),
                "magnetization": np.asarray(mags, dtype=np.float64),
                "rng_state": pack_rng_state(self.comm.stream.generator),
            },
            metrics=self.comm.metrics,
        )

    def restore_rank_state(self, directory) -> tuple[int, list, list]:
        """Restore this rank from its bundle; returns (sweeps_done, series...)."""
        from repro.run.checkpoint import load_rank_checkpoint, restore_rng_state

        meta, arrays = load_rank_checkpoint(
            directory, self.comm.rank, expect=self._checkpoint_expect(),
            metrics=self.comm.metrics,
        )
        if arrays["loc"].shape != self.loc.shape:
            raise ValueError(
                f"checkpoint strip block {arrays['loc'].shape} != "
                f"this rank's {self.loc.shape}"
            )
        self.loc[...] = arrays["loc"]
        self.sweep_index = int(meta["sweep_index"])
        self._n_exchanges = int(meta["n_exchanges"])
        restore_rng_state(self.comm.stream.generator, arrays["rng_state"])
        return (
            int(meta["sweeps_done"]),
            arrays["energy"].tolist(),
            arrays["magnetization"].tolist(),
        )

    # -- measurement ---------------------------------------------------------
    def local_dlog_sum(self) -> float:
        """Sum of d ln W over shaded plaquettes at owned bonds."""
        gi = np.arange(self.start, self.stop, dtype=np.intp)
        li = gi - self.start + 2
        total = 0.0
        for parity, ts in ((0, self._t_even), (1, self._t_odd)):
            sel = li[(gi % 2) == parity]
            if sel.size == 0:
                continue
            bb = np.repeat(sel, ts.size)
            tt = np.tile(ts, sel.size)
            total += float(np.sum(self.table.dlog[self._codes(bb, tt)]))
        return total

    def local_magnetization(self) -> float:
        """Owned-column contribution to total S^z on slice 0."""
        return float(self.loc[2 : self.n_owned + 2, 0].sum() - self.n_owned / 2.0)


def worldline_strip_program(
    comm,
    cfg: WorldlineStripConfig,
    checkpoint: "CheckpointConfig | None" = None,
    health: "HealthRules | None" = None,
) -> dict:
    """SPMD rank program: strip-decomposed world-line XXZ chain.

    Returns, on every rank, a dict with the energy and magnetization
    time series (identical across ranks thanks to allreduce) plus this
    rank's final owned spin block (for invariant checks).

    ``checkpoint`` enables distributed checkpoint/restart: with
    ``every > 0`` each rank snapshots its bundle after every
    ``every``-th sweep; with ``resume=True`` each rank restores its
    bundle first (skipping thermalization, already in the trajectory)
    and continues **bit-identically** to the uninterrupted run.

    ``health`` (a :class:`~repro.obs.health.HealthRules`) turns on the
    streaming run-health monitor: measured observables feed online
    estimators and the declarative rules fire at ``health.interval``
    sweeps, with the resulting events/summary returned in the value
    dict.  The monitor is pure observation (no RNG, no comm), so the
    trajectory is bit-identical with health on or off.
    """
    state = _StripState(comm, cfg)
    metrics = comm.metrics
    interval = metrics.interval if metrics.enabled else 0
    monitor = (
        HealthMonitor(health, rank=comm.rank) if health is not None else NOOP_HEALTH
    )
    health_on = monitor.enabled
    check_every = health.interval if health is not None else 0
    energies, mags = [], []
    first_sweep = 0
    if checkpoint is not None and checkpoint.resume:
        first_sweep, energies, mags = state.restore_rank_state(
            checkpoint.directory
        )
    else:
        for _ in range(cfg.n_thermalize):
            state.sweep()
    for s in range(first_sweep, cfg.n_sweeps):
        state.sweep()
        if s % cfg.measure_every == 0:
            state.exchange_ghosts()
            dlog = comm.allreduce(state.local_dlog_sum())
            mag = comm.allreduce(state.local_magnetization())
            energies.append(-dlog / state.n_trotter)
            mags.append(mag)
            if health_on:
                monitor.t_model = comm.clock.now
                monitor.observe("energy", energies[-1], s)
                monitor.observe("magnetization", mag, s)
        if (
            checkpoint is not None
            and checkpoint.every
            and (s + 1) % checkpoint.every == 0
        ):
            state.save_rank_state(checkpoint.directory, s + 1, energies, mags)
        if check_every and (s + 1) % check_every == 0:
            monitor.check(
                s + 1,
                attempted=state.n_attempted,
                accepted=state.n_accepted,
                model_seconds=comm.clock.now,
                comm_seconds=clock_comm_seconds(comm.clock),
            )
        if interval and (s + 1) % interval == 0:
            comm.sync_metrics()
            metrics.snapshot(sweep=s + 1, t_model=comm.clock.now)
    owned = state.loc[2 : state.n_owned + 2].copy()
    out = {
        "energy": np.array(energies),
        "magnetization": np.array(mags),
        "owned_spins": owned,
        "start": state.start,
        "stop": state.stop,
        "beta": cfg.beta,
        "dtau": state.dtau,
        "mode": cfg.mode,
        "n_attempted": state.n_attempted,
        "n_accepted": state.n_accepted,
    }
    if health_on:
        out["health_events"] = monitor.event_docs()
        out["health_summary"] = monitor.summary()
    return out


# ======================================================================
# block-decomposed classical Ising / TFIM driver
# ======================================================================


@dataclass(frozen=True)
class IsingBlockConfig:
    """Run parameters of the block-decomposed anisotropic Ising sampler.

    The lattice is ``(lx, ly, lt)`` with couplings ``(kx, ky, kt)``; set
    ``ly = 2, ky = 0`` axes as needed for lower-dimensional problems --
    or use the TFIM helpers in :mod:`repro.run` which fill these in.
    ``sweep_seed`` drives the shared per-sweep uniforms that make
    parallel runs bit-identical to serial ones; ``mode`` selects the
    batched checkerboard kernel (default) or the per-site scalar
    reference, which produce bit-identical trajectories.  ``overlap``
    turns on the five-stage halo-overlap pipeline (post offloaded
    sends/recvs, update interior sites, wait, update boundary sites);
    trajectories stay bit-identical to the lockstep path because the
    3-D checkerboard never lets same-color sites neighbor each other.
    """

    lx: int
    ly: int
    lt: int
    kx: float
    ky: float
    kt: float
    n_sweeps: int
    n_thermalize: int = 0
    measure_every: int = 1
    sweep_seed: int = 12345
    mode: str = "vectorized"
    overlap: bool = False

    def __post_init__(self):
        for name, k in (("lx", self.kx), ("ly", self.ky), ("lt", self.kt)):
            v = getattr(self, name)
            if v == 1:
                if k != 0.0:
                    raise ValueError(f"extent-1 axis {name} must have zero coupling")
            elif v < 2 or v % 2:
                raise ValueError(f"{name} must be even and >= 2 (or inert 1), got {v}")
        if self.n_sweeps < 1:
            raise ValueError("need at least one sweep")
        _validate_mode(self.mode)


class _BlockState:
    """Per-rank block of the (lx, ly, lt) classical lattice.

    The block lives inside a ghosted array with one ghost plane per
    spatial side; ``spins`` is the interior view.  Ghost corners are
    never read (no diagonal couplings).
    """

    def __init__(self, comm, cfg: IsingBlockConfig):
        self.comm = comm
        self.cfg = cfg
        grid = None
        if cfg.ly == 1:
            grid = (comm.size, 1)  # inert y axis: decompose x only
        elif cfg.lx == 1:
            grid = (1, comm.size)
        decomp = BlockDecomposition(
            cfg.lx, cfg.ly, comm.size, process_grid=grid, require_even=False
        )
        # Evenness is needed only along axes the process grid actually
        # splits (so checkerboard parities align across rank boundaries).
        for p in decomp.pieces:
            bx, by = p.shape
            if decomp.px > 1 and bx % 2:
                raise ValueError(f"odd x-block of {bx} columns on rank {p.rank}")
            if decomp.py > 1 and by % 2:
                raise ValueError(f"odd y-block of {by} columns on rank {p.rank}")
        self.decomp = decomp
        p = decomp.piece(comm.rank)
        self.piece = p
        self.bx, self.by = p.shape
        self.lt = cfg.lt
        self.couplings = np.array([cfg.kx, cfg.ky, cfg.kt])
        # Cold start matching AnisotropicIsing's default; ghost planes
        # are overwritten by the first exchange.
        self._g = np.ones((self.bx + 2, self.by + 2, self.lt), dtype=np.int8)
        self.spins = self._g[1:-1, 1:-1]
        # Global parity of each local site (for checkerboard colors).
        gx = np.arange(p.x_start, p.x_stop)
        gy = np.arange(p.y_start, p.y_stop)
        gt = np.arange(self.lt)
        parity = (gx[:, None, None] + gy[None, :, None] + gt[None, None, :]) % 2
        self.color_masks = [(parity == c) for c in (0, 1)]
        # Plane-parity tables for color-packed halos: the parity of an
        # x-boundary site is (gx + yt_par) % 2, of a y-boundary site
        # (gy + xt_par) % 2.  Sender and receiver evaluate the same
        # global coordinate, so pack/unpack masks agree.
        self._yt_par = (gy[:, None] + gt[None, :]) % 2
        self._xt_par = (gx[:, None] + gt[None, :]) % 2
        self.sweep_factory = SeedSequenceFactory(cfg.sweep_seed)
        self.sweep_index = 0
        self._n_exchanges = 0
        #: Cumulative Metropolis accounting (always maintained; see
        #: :class:`_StripState`).
        self.n_attempted = 0
        self.n_accepted = 0
        self._n_color_sites = [int(m.sum()) for m in self.color_masks]
        #: Overlap pipeline state: per-color interior/boundary masks and
        #: interior site counts (compute-charge split weights).
        self.overlap_active = False
        if cfg.overlap and comm.size > 1:
            part = decomp.overlap_partition(comm.rank)
            if part.all_boundary:
                warnings.warn(
                    f"rank {comm.rank}: block {self.bx}x{self.by} is too"
                    " thin for halo overlap (every site is"
                    " ghost-adjacent); falling back to the lockstep"
                    " exchange",
                    stacklevel=2,
                )
            else:
                int3 = part.interior[:, :, None]
                bnd3 = part.boundary[:, :, None]
                self._int_masks = [m & int3 for m in self.color_masks]
                self._bnd_masks = [m & bnd3 for m in self.color_masks]
                self._n_int = [int(m.sum()) for m in self._int_masks]
                self.overlap_active = True
        # Resolve the kernel backend once per rank (see _StripState).
        self.kernel = kernels.resolve_sweep_mode(cfg.mode)
        self._kops = (
            None if self.kernel == "scalar" else kernels.get_ops(self.kernel)
        )
        _bind_sweep_metrics(self, comm.metrics)
        if self._obs:
            self._m_kernel = comm.metrics.counter(
                f"sweep.kernel_seconds.{self.kernel}"
            )

    # -- halo exchange ------------------------------------------------------
    def _x_mask(self, gx_plane: int, color: int) -> np.ndarray:
        """Sites of an x-boundary plane with global parity ``(color+1) % 2``."""
        return self._yt_par == ((gx_plane + color + 1) % 2)

    def _y_mask(self, gy_plane: int, color: int) -> np.ndarray:
        """Sites of a y-boundary plane with global parity ``(color+1) % 2``."""
        return self._xt_par == ((gy_plane + color + 1) % 2)

    def _exchange_ghosts(self, color: int | None = None) -> None:
        """Aggregated ghost-plane refresh: one packed message per neighbor.

        ``color`` selects the checkerboard color about to be updated;
        only the opposite-parity boundary sites -- the ones that color
        actually reads -- are packed, halving the wire bytes at the
        same message count.  ``color=None`` ships full planes (the
        measurement exchange).  Axes the process grid does not split
        wrap locally for free.
        """
        comm, p, g = self.comm, self.piece, self._g
        s = self.spins
        tag = _TAG_ISING + (self._n_exchanges % 8) * 4
        self._n_exchanges += 1
        if self.decomp.px > 1:
            east_mask = None if color is None else self._x_mask(p.x_stop - 1, color)
            west_mask = None if color is None else self._x_mask(p.x_start, color)
            comm.send(pack_plane(s[-1], east_mask), p.east, tag=tag)
            comm.send(pack_plane(s[0], west_mask), p.west, tag=tag + 1)
            unpack_plane(
                g[0, 1:-1],
                comm.recv(source=p.west, tag=tag),
                None if color is None else self._x_mask(p.x_start - 1, color),
            )
            unpack_plane(
                g[-1, 1:-1],
                comm.recv(source=p.east, tag=tag + 1),
                None if color is None else self._x_mask(p.x_stop, color),
            )
        else:
            g[0, 1:-1] = s[-1]
            g[-1, 1:-1] = s[0]
        if self.decomp.py > 1:
            north_mask = None if color is None else self._y_mask(p.y_stop - 1, color)
            south_mask = None if color is None else self._y_mask(p.y_start, color)
            comm.send(pack_plane(s[:, -1], north_mask), p.north, tag=tag + 2)
            comm.send(pack_plane(s[:, 0], south_mask), p.south, tag=tag + 3)
            unpack_plane(
                g[1:-1, 0],
                comm.recv(source=p.south, tag=tag + 2),
                None if color is None else self._y_mask(p.y_start - 1, color),
            )
            unpack_plane(
                g[1:-1, -1],
                comm.recv(source=p.north, tag=tag + 3),
                None if color is None else self._y_mask(p.y_stop, color),
            )
        else:
            g[1:-1, 0] = s[:, -1]
            g[1:-1, -1] = s[:, 0]

    def _exchange_begin(self, color: int) -> list:
        """Overlap stages 1-2: pack boundary planes, post offloaded messages.

        Same color-packed payloads, neighbors, and tag schedule as
        :meth:`_exchange_ghosts`; axes the process grid does not split
        wrap locally here, before any interior flip, so the shipped (and
        wrapped) data is the pre-color state exactly as in the lockstep
        path.  Returns ``(request, ghost_view, unpack_mask)`` triples in
        the lockstep receive order (west, east, south, north).
        """
        comm, p, g = self.comm, self.piece, self._g
        s = self.spins
        tag = _TAG_ISING + (self._n_exchanges % 8) * 4
        self._n_exchanges += 1
        pending: list = []
        if self.decomp.px > 1:
            east_mask = self._x_mask(p.x_stop - 1, color)
            west_mask = self._x_mask(p.x_start, color)
            comm.isend(pack_plane(s[-1], east_mask), p.east, tag=tag,
                       offload=True)
            comm.isend(pack_plane(s[0], west_mask), p.west, tag=tag + 1,
                       offload=True)
            pending.append((
                comm.irecv(source=p.west, tag=tag, offload=True),
                g[0, 1:-1],
                self._x_mask(p.x_start - 1, color),
            ))
            pending.append((
                comm.irecv(source=p.east, tag=tag + 1, offload=True),
                g[-1, 1:-1],
                self._x_mask(p.x_stop, color),
            ))
        else:
            g[0, 1:-1] = s[-1]
            g[-1, 1:-1] = s[0]
        if self.decomp.py > 1:
            north_mask = self._y_mask(p.y_stop - 1, color)
            south_mask = self._y_mask(p.y_start, color)
            comm.isend(pack_plane(s[:, -1], north_mask), p.north,
                       tag=tag + 2, offload=True)
            comm.isend(pack_plane(s[:, 0], south_mask), p.south,
                       tag=tag + 3, offload=True)
            pending.append((
                comm.irecv(source=p.south, tag=tag + 2, offload=True),
                g[1:-1, 0],
                self._y_mask(p.y_start - 1, color),
            ))
            pending.append((
                comm.irecv(source=p.north, tag=tag + 3, offload=True),
                g[1:-1, -1],
                self._y_mask(p.y_stop, color),
            ))
        else:
            g[1:-1, 0] = s[:, -1]
            g[1:-1, -1] = s[:, 0]
        return pending

    def _exchange_complete(self, pending: list) -> None:
        """Overlap stage 4: wait for each halo message, unpack its plane."""
        for req, ghost_view, mask in pending:
            unpack_plane(ghost_view, req.wait(), mask)

    def local_field(self) -> np.ndarray:
        """``sum_a K_a (s_+a + s_-a)`` for every owned site, via the ghosts."""
        g = self._g
        s = self.spins
        kx, ky, kt = self.couplings
        field = kx * (g[2:, 1:-1] + g[:-2, 1:-1])
        field = field + ky * (g[1:-1, 2:] + g[1:-1, :-2])
        field += kt * (np.roll(s, 1, axis=2) + np.roll(s, -1, axis=2))
        return field

    def _sweep_uniforms(self) -> np.ndarray:
        """This sweep's per-site uniforms, *sliced from the global field*.

        Every rank generates the same global (lx, ly, lt) uniform lattice
        from the shared sweep seed and takes its own block -- the source
        of serial/parallel bit-identity.  (A production code would use a
        counter-based generator to skip the unused portion; regenerating
        is the simple deterministic equivalent.)
        """
        gen = self.sweep_factory.stream("scratch", self.sweep_index).generator
        full = gen.random((self.cfg.lx, self.cfg.ly, self.lt))
        p = self.piece
        self.sweep_index += 1
        return full[p.x_start : p.x_stop, p.y_start : p.y_stop]

    def _update_color_scalar(self, mask: np.ndarray, log_u: np.ndarray) -> int:
        """Per-site reference loop; float op order matches the batched kernel.

        ``mask`` selects the sites to visit (a full color, or its
        interior/boundary half under the overlap pipeline -- same-color
        sites never neighbor each other, so any visit order yields the
        identical trajectory).  Returns the number of accepted flips.
        """
        g = self._g
        s = self.spins
        kx, ky, kt = self.couplings
        lt = self.lt
        n_acc = 0
        for x, y, t in zip(*(idx.tolist() for idx in np.nonzero(mask))):
            sp = s[x, y, t]
            f = kx * (g[x + 2, y + 1, t] + g[x, y + 1, t])
            f = f + ky * (g[x + 1, y + 2, t] + g[x + 1, y, t])
            f += kt * (s[x, y, (t + 1) % lt] + s[x, y, (t - 1) % lt])
            if log_u[x, y, t] < -2.0 * sp * f:
                s[x, y, t] = -sp
                n_acc += 1
        return n_acc

    def _accept_vectorized(self, mask: np.ndarray, log_u: np.ndarray) -> int:
        """Batched Metropolis over ``mask`` via the resolved backend's
        ``block_color`` op; returns the accepted-flip count."""
        return self._kops["block_color"](self._g, self.couplings, mask, log_u)

    def _update_color(self, mask: np.ndarray, log_u: np.ndarray) -> int:
        """One (sub-)color update through the configured kernel, with
        per-backend kernel-time telemetry."""
        obs = self._obs
        if obs:
            t0 = perf_counter()
        if self._kops is None:
            n_acc = self._update_color_scalar(mask, log_u)
        else:
            n_acc = self._accept_vectorized(mask, log_u)
        if obs:
            self._m_kernel.inc(perf_counter() - t0)
        return n_acc

    def sweep(self) -> None:
        """Both checkerboard colors, one color-packed halo exchange each.

        With the overlap pipeline active each color instead posts its
        exchange, updates interior sites while the halo is in flight
        (interior reads no ghosts, so stale planes are harmless), waits,
        and finishes with the ghost-adjacent boundary sites.  The field
        recompute after the wait sees no changed neighbors of boundary
        sites -- same-color sites are never adjacent -- so the accept
        decisions match the lockstep path bit for bit.
        """
        obs = self._obs
        if obs:
            t0_wall = perf_counter()
            t0_model = self.comm.clock.now
        uniforms = self._sweep_uniforms()
        log_u = np.log(np.maximum(uniforms, 1e-300))
        n_acc = 0
        if self.overlap_active:
            flops_per_color = FLOPS_PER_SPIN_UPDATE * self.spins.size
            machine = self.comm.machine
            for c in range(2):
                pending = self._exchange_begin(color=c)
                n_acc += self._update_color(self._int_masks[c], log_u)
                frac = self._n_int[c] / self._n_color_sites[c]
                self.comm.charge_seconds(
                    machine.compute_time(flops_per_color * frac), "interior"
                )
                self._exchange_complete(pending)
                n_acc += self._update_color(self._bnd_masks[c], log_u)
                self.comm.charge_seconds(
                    machine.compute_time(flops_per_color * (1.0 - frac)),
                    "boundary",
                )
        else:
            for c, mask in enumerate(self.color_masks):
                self._exchange_ghosts(color=c)
                n_acc += self._update_color(mask, log_u)
            self.comm.charge_compute(
                FLOPS_PER_SPIN_UPDATE * self.spins.size * 2
            )
        att = self._n_color_sites[0] + self._n_color_sites[1]
        self.n_attempted += att
        self.n_accepted += n_acc
        if obs:
            self._m_sweeps.inc()
            self._m_attempted.inc(att)
            self._m_accepted.inc(n_acc)
            self._m_model.inc(self.comm.clock.now - t0_model)
            self._m_wall.inc(perf_counter() - t0_wall)
            if att:
                self._m_acc_hist.observe(n_acc / att)

    # -- checkpoint/restart --------------------------------------------------
    def _checkpoint_expect(self) -> dict:
        """Geometry/seed fingerprint a resume must match exactly."""
        cfg = self.cfg
        return {
            "driver": "ising_block",
            "n_ranks": self.comm.size,
            "lx": cfg.lx,
            "ly": cfg.ly,
            "lt": cfg.lt,
            "kx": cfg.kx,
            "ky": cfg.ky,
            "kt": cfg.kt,
            "sweep_seed": cfg.sweep_seed,
            "n_thermalize": cfg.n_thermalize,
        }

    def save_rank_state(self, directory, sweeps_done: int, mags, bonds) -> None:
        """Snapshot this rank's ghosted block, counters, RNG, and series."""
        from repro.run.checkpoint import pack_rng_state, save_rank_checkpoint

        meta = self._checkpoint_expect()
        meta["sweeps_done"] = int(sweeps_done)
        meta["sweep_index"] = int(self.sweep_index)
        meta["n_exchanges"] = int(self._n_exchanges)
        save_rank_checkpoint(
            directory,
            self.comm.rank,
            meta,
            {
                "g": self._g,
                "magnetization": np.asarray(mags, dtype=np.float64),
                "bond_sums": np.asarray(bonds, dtype=np.float64).reshape(-1, 3),
                "rng_state": pack_rng_state(self.comm.stream.generator),
            },
            metrics=self.comm.metrics,
        )

    def restore_rank_state(self, directory) -> tuple[int, list, list]:
        """Restore this rank from its bundle; returns (sweeps_done, series...)."""
        from repro.run.checkpoint import load_rank_checkpoint, restore_rng_state

        meta, arrays = load_rank_checkpoint(
            directory, self.comm.rank, expect=self._checkpoint_expect(),
            metrics=self.comm.metrics,
        )
        if arrays["g"].shape != self._g.shape:
            raise ValueError(
                f"checkpoint block {arrays['g'].shape} != this rank's "
                f"{self._g.shape}"
            )
        self._g[...] = arrays["g"]  # in place: self.spins stays a view
        self.sweep_index = int(meta["sweep_index"])
        self._n_exchanges = int(meta["n_exchanges"])
        restore_rng_state(self.comm.stream.generator, arrays["rng_state"])
        return (
            int(meta["sweeps_done"]),
            arrays["magnetization"].tolist(),
            [row for row in arrays["bond_sums"]],
        )

    # -- measurement -----------------------------------------------------------
    def local_bond_sums(self) -> np.ndarray:
        """(x, y, t) bond sums counting each owned-origin bond once."""
        self._exchange_ghosts(color=None)
        g = self._g
        s = self.spins.astype(np.int64)
        bx = float(np.sum(s * g[2:, 1:-1].astype(np.int64)))
        by = float(np.sum(s * g[1:-1, 2:].astype(np.int64)))
        bt = float(np.sum(s * np.roll(s, -1, axis=2)))
        return np.array([bx, by, bt])

    def local_spin_sum(self) -> float:
        return float(self.spins.sum())


def ising_block_program(
    comm,
    cfg: IsingBlockConfig,
    checkpoint: "CheckpointConfig | None" = None,
    health: "HealthRules | None" = None,
) -> dict:
    """SPMD rank program: block-decomposed anisotropic Ising sweeps.

    Returns on every rank the (identical) global time series of
    magnetization and per-axis bond sums, plus the rank's owned block
    for bit-identity checks.  ``checkpoint`` enables per-rank
    checkpoint/restart and ``health`` the streaming run-health monitor,
    exactly as in :func:`worldline_strip_program`.
    """
    state = _BlockState(comm, cfg)
    metrics = comm.metrics
    interval = metrics.interval if metrics.enabled else 0
    monitor = (
        HealthMonitor(health, rank=comm.rank) if health is not None else NOOP_HEALTH
    )
    health_on = monitor.enabled
    check_every = health.interval if health is not None else 0
    n_sites = cfg.lx * cfg.ly * cfg.lt
    mags, bonds = [], []
    first_sweep = 0
    if checkpoint is not None and checkpoint.resume:
        first_sweep, mags, bonds = state.restore_rank_state(checkpoint.directory)
    else:
        for _ in range(cfg.n_thermalize):
            state.sweep()
    for s in range(first_sweep, cfg.n_sweeps):
        state.sweep()
        if s % cfg.measure_every == 0:
            m = comm.allreduce(state.local_spin_sum()) / n_sites
            b = comm.allreduce(state.local_bond_sums())
            mags.append(m)
            bonds.append(b)
            if health_on:
                monitor.t_model = comm.clock.now
                monitor.observe("magnetization", m, s)
        if (
            checkpoint is not None
            and checkpoint.every
            and (s + 1) % checkpoint.every == 0
        ):
            state.save_rank_state(checkpoint.directory, s + 1, mags, bonds)
        if check_every and (s + 1) % check_every == 0:
            monitor.check(
                s + 1,
                attempted=state.n_attempted,
                accepted=state.n_accepted,
                model_seconds=comm.clock.now,
                comm_seconds=clock_comm_seconds(comm.clock),
            )
        if interval and (s + 1) % interval == 0:
            comm.sync_metrics()
            metrics.snapshot(sweep=s + 1, t_model=comm.clock.now)
    out = {
        "magnetization": np.array(mags),
        "bond_sums": np.array(bonds),
        "block": state.spins.copy(),
        "piece": (state.piece.x_start, state.piece.x_stop,
                  state.piece.y_start, state.piece.y_stop),
        "mode": cfg.mode,
        "n_attempted": state.n_attempted,
        "n_accepted": state.n_accepted,
    }
    if health_on:
        out["health_events"] = monitor.event_docs()
        out["health_summary"] = monitor.summary()
    return out


# ======================================================================
# replica-parallel 2-D world-line driver
# ======================================================================


@dataclass(frozen=True)
class Worldline2DReplicaConfig:
    """Run parameters of the replica-parallel 2-D world-line sampler.

    Each rank runs an independent Markov chain of the full ``lx x ly``
    lattice using the batched conflict-free kernels of
    :class:`~repro.qmc.worldline2d.WorldlineSquareQmc`; measurements
    are allreduce-averaged across replicas.  This is the strategy the
    paper used when the lattice fits in one node's memory: perfect
    compute scaling, one collective per measurement.
    """

    lx: int
    ly: int
    beta: float
    n_slices: int
    jz: float = 1.0
    jxy: float = 1.0
    n_sweeps: int = 50
    n_thermalize: int = 0
    measure_every: int = 1
    mode: str = "auto"

    def __post_init__(self):
        XXZSquareModel(self.lx, self.ly, jz=self.jz, jxy=self.jxy)  # validates
        if self.n_sweeps < 1:
            raise ValueError("need at least one sweep")
        if self.measure_every < 1:
            raise ValueError("measure_every must be >= 1")
        _validate_mode(self.mode)


def worldline2d_replica_flops_per_sweep(sampler) -> float:
    """Modeled FLOPs one replica charges per full lattice sweep.

    One segment proposal per (bond, activation interval) plus the
    straight-column pass over every space--time site -- the same
    accounting :func:`repro.vmp.performance.worldline2d_workload` uses,
    so executed-driver timings and the analytic model stay comparable.
    """
    segment = sampler.n_bonds * sampler.n_trotter * FLOPS_PER_SEGMENT_MOVE
    column = 2.0 * sampler.n_sites * sampler.n_slices
    return segment + column


def worldline2d_replica_program(comm, cfg: Worldline2DReplicaConfig) -> dict:
    """SPMD rank program: independent-replica batched 2-D world lines.

    Returns, on every rank, replica-averaged energy and squared
    staggered magnetization series (identical across ranks thanks to
    allreduce) plus this rank's final configuration and acceptance.
    """
    model = XXZSquareModel(cfg.lx, cfg.ly, jz=cfg.jz, jxy=cfg.jxy)
    metrics = comm.metrics
    interval = metrics.interval if metrics.enabled else 0
    sampler = WorldlineSquareQmc(
        model, cfg.beta, cfg.n_slices, stream=comm.stream,
        metrics=metrics if metrics.enabled else None,
    )
    flops_per_sweep = worldline2d_replica_flops_per_sweep(sampler)
    for _ in range(cfg.n_thermalize):
        sampler.sweep(mode=cfg.mode)
        comm.charge_compute(flops_per_sweep)
    energies, m2s = [], []
    for s in range(cfg.n_sweeps):
        sampler.sweep(mode=cfg.mode)
        comm.charge_compute(flops_per_sweep)
        if s % cfg.measure_every == 0:
            e = comm.allreduce(sampler.energy_estimate()) / comm.size
            m2 = comm.allreduce(sampler.staggered_magnetization_sq()) / comm.size
            energies.append(e)
            m2s.append(m2)
        if interval and (s + 1) % interval == 0:
            comm.sync_metrics()
            metrics.snapshot(sweep=s + 1, t_model=comm.clock.now)
    return {
        "energy": np.array(energies),
        "m_stag_sq": np.array(m2s),
        "spins": sampler.spins.copy(),
        "acceptance": sampler.acceptance_rate,
        "beta": cfg.beta,
        "dtau": sampler.dtau,
        "n_attempted": sampler.n_attempted,
        "n_accepted": sampler.n_accepted,
    }
