"""Domain-decomposed SPMD drivers for the QMC kernels.

Two production drivers, each an ordinary rank program runnable under
:func:`repro.vmp.run_spmd` (threads), the multiprocessing backend, or
-- the API being mpi4py-shaped -- real MPI:

* :func:`worldline_strip_program` -- the world-line XXZ chain split
  into contiguous site strips.  Updates proceed class-by-class through
  the eight independence classes of the corner moves (stride-4 grids in
  both bond and interval index), with ghost-column refreshes before and
  a boundary write-back after each class.  Because moves within a class
  touch disjoint neighborhoods, the decomposed Markov chain samples
  *exactly* the same distribution as the serial sampler.

* :func:`ising_block_program` -- the anisotropic classical Ising model
  (and therefore the TFIM) split into 2-D spatial blocks over a process
  grid, with four-plane halo exchanges per checkerboard color.  Given
  the same per-site uniforms the parallel trajectory is **bit-identical**
  to the serial one (same-color sites do not interact), which the
  integration tests assert literally.

Ownership conventions (world-line strip, global column indices):

* rank ``r`` owns columns ``[start, stop)``; block sizes are even.
* corner move at bond ``i`` (flips columns ``i, i+1``) is executed by
  the owner of column ``i``; the flip of ghost column ``stop`` is sent
  to the right neighbor after the class.
* straight-line move at column ``c`` is executed by its owner and
  writes only ``c``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lattice.decomposition import BlockDecomposition, StripDecomposition
from repro.qmc.classical_ising import FLOPS_PER_SPIN_UPDATE
from repro.qmc.plaquette import PlaquetteTable
from repro.models.hamiltonians import XXZSquareModel
from repro.qmc.worldline import FLOPS_PER_CORNER_MOVE
from repro.qmc.worldline2d import FLOPS_PER_SEGMENT_MOVE, WorldlineSquareQmc
from repro.util.rng import SeedSequenceFactory

__all__ = [
    "WorldlineStripConfig",
    "worldline_strip_program",
    "IsingBlockConfig",
    "ising_block_program",
    "Worldline2DReplicaConfig",
    "worldline2d_replica_program",
    "worldline2d_replica_flops_per_sweep",
]

# Tag bases for the two drivers (distinct from the collective range).
_TAG_WL = 4096
_TAG_ISING = 8192


# ======================================================================
# world-line strip driver
# ======================================================================


@dataclass(frozen=True)
class WorldlineStripConfig:
    """Run parameters of the strip-decomposed world-line chain."""

    n_sites: int
    jz: float
    jxy: float
    beta: float
    n_slices: int
    n_sweeps: int
    n_thermalize: int = 0
    measure_every: int = 1

    def __post_init__(self):
        if self.n_sites % 4:
            raise ValueError("parallel world-line driver needs L % 4 == 0")
        if self.n_slices % 4:
            raise ValueError("parallel world-line driver needs n_slices % 4 == 0")
        if self.beta <= 0:
            raise ValueError("beta must be positive")
        if self.n_sweeps < 1:
            raise ValueError("need at least one sweep")


class _StripState:
    """Per-rank world-line state: owned columns plus three ghost columns.

    Local layout along axis 0: ``[ghost(start-1), owned..., ghost(stop),
    ghost(stop+1)]``; local index of global column ``g`` is
    ``g - start + 1``.
    """

    def __init__(self, comm, cfg: WorldlineStripConfig):
        self.comm = comm
        self.cfg = cfg
        self.L = cfg.n_sites
        self.T = cfg.n_slices
        self.n_trotter = cfg.n_slices // 2
        self.dtau = cfg.beta / self.n_trotter
        self.table = PlaquetteTable.build(cfg.jz, cfg.jxy, self.dtau)
        decomp = StripDecomposition(self.L, comm.size, require_even=True)
        piece = decomp.piece(comm.rank)
        self.start, self.stop = piece.start, piece.stop
        self.n_owned = piece.n_owned
        self.left, self.right = piece.left_rank, piece.right_rank
        if comm.size > 1 and self.n_owned < 4:
            raise ValueError(
                "strip world-line driver needs >= 4 owned columns per rank"
            )
        # Neel start, straight world lines (legal everywhere).
        g = np.arange(self.start - 1, self.stop + 2)
        self.loc = np.repeat((g % 2).astype(np.int8)[:, None], self.T, axis=1)
        self._t_even = np.arange(0, self.T, 2, dtype=np.intp)
        self._t_odd = np.arange(1, self.T, 2, dtype=np.intp)

    # -- indexing helpers -------------------------------------------------
    def _codes(self, li: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Corner codes of plaquettes at *local* bond index li, interval t."""
        s = self.loc
        t1 = (t + 1) % self.T
        return (
            s[li, t].astype(np.intp)
            + 2 * s[li + 1, t].astype(np.intp)
            + 4 * s[li, t1].astype(np.intp)
            + 8 * s[li + 1, t1].astype(np.intp)
        )

    # -- communication -----------------------------------------------------
    def refresh_ghosts(self, tag: int) -> None:
        """Pull fresh copies of columns start-1, stop, stop+1.

        Each rank ships its last owned column rightward and its first
        two owned columns leftward.  Single-rank runs wrap locally.
        """
        n = self.n_owned
        if self.comm.size == 1:
            self.loc[0] = self.loc[n]  # start-1 == stop-1 (mod L) wrap
            self.loc[n + 1] = self.loc[1]
            self.loc[n + 2] = self.loc[2]
            return
        comm = self.comm
        comm.send(self.loc[n].copy(), self.right, tag=tag)
        comm.send(self.loc[1:3].copy(), self.left, tag=tag + 1)
        self.loc[0] = comm.recv(source=self.left, tag=tag)
        ghosts = comm.recv(source=self.right, tag=tag + 1)
        self.loc[n + 1] = ghosts[0]
        self.loc[n + 2] = ghosts[1]

    def writeback_right_ghost(self, a: int, tag: int) -> None:
        """Push the updated ghost column ``stop`` to its owner.

        Only class ``a`` moves at bond ``stop - 1`` write the ghost, so
        the transfer happens exactly when ``(stop - 1) % 4 == a`` --
        otherwise the ghost is a stale copy and adopting it would clobber
        the owner's accepted class-``a`` moves at its own bond ``start``.
        Sender and receiver agree on the condition because the
        receiver's ``start - 1`` *is* the sender's ``stop - 1``.
        """
        n = self.n_owned
        if self.comm.size == 1:
            if (self.stop - 1) % 4 == a:
                self.loc[1] = self.loc[n + 1]
            return
        if (self.stop - 1) % 4 == a:
            self.comm.send(self.loc[n + 1].copy(), self.right, tag=tag)
        if (self.start - 1) % self.L % 4 == a:
            self.loc[1] = self.comm.recv(source=self.left, tag=tag)

    # -- moves --------------------------------------------------------------
    def corner_class(self, a: int, b: int) -> None:
        """All corner moves of class (a, b) owned by this rank."""
        # Global bonds i in [start, stop-1] with i % 4 == a.
        first = self.start + ((a - self.start) % 4)
        gi = np.arange(first, self.stop, 4, dtype=np.intp)
        tt = np.arange(b, self.T, 4, dtype=np.intp)
        if gi.size == 0 or tt.size == 0:
            return
        ggi, gtt = np.meshgrid(gi, tt, indexing="ij")
        ggi, gtt = ggi.ravel(), gtt.ravel()
        # Unshaded plaquettes only: (i + t) odd.
        sel = (ggi + gtt) % 2 == 1
        ggi, gtt = ggi[sel], gtt[sel]
        if ggi.size == 0:
            return
        li = ggi - self.start + 1  # local bond index
        t = gtt
        w = self.table.weights
        t1 = (t + 1) % self.T
        tm1, tp1 = (t - 1) % self.T, (t + 1) % self.T
        old = (
            w[self._codes(li - 1, t)]
            * w[self._codes(li + 1, t)]
            * w[self._codes(li, tm1)]
            * w[self._codes(li, tp1)]
        )
        self.loc[li, t] ^= 1
        self.loc[li, t1] ^= 1
        self.loc[li + 1, t] ^= 1
        self.loc[li + 1, t1] ^= 1
        new = (
            w[self._codes(li - 1, t)]
            * w[self._codes(li + 1, t)]
            * w[self._codes(li, tm1)]
            * w[self._codes(li, tp1)]
        )
        u = self.comm.stream.uniform(size=li.size)
        reject = ~(new > 0.0) | (u * old >= new)
        rl, rt, rt1 = li[reject], t[reject], t1[reject]
        self.loc[rl, rt] ^= 1
        self.loc[rl, rt1] ^= 1
        self.loc[rl + 1, rt] ^= 1
        self.loc[rl + 1, rt1] ^= 1
        self.comm.charge_compute(FLOPS_PER_CORNER_MOVE * li.size)

    def column_parity(self, parity: int) -> None:
        """Straight-line moves on owned columns of one (global) parity."""
        first = self.start + ((parity - self.start) % 2)
        gc = np.arange(first, self.stop, 2, dtype=np.intp)
        if gc.size == 0:
            return
        lc = gc - self.start + 1
        straight = self.loc[lc].min(axis=1) == self.loc[lc].max(axis=1)
        gc, lc = gc[straight], lc[straight]
        if gc.size == 0:
            return
        logw = np.where(
            self.table.weights > 0,
            np.log(np.maximum(self.table.weights, 1e-300)),
            -np.inf,
        )

        def col_log_weight() -> np.ndarray:
            total = np.zeros(lc.size)
            for off in (-1, 0):
                lb = lc + off  # local bond index of bond (gc + off)
                gb = gc + off
                ts = self._t_even if (gb[0] % 2 == 0) else self._t_odd
                bb = np.repeat(lb, ts.size)
                tt = np.tile(ts, lb.size)
                total += logw[self._codes(bb, tt)].reshape(lb.size, ts.size).sum(axis=1)
            return total

        old_lw = col_log_weight()
        self.loc[lc] ^= 1
        new_lw = col_log_weight()
        u = self.comm.stream.uniform(size=lc.size)
        with np.errstate(invalid="ignore"):
            log_ratio = new_lw - old_lw
        reject = ~np.isfinite(log_ratio) | (
            np.log(np.maximum(u, 1e-300)) >= log_ratio
        )
        self.loc[lc[reject]] ^= 1
        self.comm.charge_compute(2.0 * self.T * lc.size)

    def sweep(self) -> None:
        """One full sweep: 8 corner classes + 2 column parities."""
        tag = _TAG_WL
        for a in range(4):
            for b in range(4):
                if (a + b) % 2 == 0:
                    continue
                self.refresh_ghosts(tag)
                self.corner_class(a, b)
                self.writeback_right_ghost(a, tag + 2)
                tag += 3
        for parity in (0, 1):
            self.refresh_ghosts(tag)
            self.column_parity(parity)
            tag += 3

    # -- measurement ---------------------------------------------------------
    def local_dlog_sum(self) -> float:
        """Sum of d ln W over shaded plaquettes at owned bonds."""
        gi = np.arange(self.start, self.stop, dtype=np.intp)
        li = gi - self.start + 1
        total = 0.0
        for parity, ts in ((0, self._t_even), (1, self._t_odd)):
            sel = li[(gi % 2) == parity]
            if sel.size == 0:
                continue
            bb = np.repeat(sel, ts.size)
            tt = np.tile(ts, sel.size)
            total += float(np.sum(self.table.dlog[self._codes(bb, tt)]))
        return total

    def local_magnetization(self) -> float:
        """Owned-column contribution to total S^z on slice 0."""
        return float(self.loc[1 : self.n_owned + 1, 0].sum() - self.n_owned / 2.0)


def worldline_strip_program(comm, cfg: WorldlineStripConfig) -> dict:
    """SPMD rank program: strip-decomposed world-line XXZ chain.

    Returns, on every rank, a dict with the energy and magnetization
    time series (identical across ranks thanks to allreduce) plus this
    rank's final owned spin block (for invariant checks).
    """
    state = _StripState(comm, cfg)
    for _ in range(cfg.n_thermalize):
        state.sweep()
    energies, mags = [], []
    for s in range(cfg.n_sweeps):
        state.sweep()
        if s % cfg.measure_every == 0:
            state.refresh_ghosts(_TAG_WL + 2000)
            dlog = comm.allreduce(state.local_dlog_sum())
            mag = comm.allreduce(state.local_magnetization())
            energies.append(-dlog / state.n_trotter)
            mags.append(mag)
    owned = state.loc[1 : state.n_owned + 1].copy()
    return {
        "energy": np.array(energies),
        "magnetization": np.array(mags),
        "owned_spins": owned,
        "start": state.start,
        "stop": state.stop,
        "beta": cfg.beta,
        "dtau": state.dtau,
    }


# ======================================================================
# block-decomposed classical Ising / TFIM driver
# ======================================================================


@dataclass(frozen=True)
class IsingBlockConfig:
    """Run parameters of the block-decomposed anisotropic Ising sampler.

    The lattice is ``(lx, ly, lt)`` with couplings ``(kx, ky, kt)``; set
    ``ly = 2, ky = 0`` axes as needed for lower-dimensional problems --
    or use the TFIM helpers in :mod:`repro.run` which fill these in.
    ``sweep_seed`` drives the shared per-sweep uniforms that make
    parallel runs bit-identical to serial ones.
    """

    lx: int
    ly: int
    lt: int
    kx: float
    ky: float
    kt: float
    n_sweeps: int
    n_thermalize: int = 0
    measure_every: int = 1
    sweep_seed: int = 12345

    def __post_init__(self):
        for name, k in (("lx", self.kx), ("ly", self.ky), ("lt", self.kt)):
            v = getattr(self, name)
            if v == 1:
                if k != 0.0:
                    raise ValueError(f"extent-1 axis {name} must have zero coupling")
            elif v < 2 or v % 2:
                raise ValueError(f"{name} must be even and >= 2 (or inert 1), got {v}")
        if self.n_sweeps < 1:
            raise ValueError("need at least one sweep")


class _BlockState:
    """Per-rank block of the (lx, ly, lt) classical lattice."""

    def __init__(self, comm, cfg: IsingBlockConfig):
        self.comm = comm
        self.cfg = cfg
        grid = None
        if cfg.ly == 1:
            grid = (comm.size, 1)  # inert y axis: decompose x only
        elif cfg.lx == 1:
            grid = (1, comm.size)
        decomp = BlockDecomposition(
            cfg.lx, cfg.ly, comm.size, process_grid=grid, require_even=False
        )
        # Evenness is needed only along axes the process grid actually
        # splits (so checkerboard parities align across rank boundaries).
        for p in decomp.pieces:
            bx, by = p.shape
            if decomp.px > 1 and bx % 2:
                raise ValueError(f"odd x-block of {bx} columns on rank {p.rank}")
            if decomp.py > 1 and by % 2:
                raise ValueError(f"odd y-block of {by} columns on rank {p.rank}")
        self.decomp = decomp
        p = decomp.piece(comm.rank)
        self.piece = p
        self.bx, self.by = p.shape
        self.lt = cfg.lt
        self.couplings = np.array([cfg.kx, cfg.ky, cfg.kt])
        # Cold start matching AnisotropicIsing's default.
        self.spins = np.ones((self.bx, self.by, self.lt), dtype=np.int8)
        # Global parity of each local site (for checkerboard colors).
        gx = np.arange(p.x_start, p.x_stop)
        gy = np.arange(p.y_start, p.y_stop)
        gt = np.arange(self.lt)
        parity = (gx[:, None, None] + gy[None, :, None] + gt[None, None, :]) % 2
        self.color_masks = [(parity == c) for c in (0, 1)]
        self.sweep_factory = SeedSequenceFactory(cfg.sweep_seed)
        self.sweep_index = 0

    # -- halo exchange ------------------------------------------------------
    def _exchange_planes(self, tag: int) -> tuple[np.ndarray, ...]:
        """Fetch the four ghost planes (west, east, south, north).

        Falls back to local periodic wrap along axes the process grid
        does not split.
        """
        comm, p = self.comm, self.piece
        if self.decomp.px > 1:
            comm.send(self.spins[-1].copy(), p.east, tag=tag)
            comm.send(self.spins[0].copy(), p.west, tag=tag + 1)
            west = comm.recv(source=p.west, tag=tag)
            east = comm.recv(source=p.east, tag=tag + 1)
        else:
            west, east = self.spins[-1].copy(), self.spins[0].copy()
        if self.decomp.py > 1:
            comm.send(self.spins[:, -1].copy(), p.north, tag=tag + 2)
            comm.send(self.spins[:, 0].copy(), p.south, tag=tag + 3)
            south = comm.recv(source=p.south, tag=tag + 2)
            north = comm.recv(source=p.north, tag=tag + 3)
        else:
            south, north = self.spins[:, -1].copy(), self.spins[:, 0].copy()
        return west, east, south, north

    def local_field(self, tag: int) -> np.ndarray:
        """``sum_a K_a (s_+a + s_-a)`` for every owned site, via halos."""
        west, east, south, north = self._exchange_planes(tag)
        kx, ky, kt = self.couplings
        s = self.spins
        up_x = np.concatenate([s[1:], east[None, :, :]], axis=0)
        down_x = np.concatenate([west[None, :, :], s[:-1]], axis=0)
        up_y = np.concatenate([s[:, 1:], north[:, None, :]], axis=1)
        down_y = np.concatenate([south[:, None, :], s[:, :-1]], axis=1)
        field = kx * (up_x + down_x) + ky * (up_y + down_y)
        field += kt * (np.roll(s, 1, axis=2) + np.roll(s, -1, axis=2))
        return field

    def _sweep_uniforms(self) -> np.ndarray:
        """This sweep's per-site uniforms, *sliced from the global field*.

        Every rank generates the same global (lx, ly, lt) uniform lattice
        from the shared sweep seed and takes its own block -- the source
        of serial/parallel bit-identity.  (A production code would use a
        counter-based generator to skip the unused portion; regenerating
        is the simple deterministic equivalent.)
        """
        gen = self.sweep_factory.stream("scratch", self.sweep_index).generator
        full = gen.random((self.cfg.lx, self.cfg.ly, self.lt))
        p = self.piece
        self.sweep_index += 1
        return full[p.x_start : p.x_stop, p.y_start : p.y_stop]

    def sweep(self) -> None:
        """Both checkerboard colors, one halo exchange per color."""
        uniforms = self._sweep_uniforms()
        log_u = np.log(np.maximum(uniforms, 1e-300))
        tag = _TAG_ISING + (self.sweep_index % 64) * 8
        for c, mask in enumerate(self.color_masks):
            field = self.local_field(tag + 4 * c)
            accept = mask & (log_u < -2.0 * self.spins * field)
            self.spins = np.where(accept, -self.spins, self.spins)
        self.comm.charge_compute(
            FLOPS_PER_SPIN_UPDATE * self.spins.size * 2
        )

    # -- measurement -----------------------------------------------------------
    def local_bond_sums(self, tag: int) -> np.ndarray:
        """(x, y, t) bond sums counting each owned-origin bond once."""
        west, east, south, north = self._exchange_planes(tag)
        s = self.spins.astype(np.int64)
        up_x = np.concatenate([s[1:], east[None, :, :].astype(np.int64)], axis=0)
        up_y = np.concatenate([s[:, 1:], north[:, None, :].astype(np.int64)], axis=1)
        bx = float(np.sum(s * up_x))
        by = float(np.sum(s * up_y))
        bt = float(np.sum(s * np.roll(s, -1, axis=2)))
        return np.array([bx, by, bt])

    def local_spin_sum(self) -> float:
        return float(self.spins.sum())


def ising_block_program(comm, cfg: IsingBlockConfig) -> dict:
    """SPMD rank program: block-decomposed anisotropic Ising sweeps.

    Returns on every rank the (identical) global time series of
    magnetization and per-axis bond sums, plus the rank's owned block
    for bit-identity checks.
    """
    state = _BlockState(comm, cfg)
    n_sites = cfg.lx * cfg.ly * cfg.lt
    for _ in range(cfg.n_thermalize):
        state.sweep()
    mags, bonds = [], []
    for s in range(cfg.n_sweeps):
        state.sweep()
        if s % cfg.measure_every == 0:
            m = comm.allreduce(state.local_spin_sum()) / n_sites
            b = comm.allreduce(state.local_bond_sums(_TAG_ISING + 7000))
            mags.append(m)
            bonds.append(b)
    return {
        "magnetization": np.array(mags),
        "bond_sums": np.array(bonds),
        "block": state.spins.copy(),
        "piece": (state.piece.x_start, state.piece.x_stop,
                  state.piece.y_start, state.piece.y_stop),
    }


# ======================================================================
# replica-parallel 2-D world-line driver
# ======================================================================


@dataclass(frozen=True)
class Worldline2DReplicaConfig:
    """Run parameters of the replica-parallel 2-D world-line sampler.

    Each rank runs an independent Markov chain of the full ``lx x ly``
    lattice using the batched conflict-free kernels of
    :class:`~repro.qmc.worldline2d.WorldlineSquareQmc`; measurements
    are allreduce-averaged across replicas.  This is the strategy the
    paper used when the lattice fits in one node's memory: perfect
    compute scaling, one collective per measurement.
    """

    lx: int
    ly: int
    beta: float
    n_slices: int
    jz: float = 1.0
    jxy: float = 1.0
    n_sweeps: int = 50
    n_thermalize: int = 0
    measure_every: int = 1
    mode: str = "auto"

    def __post_init__(self):
        XXZSquareModel(self.lx, self.ly, jz=self.jz, jxy=self.jxy)  # validates
        if self.n_sweeps < 1:
            raise ValueError("need at least one sweep")
        if self.measure_every < 1:
            raise ValueError("measure_every must be >= 1")
        if self.mode not in ("auto", "scalar", "vectorized"):
            raise ValueError(f"unknown sweep mode {self.mode!r}")


def worldline2d_replica_flops_per_sweep(sampler) -> float:
    """Modeled FLOPs one replica charges per full lattice sweep.

    One segment proposal per (bond, activation interval) plus the
    straight-column pass over every space--time site -- the same
    accounting :func:`repro.vmp.performance.worldline2d_workload` uses,
    so executed-driver timings and the analytic model stay comparable.
    """
    segment = sampler.n_bonds * sampler.n_trotter * FLOPS_PER_SEGMENT_MOVE
    column = 2.0 * sampler.n_sites * sampler.n_slices
    return segment + column


def worldline2d_replica_program(comm, cfg: Worldline2DReplicaConfig) -> dict:
    """SPMD rank program: independent-replica batched 2-D world lines.

    Returns, on every rank, replica-averaged energy and squared
    staggered magnetization series (identical across ranks thanks to
    allreduce) plus this rank's final configuration and acceptance.
    """
    model = XXZSquareModel(cfg.lx, cfg.ly, jz=cfg.jz, jxy=cfg.jxy)
    sampler = WorldlineSquareQmc(
        model, cfg.beta, cfg.n_slices, stream=comm.stream
    )
    flops_per_sweep = worldline2d_replica_flops_per_sweep(sampler)
    for _ in range(cfg.n_thermalize):
        sampler.sweep(mode=cfg.mode)
        comm.charge_compute(flops_per_sweep)
    energies, m2s = [], []
    for s in range(cfg.n_sweeps):
        sampler.sweep(mode=cfg.mode)
        comm.charge_compute(flops_per_sweep)
        if s % cfg.measure_every == 0:
            e = comm.allreduce(sampler.energy_estimate()) / comm.size
            m2 = comm.allreduce(sampler.staggered_magnetization_sq()) / comm.size
            energies.append(e)
            m2s.append(m2)
    return {
        "energy": np.array(energies),
        "m_stag_sq": np.array(m2s),
        "spins": sampler.spins.copy(),
        "acceptance": sampler.acceptance_rate,
        "beta": cfg.beta,
        "dtau": sampler.dtau,
    }
