"""Parallel tempering (replica exchange) across ranks.

One rank per temperature: each runs checkerboard Metropolis on the
classical (mapped) model at its own inverse temperature, and every
``exchange_every`` sweeps neighboring temperatures attempt to swap
configurations with the replica-exchange acceptance

    a = min(1, exp[ (beta_i - beta_j)(E_i - E_j) ])

where ``E`` is the *physical* energy ``-sum_a J_a sum ss``.  Both
partners must reach the same accept/reject decision without an extra
round trip; they do so by drawing the decision uniform from a shared
counter-indexed stream (same seed, same (round, pair) address -> same
number on both ranks).

Each rank accumulates an energy histogram on a shared grid; the driver
returns everything needed for multiple-histogram reweighting
(:mod:`repro.stats.wham`) -- together they reproduce benchmark F9.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.qmc.classical_ising import AnisotropicIsing, FLOPS_PER_SPIN_UPDATE
from repro.stats.histogram import EnergyHistogram
from repro.util.rng import SeedSequenceFactory

__all__ = ["TemperingConfig", "tempering_program"]

_TAG_PT = 16384


@dataclass(frozen=True)
class TemperingConfig:
    """Parameters of a parallel-tempering run on the classical model.

    ``betas`` must have one entry per rank, sorted ascending or not --
    neighbor exchanges use rank adjacency, so sort them for sensible
    overlap.  ``couplings_j`` are the physical per-axis couplings; rank
    r simulates reduced couplings ``betas[r] * couplings_j``.
    """

    shape: tuple[int, ...]
    couplings_j: tuple[float, ...]
    betas: tuple[float, ...]
    n_sweeps: int
    n_thermalize: int = 0
    exchange_every: int = 5
    histogram_bins: int = 64
    shared_seed: int = 777

    def __post_init__(self):
        if len(self.couplings_j) != len(self.shape):
            raise ValueError("need one physical coupling per axis")
        if self.n_sweeps < 1:
            raise ValueError("need at least one sweep")
        if self.exchange_every < 1:
            raise ValueError("exchange_every must be >= 1")


def _physical_energy(sampler: AnisotropicIsing, couplings_j: np.ndarray) -> float:
    """``H = -sum_a J_a sum_<ij>_a s_i s_j`` of the current configuration."""
    return float(-np.dot(couplings_j, sampler.bond_sums()))


def tempering_program(comm, cfg: TemperingConfig) -> dict:
    """SPMD rank program: one temperature per rank with neighbor swaps.

    Returns per-rank: beta, the energy time series, the histogram counts
    (grid shared across ranks), and per-neighbor exchange acceptance.
    """
    if len(cfg.betas) != comm.size:
        raise ValueError(
            f"need exactly one beta per rank: {len(cfg.betas)} betas, "
            f"{comm.size} ranks"
        )
    beta = float(cfg.betas[comm.rank])
    j = np.asarray(cfg.couplings_j, dtype=float)
    sampler = AnisotropicIsing(
        cfg.shape, tuple(beta * j), stream=comm.stream, hot_start=True
    )
    n_bonds_max = sum(
        np.prod(cfg.shape) for _ in cfg.shape
    )  # one bond per site per axis (periodic)
    e_max = float(np.abs(j).sum() * np.prod(cfg.shape))
    hist = EnergyHistogram(-e_max, e_max, cfg.histogram_bins)
    shared = SeedSequenceFactory(cfg.shared_seed)

    for _ in range(cfg.n_thermalize):
        sampler.sweep()

    energies = []
    magnetizations = []
    attempts = 0
    accepts = 0
    n_rounds = 0
    for s in range(cfg.n_sweeps):
        sampler.sweep()
        comm.charge_compute(FLOPS_PER_SPIN_UPDATE * sampler.n_sites)
        e = _physical_energy(sampler, j)
        energies.append(e)
        magnetizations.append(sampler.magnetization())
        hist.add(e)
        if (s + 1) % cfg.exchange_every == 0:
            n_rounds += 1
            # Alternate even/odd neighbor pairings (standard PT schedule).
            offset = n_rounds % 2
            pair = (comm.rank - offset) // 2  # index of my pair this round
            lower = 2 * pair + offset  # rank of the pair's lower member
            upper = lower + 1
            if lower < 0 or upper >= comm.size or comm.rank not in (lower, upper):
                continue
            partner = upper if comm.rank == lower else lower
            e_self = _physical_energy(sampler, j)
            e_other = comm.sendrecv(
                e_self, partner, partner, sendtag=_TAG_PT, recvtag=_TAG_PT
            )
            beta_other = float(cfg.betas[partner])
            log_a = (beta - beta_other) * (e_self - e_other)
            # Shared decision uniform: identical on both partners.
            u = shared.stream("tempering", n_rounds * comm.size + lower).uniform()
            attempts += 1
            if log_a >= 0 or u < np.exp(log_a):
                accepts += 1
                other_spins = comm.sendrecv(
                    sampler.spins,
                    partner,
                    partner,
                    sendtag=_TAG_PT + 1,
                    recvtag=_TAG_PT + 1,
                )
                sampler.spins = other_spins.astype(np.int8)
    return {
        "beta": beta,
        "energy": np.array(energies),
        "magnetization": np.array(magnetizations),
        "histogram_counts": hist.counts.copy(),
        "histogram_range": (hist.e_min, hist.e_max, hist.n_bins),
        "n_samples": hist.n_samples,
        "exchange_attempts": attempts,
        "exchange_accepts": accepts,
        "_n_bonds_max": n_bonds_max,
    }


def histograms_from_results(results: list[dict]) -> list[EnergyHistogram]:
    """Rebuild :class:`EnergyHistogram` objects from rank result dicts."""
    out = []
    for r in results:
        e_min, e_max, n_bins = r["histogram_range"]
        h = EnergyHistogram(e_min, e_max, n_bins)
        h.counts = np.asarray(r["histogram_counts"], dtype=np.int64).copy()
        h.n_samples = int(r["n_samples"])
        out.append(h)
    return out
