"""Transverse-field Ising QMC via the Suzuki--Trotter classical mapping.

The d-dimensional quantum model

    H = -J sum_<ij> sigma^z_i sigma^z_j - Gamma sum_i sigma^x_i

at inverse temperature ``beta`` with ``M`` Trotter slices maps onto a
(d+1)-dimensional anisotropic classical Ising model on the lattice
``spatial_shape + (M,)`` with reduced couplings

    K_space = dtau * J,
    K_tau   = -(1/2) ln tanh(dtau * Gamma),       dtau = beta / M,

up to the constant ``C = (sinh(2 dtau Gamma)/2)^(N M / 2)``.  The
quantum energy estimator follows from ``E = -d ln Z / d beta`` applied
to the mapped partition function::

    E = -(1/M) [ N M Gamma coth(2 dtau Gamma)
                 + J * SumSpaceBonds
                 - (Gamma/2)(coth(dtau Gamma) - tanh(dtau Gamma)) * SumTimeBonds ]

and the transverse magnetization from the per-time-bond ratio
``<sigma^x> = tanh(dtau Gamma)`` on equal neighbors, ``coth`` on
unequal ones.  Both estimators are validated against exact
diagonalization in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.qmc.classical_ising import AnisotropicIsing
from repro.util.correlation import mean_circular_correlation
from repro.util.rng import RankStream

__all__ = [
    "TfimQmc",
    "TfimMeasurement",
    "tfim_energy_from_bond_sums",
    "tfim_sigma_x_from_time_bonds",
]


def tfim_energy_from_bond_sums(
    space_sum: float,
    time_sum: float,
    n_sites: int,
    n_slices: int,
    j: float,
    gamma: float,
    dtau: float,
) -> float:
    """Quantum total-energy estimator from classical bond sums.

    Shared by the serial sampler and the domain-decomposed driver (which
    measures bond sums via allreduce); see the module docstring for the
    derivation from ``E = -d ln Z / d beta``.
    """
    x = dtau * gamma
    coth2 = 1.0 / math.tanh(2 * x)
    tanh = math.tanh(x)
    coth = 1.0 / tanh
    const = n_sites * n_slices * gamma * coth2
    dk_tau = -(gamma / 2.0) * (coth - tanh)
    return -(const + j * space_sum + dk_tau * time_sum) / n_slices


def tfim_sigma_x_from_time_bonds(
    time_sum: float, n_time_bonds: int, gamma: float, dtau: float
) -> float:
    """``<sigma^x>`` per site from the time-bond sum.

    ``time_sum = n_same - n_diff`` and ``n_same + n_diff = n_time_bonds``
    recover the equal/unequal counts the estimator needs.
    """
    x = dtau * gamma
    tanh = math.tanh(x)
    coth = 1.0 / tanh
    n_same = 0.5 * (n_time_bonds + time_sum)
    n_diff = n_time_bonds - n_same
    return (n_same * tanh + n_diff * coth) / n_time_bonds


@dataclass
class TfimMeasurement:
    """Quantum-observable time series of a TFIM QMC run."""

    beta: float
    dtau: float
    energy: np.ndarray  # total-energy estimator
    sigma_x: np.ndarray  # <sigma^x> per site
    magnetization: np.ndarray  # sigma^z order parameter per site (signed)
    abs_magnetization: np.ndarray
    m_squared: np.ndarray  # <m^2> per measurement

    @property
    def n_measurements(self) -> int:
        return len(self.energy)

    def binder_cumulant(self) -> float:
        m2 = float(np.mean(self.m_squared))
        m4 = float(np.mean(self.m_squared**2))
        if m2 == 0:
            return 0.0
        return 1.0 - m4 / (3.0 * m2 * m2)


class TfimQmc:
    """QMC sampler for the TFIM in 1-D (chain) or 2-D (square lattice).

    Parameters
    ----------
    spatial_shape:
        ``(L,)`` for a periodic chain, ``(Lx, Ly)`` for a periodic
        square lattice.  Extents must be even (checkerboard).
    j, gamma:
        Ising coupling and transverse field.
    beta:
        Inverse temperature.
    n_slices:
        Trotter slices M; the Trotter error is O((beta/M)^2 * energy scales).
    """

    def __init__(
        self,
        spatial_shape: tuple[int, ...],
        j: float,
        gamma: float,
        beta: float,
        n_slices: int,
        seed: int | None = 0,
        stream: RankStream | None = None,
        hot_start: bool = False,
        kernel: str = "auto",
    ):
        if gamma <= 0:
            raise ValueError(
                "the classical mapping needs Gamma > 0 (K_tau diverges at "
                "Gamma = 0; that limit is the classical Ising model)"
            )
        if beta <= 0:
            raise ValueError("beta must be positive")
        if n_slices < 2 or n_slices % 2:
            raise ValueError("n_slices must be even and >= 2")
        if len(spatial_shape) not in (1, 2):
            raise ValueError("TFIM QMC supports chains and square lattices")
        self.spatial_shape = tuple(int(x) for x in spatial_shape)
        self.j = float(j)
        self.gamma = float(gamma)
        self.beta = float(beta)
        self.n_slices = int(n_slices)
        self.dtau = beta / n_slices
        x = self.dtau * gamma
        self.k_space = self.dtau * j
        self.k_tau = -0.5 * math.log(math.tanh(x))
        couplings = [self.k_space] * len(self.spatial_shape) + [self.k_tau]
        self.classical = AnisotropicIsing(
            self.spatial_shape + (n_slices,),
            couplings,
            seed=seed,
            stream=stream,
            hot_start=hot_start,
            kernel=kernel,
        )
        self._tanh = math.tanh(x)
        self._coth = 1.0 / self._tanh
        self._coth2 = 1.0 / math.tanh(2 * x)

    @property
    def n_sites(self) -> int:
        n = 1
        for s in self.spatial_shape:
            n *= s
        return n

    @property
    def spins(self) -> np.ndarray:
        return self.classical.spins

    # ------------------------------------------------------------------
    # quantum estimators
    # ------------------------------------------------------------------
    def energy_estimate(self) -> float:
        """Total-energy estimator of the current configuration."""
        bsums = self.classical.bond_sums()
        return tfim_energy_from_bond_sums(
            space_sum=float(bsums[:-1].sum()),
            time_sum=float(bsums[-1]),
            n_sites=self.n_sites,
            n_slices=self.n_slices,
            j=self.j,
            gamma=self.gamma,
            dtau=self.dtau,
        )

    def sigma_x_estimate(self) -> float:
        """``<sigma^x>`` per site from the time-bond estimator."""
        time_sum = self.classical.bond_sum(self.classical.ndim - 1)
        n_bonds = self.classical.spins.size  # one time bond per site-slice
        return tfim_sigma_x_from_time_bonds(time_sum, n_bonds, self.gamma, self.dtau)

    def magnetization_estimate(self) -> float:
        """``<sigma^z>`` order parameter (signed, per site)."""
        return self.classical.magnetization()

    def spin_correlation(self, axis: int = 0, method: str = "auto") -> np.ndarray:
        """Equal-time ``<sigma^z_0 sigma^z_r>`` along one spatial axis.

        The classical lattice is periodic along every axis, so the
        default path computes all distances with a single FFT; the
        roll-loop reference survives as ``method="loop"`` for the
        agreement tests.
        """
        s = self.classical.spins.astype(float)
        extent = self.spatial_shape[axis]
        max_r = extent // 2
        if method in ("auto", "fft"):
            return mean_circular_correlation(s, axis=axis, max_lag=max_r)
        if method != "loop":
            raise ValueError(f"unknown correlation method {method!r}")
        out = np.empty(max_r + 1)
        for r in range(max_r + 1):
            out[r] = float(np.mean(s * np.roll(s, -r, axis=axis)))
        return out

    # ------------------------------------------------------------------
    def sweep(self, uniforms: np.ndarray | None = None) -> None:
        self.classical.sweep(uniforms=uniforms)

    def run(
        self,
        n_sweeps: int,
        n_thermalize: int = 0,
        measure_every: int = 1,
    ) -> TfimMeasurement:
        """Thermalize, then sweep and record quantum estimators."""
        if n_sweeps < 1:
            raise ValueError("need at least one measured sweep")
        for _ in range(n_thermalize):
            self.sweep()
        e, sx, m, am, m2 = [], [], [], [], []
        for s in range(n_sweeps):
            self.sweep()
            if s % measure_every == 0:
                e.append(self.energy_estimate())
                sx.append(self.sigma_x_estimate())
                mag = self.magnetization_estimate()
                m.append(mag)
                am.append(abs(mag))
                # Slice-resolved m^2: mean over slices of squared spatial mean.
                spatial_axes = tuple(range(len(self.spatial_shape)))
                per_slice = self.classical.spins.mean(axis=spatial_axes)
                m2.append(float(np.mean(per_slice.astype(float) ** 2)))
        return TfimMeasurement(
            beta=self.beta,
            dtau=self.dtau,
            energy=np.array(e),
            sigma_x=np.array(sx),
            magnetization=np.array(m),
            abs_magnetization=np.array(am),
            m_squared=np.array(m2),
        )
