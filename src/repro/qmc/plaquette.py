"""Exact Suzuki--Trotter plaquette weights for the XXZ bond Hamiltonian.

The checkerboard breakup factorizes ``exp(-beta H)`` into two-site
imaginary-time propagators ("shaded plaquettes").  For the spin-1/2 XXZ
bond

    h = Jz S^z_1 S^z_2 + (Jxy/2)(S^+_1 S^-_2 + S^-_1 S^+_2)

the 4x4 matrix ``exp(-dtau h)`` is known in closed form: in the basis
(dd, ud, du, uu) it is diagonal on dd/uu and a symmetric 2x2 block on
{ud, du}::

    W(uu->uu) = W(dd->dd) = exp(-dtau Jz/4)                       ("straight")
    W(ud->ud) = W(du->du) = exp(+dtau Jz/4) cosh(dtau Jxy/2)      ("continue")
    W(ud->du) = W(du->ud) = -exp(+dtau Jz/4) sinh(dtau Jxy/2)     ("jump")

For the antiferromagnet (``Jxy > 0``) the jump weight is negative; the
Marshall sublattice rotation (flip sigma^x,y on one sublattice of a
bipartite lattice) maps ``Jxy -> -Jxy`` and renders all weights
positive without changing the spectrum.  The table is therefore built
with ``|sinh|`` and records whether the rotation was needed; on
bipartite lattices this is exact, not an approximation.

A plaquette's four corners are encoded as a 4-bit integer::

    code = bl + 2*br + 4*tl + 8*tr

(bl = bottom-left spin in {0, 1}, etc.; bottom = earlier time slice).
``weights[code]`` is zero for the 10 particle-number-violating corner
states, which is how illegal Monte Carlo moves reject themselves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "PlaquetteTable",
    "encode_corners",
    "corner_flat_indices",
    "codes_from_flat",
]


def encode_corners(bl: int, br: int, tl: int, tr: int) -> int:
    """4-bit corner code (vectorized-compatible: works on arrays too)."""
    return bl + 2 * br + 4 * tl + 8 * tr


def corner_flat_indices(
    site_a: np.ndarray, site_b: np.ndarray, t: np.ndarray, n_slices: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flat spin indices ``site * T + slice`` of plaquette corners.

    For plaquettes at bonds ``(site_a, site_b)`` and intervals ``t`` on a
    C-contiguous ``(n_sites, n_slices)`` spin array, returns the four
    gather index arrays ``(bl, br, tl, tr)`` into ``spins.reshape(-1)``.
    All inputs broadcast; the result shape is the broadcast shape.  The
    batched kernels precompute these tables once per geometry so the hot
    path is pure gather + table lookup.
    """
    t1 = (t + 1) % n_slices
    return (
        site_a * n_slices + t,
        site_b * n_slices + t,
        site_a * n_slices + t1,
        site_b * n_slices + t1,
    )


def codes_from_flat(
    flat_spins: np.ndarray,
    bl: np.ndarray,
    br: np.ndarray,
    tl: np.ndarray,
    tr: np.ndarray,
) -> np.ndarray:
    """Corner codes gathered through precomputed flat index tables.

    ``flat_spins`` is ``spins.reshape(-1)`` of the C-contiguous spin
    array the index tables were built for.  Values stay in 0..15, so
    int8 spin storage cannot overflow.
    """
    return flat_spins[bl] + 2 * flat_spins[br] + 4 * flat_spins[tl] + 8 * flat_spins[tr]


# Corner codes of the six legal plaquette states.
CODE_DD = 0  # dd -> dd
CODE_UU = 15  # uu -> uu
CODE_UD_UD = 5  # ud -> ud   (bl=1, br=0, tl=1, tr=0)
CODE_DU_DU = 10
CODE_UD_DU = 9  # ud -> du   (bl=1, br=0, tl=0, tr=1): a spin exchange
CODE_DU_UD = 6

LEGAL_CODES = (CODE_DD, CODE_UD_UD, CODE_DU_UD, CODE_UD_DU, CODE_DU_DU, CODE_UU)

#: XOR masks translating a neighbor's corner-spin flips into code space.
FLIP_BL = 1
FLIP_BR = 2
FLIP_TL = 4
FLIP_TR = 8


@dataclass(frozen=True)
class PlaquetteTable:
    """Weight and log-derivative tables for one (Jz, Jxy, dtau).

    Attributes
    ----------
    weights:
        ``weights[code]``; zero on the 10 illegal codes.
    dlog:
        ``d ln W / d dtau`` per code (the energy estimator reads this;
        entries at illegal codes are zero and never dereferenced for a
        weight-carrying configuration).
    marshall_rotated:
        True when ``Jxy > 0`` (the AFM sign was absorbed by the
        sublattice rotation).
    """

    jz: float
    jxy: float
    dtau: float
    weights: np.ndarray = field(repr=False)
    dlog: np.ndarray = field(repr=False)
    marshall_rotated: bool = False

    @classmethod
    def build(cls, jz: float, jxy: float, dtau: float) -> "PlaquetteTable":
        if dtau <= 0:
            raise ValueError("dtau must be positive")
        x = dtau * abs(jxy) / 2.0
        straight = math.exp(-dtau * jz / 4.0)
        continue_w = math.exp(dtau * jz / 4.0) * math.cosh(x)
        jump_w = math.exp(dtau * jz / 4.0) * math.sinh(x)

        w = np.zeros(16)
        w[CODE_DD] = w[CODE_UU] = straight
        w[CODE_UD_UD] = w[CODE_DU_DU] = continue_w
        w[CODE_UD_DU] = w[CODE_DU_UD] = jump_w

        d = np.zeros(16)
        d[CODE_DD] = d[CODE_UU] = -jz / 4.0
        d[CODE_UD_UD] = d[CODE_DU_DU] = jz / 4.0 + (abs(jxy) / 2.0) * math.tanh(x)
        if jxy != 0.0:
            d[CODE_UD_DU] = d[CODE_DU_UD] = jz / 4.0 + (abs(jxy) / 2.0) * (
                1.0 / math.tanh(x)
            )
        return cls(
            jz=jz,
            jxy=jxy,
            dtau=dtau,
            weights=w,
            dlog=d,
            marshall_rotated=jxy > 0,
        )

    def weight(self, code: int | np.ndarray) -> float | np.ndarray:
        return self.weights[code]

    def dlog_weight(self, code: int | np.ndarray) -> float | np.ndarray:
        return self.dlog[code]

    def is_legal(self, code: int | np.ndarray):
        return self.weights[code] > 0.0

    def as_matrix(self) -> np.ndarray:
        """The 4x4 propagator ``exp(-dtau h)`` (possibly Marshall-rotated).

        Basis order (dd, ud, du, uu) with the bottom state as column.
        Used by unit tests to compare against ``scipy.linalg.expm``.
        """
        m = np.zeros((4, 4))
        for code in LEGAL_CODES:
            bottom = code & 3
            top = code >> 2
            m[top, bottom] = self.weights[code]
        return m
