"""World-line quantum Monte Carlo for spin-1/2 XXZ chains.

The configuration space is the checkerboard space--time lattice of the
Suzuki--Trotter decomposition: Ising variables ``S[i, t] in {0, 1}``
(1 = up) on ``L`` sites times ``T = 2M`` imaginary-time slices, with
``dtau = beta / M``.  Bond ``i`` (sites ``i, i+1``) is *active* during
interval ``[t, t+1]`` iff ``(i + t)`` is even; each active bond-interval
is a shaded plaquette carrying the exact two-site weight of
:class:`~repro.qmc.plaquette.PlaquetteTable`.  Up spins trace out
world lines that are continuous in time and may exchange across shaded
plaquettes ("jumps" / kinks).

Monte Carlo moves (all satisfying detailed balance individually):

* **corner flips** -- flip the four corner spins of an *unshaded*
  plaquette, deflecting a world line sideways.  Exactly four shaded
  plaquettes are affected; illegal results carry zero weight and
  reject themselves.
* **edge flips** (open chains) -- flip the two time-adjacent spins of a
  boundary site during its free-evolution interval (two affected
  plaquettes).
* **straight-line flips** -- flip an entire time column whose world
  line is straight, changing total magnetization by one.  This is what
  makes the uniform susceptibility measurable.

Known, period-accurate limitation: spatial winding is not sampled; on
periodic chains the simulation is confined to the zero-winding sector
(corrections fall exponentially with L).  Validation tests therefore
use *open* chains, where no winding sector exists.

Two sweep implementations are provided and cross-checked: a scalar
reference (any geometry) and a vectorized eight-color sweep requiring
``L % 4 == 0`` (periodic) and ``T % 4 == 0``, following the
vectorize-the-inner-loop idiom of the HPC guides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import kernels
from repro.models.hamiltonians import XXZChainModel
from repro.qmc.plaquette import PlaquetteTable
from repro.util.correlation import mean_circular_correlation
from repro.util.rng import RankStream, SeedSequenceFactory

__all__ = ["WorldlineChainQmc", "WorldlineMeasurement", "FLOPS_PER_CORNER_MOVE"]

#: Modeled floating-point work of one corner-flip attempt (4 plaquette
#: weight lookups old+new, one ratio, one compare, index arithmetic).
#: Used by the parallel drivers / performance model; the value matches
#: the arithmetic of an optimized Fortran inner loop of the era.
FLOPS_PER_CORNER_MOVE = 24.0


@dataclass
class WorldlineMeasurement:
    """Time series measured during a world-line run (one entry per measurement).

    ``energy`` is the total-energy estimator ``-(1/M) sum_p dlnW_p``;
    ``magnetization`` the conserved-per-slice total S^z; ``m_stag_sq``
    the squared staggered magnetization per site, slice-averaged;
    ``szsz`` rows are the distance-resolved correlation function
    ``C(r) = <S^z_0 S^z_r>`` averaged over sites and slices.
    """

    beta: float
    dtau: float
    energy: np.ndarray
    magnetization: np.ndarray
    m_stag_sq: np.ndarray
    szsz: np.ndarray  # (n_measurements, L//2 + 1)

    @property
    def n_measurements(self) -> int:
        return len(self.energy)

    def susceptibility(self, n_sites: int) -> float:
        """Uniform susceptibility ``beta (<M^2> - <M>^2) / L``."""
        m = self.magnetization
        return float(self.beta * (np.mean(m**2) - np.mean(m) ** 2) / n_sites)


class WorldlineChainQmc:
    """World-line sampler for one XXZ chain at fixed (beta, n_slices)."""

    def __init__(
        self,
        model: XXZChainModel,
        beta: float,
        n_slices: int,
        seed: int | None = 0,
        stream: RankStream | None = None,
    ):
        if model.field != 0.0:
            raise ValueError(
                "world-line driver samples at zero field; susceptibility "
                "comes from magnetization fluctuations"
            )
        if beta <= 0:
            raise ValueError("beta must be positive")
        if n_slices < 4 or n_slices % 2:
            raise ValueError("n_slices must be even and >= 4 (T = 2M)")
        self.model = model
        self.beta = float(beta)
        self.n_slices = int(n_slices)  # T
        self.n_trotter = n_slices // 2  # M
        self.dtau = beta / self.n_trotter
        self.L = model.n_sites
        self.periodic = model.periodic
        self.table = PlaquetteTable.build(model.jz, model.jxy, self.dtau)
        self.stream = stream if stream is not None else SeedSequenceFactory(
            seed if seed is not None else 0
        ).rank_stream(0)
        # Neel product state, straight world lines: legal for every (Jz, Jxy).
        self.spins = np.fromfunction(
            lambda i, t: (i % 2).astype(np.int8), (self.L, self.n_slices), dtype=int
        ).astype(np.int8)
        self._init_shaded_index()
        # Log-space plaquette weights for the column kernels (illegal
        # codes pinned to -inf).
        self._logw = np.where(
            self.table.weights > 0,
            np.log(np.maximum(self.table.weights, 1e-300)),
            -np.inf,
        )
        self.n_attempted = 0
        self.n_accepted = 0

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def n_bonds(self) -> int:
        return self.L if self.periodic else self.L - 1

    def _init_shaded_index(self) -> None:
        """Precompute (bond, interval) arrays of all shaded plaquettes."""
        ii, tt = [], []
        for i in range(self.n_bonds):
            for t in range(self.n_slices):
                if (i + t) % 2 == 0:
                    ii.append(i)
                    tt.append(t)
        self._shaded_i = np.array(ii, dtype=np.intp)
        self._shaded_t = np.array(tt, dtype=np.intp)

    def _codes(self, i: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Corner codes of shaded plaquettes at bonds ``i``, intervals ``t``."""
        s = self.spins
        j = (i + 1) % self.L
        t1 = (t + 1) % self.n_slices
        return (
            s[i, t].astype(np.intp)
            + 2 * s[j, t].astype(np.intp)
            + 4 * s[i, t1].astype(np.intp)
            + 8 * s[j, t1].astype(np.intp)
        )

    def shaded_codes(self) -> np.ndarray:
        """Corner codes of every shaded plaquette (measurement path)."""
        return self._codes(self._shaded_i, self._shaded_t)

    def config_log_weight(self) -> float:
        """log of the configuration weight; ``-inf`` if illegal."""
        w = self.table.weights[self.shaded_codes()]
        if np.any(w <= 0):
            return float("-inf")
        return float(np.sum(np.log(w)))

    def check_invariants(self) -> None:
        """Assert world-line continuity: every shaded plaquette is legal
        and each slice carries the same magnetization."""
        if np.any(self.table.weights[self.shaded_codes()] <= 0):
            raise AssertionError("illegal shaded plaquette in configuration")
        mags = self.spins.sum(axis=0)
        if self.periodic and np.any(mags != mags[0]):
            raise AssertionError("slice magnetization not conserved")

    # ------------------------------------------------------------------
    # estimators
    # ------------------------------------------------------------------
    def energy_estimate(self) -> float:
        """Total-energy estimator of the current configuration."""
        d = self.table.dlog[self.shaded_codes()]
        return float(-np.sum(d) / self.n_trotter)

    def magnetization(self) -> float:
        """Total S^z (identical on every slice for legal configurations)."""
        return float(self.spins[:, 0].sum() - self.L / 2.0)

    def staggered_magnetization_sq(self) -> float:
        """Slice-averaged squared staggered magnetization per site."""
        signs = np.where(np.arange(self.L) % 2 == 0, 1.0, -1.0)
        m_st = (signs[:, None] * (self.spins - 0.5)).sum(axis=0) / self.L
        return float(np.mean(m_st**2))

    def szsz_time_correlation(self, method: str = "auto") -> np.ndarray:
        """Imaginary-time autocorrelation ``G(k) = <S^z_i(0) S^z_i(tau_k)>``.

        Returned for slice separations ``k = 0 .. T/2``; the physical
        time of slice ``k`` is ``tau_k = k * beta / T``.  Averaged over
        sites and reference slices (translation invariance in both).
        The time axis is always periodic (trace boundary condition), so
        the default path is the single-FFT circular correlation; the
        roll-loop reference survives as ``method="loop"``.
        """
        sz = self.spins - 0.5
        max_k = self.n_slices // 2
        if method in ("auto", "fft"):
            return mean_circular_correlation(sz, axis=1, max_lag=max_k)
        if method != "loop":
            raise ValueError(f"unknown correlation method {method!r}")
        out = np.empty(max_k + 1)
        for k in range(out.size):
            out[k] = float(np.mean(sz * np.roll(sz, -k, axis=1)))
        return out

    def szsz_correlation(self, method: str = "auto") -> np.ndarray:
        """``C(r) = <S^z_i S^z_{i+r}>`` for r = 0..L//2 (sites+slices averaged).

        Periodic chains use the single-FFT circular correlation instead
        of one ``np.roll`` pass per distance (O(L T log L) total instead
        of O(L^2 T)); open chains keep the truncated-sum loop, which is
        not a circular convolution.  ``method="loop"`` forces the loop
        reference on any geometry, ``method="fft"`` demands the FFT path
        (periodic only) -- the agreement tests compare the two exactly.
        """
        sz = self.spins - 0.5
        max_r = self.L // 2
        if method == "auto":
            method = "fft" if self.periodic else "loop"
        if method == "fft":
            if not self.periodic:
                raise ValueError("FFT correlation path requires a periodic chain")
            return mean_circular_correlation(sz, axis=0, max_lag=max_r)
        if method != "loop":
            raise ValueError(f"unknown correlation method {method!r}")
        out = np.empty(max_r + 1)
        for r in range(max_r + 1):
            rolled = np.roll(sz, -r, axis=0)
            if self.periodic:
                out[r] = float(np.mean(sz * rolled))
            else:
                n = self.L - r
                out[r] = float(np.mean(sz[:n] * rolled[:n]))
        return out

    # ------------------------------------------------------------------
    # scalar reference moves
    # ------------------------------------------------------------------
    def _affected_by_corner(self, i: int, t: int) -> list[tuple[int, int]]:
        """Shaded plaquettes read by a corner flip at unshaded (i, t)."""
        T = self.n_slices
        out = [(i, (t - 1) % T), (i, (t + 1) % T)]
        if self.periodic:
            out.append(((i - 1) % self.L, t))
            out.append(((i + 1) % self.L, t))
        else:
            if i - 1 >= 0:
                out.append((i - 1, t))
            if i + 1 <= self.n_bonds - 1:
                out.append((i + 1, t))
        return out

    def _weight_product(self, plaqs: list[tuple[int, int]]) -> float:
        # Innermost scalar hot path: plain int arithmetic on the corner
        # code, no per-plaquette array allocations.
        s = self.spins
        w = self.table.weights
        L, T = self.L, self.n_slices
        prod = 1.0
        for i, t in plaqs:
            j = (i + 1) % L
            t1 = (t + 1) % T
            code = s[i, t] + 2 * s[j, t] + 4 * s[i, t1] + 8 * s[j, t1]
            prod *= float(w[code])
        return prod

    def _metropolis(self, ratio: float) -> bool:
        self.n_attempted += 1
        if ratio >= 1.0 or self.stream.uniform() < ratio:
            self.n_accepted += 1
            return True
        return False

    def attempt_corner_flip(self, i: int, t: int) -> bool:
        """Scalar corner flip at unshaded plaquette (bond i, interval t)."""
        if (i + t) % 2 == 0:
            raise ValueError(f"plaquette ({i}, {t}) is shaded, not unshaded")
        affected = self._affected_by_corner(i, t)
        w_old = self._weight_product(affected)
        j = (i + 1) % self.L
        t1 = (t + 1) % self.n_slices
        idx = ([i, i, j, j], [t, t1, t, t1])
        self.spins[idx] ^= 1
        w_new = self._weight_product(affected)
        if w_new <= 0.0 or not self._metropolis(w_new / w_old):
            self.spins[idx] ^= 1  # undo
            return False
        return True

    def attempt_edge_flip(self, site: int, t: int) -> bool:
        """Open-chain edge move: flip (site, t), (site, t+1) during the
        site's free-evolution interval."""
        if self.periodic:
            raise ValueError("edge moves exist only on open chains")
        if site == 0:
            bond = 0
        elif site == self.L - 1:
            bond = self.n_bonds - 1
        else:
            raise ValueError("edge moves act on the boundary sites only")
        if (bond + t) % 2 == 0:
            raise ValueError(f"interval {t} is not free evolution for site {site}")
        T = self.n_slices
        affected = [(bond, (t - 1) % T), (bond, (t + 1) % T)]
        w_old = self._weight_product(affected)
        idx = ([site, site], [t, (t + 1) % T])
        self.spins[idx] ^= 1
        w_new = self._weight_product(affected)
        if w_new <= 0.0 or not self._metropolis(w_new / w_old):
            self.spins[idx] ^= 1
            return False
        return True

    def attempt_column_flip(self, site: int) -> bool:
        """Straight-line move: flip the full time column of ``site``."""
        col = self.spins[site]
        if col.min() != col.max():
            return False  # world line not straight: move undefined
        affected = []
        for b in (site - 1, site):
            bb = b % self.L if self.periodic else b
            if not self.periodic and not 0 <= b <= self.n_bonds - 1:
                continue
            for t in range(self.n_slices):
                if (bb + t) % 2 == 0:
                    affected.append((bb, t))
        # Log-space product: T plaquettes can under/overflow in linear space.
        codes_i = np.array([a for a, _ in affected], dtype=np.intp)
        codes_t = np.array([b for _, b in affected], dtype=np.intp)
        old_codes = self._codes(codes_i, codes_t)
        self.spins[site] ^= 1
        new_codes = self._codes(codes_i, codes_t)
        w_new = self.table.weights[new_codes]
        if np.any(w_new <= 0):
            self.spins[site] ^= 1
            return False
        log_ratio = float(
            np.sum(np.log(w_new)) - np.sum(np.log(self.table.weights[old_codes]))
        )
        if not self._metropolis(float(np.exp(min(log_ratio, 0.0))) if log_ratio < 0 else 1.0):
            self.spins[site] ^= 1
            return False
        return True

    def sweep_scalar(self) -> None:
        """Reference sweep: every unshaded plaquette, edge interval and
        column once, in deterministic raster order."""
        for t in range(self.n_slices):
            for i in range(self.n_bonds):
                if (i + t) % 2 == 1:
                    self.attempt_corner_flip(i, t)
        if not self.periodic:
            for t in range(self.n_slices):
                if (0 + t) % 2 == 1:
                    self.attempt_edge_flip(0, t)
                if (self.n_bonds - 1 + t) % 2 == 1:
                    self.attempt_edge_flip(self.L - 1, t)
        for site in range(self.L):
            self.attempt_column_flip(site)

    # ------------------------------------------------------------------
    # vectorized sweep (periodic, L % 4 == 0, T % 4 == 0)
    # ------------------------------------------------------------------
    @property
    def can_vectorize(self) -> bool:
        return self.periodic and self.L % 4 == 0 and self.n_slices % 4 == 0

    def _class_indices(self, a: int, b: int) -> tuple[np.ndarray, np.ndarray]:
        """Flattened (bond, interval) grids of independence class (a, b)."""
        ii = np.arange(a, self.L, 4, dtype=np.intp)
        tt = np.arange(b, self.n_slices, 4, dtype=np.intp)
        gi, gt = np.meshgrid(ii, tt, indexing="ij")
        return gi.ravel(), gt.ravel()

    def _vector_corner_class(self, i: np.ndarray, t: np.ndarray, ops) -> None:
        """Simultaneous Metropolis on one independence class of corner flips.

        Moves within a class touch disjoint spin neighborhoods (sites
        i-1..i+2, slices t-1..t+2 are separated by the stride-4 grid),
        so parallel acceptance equals sequential acceptance in any
        order -- the property the domain-decomposed driver and the
        compiled kernel backends rely on.  The uniform draw stays here
        (one block per class, identical across backends).
        """
        u = self.stream.uniform(size=i.size)
        n_acc = ops["wl1d_corner"](self.spins, self.table.weights, i, t, u)
        self.n_attempted += i.size
        self.n_accepted += n_acc

    def _vector_column_parity(self, parity: int, ops) -> None:
        """Simultaneous straight-line flips on all columns of one parity."""
        L = self.L
        cols = np.arange(parity, L, 2, dtype=np.intp)
        straight = self.spins[cols].min(axis=1) == self.spins[cols].max(axis=1)
        cols = cols[straight]
        if cols.size == 0:
            return
        u = self.stream.uniform(size=cols.size)
        log_u = np.log(np.maximum(u, 1e-300))
        n_acc = ops["wl1d_column"](self.spins, self._logw, cols, log_u)
        self.n_attempted += cols.size
        self.n_accepted += n_acc

    def sweep_vectorized(self, kernel: str = "numpy") -> None:
        """Eight-color vectorized sweep (periodic chains, L%4 == T%4 == 0).

        ``kernel`` names the registry backend supplying the class ops;
        every backend produces the bit-identical trajectory.
        """
        if not self.can_vectorize:
            raise ValueError(
                "vectorized sweep needs a periodic chain with L % 4 == 0 and "
                f"n_slices % 4 == 0; got L={self.L}, T={self.n_slices}, "
                f"periodic={self.periodic}; fall back to the per-move "
                "reference with sweep(mode='scalar') / run(mode='scalar')"
            )
        ops = kernels.get_ops(kernel)
        for a in range(4):
            for b in range(4):
                if (a + b) % 2 == 1:
                    i, t = self._class_indices(a, b)
                    self._vector_corner_class(i, t, ops)
        self._vector_column_parity(0, ops)
        self._vector_column_parity(1, ops)

    def sweep(self, mode: str = "auto") -> None:
        """One full sweep.

        ``mode="auto"`` (the default, and the historical behavior)
        runs the registry's best available kernel backend when the
        geometry allows and the scalar reference otherwise;
        ``"scalar"`` forces the reference; a backend name ("numpy",
        "numba", ...; "vectorized" aliases "numpy") forces that
        backend.
        """
        if mode == "auto":
            if self.can_vectorize:
                self.sweep_vectorized(kernel=kernels.resolve_kernel("auto"))
            else:
                self.sweep_scalar()
        elif mode == "scalar":
            self.sweep_scalar()
        else:
            self.sweep_vectorized(kernel=kernels.resolve_sweep_mode(mode))

    @property
    def acceptance_rate(self) -> float:
        return self.n_accepted / self.n_attempted if self.n_attempted else 0.0

    # ------------------------------------------------------------------
    # run driver
    # ------------------------------------------------------------------
    def run(
        self,
        n_sweeps: int,
        n_thermalize: int = 0,
        measure_every: int = 1,
        mode: str = "auto",
    ) -> WorldlineMeasurement:
        """Thermalize, then sweep and measure (``mode`` as in :meth:`sweep`).

        Returns the raw time series; error analysis is the caller's job
        (see :mod:`repro.stats`).
        """
        if n_sweeps < 1:
            raise ValueError("need at least one measured sweep")
        for _ in range(n_thermalize):
            self.sweep(mode)
        energies, mags, mstag, corr = [], [], [], []
        for s in range(n_sweeps):
            self.sweep(mode)
            if s % measure_every == 0:
                energies.append(self.energy_estimate())
                mags.append(self.magnetization())
                mstag.append(self.staggered_magnetization_sq())
                corr.append(self.szsz_correlation())
        return WorldlineMeasurement(
            beta=self.beta,
            dtau=self.dtau,
            energy=np.array(energies),
            magnetization=np.array(mags),
            m_stag_sq=np.array(mstag),
            szsz=np.array(corr),
        )
