"""World-line QMC for the spin-1/2 XXZ model on the square lattice.

The 2-D generalization of :mod:`repro.qmc.worldline` -- the flagship
application of early parallel QMC (the 2-D Heisenberg antiferromagnet
and its relation to high-T_c parent compounds).  The Suzuki--Trotter
breakup uses the **four bond colors** of the square lattice (even/odd
x-bonds, even/odd y-bonds): one color acts per imaginary-time interval,
so the time axis has ``T = 4 M`` intervals with ``dtau = beta / M``.
Within one interval the active color's bonds tile *all* sites, giving
the same shaded-plaquette structure as the chain:

* interval ``t`` activates color ``t % 4``;
* every site belongs to exactly one active bond per interval, found via
  the precomputed ``partner[site, color]`` table;
* shaded plaquettes carry the exact two-site weights of
  :class:`~repro.qmc.plaquette.PlaquetteTable` (Marshall-rotated: the
  square lattice is bipartite, so the rotation is exact).

Monte Carlo moves:

* **segment flips** -- the 2-D generalization of the chain's corner
  flip.  Between two *consecutive activations* of a bond ``b = (i, j)``
  (intervals ``t0`` and ``t0 + 4``), flip both sites' spins on the four
  slices in between (``t0+1 .. t0+4``), deflecting a world line from
  ``i`` to ``j`` across that window.  Exactly eight shaded plaquettes
  are read: bond ``b`` at ``t0`` and ``t0+4``, plus the active
  plaquettes of ``i`` and ``j`` at the three intermediate intervals;
  any particle-number violation gives zero weight and auto-rejects.
  (The naive two-slice pair flip of the 1-D sampler is *always* illegal
  here, because at intervals ``t0 +- 1`` each site is paired with a
  different partner -- in 1-D the window between activations is two
  slices, which is exactly the corner flip.)
* **straight-line flips** -- flip a site's full time column when its
  world line is straight (changes S^z_total by one).

The same period-accurate limitation as the chain applies: spatial
winding is not sampled (see :meth:`WorldlineSquareQmc.winding_numbers`).

Two sweep implementations are provided and cross-checked, mirroring the
1-D sampler's design:

* ``sweep(mode="scalar")`` -- the reference path: per-bond Python loops
  over segment moves, scalar window and column flips.  Works on every
  legal geometry.
* ``sweep(mode="vectorized")`` -- batched conflict-free kernels.  The
  (bond, activation-interval) proposals are partitioned *statically*
  into independence classes

      bond color (4)  x  spatial bond parity (2 x 2)  x  mod-8 interval (2)

  such that no two moves of one class share a read plaquette and no
  move writes spins another move reads: same-color bonds tile the
  lattice into disjoint pairs, the 2x2 spatial parity (stride-4 along
  the bond axis, stride-2 across it) separates read neighborhoods by
  more than one lattice spacing, and the mod-8 interval classes keep
  the six read slices ``t0 .. t0+5`` of concurrent moves disjoint.
  Each class executes as ONE masked-Metropolis array kernel over
  precomputed flat-index gather tables (see
  :func:`repro.qmc.plaquette.corner_flat_indices`): gather all corner
  codes, form old/new weight products by table lookup, accept with a
  single vectorized uniform draw, scatter the accepted flips.  Straight
  -line column flips batch the same way over the two sublattices.
  Requires ``lx % 4 == 0`` and ``ly % 4 == 0`` (which also excludes the
  doubled-bond extent-2 geometries); odd Trotter numbers fall back to
  one-interval-at-a-time kernels that are still batched over bonds.

Because moves within a class have disjoint read/write footprints,
parallel acceptance equals sequential acceptance in any order -- both
modes sample exactly the same distribution, which the statistical
cross-check tests assert against each other and against exact
references.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro import kernels
from repro.models.hamiltonians import XXZSquareModel
from repro.obs.metrics import ACCEPTANCE_EDGES
from repro.qmc.plaquette import PlaquetteTable, codes_from_flat, corner_flat_indices
from repro.util.rng import RankStream, SeedSequenceFactory

__all__ = [
    "WorldlineSquareQmc",
    "Worldline2DMeasurement",
    "FLOPS_PER_SEGMENT_MOVE",
]

#: Modeled floating-point work of one segment-flip attempt: 8 affected
#: plaquettes evaluated old and new (16 table lookups), two 8-term
#: weight products, one ratio/compare, and gather index arithmetic.
#: The parallel drivers and the vmp performance model charge this per
#: attempted move, matching the arithmetic an optimized vector kernel
#: of the paper's era would execute.
FLOPS_PER_SEGMENT_MOVE = 48.0


@dataclass
class Worldline2DMeasurement:
    """Time series from a 2-D world-line run."""

    beta: float
    dtau: float
    energy: np.ndarray
    magnetization: np.ndarray
    m_stag_sq: np.ndarray  # squared staggered magnetization per site

    @property
    def n_measurements(self) -> int:
        return len(self.energy)

    def susceptibility(self, n_sites: int) -> float:
        m = self.magnetization
        return float(self.beta * (np.mean(m**2) - np.mean(m) ** 2) / n_sites)

    def staggered_structure_factor(self, n_sites: int) -> float:
        """``S(pi, pi) = N <m_st^2>`` -- the 2-D AFM order diagnostic."""
        return float(n_sites * np.mean(self.m_stag_sq))


class WorldlineSquareQmc:
    """Four-color world-line sampler on the periodic square lattice."""

    N_COLORS = 4

    def __init__(
        self,
        model: XXZSquareModel,
        beta: float,
        n_slices: int,
        seed: int | None = 0,
        stream: RankStream | None = None,
        metrics=None,
        health=None,
    ):
        if not model.periodic:
            raise ValueError("the 2-D world-line sampler uses periodic lattices")
        if beta <= 0:
            raise ValueError("beta must be positive")
        if n_slices < 2 * self.N_COLORS or n_slices % self.N_COLORS:
            raise ValueError(
                "n_slices must be a multiple of 4 and >= 8 (T = 4M, M >= 2: "
                "segment moves span the window between two activations)"
            )
        self.model = model
        self.beta = float(beta)
        self.n_slices = int(n_slices)
        self.n_trotter = n_slices // self.N_COLORS  # M
        self.dtau = beta / self.n_trotter
        self.n_sites = model.n_sites
        self.lattice = model.lattice
        self.table = PlaquetteTable.build(model.jz, model.jxy, self.dtau)
        self.stream = stream if stream is not None else SeedSequenceFactory(
            seed if seed is not None else 0
        ).rank_stream(0)

        self._build_bond_tables()
        # Neel product state, straight world lines (legal for all couplings).
        sub = np.array(
            [self.lattice.sublattice(s) for s in range(self.n_sites)], dtype=np.int8
        )
        self.spins = np.ascontiguousarray(np.repeat(sub[:, None], self.n_slices, axis=1))
        self._sublattice = sub
        self._stag_signs = np.where(sub == 0, 1.0, -1.0)
        self._build_shaded_gather()
        if self.can_vectorize:
            self._build_class_tables()
        self.n_attempted = 0
        self.n_accepted = 0
        # Optional telemetry (repro.obs): a RankMetrics scope, or None.
        # There is no modeled clock here, so only move counts and wall
        # time are recorded; per-sweep recording happens in sweep().
        self._obs = metrics is not None and metrics.enabled
        self._metrics = metrics if self._obs else None
        # Optional run-health monitor (repro.obs.health): a HealthMonitor
        # fed from run(), or the inert NOOP_HEALTH.  Pure observation --
        # it draws no randomness and never touches sampler state.
        from repro.obs.health import NOOP_HEALTH

        self._health = health if health is not None else NOOP_HEALTH
        self._m_kernel: dict = {}
        if self._obs:
            self._m_sweeps = metrics.counter("sweep.count")
            self._m_attempted = metrics.counter("sweep.attempted")
            self._m_accepted = metrics.counter("sweep.accepted")
            self._m_wall = metrics.counter("sweep.wall_seconds")
            self._m_acc_hist = metrics.histogram(
                "sweep.acceptance", ACCEPTANCE_EDGES
            )

    # ------------------------------------------------------------------
    # geometry tables
    # ------------------------------------------------------------------
    def _build_bond_tables(self) -> None:
        bonds = self.lattice.bonds()
        self.bond_sites = np.array([(a, b) for a, b, _c in bonds], dtype=np.intp)
        self.bond_colors = np.array([c for _a, _b, c in bonds], dtype=np.intp)
        self.n_bonds = len(bonds)
        # partner[site, color] = the site paired with `site` under that
        # color's tiling; bond_of[site, color] = that bond's index.
        self.partner = np.full((self.n_sites, self.N_COLORS), -1, dtype=np.intp)
        self.bond_of = np.full((self.n_sites, self.N_COLORS), -1, dtype=np.intp)
        for idx, (a, b, c) in enumerate(bonds):
            for s, o in ((a, b), (b, a)):
                if self.partner[s, c] != -1:
                    raise AssertionError(
                        f"site {s} appears in two color-{c} bonds; breakup broken"
                    )
                self.partner[s, c] = o
                self.bond_of[s, c] = idx
        if np.any(self.partner < 0):
            raise AssertionError("color tiling incomplete; need even extents")
        # Pairs connected by more than one bond color (extent-2 axes wrap
        # both directions onto the same neighbor).  Their world-line
        # exchange windows may start and end on *different* colors, so
        # they get the scalar multi-color window moves in the sweep.
        pair_colors: dict[tuple[int, int], list[int]] = {}
        for a, b, c in bonds:
            pair_colors.setdefault((min(a, b), max(a, b)), []).append(c)
        self.doubled_pairs = {
            pair: sorted(colors)
            for pair, colors in pair_colors.items()
            if len(colors) > 1
        }

    def _affected_for(self, bond: int) -> list[tuple[int, int]]:
        """Deduped (plaquette_bond, interval_offset) pairs read by a
        segment flip at ``bond``.

        Offsets are relative to the lower activation interval ``t0``:
        the bond's own plaquettes at 0 and +4, and the active plaquettes
        of both sites at offsets +1, +2, +3.  The set is
        configuration-independent, so it is precomputed per bond.
        """
        i, j = self.bond_sites[bond]
        c = int(self.bond_colors[bond])
        out: list[tuple[int, int]] = [(bond, 0), (bond, self.N_COLORS)]
        for off in (1, 2, 3):
            color = (c + off) % self.N_COLORS
            for s in (i, j):
                pair = (int(self.bond_of[s, color]), off)
                if pair not in out:
                    out.append(pair)
        return out

    # ------------------------------------------------------------------
    # precomputed gather tables (measurement + vectorized kernels)
    # ------------------------------------------------------------------
    def _build_shaded_gather(self) -> None:
        """Flat-index gather table over ALL shaded plaquettes.

        One ``(plaquette -> 4 flat spin indices)`` table replaces the
        per-color per-bond Python loop of the measurement path: one
        vectorized gather yields every shaded corner code.  Ordering is
        (color, bond-within-color, activation interval), kept stable so
        estimators are reproducible.
        """
        T = self.n_slices
        aa, bb, tt, ax = [], [], [], []
        for c in range(self.N_COLORS):
            ts = np.arange(c, T, self.N_COLORS, dtype=np.intp)
            bonds_c = np.nonzero(self.bond_colors == c)[0]
            aa.append(np.repeat(self.bond_sites[bonds_c, 0], ts.size))
            bb.append(np.repeat(self.bond_sites[bonds_c, 1], ts.size))
            tt.append(np.tile(ts, bonds_c.size))
            ax.append(np.full(bonds_c.size * ts.size, c < 2, dtype=bool))
        a = np.concatenate(aa)
        b = np.concatenate(bb)
        t = np.concatenate(tt)
        self._shaded_gather = corner_flat_indices(a, b, t, T)
        #: True where the shaded plaquette sits on an x-bond (winding axis).
        self._shaded_axis_x = np.concatenate(ax)

    @property
    def can_vectorize(self) -> bool:
        """Batched kernels need the 2x2 spatial parity classes to tile:
        both extents multiples of 4 (also excludes doubled-bond pairs)."""
        return self.lattice.lx % 4 == 0 and self.lattice.ly % 4 == 0

    def _build_class_tables(self) -> None:
        """Static conflict-free class decomposition of all segment moves.

        For every (color, 2x2 spatial parity) class, precompute the flat
        gather indices of the 8 affected plaquettes of every (bond, t0)
        proposal -- shape ``(B, M, 8)`` per corner -- plus the flip
        windows ``(B, M, 4)``.  The sweep slices the M axis into the two
        mod-8 interval classes (or single intervals for odd M) and runs
        one array kernel per slice: the hot path does no index
        arithmetic at all, only gathers, table lookups and scatters.
        """
        T, M = self.n_slices, self.n_trotter
        lx, ly = self.lattice.lx, self.lattice.ly
        coords = np.array([self.lattice.coords(s) for s in range(self.n_sites)])
        offs = np.array([0, self.N_COLORS, 1, 1, 2, 2, 3, 3], dtype=np.intp)
        self._seg_classes = []
        for c in range(self.N_COLORS):
            bonds_c = np.nonzero(self.bond_colors == c)[0]
            x = coords[self.bond_sites[bonds_c, 0], 0]
            y = coords[self.bond_sites[bonds_c, 0], 1]
            if c < 2:  # x-bond: stride 4 along x, stride 2 along y
                subkey = 2 * ((x // 2) % 2) + y % 2
            else:  # y-bond: stride 2 along x, stride 4 along y
                subkey = 2 * (x % 2) + (y // 2) % 2
            t0s = np.arange(c, T, self.N_COLORS, dtype=np.intp)  # (M,)
            for sub in range(4):
                sel = bonds_c[subkey == sub]
                i = self.bond_sites[sel, 0]
                j = self.bond_sites[sel, 1]
                B = sel.size
                aff = np.empty((B, 8), dtype=np.intp)
                aff[:, 0] = sel
                aff[:, 1] = sel
                for k, off in enumerate((1, 2, 3)):
                    cc = (c + off) % self.N_COLORS
                    aff[:, 2 + 2 * k] = self.bond_of[i, cc]
                    aff[:, 3 + 2 * k] = self.bond_of[j, cc]
                pa = self.bond_sites[aff, 0]  # (B, 8)
                pb = self.bond_sites[aff, 1]
                tau = (t0s[:, None] + offs[None, :]) % T  # (M, 8)
                bl, br, tl, tr = corner_flat_indices(
                    pa[:, None, :], pb[:, None, :], tau[None, :, :], T
                )  # each (B, M, 8)
                win = (
                    t0s[None, :, None] + np.arange(1, self.N_COLORS + 1)
                ) % T  # (1, M, 4)
                self._seg_classes.append(
                    {
                        "bonds": sel,
                        "t0s": t0s,
                        "bl": bl, "br": br, "tl": tl, "tr": tr,
                        "wi": i[:, None, None] * T + win,
                        "wj": j[:, None, None] * T + win,
                    }
                )
        # Straight-line column kernels: one class per sublattice (column
        # flips read only the column's own active plaquettes, whose other
        # corners live on the opposite sublattice).
        ts = np.arange(T, dtype=np.intp)
        self._col_classes = []
        for parity in (0, 1):
            sites = np.nonzero(self._sublattice == parity)[0]
            bonds_col = self.bond_of[sites[:, None], ts[None, :] % self.N_COLORS]
            ca = self.bond_sites[bonds_col, 0]  # (S, T)
            cb = self.bond_sites[bonds_col, 1]
            bl, br, tl, tr = corner_flat_indices(ca, cb, ts[None, :], T)
            self._col_classes.append(
                {"sites": sites, "bl": bl, "br": br, "tl": tl, "tr": tr}
            )
        w = self.table.weights
        self._logw = np.where(w > 0, np.log(np.maximum(w, 1e-300)), -np.inf)

    # ------------------------------------------------------------------
    # plaquette codes
    # ------------------------------------------------------------------
    def _codes(self, bond: np.ndarray | int, t: np.ndarray) -> np.ndarray:
        """Corner codes of plaquettes at (bond, interval t) -- vectorized in t."""
        a = self.bond_sites[bond, 0]
        b = self.bond_sites[bond, 1]
        t1 = (t + 1) % self.n_slices
        s = self.spins
        return (
            s[a, t].astype(np.intp)
            + 2 * s[b, t].astype(np.intp)
            + 4 * s[a, t1].astype(np.intp)
            + 8 * s[b, t1].astype(np.intp)
        )

    def shaded_codes(self) -> np.ndarray:
        """Codes of all shaded plaquettes -- one precomputed-table gather."""
        sf = self.spins.reshape(-1)
        bl, br, tl, tr = self._shaded_gather
        return codes_from_flat(sf, bl, br, tl, tr).astype(np.intp)

    def winding_numbers(self) -> tuple[int, int]:
        """Total spatial winding ``(W_x, W_y)`` of the world lines.

        Each jump plaquette displaces one world line by one lattice
        spacing along its bond axis (+1 for a->b, code 9; -1 for b->a,
        code 6); periodicity in imaginary time forces the summed
        displacement along each axis to be a multiple of the extent.
        The local move set conserves the winding sector (segment flips
        deflect a line out and back; column flips move no line sideways)
        -- the documented period-accurate limitation, asserted by the
        invariant tests.
        """
        codes = self.shaded_codes()
        jumps = (codes == 9).astype(np.int64) - (codes == 6).astype(np.int64)
        ax = self._shaded_axis_x
        wx = int(jumps[ax].sum())
        wy = int(jumps[~ax].sum())
        lx, ly = self.lattice.lx, self.lattice.ly
        if wx % lx or wy % ly:
            raise AssertionError("fractional winding: broken world line")
        return wx // lx, wy // ly

    def config_log_weight(self) -> float:
        w = self.table.weights[self.shaded_codes()]
        if np.any(w <= 0):
            return float("-inf")
        return float(np.sum(np.log(w)))

    def check_invariants(self) -> None:
        """Assert every conserved property of the local move set: legal
        shaded plaquettes, per-slice magnetization conservation, and
        confinement to the starting (zero) winding sector."""
        if np.any(self.table.weights[self.shaded_codes()] <= 0):
            raise AssertionError("illegal shaded plaquette")
        mags = self.spins.sum(axis=0)
        if np.any(mags != mags[0]):
            raise AssertionError("slice magnetization not conserved")
        if self.winding_numbers() != (0, 0):
            raise AssertionError("left the zero-winding sector")

    # ------------------------------------------------------------------
    # estimators
    # ------------------------------------------------------------------
    def energy_estimate(self) -> float:
        d = self.table.dlog[self.shaded_codes()]
        return float(-np.sum(d) / self.n_trotter)

    def magnetization(self) -> float:
        return float(self.spins[:, 0].sum() - self.n_sites / 2.0)

    def staggered_magnetization_sq(self) -> float:
        m_st = (self._stag_signs[:, None] * (self.spins - 0.5)).sum(axis=0)
        return float(np.mean((m_st / self.n_sites) ** 2))

    @property
    def acceptance_rate(self) -> float:
        return self.n_accepted / self.n_attempted if self.n_attempted else 0.0

    # ------------------------------------------------------------------
    # moves
    # ------------------------------------------------------------------
    def _segment_window(self, t0: np.ndarray) -> np.ndarray:
        """Flipped slices of segment moves at activation intervals t0:
        shape (len(t0), 4) of slice indices t0+1 .. t0+4 (periodic)."""
        return (t0[:, None] + np.arange(1, self.N_COLORS + 1)[None, :]) % self.n_slices

    def segment_flip_class(self, bond: int, t0: np.ndarray) -> None:
        """Segment flips at one bond for a set of activation intervals.

        The supplied ``t0`` values must be conflict-free: a move at t0
        reads slices t0..t0+5, so within one call they must be >= 8
        apart (``sweep`` passes the two mod-8 classes separately; for
        odd Trotter numbers it falls back to one-at-a-time calls).
        """
        c = int(self.bond_colors[bond])
        if np.any(t0 % self.N_COLORS != c):
            raise ValueError(f"t0 must be activation intervals of bond {bond}")
        affected = self._affected_for(bond)
        w = self.table.weights

        def weight_products() -> np.ndarray:
            prod = np.ones(t0.size)
            for ab, off in affected:
                prod = prod * w[self._codes(ab, (t0 + off) % self.n_slices)]
            return prod

        old = weight_products()
        i, j = self.bond_sites[bond]
        window = self._segment_window(t0)  # (n, 4)
        self.spins[i, window] ^= 1
        self.spins[j, window] ^= 1
        new = weight_products()
        u = self.stream.uniform(size=t0.size)
        reject = ~(new > 0.0) | (u * old >= new)
        rw = window[reject]
        self.spins[i, rw] ^= 1
        self.spins[j, rw] ^= 1
        self.n_attempted += t0.size
        self.n_accepted += int(t0.size - reject.sum())

    def attempt_window_flip(self, i: int, j: int, t1: int, t2: int) -> bool:
        """Generalized exchange of sites i, j over slices t1+1 .. t2.

        ``t1`` and ``t2`` must be activation intervals of bonds
        *connecting* i and j (possibly of different colors -- the case
        that only exists on extent-2 lattices with doubled bonds, where
        it is required for ergodicity).  Scalar Metropolis step.
        """
        T = self.n_slices
        c1, c2 = t1 % self.N_COLORS, t2 % self.N_COLORS
        if self.partner[i, c1] != j or self.partner[i, c2] != j:
            raise ValueError(
                f"intervals {t1},{t2} do not activate bonds connecting {i},{j}"
            )
        length = (t2 - t1) % T
        if length == 0:
            raise ValueError("window must have positive length")
        # Affected plaquettes: the bounding pair-bond plaquettes plus the
        # active plaquettes of both sites strictly inside the window.
        # Dedup through a set (membership tests on the list were O(n^2)
        # in the window length); insertion order keeps the weight
        # product deterministic.
        affected: list[tuple[int, int]] = [
            (int(self.bond_of[i, c1]), t1),
            (int(self.bond_of[i, c2]), t2),
        ]
        seen = set(affected)
        for step in range(1, length):
            tau = (t1 + step) % T
            color = tau % self.N_COLORS
            for s in (i, j):
                pair = (int(self.bond_of[s, color]), tau)
                if pair not in seen:
                    seen.add(pair)
                    affected.append(pair)
        w = self.table.weights

        def prod() -> float:
            p = 1.0
            for ab, tau in affected:
                p *= float(w[self._codes(ab, np.array([tau], dtype=np.intp))][0])
            return p

        old = prod()
        window = (t1 + 1 + np.arange(length)) % T
        self.spins[i, window] ^= 1
        self.spins[j, window] ^= 1
        new = prod()
        self.n_attempted += 1
        if new <= 0.0 or (new < old and self.stream.uniform() >= new / old):
            self.spins[i, window] ^= 1
            self.spins[j, window] ^= 1
            return False
        self.n_accepted += 1
        return True

    def attempt_column_flip(self, site: int) -> bool:
        """Straight-line move at one site (scalar; legality pre-checked)."""
        col = self.spins[site]
        if col.min() != col.max():
            return False
        ts = np.arange(self.n_slices, dtype=np.intp)
        bonds = self.bond_of[site, ts % self.N_COLORS]
        old_codes = self._codes(bonds, ts)
        self.spins[site] ^= 1
        new_codes = self._codes(bonds, ts)
        w_new = self.table.weights[new_codes]
        self.n_attempted += 1
        if np.any(w_new <= 0):
            self.spins[site] ^= 1
            return False
        log_ratio = float(
            np.sum(np.log(w_new)) - np.sum(np.log(self.table.weights[old_codes]))
        )
        if log_ratio < 0 and self.stream.uniform() >= np.exp(log_ratio):
            self.spins[site] ^= 1
            return False
        self.n_accepted += 1
        return True

    # ------------------------------------------------------------------
    # batched conflict-free kernels
    # ------------------------------------------------------------------
    def _run_segment_kernel(self, cls: dict, sl: slice, ops=None) -> None:
        """One masked-Metropolis kernel call: every segment move of one
        conflict-free class (``sl`` selects the mod-8 interval class on
        the precomputed M axis).

        The uniform draw happens here (one block per class, same
        generator sequence for every backend); the gather -> accept ->
        scatter body is the backend op.  All flipped spin indices
        within a call are distinct (same-color bonds are site-disjoint;
        in-class intervals are >= 8 slices apart), so in-place updates
        are exact for both the batched and the compiled sequential
        backends.
        """
        if ops is None:
            ops = kernels.get_ops("numpy")
        bl, br = cls["bl"][:, sl], cls["br"][:, sl]
        tl, tr = cls["tl"][:, sl], cls["tr"][:, sl]
        wi, wj = cls["wi"][:, sl], cls["wj"][:, sl]
        sf = self.spins.reshape(-1)
        u = self.stream.uniform(size=bl.shape[:2])
        n_acc = ops["wl2d_segment"](
            sf, self.table.weights, bl, br, tl, tr, wi, wj, u
        )
        self.n_attempted += u.size
        self.n_accepted += n_acc

    def _run_column_kernel(self, cls: dict, ops=None) -> None:
        """Batched straight-line flips across all legal sites of one
        sublattice (log-space weights: T plaquettes per column).

        Straight detection and the uniform draw stay here so the draw
        *size* is backend-independent; the flip evaluation is the
        backend op.
        """
        if ops is None:
            ops = kernels.get_ops("numpy")
        sites = cls["sites"]
        cols = self.spins[sites]
        straight = np.nonzero(cols.min(axis=1) == cols.max(axis=1))[0]
        if straight.size == 0:
            return
        bl, br = cls["bl"][straight], cls["br"][straight]
        tl, tr = cls["tl"][straight], cls["tr"][straight]
        flip = sites[straight]
        u = self.stream.uniform(size=flip.size)
        log_u = np.log(np.maximum(u, 1e-300))
        n_acc = ops["wl2d_column"](
            self.spins, self._logw, bl, br, tl, tr, flip, log_u
        )
        self.n_attempted += flip.size
        self.n_accepted += n_acc

    def sweep_vectorized(self, kernel: str = "numpy") -> None:
        """Batched sweep: 4 colors x 4 spatial parities x 2 interval
        classes of segment kernels, then the two sublattice column
        kernels.  Proposal set identical to the scalar sweep; the
        ``kernel`` registry backend supplies the class-update ops
        (trajectories are bit-identical across backends)."""
        if not self.can_vectorize:
            raise ValueError(
                "vectorized sweep needs lx % 4 == 0 and ly % 4 == 0; got "
                f"{self.lattice.lx}x{self.lattice.ly}; fall back to the "
                "per-bond reference with sweep(mode='scalar') / "
                "run(mode='scalar') or resize the lattice "
                "(the CLI --kernel flag only selects among batched "
                "backends, so it needs the same divisibility)"
            )
        ops = kernels.get_ops(kernel)
        even_m = self.n_trotter % 2 == 0
        for cls in self._seg_classes:
            if even_m:
                self._run_segment_kernel(cls, slice(0, None, 2), ops)
                self._run_segment_kernel(cls, slice(1, None, 2), ops)
            else:
                # Odd Trotter number: the two mod-8 classes do not tile;
                # fall back to one interval at a time, still bond-batched.
                for m in range(self.n_trotter):
                    self._run_segment_kernel(cls, slice(m, m + 1), ops)
        for cls in self._col_classes:
            self._run_column_kernel(cls, ops)

    def _kernel_counter(self, backend: str):
        """Per-backend kernel-time counter, created on first use."""
        counter = self._m_kernel.get(backend)
        if counter is None:
            counter = self._metrics.counter(f"sweep.kernel_seconds.{backend}")
            self._m_kernel[backend] = counter
        return counter

    def sweep(self, mode: str = "auto") -> None:
        """One full sweep: every (bond, activation) segment move once,
        then straight-line attempts on every site.

        ``mode`` selects the implementation: ``"scalar"`` runs the
        per-bond reference, a kernel-backend name (``"numpy"``,
        ``"numba"``, ...; ``"vectorized"`` is a legacy alias for
        ``"numpy"``) runs the batched conflict-free kernels through
        that backend, and ``"auto"`` asks the registry for the best
        available backend whenever the geometry allows.  Every mode
        proposes the same move set; the batched backends are
        bit-identical to each other.
        """
        if mode == "auto":
            mode = (
                kernels.resolve_kernel("auto")
                if self.can_vectorize else "scalar"
            )
        elif mode != "scalar":
            mode = kernels.resolve_sweep_mode(mode)
        obs = self._obs
        if obs:
            t0_wall = perf_counter()
            att0, acc0 = self.n_attempted, self.n_accepted
        if mode == "scalar":
            self.sweep_scalar()
        else:
            self.sweep_vectorized(kernel=mode)
            if obs:
                self._kernel_counter(mode).inc(perf_counter() - t0_wall)
        if obs:
            att = self.n_attempted - att0
            acc = self.n_accepted - acc0
            self._m_sweeps.inc()
            self._m_attempted.inc(att)
            self._m_accepted.inc(acc)
            self._m_wall.inc(perf_counter() - t0_wall)
            if att:
                self._m_acc_hist.observe(acc / att)

    def sweep_scalar(self) -> None:
        """Reference sweep: per-bond segment moves (time-batched into
        the two conflict-free mod-8 classes when the Trotter number is
        even), scalar window flips on doubled pairs, scalar column
        flips on every site."""
        for bond in range(self.n_bonds):
            c = int(self.bond_colors[bond])
            t0_all = np.arange(c, self.n_slices, self.N_COLORS, dtype=np.intp)
            if self.n_trotter % 2 == 0:
                self.segment_flip_class(bond, t0_all[0::2])
                self.segment_flip_class(bond, t0_all[1::2])
            else:
                for t in t0_all:
                    self.segment_flip_class(bond, np.array([t], dtype=np.intp))
        # Doubled pairs additionally need the mixed-color minimal windows
        # (between consecutive activations of *any* connecting bond).
        for (i, j), colors in self.doubled_pairs.items():
            activations = sorted(
                t
                for c in colors
                for t in range(c, self.n_slices, self.N_COLORS)
            )
            for k, t1 in enumerate(activations):
                t2 = activations[(k + 1) % len(activations)]
                if t1 % self.N_COLORS == t2 % self.N_COLORS:
                    continue  # same color: already covered by segment flips
                self.attempt_window_flip(i, j, t1, t2)
        for site in range(self.n_sites):
            self.attempt_column_flip(site)

    # ------------------------------------------------------------------
    def run(
        self,
        n_sweeps: int,
        n_thermalize: int = 0,
        measure_every: int = 1,
        mode: str = "auto",
    ) -> Worldline2DMeasurement:
        """Thermalize, sweep, measure (``mode`` as in :meth:`sweep`)."""
        if n_sweeps < 1:
            raise ValueError("need at least one measured sweep")
        for _ in range(n_thermalize):
            self.sweep(mode)
        monitor = self._health
        health_on = monitor.enabled
        check_every = monitor.rules.interval if health_on else 0
        energy, mags, mstag = [], [], []
        for s in range(n_sweeps):
            self.sweep(mode)
            if s % measure_every == 0:
                energy.append(self.energy_estimate())
                mags.append(self.magnetization())
                mstag.append(self.staggered_magnetization_sq())
                if health_on:
                    monitor.observe("energy", energy[-1], s)
                    monitor.observe("magnetization", mags[-1], s)
            if check_every and (s + 1) % check_every == 0:
                # No modeled clock on the serial sampler: the
                # comm-fraction rule stays dormant (model_seconds=None).
                monitor.check(
                    s + 1, attempted=self.n_attempted, accepted=self.n_accepted
                )
        return Worldline2DMeasurement(
            beta=self.beta,
            dtau=self.dtau,
            energy=np.array(energy),
            magnetization=np.array(mags),
            m_stag_sq=np.array(mstag),
        )
