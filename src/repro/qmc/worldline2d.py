"""World-line QMC for the spin-1/2 XXZ model on the square lattice.

The 2-D generalization of :mod:`repro.qmc.worldline` -- the flagship
application of early parallel QMC (the 2-D Heisenberg antiferromagnet
and its relation to high-T_c parent compounds).  The Suzuki--Trotter
breakup uses the **four bond colors** of the square lattice (even/odd
x-bonds, even/odd y-bonds): one color acts per imaginary-time interval,
so the time axis has ``T = 4 M`` intervals with ``dtau = beta / M``.
Within one interval the active color's bonds tile *all* sites, giving
the same shaded-plaquette structure as the chain:

* interval ``t`` activates color ``t % 4``;
* every site belongs to exactly one active bond per interval, found via
  the precomputed ``partner[site, color]`` table;
* shaded plaquettes carry the exact two-site weights of
  :class:`~repro.qmc.plaquette.PlaquetteTable` (Marshall-rotated: the
  square lattice is bipartite, so the rotation is exact).

Monte Carlo moves:

* **segment flips** -- the 2-D generalization of the chain's corner
  flip.  Between two *consecutive activations* of a bond ``b = (i, j)``
  (intervals ``t0`` and ``t0 + 4``), flip both sites' spins on the four
  slices in between (``t0+1 .. t0+4``), deflecting a world line from
  ``i`` to ``j`` across that window.  Exactly eight shaded plaquettes
  are read: bond ``b`` at ``t0`` and ``t0+4``, plus the active
  plaquettes of ``i`` and ``j`` at the three intermediate intervals;
  any particle-number violation gives zero weight and auto-rejects.
  (The naive two-slice pair flip of the 1-D sampler is *always* illegal
  here, because at intervals ``t0 +- 1`` each site is paired with a
  different partner -- in 1-D the window between activations is two
  slices, which is exactly the corner flip.)
* **straight-line flips** -- flip a site's full time column when its
  world line is straight (changes S^z_total by one).

The same period-accurate limitation as the chain applies: spatial
winding is not sampled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.hamiltonians import XXZSquareModel
from repro.qmc.plaquette import PlaquetteTable
from repro.util.rng import RankStream, SeedSequenceFactory

__all__ = ["WorldlineSquareQmc", "Worldline2DMeasurement"]


@dataclass
class Worldline2DMeasurement:
    """Time series from a 2-D world-line run."""

    beta: float
    dtau: float
    energy: np.ndarray
    magnetization: np.ndarray
    m_stag_sq: np.ndarray  # squared staggered magnetization per site

    @property
    def n_measurements(self) -> int:
        return len(self.energy)

    def susceptibility(self, n_sites: int) -> float:
        m = self.magnetization
        return float(self.beta * (np.mean(m**2) - np.mean(m) ** 2) / n_sites)

    def staggered_structure_factor(self, n_sites: int) -> float:
        """``S(pi, pi) = N <m_st^2>`` -- the 2-D AFM order diagnostic."""
        return float(n_sites * np.mean(self.m_stag_sq))


class WorldlineSquareQmc:
    """Four-color world-line sampler on the periodic square lattice."""

    N_COLORS = 4

    def __init__(
        self,
        model: XXZSquareModel,
        beta: float,
        n_slices: int,
        seed: int | None = 0,
        stream: RankStream | None = None,
    ):
        if not model.periodic:
            raise ValueError("the 2-D world-line sampler uses periodic lattices")
        if beta <= 0:
            raise ValueError("beta must be positive")
        if n_slices < 2 * self.N_COLORS or n_slices % self.N_COLORS:
            raise ValueError(
                "n_slices must be a multiple of 4 and >= 8 (T = 4M, M >= 2: "
                "segment moves span the window between two activations)"
            )
        self.model = model
        self.beta = float(beta)
        self.n_slices = int(n_slices)
        self.n_trotter = n_slices // self.N_COLORS  # M
        self.dtau = beta / self.n_trotter
        self.n_sites = model.n_sites
        self.lattice = model.lattice
        self.table = PlaquetteTable.build(model.jz, model.jxy, self.dtau)
        self.stream = stream if stream is not None else SeedSequenceFactory(
            seed if seed is not None else 0
        ).rank_stream(0)

        self._build_bond_tables()
        # Neel product state, straight world lines (legal for all couplings).
        sub = np.array(
            [self.lattice.sublattice(s) for s in range(self.n_sites)], dtype=np.int8
        )
        self.spins = np.repeat(sub[:, None], self.n_slices, axis=1)
        self._stag_signs = np.where(sub == 0, 1.0, -1.0)
        self.n_attempted = 0
        self.n_accepted = 0

    # ------------------------------------------------------------------
    # geometry tables
    # ------------------------------------------------------------------
    def _build_bond_tables(self) -> None:
        bonds = self.lattice.bonds()
        self.bond_sites = np.array([(a, b) for a, b, _c in bonds], dtype=np.intp)
        self.bond_colors = np.array([c for _a, _b, c in bonds], dtype=np.intp)
        self.n_bonds = len(bonds)
        # partner[site, color] = the site paired with `site` under that
        # color's tiling; bond_of[site, color] = that bond's index.
        self.partner = np.full((self.n_sites, self.N_COLORS), -1, dtype=np.intp)
        self.bond_of = np.full((self.n_sites, self.N_COLORS), -1, dtype=np.intp)
        for idx, (a, b, c) in enumerate(bonds):
            for s, o in ((a, b), (b, a)):
                if self.partner[s, c] != -1:
                    raise AssertionError(
                        f"site {s} appears in two color-{c} bonds; breakup broken"
                    )
                self.partner[s, c] = o
                self.bond_of[s, c] = idx
        if np.any(self.partner < 0):
            raise AssertionError("color tiling incomplete; need even extents")
        # Pairs connected by more than one bond color (extent-2 axes wrap
        # both directions onto the same neighbor).  Their world-line
        # exchange windows may start and end on *different* colors, so
        # they get the scalar multi-color window moves in the sweep.
        pair_colors: dict[tuple[int, int], list[int]] = {}
        for a, b, c in bonds:
            pair_colors.setdefault((min(a, b), max(a, b)), []).append(c)
        self.doubled_pairs = {
            pair: sorted(colors)
            for pair, colors in pair_colors.items()
            if len(colors) > 1
        }

    def _affected_for(self, bond: int) -> list[tuple[int, int]]:
        """Deduped (plaquette_bond, interval_offset) pairs read by a
        segment flip at ``bond``.

        Offsets are relative to the lower activation interval ``t0``:
        the bond's own plaquettes at 0 and +4, and the active plaquettes
        of both sites at offsets +1, +2, +3.  The set is
        configuration-independent, so it is precomputed per bond.
        """
        i, j = self.bond_sites[bond]
        c = int(self.bond_colors[bond])
        out: list[tuple[int, int]] = [(bond, 0), (bond, self.N_COLORS)]
        for off in (1, 2, 3):
            color = (c + off) % self.N_COLORS
            for s in (i, j):
                pair = (int(self.bond_of[s, color]), off)
                if pair not in out:
                    out.append(pair)
        return out

    # ------------------------------------------------------------------
    # plaquette codes
    # ------------------------------------------------------------------
    def _codes(self, bond: np.ndarray | int, t: np.ndarray) -> np.ndarray:
        """Corner codes of plaquettes at (bond, interval t) -- vectorized in t."""
        a = self.bond_sites[bond, 0]
        b = self.bond_sites[bond, 1]
        t1 = (t + 1) % self.n_slices
        s = self.spins
        return (
            s[a, t].astype(np.intp)
            + 2 * s[b, t].astype(np.intp)
            + 4 * s[a, t1].astype(np.intp)
            + 8 * s[b, t1].astype(np.intp)
        )

    def shaded_codes(self) -> np.ndarray:
        """Codes of all shaded plaquettes (concatenated per color)."""
        chunks = []
        for c in range(self.N_COLORS):
            ts = np.arange(c, self.n_slices, self.N_COLORS, dtype=np.intp)
            for bond in np.nonzero(self.bond_colors == c)[0]:
                chunks.append(self._codes(int(bond), ts))
        return np.concatenate(chunks)

    def config_log_weight(self) -> float:
        w = self.table.weights[self.shaded_codes()]
        if np.any(w <= 0):
            return float("-inf")
        return float(np.sum(np.log(w)))

    def check_invariants(self) -> None:
        if np.any(self.table.weights[self.shaded_codes()] <= 0):
            raise AssertionError("illegal shaded plaquette")
        mags = self.spins.sum(axis=0)
        if np.any(mags != mags[0]):
            raise AssertionError("slice magnetization not conserved")

    # ------------------------------------------------------------------
    # estimators
    # ------------------------------------------------------------------
    def energy_estimate(self) -> float:
        d = self.table.dlog[self.shaded_codes()]
        return float(-np.sum(d) / self.n_trotter)

    def magnetization(self) -> float:
        return float(self.spins[:, 0].sum() - self.n_sites / 2.0)

    def staggered_magnetization_sq(self) -> float:
        m_st = (self._stag_signs[:, None] * (self.spins - 0.5)).sum(axis=0)
        return float(np.mean((m_st / self.n_sites) ** 2))

    @property
    def acceptance_rate(self) -> float:
        return self.n_accepted / self.n_attempted if self.n_attempted else 0.0

    # ------------------------------------------------------------------
    # moves
    # ------------------------------------------------------------------
    def _segment_window(self, t0: np.ndarray) -> np.ndarray:
        """Flipped slices of segment moves at activation intervals t0:
        shape (len(t0), 4) of slice indices t0+1 .. t0+4 (periodic)."""
        return (t0[:, None] + np.arange(1, self.N_COLORS + 1)[None, :]) % self.n_slices

    def segment_flip_class(self, bond: int, t0: np.ndarray) -> None:
        """Segment flips at one bond for a set of activation intervals.

        The supplied ``t0`` values must be conflict-free: a move at t0
        reads slices t0..t0+5, so within one call they must be >= 8
        apart (``sweep`` passes the two mod-8 classes separately; for
        odd Trotter numbers it falls back to one-at-a-time calls).
        """
        c = int(self.bond_colors[bond])
        if np.any(t0 % self.N_COLORS != c):
            raise ValueError(f"t0 must be activation intervals of bond {bond}")
        affected = self._affected_for(bond)
        w = self.table.weights

        def weight_products() -> np.ndarray:
            prod = np.ones(t0.size)
            for ab, off in affected:
                prod = prod * w[self._codes(ab, (t0 + off) % self.n_slices)]
            return prod

        old = weight_products()
        i, j = self.bond_sites[bond]
        window = self._segment_window(t0)  # (n, 4)
        self.spins[i, window] ^= 1
        self.spins[j, window] ^= 1
        new = weight_products()
        u = self.stream.uniform(size=t0.size)
        reject = ~(new > 0.0) | (u * old >= new)
        rw = window[reject]
        self.spins[i, rw] ^= 1
        self.spins[j, rw] ^= 1
        self.n_attempted += t0.size
        self.n_accepted += int(t0.size - reject.sum())

    def attempt_window_flip(self, i: int, j: int, t1: int, t2: int) -> bool:
        """Generalized exchange of sites i, j over slices t1+1 .. t2.

        ``t1`` and ``t2`` must be activation intervals of bonds
        *connecting* i and j (possibly of different colors -- the case
        that only exists on extent-2 lattices with doubled bonds, where
        it is required for ergodicity).  Scalar Metropolis step.
        """
        T = self.n_slices
        c1, c2 = t1 % self.N_COLORS, t2 % self.N_COLORS
        if self.partner[i, c1] != j or self.partner[i, c2] != j:
            raise ValueError(
                f"intervals {t1},{t2} do not activate bonds connecting {i},{j}"
            )
        length = (t2 - t1) % T
        if length == 0:
            raise ValueError("window must have positive length")
        # Affected plaquettes: the bounding pair-bond plaquettes plus the
        # active plaquettes of both sites strictly inside the window.
        affected: list[tuple[int, int]] = [
            (int(self.bond_of[i, c1]), t1),
            (int(self.bond_of[i, c2]), t2),
        ]
        for step in range(1, length):
            tau = (t1 + step) % T
            color = tau % self.N_COLORS
            for s in (i, j):
                pair = (int(self.bond_of[s, color]), tau)
                if pair not in affected:
                    affected.append(pair)
        w = self.table.weights

        def prod() -> float:
            p = 1.0
            for ab, tau in affected:
                p *= float(w[self._codes(ab, np.array([tau], dtype=np.intp))][0])
            return p

        old = prod()
        window = (t1 + 1 + np.arange(length)) % T
        self.spins[i, window] ^= 1
        self.spins[j, window] ^= 1
        new = prod()
        self.n_attempted += 1
        if new <= 0.0 or (new < old and self.stream.uniform() >= new / old):
            self.spins[i, window] ^= 1
            self.spins[j, window] ^= 1
            return False
        self.n_accepted += 1
        return True

    def attempt_column_flip(self, site: int) -> bool:
        """Straight-line move at one site (scalar; legality pre-checked)."""
        col = self.spins[site]
        if col.min() != col.max():
            return False
        ts = np.arange(self.n_slices, dtype=np.intp)
        bonds = self.bond_of[site, ts % self.N_COLORS]
        old_codes = self._codes(bonds, ts)
        self.spins[site] ^= 1
        new_codes = self._codes(bonds, ts)
        w_new = self.table.weights[new_codes]
        self.n_attempted += 1
        if np.any(w_new <= 0):
            self.spins[site] ^= 1
            return False
        log_ratio = float(
            np.sum(np.log(w_new)) - np.sum(np.log(self.table.weights[old_codes]))
        )
        if log_ratio < 0 and self.stream.uniform() >= np.exp(log_ratio):
            self.spins[site] ^= 1
            return False
        self.n_accepted += 1
        return True

    def sweep(self) -> None:
        """One full sweep: every (bond, activation) segment move once,
        then straight-line attempts on every site.

        Activation intervals are batched into the two conflict-free
        mod-8 classes when the Trotter number is even; odd M degrades
        to one-at-a-time proposals (still correct, just unbatched).
        """
        for bond in range(self.n_bonds):
            c = int(self.bond_colors[bond])
            t0_all = np.arange(c, self.n_slices, self.N_COLORS, dtype=np.intp)
            if self.n_trotter % 2 == 0:
                self.segment_flip_class(bond, t0_all[0::2])
                self.segment_flip_class(bond, t0_all[1::2])
            else:
                for t in t0_all:
                    self.segment_flip_class(bond, np.array([t], dtype=np.intp))
        # Doubled pairs additionally need the mixed-color minimal windows
        # (between consecutive activations of *any* connecting bond).
        for (i, j), colors in self.doubled_pairs.items():
            activations = sorted(
                t
                for c in colors
                for t in range(c, self.n_slices, self.N_COLORS)
            )
            for k, t1 in enumerate(activations):
                t2 = activations[(k + 1) % len(activations)]
                if t1 % self.N_COLORS == t2 % self.N_COLORS:
                    continue  # same color: already covered by segment flips
                self.attempt_window_flip(i, j, t1, t2)
        for site in range(self.n_sites):
            self.attempt_column_flip(site)

    # ------------------------------------------------------------------
    def run(
        self,
        n_sweeps: int,
        n_thermalize: int = 0,
        measure_every: int = 1,
    ) -> Worldline2DMeasurement:
        """Thermalize, sweep, measure."""
        if n_sweeps < 1:
            raise ValueError("need at least one measured sweep")
        for _ in range(n_thermalize):
            self.sweep()
        energy, mags, mstag = [], [], []
        for s in range(n_sweeps):
            self.sweep()
            if s % measure_every == 0:
                energy.append(self.energy_estimate())
                mags.append(self.magnetization())
                mstag.append(self.staggered_magnetization_sq())
        return Worldline2DMeasurement(
            beta=self.beta,
            dtau=self.dtau,
            energy=np.array(energy),
            magnetization=np.array(mags),
            m_stag_sq=np.array(mstag),
        )
