"""Multicanonical and Wang--Landau sampling of the classical engine.

Generalized-ensemble methods flatten the energy histogram so a single
run crosses free-energy barriers that trap canonical sampling: the
acceptance weight of a configuration with energy ``E`` is ``1/g(E)``
(the inverse density of states) instead of ``exp(-beta E)``.

* :class:`WangLandauSampler` builds the ``ln g(E)`` estimate on the fly:
  every visit multiplies ``g(E)`` by a modification factor ``f`` (i.e.
  adds ``ln f`` in log space), and ``f`` is annealed ``f -> sqrt(f)``
  whenever the visit histogram passes a flatness test.  Detailed
  balance is violated while ``f > 1``, so the result is an *estimate*
  of ``ln g`` -- the standard practice is to follow with
* :class:`MulticanonicalSampler`, a **fixed-weight** (detailed-balance
  exact) run using that estimate, whose measurements reweight to any
  temperature::

      <O>_beta = sum_t O_t g(E_t) e^{-beta E_t} / sum_t g(E_t) e^{-beta E_t}

Both act on single-spin flips of an :class:`~repro.qmc.classical_ising`
lattice; energies are binned on an :class:`~repro.stats.histogram`
grid.  Everything runs in log space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.qmc.classical_ising import AnisotropicIsing
from repro.stats.histogram import EnergyHistogram
from repro.util.logspace import logsumexp
from repro.util.rng import RankStream

__all__ = ["WangLandauSampler", "MulticanonicalSampler", "WangLandauResult"]


@dataclass
class WangLandauResult:
    """Converged Wang--Landau estimate of the density of states."""

    bin_centers: np.ndarray
    log_g: np.ndarray  # gauge: min over visited bins = 0
    visited: np.ndarray  # bool mask of ever-visited bins
    iterations: int
    final_log_f: float

    def log_g_normalized(self, log_total_states: float) -> np.ndarray:
        """Rescale so ``logsumexp(log_g) = ln(total number of states)``."""
        visited = self.log_g[self.visited]
        offset = log_total_states - logsumexp(visited)
        out = np.where(self.visited, self.log_g + offset, -np.inf)
        return out


class _FlipWalker:
    """Shared single-spin-flip machinery over an AnisotropicIsing state."""

    def __init__(self, sampler: AnisotropicIsing):
        self.sampler = sampler
        self.shape = sampler.shape
        self.n_sites = sampler.n_sites
        self.energy = float(-np.dot(sampler.couplings, sampler.bond_sums()))

    def propose(self, stream: RankStream) -> tuple[tuple, float]:
        """A uniformly random site and the energy after flipping it."""
        flat = stream.choice(self.n_sites)
        idx = np.unravel_index(flat, self.shape)
        s = self.sampler.spins
        field = 0.0
        for a in range(self.sampler.ndim):
            k = self.sampler.couplings[a]
            if k == 0.0:
                continue
            up = list(idx)
            up[a] = (idx[a] + 1) % self.shape[a]
            dn = list(idx)
            dn[a] = (idx[a] - 1) % self.shape[a]
            field += k * (s[tuple(up)] + s[tuple(dn)])
        delta = 2.0 * s[idx] * field  # energy change of flipping idx
        return idx, self.energy + delta

    def apply(self, idx: tuple, new_energy: float) -> None:
        self.sampler.spins[idx] = -self.sampler.spins[idx]
        self.energy = new_energy


class WangLandauSampler:
    """Wang--Landau estimation of ``ln g(E)`` for the classical model."""

    def __init__(
        self,
        shape: tuple[int, ...],
        couplings: tuple[float, ...],
        e_min: float,
        e_max: float,
        n_bins: int,
        seed: int | None = 0,
        stream: RankStream | None = None,
        flatness: float = 0.8,
        log_f_final: float = 1e-6,
        initial_log_f: float = 1.0,
    ):
        self.sampler = AnisotropicIsing(shape, couplings, seed=seed, stream=stream)
        self.stream = self.sampler.stream
        self.walker = _FlipWalker(self.sampler)
        self.grid = EnergyHistogram(e_min, e_max, n_bins)
        self.log_g = np.zeros(n_bins)
        self.visited = np.zeros(n_bins, dtype=bool)
        self.flatness = float(flatness)
        self.log_f_final = float(log_f_final)
        self.initial_log_f = float(initial_log_f)

    def _bin(self, energy: float) -> int:
        return int(self.grid.bin_index(energy)[0])

    def run(self, sweeps_per_check: int = 50, max_iterations: int = 30) -> WangLandauResult:
        """Anneal ``ln f`` from ``initial_log_f`` down to ``log_f_final``."""
        log_f = self.initial_log_f
        visits = np.zeros(self.grid.n_bins, dtype=np.int64)
        iteration = 0
        current_bin = self._bin(self.walker.energy)
        while log_f > self.log_f_final and iteration < max_iterations:
            iteration += 1
            visits[:] = 0
            flat = False
            while not flat:
                for _ in range(sweeps_per_check * self.walker.n_sites):
                    idx, e_new = self.walker.propose(self.stream)
                    if not (self.grid.e_min <= e_new <= self.grid.e_max):
                        new_bin = None
                    else:
                        new_bin = self._bin(e_new)
                    if new_bin is not None and (
                        self.log_g[new_bin] <= self.log_g[current_bin]
                        or self.stream.uniform()
                        < np.exp(self.log_g[current_bin] - self.log_g[new_bin])
                    ):
                        self.walker.apply(idx, e_new)
                        current_bin = new_bin
                    self.log_g[current_bin] += log_f
                    self.visited[current_bin] = True
                    visits[current_bin] += 1
                occupied = visits[self.visited]
                flat = occupied.size > 0 and (
                    occupied.min() >= self.flatness * occupied.mean()
                )
            log_f /= 2.0
        self.log_g -= self.log_g[self.visited].min()
        return WangLandauResult(
            bin_centers=self.grid.bin_centers.copy(),
            log_g=self.log_g.copy(),
            visited=self.visited.copy(),
            iterations=iteration,
            final_log_f=log_f,
        )


class MulticanonicalSampler:
    """Fixed-weight multicanonical production run.

    Samples with weight ``exp(-ln g(E))`` for a *frozen* ``ln g``
    (detailed balance holds exactly); records the energy series, from
    which :meth:`reweighted_energy` returns canonical expectation
    values at any temperature covered by the sampled window.
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        couplings: tuple[float, ...],
        wl: WangLandauResult,
        seed: int | None = 0,
        stream: RankStream | None = None,
    ):
        self.sampler = AnisotropicIsing(shape, couplings, seed=seed, stream=stream)
        self.stream = self.sampler.stream
        self.walker = _FlipWalker(self.sampler)
        self.wl = wl
        self.grid = EnergyHistogram(
            wl.bin_centers[0] - (wl.bin_centers[1] - wl.bin_centers[0]) / 2,
            wl.bin_centers[-1] + (wl.bin_centers[1] - wl.bin_centers[0]) / 2,
            len(wl.bin_centers),
        )
        # Unvisited bins get an infinite weight barrier.
        self._log_g = np.where(wl.visited, wl.log_g, np.inf)
        self.energies: list[float] = []

    def _bin(self, energy: float) -> int:
        return int(self.grid.bin_index(energy)[0])

    def sweep(self) -> None:
        for _ in range(self.walker.n_sites):
            idx, e_new = self.walker.propose(self.stream)
            if not (self.grid.e_min <= e_new <= self.grid.e_max):
                continue
            b_old = self._bin(self.walker.energy)
            b_new = self._bin(e_new)
            log_ratio = self._log_g[b_old] - self._log_g[b_new]
            if log_ratio >= 0 or self.stream.uniform() < np.exp(log_ratio):
                self.walker.apply(idx, e_new)

    def run(self, n_sweeps: int, n_thermalize: int = 0) -> np.ndarray:
        for _ in range(n_thermalize):
            self.sweep()
        self.energies = []
        for _ in range(n_sweeps):
            self.sweep()
            self.energies.append(self.walker.energy)
        return np.asarray(self.energies)

    def histogram(self) -> EnergyHistogram:
        """Visit histogram of the production run (flatness diagnostic)."""
        h = EnergyHistogram(self.grid.e_min, self.grid.e_max, self.grid.n_bins)
        if self.energies:
            h.add(np.asarray(self.energies))
        return h

    def reweighted_energy(self, beta: float) -> float:
        """Canonical ``<E>`` at inverse temperature ``beta``."""
        e = np.asarray(self.energies, dtype=float)
        if e.size == 0:
            raise ValueError("run() first")
        bins = self.grid.bin_index(e)
        log_w = self.wl.log_g[bins] - beta * e  # W_muca^-1 * exp(-beta E)
        log_w -= log_w.max()
        w = np.exp(log_w)
        return float(np.sum(w * e) / np.sum(w))
