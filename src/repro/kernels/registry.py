"""Pluggable compiled-kernel registry for the checkerboard sweeps.

The sweep samplers (``qmc/worldline.py``, ``qmc/worldline2d.py``,
``qmc/classical_ising.py``) and the SPMD drivers (``qmc/parallel.py``)
dispatch their inner-loop work through a small table of *kernel ops* --
one callable per conflict-free independence-class update.  A backend is
a named provider of that table:

* ``numpy``  -- the vectorized reference path (always available);
* ``numba``  -- ``@njit(cache=True)`` ports of the same kernels,
  bit-identical to ``numpy`` by construction (see
  :mod:`repro.kernels.numba_backend`);
* ``cupy``   -- a GPU stub that registers as available only when the
  accelerator actually imports; never chosen by ``auto``.

Selection semantics
-------------------
``resolve_kernel(name)`` maps a requested backend name to a concrete
registered one.  ``"auto"`` picks the highest-priority *available*
backend (numba over numpy when installed; cupy is opt-in only).
Requesting an unavailable backend raises
:class:`KernelUnavailableError` -- a structured, actionable error
mirroring :class:`repro.vmp.mpi_backend.MpiUnavailableError` -- instead
of an ImportError from deep inside a sweep.

``resolve_sweep_mode(mode)`` additionally passes the ``"scalar"``
reference mode through untouched and folds the legacy ``"vectorized"``
alias onto ``"numpy"``, so driver configs can keep their historical
mode vocabulary.

Backends registered here must honour the bit-identity contract
documented in DESIGN.md: identical trajectories (RNG draw for draw,
accept for accept) with the ``numpy`` path on every lattice the
registry serves.
"""

from __future__ import annotations

import importlib
import importlib.metadata
import importlib.util
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

__all__ = [
    "KernelBackend",
    "KernelUnavailableError",
    "available_backends",
    "backend_version",
    "get_ops",
    "kernel_available",
    "known_backends",
    "register_backend",
    "resolve_kernel",
    "resolve_sweep_mode",
    "unregister_backend",
]

#: The op names every backend must provide.  Each op mutates the spin
#: array(s) in place for the accepted moves of ONE independence class
#: and returns acceptance counts; RNG draws and transcendentals stay in
#: the caller so trajectories cannot depend on the backend's libm.
OP_NAMES = (
    "wl1d_corner",
    "wl1d_column",
    "wl2d_segment",
    "wl2d_column",
    "ising_color",
    "strip_corner",
    "strip_column",
    "block_color",
)


class KernelUnavailableError(RuntimeError):
    """Raised when a kernel backend is requested but cannot run here.

    Mirrors ``MpiUnavailableError``: structured (carries the backend
    name and reason as attributes) and actionable (the message names
    the fallback and the install step).
    """

    def __init__(self, backend: str, reason: str, hint: str | None = None):
        self.backend = backend
        self.reason = reason
        self.hint = hint or (
            "fall back to the portable path with --kernel numpy "
            "(or kernel='numpy')"
        )
        super().__init__(
            f"kernel backend {backend!r} is unavailable: {reason}; {self.hint}"
        )


@dataclass
class KernelBackend:
    """One registered provider of the sweep kernel op table.

    Parameters
    ----------
    name:
        Registry key (``--kernel NAME``).
    priority:
        ``"auto"`` picks the available backend with the highest
        priority; a negative priority means *never* auto-selected
        (explicit opt-in only, e.g. the cupy stub).
    probe:
        Cheap availability check; must not raise.  Result is memoized.
    loader:
        Called once, lazily, to build the op table (a mapping with the
        :data:`OP_NAMES` keys).  May import heavy dependencies.
    requires:
        The pip-installable distribution backing the backend, used in
        error hints and version reporting (None: stdlib/numpy only).
    hint:
        Override for the actionable part of the unavailable error.
    """

    name: str
    priority: int
    probe: Callable[[], bool]
    loader: Callable[[], Mapping[str, Callable]]
    requires: str | None = None
    hint: str | None = None
    _avail: bool | None = field(default=None, repr=False, compare=False)
    _ops: Mapping[str, Callable] | None = field(default=None, repr=False,
                                                compare=False)

    def available(self) -> bool:
        """Memoized availability probe (never raises)."""
        if self._avail is None:
            try:
                self._avail = bool(self.probe())
            except Exception:
                self._avail = False
        return self._avail

    def ops(self) -> Mapping[str, Callable]:
        """The op table, built on first use."""
        if self._ops is None:
            ops = self.loader()
            missing = [n for n in OP_NAMES if n not in ops]
            if missing:
                raise KernelUnavailableError(
                    self.name,
                    f"backend op table is missing {missing}",
                )
            self._ops = ops
        return self._ops


_REGISTRY: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> None:
    """Add (or replace) a backend in the registry."""
    _REGISTRY[backend.name] = backend


def unregister_backend(name: str) -> None:
    """Remove a backend (test helper; unknown names are ignored)."""
    _REGISTRY.pop(name, None)


def known_backends() -> tuple[str, ...]:
    """All registered backend names, best-priority first."""
    return tuple(sorted(_REGISTRY, key=lambda n: (-_REGISTRY[n].priority, n)))


def available_backends() -> tuple[str, ...]:
    """The registered backends that can actually run here."""
    return tuple(n for n in known_backends() if _REGISTRY[n].available())


def kernel_available(name: str) -> bool:
    """True when ``name`` is registered and its probe passes."""
    backend = _REGISTRY.get(name)
    return backend is not None and backend.available()


def resolve_kernel(name: str = "auto") -> str:
    """Map a requested backend name to a concrete available one.

    ``"auto"`` returns the highest-priority available backend with a
    non-negative priority (``numpy`` is always registered and
    available, so auto cannot fail).  The legacy ``"vectorized"`` alias
    resolves to ``"numpy"``.  Unknown names raise ``ValueError``;
    known-but-unavailable ones raise :class:`KernelUnavailableError`.
    """
    if name == "auto":
        for cand in known_backends():
            backend = _REGISTRY[cand]
            if backend.priority >= 0 and backend.available():
                return cand
        raise KernelUnavailableError(
            "auto", "no kernel backend is available",
            "reinstall the package so the numpy backend registers",
        )
    if name == "vectorized":
        name = "numpy"
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ValueError(
            f"unknown kernel backend {name!r}; known backends: "
            f"{', '.join(known_backends())} (plus 'auto', 'scalar', "
            f"'vectorized')"
        )
    if not backend.available():
        requires = backend.requires or name
        raise KernelUnavailableError(
            name,
            f"the {requires!r} package is not importable in this environment",
            backend.hint
            or (f"pip install {requires}, or fall back with --kernel numpy "
                f"(kernel='numpy')"),
        )
    return name


def resolve_sweep_mode(mode: str = "auto") -> str:
    """Resolve a sweep *mode*: ``"scalar"`` or a concrete backend name.

    The sweep samplers accept ``mode`` strings that are a superset of
    backend names: ``"scalar"`` selects the per-move reference
    implementation (no registry involvement), everything else goes
    through :func:`resolve_kernel`.
    """
    if mode == "scalar":
        return "scalar"
    try:
        return resolve_kernel(mode)
    except ValueError:
        raise ValueError(
            f"unknown sweep mode {mode!r}; expected 'scalar', 'vectorized', "
            f"'auto', or a kernel backend ({', '.join(known_backends())})"
        ) from None


def get_ops(name: str) -> Mapping[str, Callable]:
    """The op table for ``name`` (resolving ``auto``/aliases first)."""
    return _REGISTRY[resolve_kernel(name)].ops()


def backend_version(name: str) -> str | None:
    """Version string of the package backing ``name`` (None: absent)."""
    backend = _REGISTRY.get(name)
    if backend is None:
        return None
    if backend.requires is None:
        return np.__version__
    try:
        return importlib.metadata.version(backend.requires)
    except Exception:
        try:
            mod = importlib.import_module(backend.requires)
            return getattr(mod, "__version__", None)
        except Exception:
            return None


# -- built-in backends -------------------------------------------------

def _numpy_ops() -> Mapping[str, Callable]:
    from repro.kernels import numpy_backend

    return numpy_backend.OPS


def _numba_probe() -> bool:
    return importlib.util.find_spec("numba") is not None


def _numba_ops() -> Mapping[str, Callable]:
    from repro.kernels import numba_backend

    return numba_backend.OPS


def _cupy_probe() -> bool:
    # find_spec first so the common no-cupy case stays cheap; then an
    # actual import, because cupy can be installed yet fail to load
    # when no CUDA runtime/device is present.
    if importlib.util.find_spec("cupy") is None:
        return False
    try:
        importlib.import_module("cupy")
        return True
    except Exception:
        return False


def _cupy_ops() -> Mapping[str, Callable]:
    from repro.kernels import cupy_backend

    return cupy_backend.build_ops()


register_backend(KernelBackend(
    name="numpy",
    priority=10,
    probe=lambda: True,
    loader=_numpy_ops,
))
register_backend(KernelBackend(
    name="numba",
    priority=20,
    probe=_numba_probe,
    loader=_numba_ops,
    requires="numba",
))
register_backend(KernelBackend(
    name="cupy",
    # Negative priority: the stub is explicit opt-in, never "auto" --
    # it has no bit-identity story against the CPU backends yet.
    priority=-10,
    probe=_cupy_probe,
    loader=_cupy_ops,
    requires="cupy",
    hint=("install a cupy wheel matching the local CUDA runtime "
          "(e.g. pip install cupy-cuda12x) on a GPU machine, or fall "
          "back with --kernel numpy"),
))
