"""Numba ``@njit(cache=True)`` kernel ops, bit-identical to ``numpy``.

Each op fuses the gather -> evaluate -> accept -> scatter of one
conflict-free independence class into a single compiled loop over the
class's moves, eliminating the temporaries and multi-pass fancy
indexing of the vectorized NumPy path.  Bit-identity with
:mod:`repro.kernels.numpy_backend` rests on three pillars (documented
in DESIGN.md, enforced by ``tests/qmc/test_kernel_registry.py``):

1. *No RNG, no transcendentals in kernels.*  Uniforms and their
   ``np.log`` values are drawn/computed by the caller with NumPy, so
   the compared numbers are identical bytes regardless of backend.
2. *Sequential per-move processing is exact.*  Moves within an
   independence class have disjoint read/write footprints by
   construction, so flip -> evaluate -> maybe-unflip one move at a
   time produces the same accept decisions as NumPy's batched
   speculative flips.
3. *Reduction order is replicated.*  Plaquette-weight products are
   strictly sequential (matching ``prod``/``multiply.reduce``), and
   the float64 log-weight row sums replicate NumPy's pairwise
   summation exactly: blocks of up to 128 elements use eight scalar
   accumulators combined as ``((r0+r1)+(r2+r3))+((r4+r5)+(r6+r7))``
   plus a sequential remainder, and longer rows split recursively at
   ``n2 = (n//2) - (n//2 % 8)``.

Dtype caveats: spins are int8 (bit flips via XOR; the Ising samplers
use +/-1 int8), gather tables are intp, weights/log-weights float64.
The ops assume C-contiguous spin storage (true for every sampler) but
tolerate strided gather tables.

This module imports :mod:`numba` at module scope; it is only loaded by
the registry after the availability probe passes.
"""

from __future__ import annotations

import numpy as np
from numba import njit

__all__ = ["OPS"]


# -- NumPy pairwise-summation replica ---------------------------------

@njit(cache=True)
def _pairwise_leaf(a, lo, n):
    """Sum of ``a[lo:lo+n]`` for n <= 128, in NumPy's block order."""
    if n < 8:
        res = 0.0
        for k in range(n):
            res += a[lo + k]
        return res
    r0 = a[lo]
    r1 = a[lo + 1]
    r2 = a[lo + 2]
    r3 = a[lo + 3]
    r4 = a[lo + 4]
    r5 = a[lo + 5]
    r6 = a[lo + 6]
    r7 = a[lo + 7]
    i = 8
    stop = n - (n % 8)
    while i < stop:
        r0 += a[lo + i]
        r1 += a[lo + i + 1]
        r2 += a[lo + i + 2]
        r3 += a[lo + i + 3]
        r4 += a[lo + i + 4]
        r5 += a[lo + i + 5]
        r6 += a[lo + i + 6]
        r7 += a[lo + i + 7]
        i += 8
    res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
    while i < n:
        res += a[lo + i]
        i += 1
    return res


@njit(cache=True)
def _pairwise_sum(a, lo, n):
    """NumPy's float64 pairwise summation of ``a[lo:lo+n]``, exactly.

    Iterative post-order walk of the ``pw(n) = pw(n2) + pw(n - n2)``
    recursion tree (``n2 = n//2 - (n//2 % 8)``); leaves of <= 128
    elements use the 8-accumulator block above.
    """
    if n <= 128:
        return _pairwise_leaf(a, lo, n)
    lo_s = np.empty(64, np.intp)
    n_s = np.empty(64, np.intp)
    phase = np.empty(64, np.uint8)
    val = np.empty(64, np.float64)
    sp = 0
    lo_s[0] = lo
    n_s[0] = n
    phase[0] = 0
    ret = 0.0
    while sp >= 0:
        if n_s[sp] <= 128:
            ret = _pairwise_leaf(a, lo_s[sp], n_s[sp])
            sp -= 1
        elif phase[sp] == 0:
            phase[sp] = 1
            n2 = n_s[sp] // 2
            n2 -= n2 % 8
            sp += 1
            lo_s[sp] = lo_s[sp - 1]
            n_s[sp] = n2
            phase[sp] = 0
        elif phase[sp] == 1:
            val[sp] = ret
            phase[sp] = 2
            n2 = n_s[sp] // 2
            n2 -= n2 % 8
            sp += 1
            lo_s[sp] = lo_s[sp - 1] + n2
            n_s[sp] = n_s[sp - 1] - n2
            phase[sp] = 0
        else:
            ret = val[sp] + ret
            sp -= 1
    return ret


# -- chain (1-D world-line) kernels -----------------------------------

@njit(cache=True)
def _chain_code(spins, i, t, n_sites, n_slices):
    j = (i + 1) % n_sites
    t1 = (t + 1) % n_slices
    return (
        spins[i, t] + 2 * spins[j, t] + 4 * spins[i, t1] + 8 * spins[j, t1]
    )


@njit(cache=True)
def _wl1d_corner(spins, weights, i, t, u):
    n_sites, n_slices = spins.shape
    n_acc = 0
    for m in range(i.size):
        im = i[m]
        tm = t[m]
        im1 = (im - 1) % n_sites
        ip1 = (im + 1) % n_sites
        tm1 = (tm - 1) % n_slices
        tp1 = (tm + 1) % n_slices
        old = (
            weights[_chain_code(spins, im1, tm, n_sites, n_slices)]
            * weights[_chain_code(spins, ip1, tm, n_sites, n_slices)]
            * weights[_chain_code(spins, im, tm1, n_sites, n_slices)]
            * weights[_chain_code(spins, im, tp1, n_sites, n_slices)]
        )
        j = ip1
        t1 = tp1
        spins[im, tm] ^= 1
        spins[im, t1] ^= 1
        spins[j, tm] ^= 1
        spins[j, t1] ^= 1
        new = (
            weights[_chain_code(spins, im1, tm, n_sites, n_slices)]
            * weights[_chain_code(spins, ip1, tm, n_sites, n_slices)]
            * weights[_chain_code(spins, im, tm1, n_sites, n_slices)]
            * weights[_chain_code(spins, im, tp1, n_sites, n_slices)]
        )
        if new > 0.0 and u[m] * old < new:
            n_acc += 1
        else:
            spins[im, tm] ^= 1
            spins[im, t1] ^= 1
            spins[j, tm] ^= 1
            spins[j, t1] ^= 1
    return n_acc


@njit(cache=True)
def _wl1d_col_log_weight(spins, logw, c, tmp, n_sites, n_slices):
    """Log-weight of the two bond columns flanking site ``c``."""
    half = n_slices // 2
    total = 0.0
    for b_off in range(-1, 1):
        b = (c + b_off) % n_sites
        start = 0 if b % 2 == 0 else 1
        for k in range(half):
            tt = start + 2 * k
            tmp[k] = logw[_chain_code(spins, b, tt, n_sites, n_slices)]
        total += _pairwise_sum(tmp, 0, half)
    return total


@njit(cache=True)
def _wl1d_column(spins, logw, cols, log_u):
    n_sites, n_slices = spins.shape
    tmp = np.empty(n_slices // 2, np.float64)
    n_acc = 0
    for ci in range(cols.size):
        c = cols[ci]
        old = _wl1d_col_log_weight(spins, logw, c, tmp, n_sites, n_slices)
        for t in range(n_slices):
            spins[c, t] ^= 1
        new = _wl1d_col_log_weight(spins, logw, c, tmp, n_sites, n_slices)
        log_ratio = new - old
        if np.isfinite(log_ratio) and log_u[ci] < log_ratio:
            n_acc += 1
        else:
            for t in range(n_slices):
                spins[c, t] ^= 1
    return n_acc


# -- 2-D world-line (square-lattice) kernels --------------------------

@njit(cache=True)
def _wl2d_segment(sf, weights, bl, br, tl, tr, wi, wj, u):
    n_b, n_m = bl.shape[0], bl.shape[1]
    n_acc = 0
    for b in range(n_b):
        for m in range(n_m):
            code = (
                sf[bl[b, m, 0]] + 2 * sf[br[b, m, 0]]
                + 4 * sf[tl[b, m, 0]] + 8 * sf[tr[b, m, 0]]
            )
            old = weights[code]
            for k in range(1, 8):
                code = (
                    sf[bl[b, m, k]] + 2 * sf[br[b, m, k]]
                    + 4 * sf[tl[b, m, k]] + 8 * sf[tr[b, m, k]]
                )
                old = old * weights[code]
            for k in range(4):
                sf[wi[b, m, k]] ^= 1
                sf[wj[b, m, k]] ^= 1
            code = (
                sf[bl[b, m, 0]] + 2 * sf[br[b, m, 0]]
                + 4 * sf[tl[b, m, 0]] + 8 * sf[tr[b, m, 0]]
            )
            new = weights[code]
            for k in range(1, 8):
                code = (
                    sf[bl[b, m, k]] + 2 * sf[br[b, m, k]]
                    + 4 * sf[tl[b, m, k]] + 8 * sf[tr[b, m, k]]
                )
                new = new * weights[code]
            if new > 0.0 and u[b, m] * old < new:
                n_acc += 1
            else:
                for k in range(4):
                    sf[wi[b, m, k]] ^= 1
                    sf[wj[b, m, k]] ^= 1
    return n_acc


@njit(cache=True)
def _wl2d_column(spins, logw, bl, br, tl, tr, flip, log_u):
    sf = spins.reshape(-1)
    n_slices = spins.shape[1]
    tmp = np.empty(bl.shape[1], np.float64)
    n_acc = 0
    for s in range(flip.size):
        for k in range(bl.shape[1]):
            code = (
                sf[bl[s, k]] + 2 * sf[br[s, k]]
                + 4 * sf[tl[s, k]] + 8 * sf[tr[s, k]]
            )
            tmp[k] = logw[code]
        old = _pairwise_sum(tmp, 0, tmp.size)
        row = flip[s]
        for t in range(n_slices):
            spins[row, t] ^= 1
        for k in range(bl.shape[1]):
            code = (
                sf[bl[s, k]] + 2 * sf[br[s, k]]
                + 4 * sf[tl[s, k]] + 8 * sf[tr[s, k]]
            )
            tmp[k] = logw[code]
        new = _pairwise_sum(tmp, 0, tmp.size)
        log_ratio = new - old
        if np.isfinite(log_ratio) and log_u[s] < log_ratio:
            n_acc += 1
        else:
            for t in range(n_slices):
                spins[row, t] ^= 1
    return n_acc


# -- classical Ising (serial, periodic) -------------------------------

@njit(cache=True)
def _ising_color3(s, kx, ky, kt, mask, log_u):
    lx, ly, lt = s.shape
    n_acc = 0
    for x in range(lx):
        xp = x + 1 if x + 1 < lx else 0
        xm = x - 1 if x >= 1 else lx - 1
        for y in range(ly):
            yp = y + 1 if y + 1 < ly else 0
            ym = y - 1 if y >= 1 else ly - 1
            for t in range(lt):
                if not mask[x, y, t]:
                    continue
                tp = t + 1 if t + 1 < lt else 0
                tm = t - 1 if t >= 1 else lt - 1
                sp = s[x, y, t]
                f = kx * (s[xm, y, t] + s[xp, y, t])
                f = f + ky * (s[x, ym, t] + s[x, yp, t])
                f = f + kt * (s[x, y, tm] + s[x, y, tp])
                if log_u[x, y, t] < (-2.0 * sp) * f:
                    s[x, y, t] = -sp
                    n_acc += 1
    return n_acc


def ising_color(spins, couplings, mask, log_u):
    """Checkerboard color update, lifted to 3-D for a fixed-arity jit.

    Missing trailing axes get extent 1 with zero coupling; the extra
    ``+/-0.0`` field terms cannot change an accept decision because
    ``log_u < 0`` strictly.  Mutates ``spins`` in place (the returned
    array *is* ``spins``, matching the numpy op's rebind protocol).
    Lattices beyond 3-D fall back to the numpy op.
    """
    ndim = spins.ndim
    if ndim > 3 or not spins.flags.c_contiguous:
        from repro.kernels import numpy_backend

        return numpy_backend.ising_color(spins, couplings, mask, log_u)
    shape3 = spins.shape + (1,) * (3 - ndim)
    k3 = np.zeros(3)
    k3[:ndim] = np.asarray(couplings, dtype=np.float64)[:ndim]
    n_acc = _ising_color3(
        spins.reshape(shape3), k3[0], k3[1], k3[2],
        np.ascontiguousarray(mask).reshape(shape3),
        np.ascontiguousarray(log_u).reshape(shape3),
    )
    return spins, n_acc


# -- strip driver (1-D decomposition of the chain) --------------------

@njit(cache=True)
def _strip_corner(flat, weights, i00, i10, i01, i11, xmask, flip, uu):
    n_acc = 0
    for m in range(uu.size):
        code = (
            flat[i00[0, m]] + (flat[i10[0, m]] << 1)
            + (flat[i01[0, m]] << 2) + (flat[i11[0, m]] << 3)
        )
        old = weights[code]
        new = weights[code ^ xmask[0, 0]]
        for k in range(1, 4):
            code = (
                flat[i00[k, m]] + (flat[i10[k, m]] << 1)
                + (flat[i01[k, m]] << 2) + (flat[i11[k, m]] << 3)
            )
            old = old * weights[code]
            new = new * weights[code ^ xmask[k, 0]]
        if new > 0.0 and uu[m] * old < new:
            for k in range(4):
                flat[flip[k, m]] ^= 1
            n_acc += 1
    return n_acc


@njit(cache=True)
def _strip_column(loc, logw, lc, c00, c10, c01, c11, log_uu):
    flat = loc.reshape(-1)
    n_slices = loc.shape[1]
    half = c00.shape[2]
    tmp = np.empty(half, np.float64)
    n_straight = 0
    n_acc = 0
    for ci in range(lc.size):
        row = lc[ci]
        s0 = loc[row, 0]
        straight = True
        for t in range(1, n_slices):
            if loc[row, t] != s0:
                straight = False
                break
        if not straight:
            continue
        n_straight += 1
        for k in range(half):
            code = (
                flat[c00[0, ci, k]] + (flat[c10[0, ci, k]] << 1)
                + (flat[c01[0, ci, k]] << 2) + (flat[c11[0, ci, k]] << 3)
            )
            tmp[k] = logw[code]
        old = _pairwise_sum(tmp, 0, half)
        for k in range(half):
            code = (
                flat[c00[0, ci, k]] + (flat[c10[0, ci, k]] << 1)
                + (flat[c01[0, ci, k]] << 2) + (flat[c11[0, ci, k]] << 3)
            )
            tmp[k] = logw[code ^ 10]
        new = _pairwise_sum(tmp, 0, half)
        for k in range(half):
            code = (
                flat[c00[1, ci, k]] + (flat[c10[1, ci, k]] << 1)
                + (flat[c01[1, ci, k]] << 2) + (flat[c11[1, ci, k]] << 3)
            )
            tmp[k] = logw[code]
        old = old + _pairwise_sum(tmp, 0, half)
        for k in range(half):
            code = (
                flat[c00[1, ci, k]] + (flat[c10[1, ci, k]] << 1)
                + (flat[c01[1, ci, k]] << 2) + (flat[c11[1, ci, k]] << 3)
            )
            tmp[k] = logw[code ^ 5]
        new = new + _pairwise_sum(tmp, 0, half)
        log_ratio = new - old
        if np.isfinite(log_ratio) and log_uu[ci] < log_ratio:
            for t in range(n_slices):
                loc[row, t] ^= 1
            n_acc += 1
    return n_straight, n_acc


# -- block driver (2-D decomposition of the Ising film) ---------------

@njit(cache=True)
def _block_color(g, kx, ky, kt, mask, log_u):
    nbx = g.shape[0] - 2
    nby = g.shape[1] - 2
    lt = g.shape[2]
    n_acc = 0
    for x in range(nbx):
        for y in range(nby):
            for t in range(lt):
                if not mask[x, y, t]:
                    continue
                tp = t + 1 if t + 1 < lt else 0
                tm = t - 1 if t >= 1 else lt - 1
                sp = g[x + 1, y + 1, t]
                f = kx * (g[x + 2, y + 1, t] + g[x, y + 1, t])
                f = f + ky * (g[x + 1, y + 2, t] + g[x + 1, y, t])
                f = f + kt * (g[x + 1, y + 1, tp] + g[x + 1, y + 1, tm])
                if log_u[x, y, t] < (-2.0 * sp) * f:
                    g[x + 1, y + 1, t] = -sp
                    n_acc += 1
    return n_acc


# -- python-level wrappers matching the registry op signatures --------

def wl1d_corner(spins, weights, i, t, u) -> int:
    return int(_wl1d_corner(spins, weights, i, t, u))


def wl1d_column(spins, logw, cols, log_u) -> int:
    return int(_wl1d_column(spins, logw, cols, log_u))


def wl2d_segment(sf, weights, bl, br, tl, tr, wi, wj, u) -> int:
    # The class tables arrive as strided views (every-other-interval
    # slices); numba specializes per layout, so pass them through
    # rather than copying on every call.
    return int(_wl2d_segment(sf, weights, bl, br, tl, tr, wi, wj, u))


def wl2d_column(spins, logw, bl, br, tl, tr, flip, log_u) -> int:
    return int(_wl2d_column(spins, logw, bl, br, tl, tr, flip, log_u))


def strip_corner(flat, weights, i00, i10, i01, i11, xmask, flip, uu) -> int:
    return int(_strip_corner(flat, weights, i00, i10, i01, i11, xmask,
                             flip, uu))


def strip_column(loc, logw, lc, c00, c10, c01, c11, log_uu):
    n_straight, n_acc = _strip_column(loc, logw, lc, c00, c10, c01, c11,
                                      log_uu)
    return int(n_straight), int(n_acc)


def block_color(g, couplings, mask, log_u) -> int:
    kx, ky, kt = couplings
    return int(_block_color(g, float(kx), float(ky), float(kt), mask, log_u))


OPS = {
    "wl1d_corner": wl1d_corner,
    "wl1d_column": wl1d_column,
    "wl2d_segment": wl2d_segment,
    "wl2d_column": wl2d_column,
    "ising_color": ising_color,
    "strip_corner": strip_corner,
    "strip_column": strip_column,
    "block_color": block_color,
}
