"""Vectorized NumPy kernel ops -- the bit-identity reference backend.

These are the batched conflict-free update bodies that previously
lived inline in ``qmc/worldline.py``, ``qmc/worldline2d.py``,
``qmc/classical_ising.py`` and ``qmc/parallel.py``, moved behind the
registry op signatures.  Each op:

* receives the spin storage plus *precomputed* gather tables for one
  independence class,
* receives the uniforms (or their logs) already drawn by the caller --
  no RNG and no transcendental math happens inside an op, so every
  backend consumes the identical stream and compares against the
  identical ``np.log`` values,
* mutates the spins in place for the accepted moves (``ising_color``
  returns the new spin array instead, preserving the historical
  ``np.where`` copy semantics of the serial Ising sampler),
* returns acceptance counts for the caller's telemetry.

The floating-point evaluation order of these bodies is the contract
other backends must reproduce exactly; see the "Kernel registry"
section of DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.qmc.plaquette import codes_from_flat

__all__ = ["OPS"]


def _chain_codes(spins: np.ndarray, i, t) -> np.ndarray:
    """Plaquette codes with bottom-left corner at ``(i, t)`` (chain)."""
    n_sites, n_slices = spins.shape
    j = (i + 1) % n_sites
    t1 = (t + 1) % n_slices
    return (
        spins[i, t].astype(np.intp)
        + 2 * spins[j, t].astype(np.intp)
        + 4 * spins[i, t1].astype(np.intp)
        + 8 * spins[j, t1].astype(np.intp)
    )


def wl1d_corner(spins, weights, i, t, u) -> int:
    """Batched corner flips of one chain independence class.

    ``i, t`` index the bottom-left corners; ``u`` is the caller's
    uniform draw (one per move).  Returns the number of accepts.
    """
    n_sites, n_slices = spins.shape
    im1, ip1 = (i - 1) % n_sites, (i + 1) % n_sites
    tm1, tp1 = (t - 1) % n_slices, (t + 1) % n_slices
    old = (
        weights[_chain_codes(spins, im1, t)]
        * weights[_chain_codes(spins, ip1, t)]
        * weights[_chain_codes(spins, i, tm1)]
        * weights[_chain_codes(spins, i, tp1)]
    )
    j = ip1
    t1 = (t + 1) % n_slices
    spins[i, t] ^= 1
    spins[i, t1] ^= 1
    spins[j, t] ^= 1
    spins[j, t1] ^= 1
    new = (
        weights[_chain_codes(spins, im1, t)]
        * weights[_chain_codes(spins, ip1, t)]
        * weights[_chain_codes(spins, i, tm1)]
        * weights[_chain_codes(spins, i, tp1)]
    )
    reject = ~(new > 0.0) | (u * old >= new)
    ri, rt, rt1, rj = i[reject], t[reject], t1[reject], j[reject]
    spins[ri, rt] ^= 1
    spins[ri, rt1] ^= 1
    spins[rj, rt] ^= 1
    spins[rj, rt1] ^= 1
    return int(i.size - np.count_nonzero(reject))


def _chain_col_log_weight(spins, logw, cs) -> np.ndarray:
    """Total log-weight of the two bond columns flanking sites ``cs``."""
    n_sites, n_slices = spins.shape
    t_even = np.arange(0, n_slices, 2, dtype=np.intp)
    t_odd = np.arange(1, n_slices, 2, dtype=np.intp)
    total = np.zeros(cs.size)
    for b_off in (-1, 0):
        b = (cs + b_off) % n_sites
        ts = t_even if b[0] % 2 == 0 else t_odd
        bb = np.repeat(b, ts.size)
        tt = np.tile(ts, b.size)
        lw = logw[_chain_codes(spins, bb, tt)].reshape(b.size, ts.size)
        total += lw.sum(axis=1)
    return total


def wl1d_column(spins, logw, cols, log_u) -> int:
    """Batched straight-column flips for the chain sampler.

    ``cols`` must already be filtered to straight world lines (the
    caller does the detection so its RNG draw sizes stay in lockstep
    across backends); ``log_u = log(max(u, 1e-300))``.
    """
    old_lw = _chain_col_log_weight(spins, logw, cols)
    spins[cols] ^= 1
    new_lw = _chain_col_log_weight(spins, logw, cols)
    log_ratio = new_lw - old_lw
    with np.errstate(invalid="ignore"):
        reject = ~np.isfinite(log_ratio) | (log_u >= log_ratio)
    spins[cols[reject]] ^= 1
    return int(cols.size - np.count_nonzero(reject))


def wl2d_segment(sf, weights, bl, br, tl, tr, wi, wj, u) -> int:
    """Batched 4-plaquette window flips of one 2-D segment class.

    ``sf`` is the flat spin view; ``bl..tr`` are (B, M, 8) corner
    gather tables, ``wi/wj`` the (B, M, 4) flip tables, ``u`` the
    (B, M) uniform draw.
    """
    old = weights[codes_from_flat(sf, bl, br, tl, tr)].prod(axis=2)
    sf[wi] ^= 1
    sf[wj] ^= 1
    new = weights[codes_from_flat(sf, bl, br, tl, tr)].prod(axis=2)
    reject = ~(new > 0.0) | (u * old >= new)
    sf[wi[reject]] ^= 1
    sf[wj[reject]] ^= 1
    return int(old.size - np.count_nonzero(reject))


def wl2d_column(spins, logw, bl, br, tl, tr, flip, log_u) -> int:
    """Batched temporal-column flips of one 2-D column class.

    The caller detects straight columns, subsets the (S, T) gather
    tables and draws ``u``; this op evaluates and commits the flips.
    """
    sf = spins.reshape(-1)
    old = logw[codes_from_flat(sf, bl, br, tl, tr)].sum(axis=1)
    spins[flip] ^= 1
    new = logw[codes_from_flat(sf, bl, br, tl, tr)].sum(axis=1)
    log_ratio = new - old
    with np.errstate(invalid="ignore"):
        reject = ~np.isfinite(log_ratio) | (log_u >= log_ratio)
    spins[flip[reject]] ^= 1
    return int(flip.size - np.count_nonzero(reject))


def ising_color(spins, couplings, mask, log_u):
    """One checkerboard color of the serial periodic Ising sweep.

    Returns ``(new_spins, n_accepted)`` -- the serial sampler
    historically rebinds ``self.spins`` to the ``np.where`` result
    rather than mutating in place.
    """
    field = np.zeros(spins.shape)
    for axis in range(spins.ndim):
        field += couplings[axis] * (
            np.roll(spins, 1, axis=axis) + np.roll(spins, -1, axis=axis)
        )
    accept = mask & (log_u < -2.0 * spins * field)
    return np.where(accept, -spins, spins), int(np.count_nonzero(accept))


def strip_corner(flat, weights, i00, i10, i01, i11, xmask, flip, uu) -> int:
    """Batched corner flips of one strip-driver stage (XOR code trick).

    ``flat`` is the ghosted local spin array flattened; ``i00..i11``
    are (4, n) flat gather indices for the four plaquettes of each
    move, ``xmask`` the (4, 1) per-plaquette XOR update masks,
    ``flip`` the (4, n) flip indices, ``uu`` the move's share of the
    shared per-sweep uniform block.
    """
    codes = (
        flat[i00] + (flat[i10] << 1) + (flat[i01] << 2) + (flat[i11] << 3)
    )
    old = np.multiply.reduce(weights[codes], axis=0)
    new = np.multiply.reduce(weights[codes ^ xmask], axis=0)
    accept = (new > 0.0) & (uu * old < new)
    flat[flip[:, accept]] ^= 1
    return int(np.count_nonzero(accept))


def strip_column(loc, logw, lc, c00, c10, c01, c11, log_uu):
    """Batched straight-column flips of one strip-driver parity.

    Straight detection happens inside the op (the uniforms come
    pre-drawn from the shared sweep block, so no draw-order concern).
    Returns ``(n_straight, n_accepted)``.
    """
    cols = loc[lc]
    straight = cols.min(axis=1) == cols.max(axis=1)
    n_straight = int(np.count_nonzero(straight))
    if n_straight == 0:
        return 0, 0
    flat = loc.reshape(-1)
    codes = (
        flat[c00] + (flat[c10] << 1) + (flat[c01] << 2) + (flat[c11] << 3)
    )
    old_lw = logw[codes[0]].sum(axis=1) + logw[codes[1]].sum(axis=1)
    new_lw = (
        logw[codes[0] ^ 10].sum(axis=1) + logw[codes[1] ^ 5].sum(axis=1)
    )
    with np.errstate(invalid="ignore"):
        log_ratio = new_lw - old_lw
        accept = straight & np.isfinite(log_ratio) & (log_uu < log_ratio)
    loc[lc[accept]] ^= 1
    return n_straight, int(np.count_nonzero(accept))


def block_color(g, couplings, mask, log_u) -> int:
    """One checkerboard color of the block driver's ghosted sweep.

    ``g`` is the (bx+2, by+2, lt) ghosted spin array whose interior
    view is the block's spins; spatial neighbours come from the ghost
    frame, temporal ones wrap locally.
    """
    spins = g[1:-1, 1:-1]
    kx, ky, kt = couplings
    field = kx * (g[2:, 1:-1] + g[:-2, 1:-1])
    field = field + ky * (g[1:-1, 2:] + g[1:-1, :-2])
    field += kt * (np.roll(spins, 1, axis=2) + np.roll(spins, -1, axis=2))
    accept = mask & (log_u < -2.0 * spins * field)
    spins[accept] = -spins[accept]
    return int(np.count_nonzero(accept))


OPS = {
    "wl1d_corner": wl1d_corner,
    "wl1d_column": wl1d_column,
    "wl2d_segment": wl2d_segment,
    "wl2d_column": wl2d_column,
    "ising_color": ising_color,
    "strip_corner": strip_corner,
    "strip_column": strip_column,
    "block_color": block_color,
}
