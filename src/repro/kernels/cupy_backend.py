"""CuPy kernel-op stub: registers only when the accelerator imports.

The registry probes ``import cupy`` (not just ``find_spec``) before
ever loading this module, so on CPU-only machines ``--kernel cupy``
fails fast with a structured :class:`KernelUnavailableError` instead
of a CUDA driver traceback.

This is deliberately a *stub*: it reserves the registry slot and the
CLI/manifest plumbing for a GPU port, but the device kernels are not
written yet, and -- more importantly -- a GPU backend has no
bit-identity story against the CPU paths until its reduction orders
are pinned down the way :mod:`repro.kernels.numba_backend` pins down
NumPy's pairwise summation.  Until then every op delegates to the
numpy backend on host memory, so selecting ``cupy`` on a GPU machine
is functional (and trajectory-identical) but earns no speedup.  The
negative registry priority keeps ``auto`` from ever picking it.

See ``/opt``-style accelerator guides for the kernel-porting plan:
each independence-class op maps onto one fused ElementwiseKernel (or a
RawKernel over the gather tables), with the uniforms staged
host-to-device once per sweep.
"""

from __future__ import annotations

from typing import Callable, Mapping

__all__ = ["build_ops"]


def build_ops() -> Mapping[str, Callable]:
    """Op table for the cupy stub (host-side delegation for now)."""
    import cupy  # noqa: F401  -- re-assert the accelerator imports

    from repro.kernels import numpy_backend

    return dict(numpy_backend.OPS)
