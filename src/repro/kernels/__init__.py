"""Pluggable compiled-kernel backends for the checkerboard sweeps.

Public surface re-exported from :mod:`repro.kernels.registry`; see
that module (and DESIGN.md's "Kernel registry" section) for the
selection semantics and the bit-identity contract.
"""

from repro.kernels.registry import (
    OP_NAMES,
    KernelBackend,
    KernelUnavailableError,
    available_backends,
    backend_version,
    get_ops,
    kernel_available,
    known_backends,
    register_backend,
    resolve_kernel,
    resolve_sweep_mode,
    unregister_backend,
)

__all__ = [
    "OP_NAMES",
    "KernelBackend",
    "KernelUnavailableError",
    "available_backends",
    "backend_version",
    "get_ops",
    "kernel_available",
    "known_backends",
    "register_backend",
    "resolve_kernel",
    "resolve_sweep_mode",
    "unregister_backend",
]
