"""Translation-symmetry-blocked exact diagonalization for XXZ lattices.

The dense ED oracle in :mod:`repro.models.ed` stops near 14 sites: the
4x4 square lattice -- the smallest geometry the batched 2-D world-line
kernels accept (``lx % 4 == ly % 4 == 0``) -- has a 65536-dimensional
Hilbert space and a 12870-dimensional half-filling sector, far beyond
a single dense ``eigh`` on this class of hardware.  Exploiting the
``lx * ly`` lattice translations block-diagonalizes every S^z sector
into momentum sectors of at most ``dim / (lx * ly)`` states (~800 for
4x4), which diagonalize in seconds and give *full-spectrum* thermal
expectations: the exact reference the scalar/vectorized sampler
agreement tests compare against.

Construction (standard momentum-basis ED):

* basis states are bit strings ``s`` (bit i = S^z_i + 1/2) grouped by
  particle number;
* each translation orbit is represented by its minimal element ``a``;
  the normalized momentum state is ``|a(k)> = P_k |a> / sqrt(nu_a)``
  with the projector ``P_k = (1/|G|) sum_g conj(lambda_g) T_g``,
  ``lambda_g = exp(i k . t_g)``, and ``nu_a = <a|P_k|a> = |S_a|/|G|``
  when ``k`` is compatible with the stabilizer ``S_a`` (else 0 and the
  orbit drops out of the block);
* matrix elements: for ``H|a> = sum_m h_m |s_m>`` the block element is
  ``<b(k)|H|a(k)> = sum_m h_m conj(lambda_{g_m}) sqrt(nu_b / nu_a)``
  where ``T_{g_m} s_m = b`` maps each image onto its representative.

Thermal averages of translation-invariant observables that are diagonal
in the product basis (the squared staggered magnetization) need only
``sum_a |psi_a|^2 d(a)`` per eigenvector, because a diagonal operator
cannot connect different orbits and is constant on each orbit.

Two global symmetries halve the work twice: spin inversion maps the
``n_up`` sector onto ``n - n_up`` with identical spectrum and staggered
moments, and complex conjugation maps momentum ``k`` onto ``-k``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.hamiltonians import XXZSquareModel

__all__ = ["MomentumBlockED", "SymmetryThermal"]

_NU_TOL = 1e-9


@dataclass(frozen=True)
class SymmetryThermal:
    """Thermal expectations from the momentum-blocked spectrum.

    ``m_stag_sq`` is normalized exactly like the sampler observable
    :meth:`~repro.qmc.worldline2d.WorldlineSquareQmc.staggered_magnetization_sq`
    (squared staggered magnetization per site, i.e. ``<M_st^2> / N^2``).
    """

    beta: float
    energy: float
    m_stag_sq: float

    def staggered_structure_factor(self, n_sites: int) -> float:
        """``S(pi, pi) = N <m_st^2>`` -- comparable to the sampler's."""
        return n_sites * self.m_stag_sq


class MomentumBlockED:
    """Full-spectrum thermodynamics of an :class:`XXZSquareModel`.

    Builds every (S^z, momentum) block once (eigenvalues plus the
    diagonal staggered moments of every eigenstate); ``thermal(beta)``
    is then a cheap Boltzmann sum, so one instance serves many
    temperatures.
    """

    MAX_SITES = 20

    def __init__(self, model: XXZSquareModel):
        if not model.periodic:
            raise ValueError("momentum blocking needs periodic boundaries")
        n = model.n_sites
        if n > self.MAX_SITES:
            raise ValueError(f"refusing 2^{n}-dimensional enumeration")
        self.model = model
        self.n_sites = n
        lat = model.lattice
        self.lx, self.ly = lat.lx, lat.ly
        self._enumerate_orbits(lat)
        self._build_blocks(lat)

    # -- orbit machinery ---------------------------------------------------
    def _enumerate_orbits(self, lat) -> None:
        n, lx, ly = self.n_sites, self.lx, self.ly
        states = np.arange(1 << n, dtype=np.int64)
        bits = np.empty((n, states.size), dtype=np.int64)
        for i in range(n):
            bits[i] = (states >> i) & 1
        self._n_up = bits.sum(axis=0)
        # Squared staggered magnetization (diagonal, orbit-constant).
        eps = np.array([1.0 if lat.sublattice(s) == 0 else -1.0 for s in range(n)])
        self._mst = (eps[:, None] * (bits - 0.5)).sum(axis=0)
        # Images of every state under every translation.
        self._group = [(dx, dy) for dx in range(lx) for dy in range(ly)]
        imgs = np.zeros((len(self._group), states.size), dtype=np.int64)
        for gi, (dx, dy) in enumerate(self._group):
            # site index is x * ly + y (row-major), matching lat.site.
            perm = np.array(
                [
                    lat.site((s // ly + dx) % lx, (s % ly + dy) % ly)
                    for s in range(n)
                ],
                dtype=np.int64,
            )
            img = np.zeros_like(states)
            for i in range(n):
                img |= bits[i] << perm[i]
            imgs[gi] = img
        self._rep = imgs.min(axis=0)
        self._g_to_rep = imgs.argmin(axis=0)
        self._stab = imgs == states[None, :]  # (|G|, 2^n), True on stabilizer

    def _momenta(self):
        """(kx, ky) integer momenta with their conjugation multiplicity."""
        out = []
        for kx in range(self.lx):
            for ky in range(self.ly):
                mkx, mky = (-kx) % self.lx, (-ky) % self.ly
                if (mkx, mky) < (kx, ky):
                    continue  # counted by its conjugate partner
                mult = 1 if (mkx, mky) == (kx, ky) else 2
                out.append((kx, ky, mult))
        return out

    def _build_blocks(self, lat) -> None:
        n = self.n_sites
        bonds = [(a, b) for a, b, _c in lat.bonds()]
        jz, jxy = self.model.jz, self.model.jxy
        rep, g_to_rep = self._rep, self._g_to_rep
        states = np.arange(1 << n, dtype=np.int64)
        is_rep = states == rep
        #: per (sector eigenvalue list, per-eigenstate m_st^2, multiplicity)
        self._evals: list[np.ndarray] = []
        self._m2: list[np.ndarray] = []
        self._mults: list[float] = []
        checked_dim = 0
        for n_up in range(n // 2 + 1):
            sector_mult = 1.0 if 2 * n_up == n else 2.0  # spin inversion
            reps = states[is_rep & (self._n_up == n_up)]
            if reps.size == 0:
                continue
            lookup = np.full(1 << n, -1, dtype=np.int64)
            lookup[reps] = np.arange(reps.size)
            # k-independent connection lists.
            diag = np.zeros(reps.size)
            rows, cols, gs = [], [], []
            for ai, a in enumerate(map(int, reps)):
                d = 0.0
                for u, v in bonds:
                    bu, bv = (a >> u) & 1, (a >> v) & 1
                    d += jz * (bu - 0.5) * (bv - 0.5)
                    if bu != bv:
                        s_m = a ^ ((1 << u) | (1 << v))
                        b = rep[s_m]
                        bi = lookup[b]
                        if bi >= 0:
                            rows.append(bi)
                            cols.append(ai)
                            gs.append(g_to_rep[s_m])
                diag[ai] = d
            rows = np.array(rows, dtype=np.int64)
            cols = np.array(cols, dtype=np.int64)
            gs = np.array(gs, dtype=np.int64)
            stab = self._stab[:, reps]  # (|G|, n_reps)
            t_vec = np.array(self._group, dtype=float)  # (|G|, 2)
            m2_reps = self._mst[reps] ** 2
            for kx, ky, k_mult in self._momenta():
                phase_g = np.exp(
                    1j * 2 * np.pi * (t_vec[:, 0] * kx / self.lx + t_vec[:, 1] * ky / self.ly)
                )
                nu = (np.conj(phase_g)[:, None] * stab).sum(axis=0).real / len(
                    self._group
                )
                keep = nu > _NU_TOL
                m = int(keep.sum())
                checked_dim += int(round(sector_mult * k_mult * m))
                if m == 0:
                    continue
                kidx = np.full(reps.size, -1, dtype=np.int64)
                kidx[keep] = np.arange(m)
                h = np.zeros((m, m), dtype=complex)
                np.fill_diagonal(h, diag[keep])
                r, c = kidx[rows], kidx[cols]
                sel = (r >= 0) & (c >= 0)
                amp = (
                    (jxy / 2.0)
                    * np.conj(phase_g)[gs[sel]]
                    * np.sqrt(nu[rows[sel]] / nu[cols[sel]])
                )
                np.add.at(h, (r[sel], c[sel]), amp)
                if not np.allclose(h, h.conj().T, atol=1e-10):
                    raise AssertionError("momentum block is not Hermitian")
                evals, evecs = np.linalg.eigh(h)
                self._evals.append(evals)
                self._m2.append((np.abs(evecs) ** 2 * m2_reps[keep, None]).sum(axis=0))
                self._mults.append(sector_mult * k_mult)
        if checked_dim != 1 << n:
            raise AssertionError(
                f"momentum blocks cover {checked_dim} states, expected {1 << n}"
            )

    # -- thermal sums ------------------------------------------------------
    def thermal(self, beta: float) -> SymmetryThermal:
        """Exact canonical expectations at inverse temperature ``beta``."""
        if beta <= 0:
            raise ValueError("beta must be positive")
        e_min = min(float(ev[0]) for ev in self._evals)
        z = e_sum = m2_sum = 0.0
        for evals, m2, mult in zip(self._evals, self._m2, self._mults):
            w = mult * np.exp(-beta * (evals - e_min))
            z += float(w.sum())
            e_sum += float((w * evals).sum())
            m2_sum += float((w * m2).sum())
        n2 = self.n_sites**2
        return SymmetryThermal(
            beta=beta, energy=e_sum / z, m_stag_sq=m2_sum / z / n2
        )
