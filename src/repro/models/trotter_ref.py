"""Matrix-product Trotter references for world-line validation.

The world-line sampler carries an O(dtau^2) Trotter bias, so comparing
it against *true* exact diagonalization conflates statistical error
with systematic bias.  These helpers compute the checkerboard Trotter
partition function

    Z_M(beta) = Tr [ e^{-dtau H_even} e^{-dtau H_odd} ]^M,   dtau = beta/M

*exactly* (dense matrices, small chains), so tests can compare the
sampler against the quantity it actually estimates, at full statistical
resolution.  The Marshall rotation applied by the sampler (Jxy ->
-|Jxy|) is reproduced here; it leaves the spectrum invariant.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.linalg import expm

from repro.models.hamiltonians import XXZChainModel
from repro.models.operators import site_operator

__all__ = [
    "checkerboard_split",
    "trotter_log_z",
    "trotter_reference_energy",
    "color_split_square",
    "trotter_log_z_colors",
    "trotter_reference_energy_colors",
]


def _bond_hamiltonian(i: int, j: int, n: int, jz: float, jxy: float) -> sp.csr_matrix:
    szm = sp.csr_matrix(np.diag([-0.5, 0.5]))
    spm = sp.csr_matrix(np.array([[0.0, 0.0], [1.0, 0.0]]))
    smm = spm.T.tocsr()
    return (
        jz * (site_operator(szm, i, n) @ site_operator(szm, j, n))
        + (jxy / 2.0)
        * (
            site_operator(spm, i, n) @ site_operator(smm, j, n)
            + site_operator(smm, i, n) @ site_operator(spm, j, n)
        )
    ).tocsr()


def checkerboard_split(model: XXZChainModel) -> tuple[np.ndarray, np.ndarray]:
    """Dense (H_even, H_odd) of the Marshall-rotated chain."""
    n = model.n_sites
    if n > 12:
        raise ValueError("dense Trotter reference is impractical beyond 12 sites")
    jxy_eff = -abs(model.jxy)  # the sampler's Marshall-rotated couplings
    chain = model.chain
    h_even = sp.csr_matrix((2**n, 2**n))
    h_odd = sp.csr_matrix((2**n, 2**n))
    for a, b, color in chain.bonds():
        term = _bond_hamiltonian(a, b, n, model.jz, jxy_eff)
        if color == 0:
            h_even = h_even + term
        else:
            h_odd = h_odd + term
    return np.asarray(h_even.todense()), np.asarray(h_odd.todense())


def trotter_log_z(model: XXZChainModel, beta: float, n_trotter: int) -> float:
    """``ln Z_M(beta)`` of the checkerboard decomposition (exact)."""
    if beta <= 0 or n_trotter < 1:
        raise ValueError("need beta > 0 and n_trotter >= 1")
    h_even, h_odd = checkerboard_split(model)
    dtau = beta / n_trotter
    transfer = expm(-dtau * h_even) @ expm(-dtau * h_odd)
    # Stable log-trace of the M-th power via eigenvalues of the (possibly
    # non-symmetric) positive transfer matrix.
    evals = np.linalg.eigvals(transfer)
    lam = np.abs(evals)  # spectrum is real-positive up to roundoff
    return float(np.log(np.sum(lam**n_trotter)))


def trotter_reference_energy(
    model: XXZChainModel, beta: float, n_trotter: int, eps: float = 1e-6
) -> float:
    """``E_M(beta) = -d ln Z_M / d beta`` -- the world-line sampler's target.

    Central finite difference at fixed M; ``eps`` is relative to beta.
    """
    h = eps * beta
    return float(
        -(
            trotter_log_z(model, beta + h, n_trotter)
            - trotter_log_z(model, beta - h, n_trotter)
        )
        / (2 * h)
    )


def color_split_square(model) -> list[np.ndarray]:
    """Dense per-color Hamiltonians of the Marshall-rotated square model.

    The four-color breakup of :class:`~repro.models.hamiltonians.XXZSquareModel`
    (two x-bond colors, two y-bond colors); bonds within a color are
    site-disjoint, so each exp(-dtau H_c) factorizes exactly.
    """
    n = model.n_sites
    if n > 12:
        raise ValueError("dense Trotter reference is impractical beyond 12 sites")
    jxy_eff = -abs(model.jxy)
    terms = [sp.csr_matrix((2**n, 2**n)) for _ in range(4)]
    for a, b, color in model.lattice.bonds():
        terms[color] = terms[color] + _bond_hamiltonian(a, b, n, model.jz, jxy_eff)
    return [np.asarray(t.todense()) for t in terms]


def trotter_log_z_colors(model, beta: float, n_trotter: int) -> float:
    """``ln Z_M`` for the four-color square-lattice breakup (exact)."""
    if beta <= 0 or n_trotter < 1:
        raise ValueError("need beta > 0 and n_trotter >= 1")
    dtau = beta / n_trotter
    transfer = None
    for h_c in color_split_square(model):
        factor = expm(-dtau * h_c)
        transfer = factor if transfer is None else transfer @ factor
    evals = np.linalg.eigvals(transfer)
    lam = np.abs(evals)
    return float(np.log(np.sum(lam**n_trotter)))


def trotter_reference_energy_colors(
    model, beta: float, n_trotter: int, eps: float = 1e-6
) -> float:
    """``E_M = -d ln Z_M / d beta`` for the square-lattice breakup."""
    h = eps * beta
    return float(
        -(
            trotter_log_z_colors(model, beta + h, n_trotter)
            - trotter_log_z_colors(model, beta - h, n_trotter)
        )
        / (2 * h)
    )
