"""Exact diagonalization: the validation oracle for every QMC estimator.

Two regimes:

* **Full spectrum** (``n_sites`` up to ~12): dense diagonalization
  gives the complete thermodynamics -- ``<E>``, specific heat,
  magnetization, uniform susceptibility, and spin--spin correlations at
  any temperature.  QMC validation tables (T4) compare against these.
* **Lanczos** (up to ~20 sites): sparse ground-state energy only, used
  to check zero-temperature extrapolations and VMC variational bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.models.operators import site_operator, total_sz
from repro.models.operators import pauli_z

__all__ = ["ThermalExpectation", "ExactDiagonalization", "lanczos_ground_state"]


@dataclass(frozen=True)
class ThermalExpectation:
    """Canonical expectation values at one temperature."""

    beta: float
    energy: float
    energy_variance: float
    specific_heat: float
    magnetization: float  # <S^z_total>
    susceptibility: float  # beta * (<Sz^2> - <Sz>^2) / n_sites
    free_energy: float
    entropy: float


class ExactDiagonalization:
    """Full-spectrum thermodynamics of a sparse Hamiltonian.

    Parameters
    ----------
    hamiltonian:
        Sparse Hermitian matrix of dimension ``2**n_sites``.
    n_sites:
        Number of spin-1/2 sites (fixes the Hilbert-space dimension and
        the magnetization operator).
    """

    MAX_DENSE_SITES = 14

    def __init__(self, hamiltonian: sp.spmatrix, n_sites: int):
        dim = hamiltonian.shape[0]
        if hamiltonian.shape != (dim, dim):
            raise ValueError("Hamiltonian must be square")
        if dim != 2**n_sites:
            raise ValueError(f"dimension {dim} != 2**{n_sites}")
        if n_sites > self.MAX_DENSE_SITES:
            raise ValueError(
                f"full diagonalization beyond {self.MAX_DENSE_SITES} sites is "
                "impractical; use lanczos_ground_state"
            )
        self.n_sites = n_sites
        dense = np.asarray(hamiltonian.todense())
        if not np.allclose(dense, dense.conj().T, atol=1e-12):
            raise ValueError("Hamiltonian is not Hermitian")
        self.eigenvalues, self.eigenvectors = np.linalg.eigh(dense)
        sz_diag = np.asarray(total_sz(n_sites).todense()).diagonal()
        # <k|Sz|k> and <k|Sz^2|k> for every eigenstate k (Sz is diagonal
        # in the product basis, so this is a weighted column sum).
        probs = np.abs(self.eigenvectors) ** 2  # (basis, eigenstate)
        self.sz_k = probs.T @ sz_diag
        self.sz2_k = probs.T @ (sz_diag**2)

    @property
    def ground_state_energy(self) -> float:
        return float(self.eigenvalues[0])

    @property
    def ground_state(self) -> np.ndarray:
        return self.eigenvectors[:, 0]

    def _boltzmann(self, beta: float) -> np.ndarray:
        if beta < 0:
            raise ValueError("beta must be non-negative")
        w = -beta * (self.eigenvalues - self.eigenvalues[0])
        p = np.exp(w)
        return p / p.sum()

    def log_partition(self, beta: float) -> float:
        """log Z(beta), with the true (unshifted) energy zero."""
        w = -beta * (self.eigenvalues - self.eigenvalues[0])
        return float(np.log(np.exp(w).sum()) - beta * self.eigenvalues[0])

    def thermal(self, beta: float) -> ThermalExpectation:
        """All standard canonical expectation values at inverse temperature beta."""
        p = self._boltzmann(beta)
        e = float(p @ self.eigenvalues)
        e2 = float(p @ self.eigenvalues**2)
        var = max(e2 - e * e, 0.0)
        m = float(p @ self.sz_k)
        m2 = float(p @ self.sz2_k)
        log_z = self.log_partition(beta)
        free = -log_z / beta if beta > 0 else float("-inf")
        return ThermalExpectation(
            beta=beta,
            energy=e,
            energy_variance=var,
            specific_heat=beta**2 * var,
            magnetization=m,
            susceptibility=beta * max(m2 - m * m, 0.0) / self.n_sites,
            free_energy=free,
            entropy=beta * (e - free),
        )

    def energy(self, beta: float) -> float:
        return self.thermal(beta).energy

    def imaginary_time_correlation_zz(
        self, site: int, tau: float, beta: float
    ) -> float:
        """Exact ``G(tau) = <S^z_i(tau) S^z_i(0)>`` at inverse temperature beta.

        ``G(tau) = (1/Z) sum_{m,n} e^{-(beta-tau) E_m} e^{-tau E_n}
        |<m|S^z_i|n>|^2`` from the full spectrum.  The QMC sampler's
        slice-separated correlator converges to this as dtau -> 0.
        """
        if not 0 <= tau <= beta:
            raise ValueError("need 0 <= tau <= beta")
        sz_diag = np.asarray(
            (site_operator(pauli_z(), site, self.n_sites) / 2.0).todense()
        ).diagonal()
        # Matrix elements <m|Sz|n> in the eigenbasis.
        sz_eig = self.eigenvectors.T @ (sz_diag[:, None] * self.eigenvectors)
        e = self.eigenvalues - self.eigenvalues[0]
        w = np.exp(-(beta - tau) * e)[:, None] * np.exp(-tau * e)[None, :]
        z = float(np.exp(-beta * e).sum())
        return float(np.sum(w * sz_eig**2) / z)

    def correlation_zz(self, site_a: int, site_b: int, beta: float) -> float:
        """Thermal <S^z_a S^z_b> (exact, any pair)."""
        sz = pauli_z() / 2.0
        op = (site_operator(sz, site_a, self.n_sites) @ site_operator(sz, site_b, self.n_sites))
        dense_op = np.asarray(op.todense()).diagonal()  # Sz Sz is diagonal
        probs = np.abs(self.eigenvectors) ** 2
        op_k = probs.T @ dense_op
        p = self._boltzmann(beta)
        return float(p @ op_k)


def lanczos_ground_state(
    hamiltonian: sp.spmatrix, k: int = 1, tol: float = 1e-10
) -> np.ndarray:
    """Lowest ``k`` eigenvalues of a sparse Hermitian matrix via Lanczos.

    Falls back to dense diagonalization for tiny matrices where ARPACK's
    ``k < dim - 1`` constraint bites.
    """
    dim = hamiltonian.shape[0]
    if dim <= max(16, k + 2):
        vals = np.linalg.eigvalsh(np.asarray(hamiltonian.todense()))
        return vals[:k]
    vals = spla.eigsh(hamiltonian, k=k, which="SA", tol=tol, return_eigenvectors=False)
    return np.sort(vals)
