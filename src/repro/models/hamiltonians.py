"""Model parameter records and sparse Hamiltonian builders.

Hamiltonian conventions (spin-1/2, ``S = sigma/2``):

XXZ chain::

    H = sum_<ij> [ Jz S^z_i S^z_j + (Jxy/2)(S^+_i S^-_j + S^-_i S^+_j) ]
        - h sum_i S^z_i

``Jz = Jxy = J > 0`` is the Heisenberg antiferromagnet; ``Jxy = 0`` the
classical Ising limit; ``Jz = 0`` the XY chain.

Transverse-field Ising model (TFIM), in the Pauli convention usual for
that model::

    H = -J sum_<ij> sigma^z_i sigma^z_j - Gamma sum_i sigma^x_i

The 1-D TFIM is quantum-critical at ``Gamma = J``.
"""

from __future__ import annotations

from dataclasses import dataclass

import scipy.sparse as sp

from repro.lattice.lattice import Chain, SquareLattice
from repro.models.operators import pauli_x, pauli_z, site_operator, two_site_operator

__all__ = ["XXZChainModel", "XXZSquareModel", "TFIM1D", "TFIM2D"]


@dataclass(frozen=True)
class XXZChainModel:
    """Spin-1/2 XXZ chain parameters."""

    n_sites: int
    jz: float = 1.0
    jxy: float = 1.0
    field: float = 0.0
    periodic: bool = True

    def __post_init__(self):
        Chain(self.n_sites, periodic=self.periodic)  # validates geometry

    @property
    def chain(self) -> Chain:
        return Chain(self.n_sites, periodic=self.periodic)

    def build_sparse(self) -> sp.csr_matrix:
        """Full sparse Hamiltonian in the S^z product basis."""
        n = self.n_sites
        sz = pauli_z() / 2.0
        sx = pauli_x() / 2.0
        # S^x S^x + S^y S^y = (1/2)(S+S- + S-S+); build from sx, sy via
        # the equivalent real form sxsx + sysy using ladder matrices.
        import numpy as np

        sp_plus = sp.csr_matrix(np.array([[0.0, 0.0], [1.0, 0.0]]))  # S+ |down> = |up>
        sp_minus = sp_plus.T.tocsr()

        h = sp.csr_matrix((2**n, 2**n))
        for a, b, _color in self.chain.bonds():
            h = h + self.jz * two_site_operator(sz, a, sz, b, n)
            h = h + (self.jxy / 2.0) * (
                two_site_operator(sp_plus, a, sp_minus, b, n)
                + two_site_operator(sp_minus, a, sp_plus, b, n)
            )
        if self.field != 0.0:
            for i in range(n):
                h = h - self.field * site_operator(sz, i, n)
        _ = sx  # kept for symmetry with TFIM builder readability
        return h.tocsr()

    @property
    def energy_scale(self) -> float:
        """Characteristic per-bond energy scale (for histogram grids)."""
        return max(abs(self.jz), abs(self.jxy)) / 4.0


@dataclass(frozen=True)
class XXZSquareModel:
    """Spin-1/2 XXZ model on an lx x ly square lattice (periodic).

    ``jz = jxy = J > 0`` is the 2-D Heisenberg antiferromagnet -- the
    flagship application of early parallel world-line QMC.
    """

    lx: int
    ly: int
    jz: float = 1.0
    jxy: float = 1.0
    periodic: bool = True

    def __post_init__(self):
        SquareLattice(self.lx, self.ly, periodic=self.periodic)  # validates

    @property
    def lattice(self) -> SquareLattice:
        return SquareLattice(self.lx, self.ly, periodic=self.periodic)

    @property
    def n_sites(self) -> int:
        return self.lx * self.ly

    def build_sparse(self) -> sp.csr_matrix:
        """Full sparse Hamiltonian in the S^z product basis."""
        import numpy as np

        n = self.n_sites
        if n > 16:
            raise ValueError(f"refusing to build a 2^{n}-dimensional Hamiltonian")
        sz = pauli_z() / 2.0
        sp_plus = sp.csr_matrix(np.array([[0.0, 0.0], [1.0, 0.0]]))
        sp_minus = sp_plus.T.tocsr()
        h = sp.csr_matrix((2**n, 2**n))
        for a, b, _color in self.lattice.bonds():
            h = h + self.jz * two_site_operator(sz, a, sz, b, n)
            h = h + (self.jxy / 2.0) * (
                two_site_operator(sp_plus, a, sp_minus, b, n)
                + two_site_operator(sp_minus, a, sp_plus, b, n)
            )
        return h.tocsr()


@dataclass(frozen=True)
class TFIM1D:
    """1-D transverse-field Ising chain parameters."""

    n_sites: int
    j: float = 1.0
    gamma: float = 1.0
    periodic: bool = True

    def __post_init__(self):
        if self.n_sites < 2:
            raise ValueError("need at least 2 sites")

    def build_sparse(self) -> sp.csr_matrix:
        n = self.n_sites
        sx, sz = pauli_x(), pauli_z()
        h = sp.csr_matrix((2**n, 2**n))
        n_bonds = n if self.periodic else n - 1
        for a in range(n_bonds):
            b = (a + 1) % n
            h = h - self.j * two_site_operator(sz, a, sz, b, n)
        for i in range(n):
            h = h - self.gamma * site_operator(sx, i, n)
        return h.tocsr()


@dataclass(frozen=True)
class TFIM2D:
    """2-D transverse-field Ising model on an lx x ly square lattice."""

    lx: int
    ly: int
    j: float = 1.0
    gamma: float = 1.0
    periodic: bool = True

    def __post_init__(self):
        SquareLattice(self.lx, self.ly, periodic=self.periodic)  # validates

    @property
    def lattice(self) -> SquareLattice:
        return SquareLattice(self.lx, self.ly, periodic=self.periodic)

    @property
    def n_sites(self) -> int:
        return self.lx * self.ly

    def build_sparse(self) -> sp.csr_matrix:
        n = self.n_sites
        if n > 20:
            raise ValueError(f"refusing to build a 2^{n} dense-dimension Hamiltonian")
        sx, sz = pauli_x(), pauli_z()
        h = sp.csr_matrix((2**n, 2**n))
        for a, b, _color in self.lattice.bonds():
            h = h - self.j * two_site_operator(sz, a, sz, b, n)
        for i in range(n):
            h = h - self.gamma * site_operator(sx, i, n)
        return h.tocsr()
