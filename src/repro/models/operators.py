"""Sparse spin-1/2 operator constructions.

Spin-z basis convention used throughout the repository: basis state
``n`` (an integer) encodes site ``i``'s spin in bit ``i``, with bit
value 1 = spin up (+1/2) and 0 = spin down (-1/2).  Site 0 is the
*least significant* bit.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = [
    "pauli_x",
    "pauli_y",
    "pauli_z",
    "identity_on",
    "site_operator",
    "two_site_operator",
    "total_sz",
]


def pauli_x() -> sp.csr_matrix:
    """Single-site Pauli x."""
    return sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))


def pauli_y() -> sp.csr_matrix:
    """Single-site Pauli y (complex)."""
    return sp.csr_matrix(np.array([[0.0, -1.0j], [1.0j, 0.0]]))


def pauli_z() -> sp.csr_matrix:
    """Single-site Pauli z, diag(+1, -1) in the (up, down) = (1, 0) basis.

    With the bit convention above the matrix is expressed in the
    ordering (down, up) = (bit 0, bit 1): element [0,0] acts on
    bit=0 = down, so sigma_z = diag(-1, +1) in *bit order*.
    """
    return sp.csr_matrix(np.array([[-1.0, 0.0], [0.0, 1.0]]))


def identity_on(n_sites: int) -> sp.csr_matrix:
    return sp.identity(2**n_sites, format="csr")


def site_operator(op: sp.spmatrix, site: int, n_sites: int) -> sp.csr_matrix:
    """Embed a single-site operator at ``site`` in an ``n_sites`` chain.

    Site 0 is the least significant bit, hence the *rightmost* factor
    of the Kronecker product.
    """
    if not 0 <= site < n_sites:
        raise ValueError(f"site {site} out of range for {n_sites} sites")
    left = sp.identity(2 ** (n_sites - site - 1), format="csr")
    right = sp.identity(2**site, format="csr")
    return sp.kron(left, sp.kron(op, right, format="csr"), format="csr")


def two_site_operator(
    op_a: sp.spmatrix, site_a: int, op_b: sp.spmatrix, site_b: int, n_sites: int
) -> sp.csr_matrix:
    """Product of single-site operators on two distinct sites."""
    if site_a == site_b:
        raise ValueError("sites must differ")
    return site_operator(op_a, site_a, n_sites) @ site_operator(op_b, site_b, n_sites)


def total_sz(n_sites: int) -> sp.csr_matrix:
    """Total S^z = (1/2) sum_i sigma^z_i (diagonal)."""
    states = np.arange(2**n_sites, dtype=np.uint64)
    ups = np.zeros(2**n_sites)
    for i in range(n_sites):
        ups += ((states >> np.uint64(i)) & np.uint64(1)).astype(float)
    sz = ups - n_sites / 2.0
    return sp.diags(sz, format="csr")
