"""Onsager's exact results for the 2-D classical Ising model.

Used to validate the anisotropic classical sampler that underlies the
TFIM quantum--classical mapping: run it with isotropic couplings and
compare with these thermodynamic-limit formulas.

Conventions: ``H = -J sum_<ij> s_i s_j`` with ``s = +-1``, ``k_B = 1``.
"""

from __future__ import annotations

import math

from scipy.special import ellipk

__all__ = [
    "onsager_critical_temperature",
    "onsager_energy_per_site",
    "onsager_spontaneous_magnetization",
]


def onsager_critical_temperature(j: float = 1.0) -> float:
    """``T_c = 2J / ln(1 + sqrt 2) ~= 2.2692 J``."""
    if j <= 0:
        raise ValueError("ferromagnetic coupling required")
    return 2.0 * j / math.log(1.0 + math.sqrt(2.0))


def onsager_energy_per_site(beta: float, j: float = 1.0) -> float:
    """Exact internal energy per site in the thermodynamic limit."""
    if beta <= 0:
        raise ValueError("beta must be positive")
    x = 2.0 * beta * j
    k1 = 2.0 * math.sinh(x) / math.cosh(x) ** 2
    factor = 2.0 * math.tanh(x) ** 2 - 1.0
    if abs(factor) < 1e-12:
        # Exactly at T_c: k1 = 1 makes K(k1^2) diverge logarithmically,
        # but the vanishing prefactor kills the product -- the limit is
        # the bare -J coth term (u(T_c) = -sqrt(2) J).
        return -j / math.tanh(x)
    # scipy's ellipk takes the parameter m = k^2.
    kk = float(ellipk(k1**2))
    return -j / math.tanh(x) * (1.0 + (2.0 / math.pi) * factor * kk)


def onsager_spontaneous_magnetization(beta: float, j: float = 1.0) -> float:
    """Exact |m| per site: ``(1 - sinh(2 beta J)^-4)^(1/8)`` below T_c, else 0."""
    if beta <= 0:
        raise ValueError("beta must be positive")
    s = math.sinh(2.0 * beta * j)
    if s <= 1.0:  # T >= Tc
        return 0.0
    return (1.0 - s**-4) ** 0.125
