"""Exact free-fermion solution of the 1-D transverse-field Ising model.

Via the Jordan--Wigner transformation the chain

    H = -J sum_i sigma^z_i sigma^z_{i+1} - Gamma sum_i sigma^x_i

maps to free fermions with single-particle energies

    Lambda(k) = 2 sqrt(J^2 + Gamma^2 - 2 J Gamma cos k).

These routines are the large-system reference the QMC benchmarks use
where exact diagonalization cannot reach.  Momentum grid: the
antiperiodic (even fermion parity) sector ``k = (2m+1) pi / N``, which
contains the ground state; parity-projection corrections to the
finite-temperature formulas are O(exp(-N)) and negligible at the sizes
used (N >= 32).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "tfim_mode_energies",
    "tfim_ground_state_energy",
    "tfim_finite_temperature_energy",
    "tfim_free_energy",
    "tfim_transverse_magnetization",
]


def tfim_mode_energies(n_sites: int, j: float = 1.0, gamma: float = 1.0) -> np.ndarray:
    """Quasiparticle energies Lambda(k) on the antiperiodic momentum grid."""
    if n_sites < 2:
        raise ValueError("need at least 2 sites")
    m = np.arange(n_sites)
    k = (2 * m + 1) * np.pi / n_sites
    return 2.0 * np.sqrt(j**2 + gamma**2 - 2 * j * gamma * np.cos(k))


def tfim_ground_state_energy(n_sites: int, j: float = 1.0, gamma: float = 1.0) -> float:
    """Exact ground-state energy of the periodic chain (total, not per site)."""
    return float(-0.5 * tfim_mode_energies(n_sites, j, gamma).sum())


def tfim_finite_temperature_energy(
    n_sites: int, beta: float, j: float = 1.0, gamma: float = 1.0
) -> float:
    """<H> at inverse temperature beta (total energy).

    ``u = -sum_k (Lambda_k/2) tanh(beta Lambda_k / 2)``; exact up to the
    exponentially small parity projection.
    """
    if beta < 0:
        raise ValueError("beta must be non-negative")
    lam = tfim_mode_energies(n_sites, j, gamma)
    return float(-0.5 * np.sum(lam * np.tanh(0.5 * beta * lam)))


def tfim_free_energy(
    n_sites: int, beta: float, j: float = 1.0, gamma: float = 1.0
) -> float:
    """Helmholtz free energy F = -T ln Z (total)."""
    if beta <= 0:
        raise ValueError("beta must be positive")
    lam = tfim_mode_energies(n_sites, j, gamma)
    # ln Z = sum_k ln(2 cosh(beta Lambda_k / 2)); written stably.
    x = 0.5 * beta * lam
    ln_z = float(np.sum(x + np.log1p(np.exp(-2 * x))))
    return -ln_z / beta


def tfim_transverse_magnetization(
    n_sites: int, beta: float, j: float = 1.0, gamma: float = 1.0
) -> float:
    """<sigma^x> per site, from dF/dGamma evaluated analytically.

    ``<sigma^x> = (1/N) sum_k (2(Gamma - J cos k)/Lambda_k) tanh(beta Lambda_k/2) * ...``
    derived from d Lambda_k / d Gamma = 4 (Gamma - J cos k) / Lambda_k.
    """
    m = np.arange(n_sites)
    k = (2 * m + 1) * np.pi / n_sites
    lam = 2.0 * np.sqrt(j**2 + gamma**2 - 2 * j * gamma * np.cos(k))
    dlam_dgamma = 4.0 * (gamma - j * np.cos(k)) / lam
    if beta == float("inf"):
        occ = np.ones_like(lam)
    else:
        occ = np.tanh(0.5 * beta * lam)
    # <sigma^x>_total = -dF/dGamma = sum_k (dLambda_k/dGamma / 2) tanh(beta Lambda_k/2)
    return float(np.sum(0.5 * dlam_dgamma * occ) / n_sites)
