"""Model Hamiltonians and independent exact references.

* :mod:`repro.models.operators` -- sparse spin-1/2 operator algebra
  (Kronecker constructions of Pauli/spin operators on n sites).
* :mod:`repro.models.hamiltonians` -- parameter records and sparse
  builders for the XXZ/Heisenberg chain and the transverse-field Ising
  model (TFIM) in 1-D and 2-D.
* :mod:`repro.models.ed` -- exact diagonalization: full thermal
  statistics for small systems, Lanczos ground states for medium ones.
  This is the validation oracle every QMC estimator is tested against.
* :mod:`repro.models.tfim_exact` -- exact free-fermion solution of the
  1-D TFIM (Jordan--Wigner), usable at sizes far beyond ED.
* :mod:`repro.models.ising_exact` -- Onsager's exact thermodynamic-limit
  results for the 2-D classical Ising model, used to validate the
  classical sampler that underlies the TFIM mapping.
"""

from repro.models.ed import ExactDiagonalization, ThermalExpectation
from repro.models.hamiltonians import TFIM1D, TFIM2D, XXZChainModel
from repro.models.ising_exact import (
    onsager_critical_temperature,
    onsager_energy_per_site,
    onsager_spontaneous_magnetization,
)
from repro.models.operators import (
    identity_on,
    pauli_x,
    pauli_y,
    pauli_z,
    site_operator,
    two_site_operator,
)
from repro.models.tfim_exact import (
    tfim_finite_temperature_energy,
    tfim_ground_state_energy,
    tfim_mode_energies,
)

__all__ = [
    "ExactDiagonalization",
    "ThermalExpectation",
    "XXZChainModel",
    "TFIM1D",
    "TFIM2D",
    "identity_on",
    "pauli_x",
    "pauli_y",
    "pauli_z",
    "site_operator",
    "two_site_operator",
    "tfim_ground_state_energy",
    "tfim_finite_temperature_energy",
    "tfim_mode_energies",
    "onsager_critical_temperature",
    "onsager_energy_per_site",
    "onsager_spontaneous_magnetization",
]
