"""Single stdout choke point for human-facing run status.

Every ``run-*`` CLI path historically printed summary lines directly;
with machine sinks (metrics/events JSONL) and health verdicts joining
the party, interleaved writes would corrupt piped output.  The
:class:`StatusReporter` buffers all human-facing lines for a run and
flushes them to the terminal in one write at the end -- after every
file sink has been written -- so stdout carries either the one
human-readable block or (with ``quiet=True``) nothing at all.

Machine-readable artifacts never go through this class: they go to the
paths the user named (``--output``, ``--metrics-out``, ``--events-out``,
...).
"""

from __future__ import annotations

import sys
from typing import TextIO

__all__ = ["StatusReporter", "format_health_verdict"]


class StatusReporter:
    """Buffered reporter for human-facing run status lines.

    ``quiet`` drops everything (the ``--quiet`` flag); ``stream``
    defaults to ``sys.stdout`` at flush time so test monkeypatching of
    ``sys.stdout`` keeps working.
    """

    def __init__(self, quiet: bool = False, stream: TextIO | None = None):
        self.quiet = quiet
        self._stream = stream
        self._lines: list[str] = []

    def info(self, text: str) -> None:
        """Buffer one human-facing line (or block) for the final flush."""
        if not self.quiet:
            self._lines.append(text)

    def flush(self) -> None:
        """Emit everything buffered in a single write, then reset."""
        if self._lines:
            stream = self._stream if self._stream is not None else sys.stdout
            stream.write("\n".join(self._lines) + "\n")
            stream.flush()
        self._lines = []


def format_health_verdict(health: dict) -> str:
    """One-line human verdict from a run's health summary dict.

    ``health`` is the aggregate stored in ``result.runtime['health']``:
    ``{"healthy": bool, "n_events": int, "by_severity": {...}}``.
    """
    if health.get("healthy", True):
        n = health.get("n_events", 0)
        suffix = f" ({n} informational event{'s' if n != 1 else ''})" if n else ""
        return f"health: OK{suffix}"
    sev = health.get("by_severity", {})
    parts = [
        f"{sev[s]} {s}" for s in ("critical", "warning") if sev.get(s)
    ]
    return f"health: ATTENTION ({', '.join(parts) or 'events recorded'})"
