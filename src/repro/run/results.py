"""Result records with JSON round-trip.

A :class:`RunResult` is what every high-level entry point returns:
point estimates with errors for the standard observables, the raw
series (optional, NPZ side file), and enough metadata to reproduce the
run.  Serialization is plain JSON + NPZ so results are readable without
this package.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["ObservableEstimate", "RunResult", "save_result", "load_result"]


@dataclass(frozen=True)
class ObservableEstimate:
    """A point estimate with error bar and autocorrelation time."""

    name: str
    value: float
    error: float
    tau_int: float = 0.5

    def agrees_with(self, reference: float, n_sigma: float = 3.0,
                    atol: float = 0.0) -> bool:
        """Whether ``reference`` lies within ``n_sigma`` error bars.

        ``atol`` adds an absolute systematic allowance (e.g. a Trotter
        bias bound) to the acceptance window.
        """
        return abs(self.value - reference) <= n_sigma * self.error + atol

    def __str__(self) -> str:
        return f"{self.name} = {self.value:.6g} +- {self.error:.2g}"


@dataclass
class RunResult:
    """Outcome of one simulation run."""

    kind: str  # "xxz" | "tfim" | ...
    parameters: dict
    estimates: dict[str, ObservableEstimate] = field(default_factory=dict)
    series: dict[str, np.ndarray] = field(default_factory=dict)
    model_time: float = 0.0  # virtual-machine makespan [s]
    comm_fraction: float = 0.0
    #: Always-available end-of-run accounting (acceptance, sweeps/s,
    #: halo bytes, rank-completion report) -- JSON-serializable dict,
    #: empty when a path records nothing.
    runtime: dict = field(default_factory=dict)
    #: Per-rank metric summaries from the run's MetricsRegistry
    #: (populated only with --metrics-out/--trace-out).
    rank_summaries: dict = field(default_factory=dict)

    def estimate(self, name: str) -> ObservableEstimate:
        try:
            return self.estimates[name]
        except KeyError:
            raise KeyError(
                f"no estimate {name!r}; have {sorted(self.estimates)}"
            ) from None

    def add_series(self, name: str, series: np.ndarray) -> None:
        self.series[name] = np.asarray(series)

    def summary(self) -> str:
        lines = [f"RunResult[{self.kind}]"]
        for est in self.estimates.values():
            lines.append(f"  {est}")
        if self.model_time:
            lines.append(
                f"  model_time = {self.model_time:.4g} s"
                f" (comm fraction {self.comm_fraction:.1%})"
            )
        rt = self.runtime
        if rt.get("n_attempted"):
            lines.append(
                f"  acceptance = {rt['n_accepted'] / rt['n_attempted']:.1%}"
                f" ({int(rt['n_accepted'])}/{int(rt['n_attempted'])} moves)"
            )
        if rt.get("sweeps_per_second"):
            lines.append(
                f"  throughput = {rt['sweeps_per_second']:.3g} sweeps/s"
                f" ({rt.get('wall_seconds', 0.0):.3g} s wall)"
            )
        if rt.get("halo_bytes") is not None:
            lines.append(
                f"  halo traffic = {rt['halo_bytes'] / 1e6:.3g} MB"
                f" in {int(rt.get('halo_messages', 0))} messages"
            )
        if rt.get("report"):
            rep = rt["report"]
            lines.append(
                f"  ranks: {rep.get('n_completed', 0)}/{rep.get('n_ranks', 0)}"
                f" completed, {rep.get('n_failed', 0)} failed,"
                f" {rep.get('n_aborted', 0)} aborted"
            )
        if rt.get("health"):
            from repro.run.reporting import format_health_verdict

            lines.append(f"  {format_health_verdict(rt['health'])}")
        for path_key in ("metrics_out", "trace_out", "events_out", "manifest"):
            if rt.get(path_key):
                lines.append(f"  {path_key} -> {rt[path_key]}")
        return "\n".join(lines)


def save_result(result: RunResult, path: str | Path) -> None:
    """Write ``<path>.json`` (metadata + estimates) and ``<path>.npz`` (series)."""
    path = Path(path)
    doc = {
        "kind": result.kind,
        "parameters": result.parameters,
        "model_time": result.model_time,
        "comm_fraction": result.comm_fraction,
        "runtime": result.runtime,
        "rank_summaries": result.rank_summaries,
        "estimates": {k: asdict(v) for k, v in result.estimates.items()},
        "series_keys": sorted(result.series),
    }
    path.with_suffix(".json").write_text(json.dumps(doc, indent=2, sort_keys=True))
    if result.series:
        np.savez_compressed(path.with_suffix(".npz"), **result.series)


def load_result(path: str | Path) -> RunResult:
    """Inverse of :func:`save_result`."""
    path = Path(path)
    doc = json.loads(path.with_suffix(".json").read_text())
    series = {}
    npz_path = path.with_suffix(".npz")
    if npz_path.exists():
        with np.load(npz_path) as data:
            series = {k: data[k] for k in data.files}
    return RunResult(
        kind=doc["kind"],
        parameters=doc["parameters"],
        estimates={
            k: ObservableEstimate(**v) for k, v in doc["estimates"].items()
        },
        series=series,
        model_time=doc.get("model_time", 0.0),
        comm_fraction=doc.get("comm_fraction", 0.0),
        runtime=doc.get("runtime", {}),
        rank_summaries=doc.get("rank_summaries", {}),
    )
