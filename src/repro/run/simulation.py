"""The high-level Simulation facade.

One entry point per model ties together samplers, parallel drivers,
virtual machine and error analysis::

    from repro import Simulation, XXZRunConfig, ParallelLayout

    cfg = XXZRunConfig(n_sites=16, beta=1.0, n_slices=16,
                       layout=ParallelLayout("strip", 4, "Paragon"))
    result = Simulation(cfg).run()
    print(result.summary())

Every estimate carries a binning-analysis error bar and integrated
autocorrelation time; parallel runs also report the virtual machine's
modeled makespan and communication fraction.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro import kernels
from repro.models.hamiltonians import XXZChainModel, XXZSquareModel
from repro.qmc.parallel import (
    IsingBlockConfig,
    WorldlineStripConfig,
    ising_block_program,
    worldline_strip_program,
)
from repro.qmc.tfim import (
    TfimQmc,
    tfim_energy_from_bond_sums,
    tfim_sigma_x_from_time_bonds,
)
from repro.qmc.worldline import WorldlineChainQmc
from repro.qmc.worldline2d import WorldlineSquareQmc
from repro.run.config import TfimRunConfig, XXZ2DRunConfig, XXZRunConfig
from repro.run.results import ObservableEstimate, RunResult
from repro.stats.autocorr import integrated_autocorr_time
from repro.stats.binning import BinningAnalysis
from repro.vmp.machines import MACHINES
from repro.vmp.scheduler import run_spmd

__all__ = ["Simulation"]


def _checkpoint_config(cfg):
    """The run's CheckpointConfig, or None when checkpointing is off."""
    from repro.run.checkpoint import CheckpointConfig

    if cfg.checkpoint_every <= 0 and not cfg.resume:
        return None
    return CheckpointConfig(
        directory=cfg.checkpoint_dir,
        every=cfg.checkpoint_every,
        resume=cfg.resume,
    )


def _obs_registry(cfg):
    """The run's MetricsRegistry, or None when telemetry is off."""
    if cfg.metrics_out is None and cfg.trace_out is None:
        return None
    from repro.obs import MetricsRegistry

    return MetricsRegistry(interval=cfg.obs_interval)


def _health_rules(cfg):
    """The run's HealthRules, or None when ``--health`` is off.

    ``--health-rules FILE`` overrides the defaults; ``--obs-interval``,
    when set, overrides the check cadence so health checks and metric
    snapshots land on the same sweeps.
    """
    if not cfg.health:
        return None
    import dataclasses

    from repro.obs.health import HealthRules, load_health_rules

    rules = (
        load_health_rules(cfg.health_rules)
        if cfg.health_rules is not None
        else HealthRules()
    )
    if cfg.obs_interval > 0 and rules.interval != cfg.obs_interval:
        rules = dataclasses.replace(rules, interval=cfg.obs_interval)
    return rules


def _posthoc_health(rules, series, n_attempted, n_accepted, measure_every, rank=0):
    """Run the health monitor over already-measured serial series.

    The serial chain samplers have no in-loop hook; feeding their
    measured series through the same monitor after the fact gives the
    identical estimators and NaN sentinels, plus a single end-of-run
    acceptance-band check over the whole run.  Returns the monitor.
    """
    from repro.obs.health import HealthMonitor

    monitor = HealthMonitor(rules, rank=rank)
    n_meas = max((len(v) for v in series.values()), default=0)
    for i in range(n_meas):
        sweep = i * measure_every
        for name, values in series.items():
            if i < len(values):
                monitor.observe(name, float(values[i]), sweep)
    last_sweep = max((n_meas - 1) * measure_every, 0)
    monitor.check(0, attempted=0, accepted=0)  # open the window
    monitor.check(last_sweep, attempted=int(n_attempted), accepted=int(n_accepted))
    return monitor


def _collect_health(rules, result, monitors=None, spmd=None):
    """Merge per-rank health output into one run-level view.

    ``monitors`` are in-process HealthMonitor objects (serial paths);
    ``spmd`` contributes the rank programs' returned events/summaries.
    Stores the aggregate verdict in ``result.runtime['health']`` and
    returns ``{"events": [...], "summary": {...}, "rank_summaries":
    [...]}`` for the sinks, or None when health is off.
    """
    if rules is None:
        return None
    from repro.obs.events import events_summary, sort_events

    events: list[dict] = []
    rank_summaries: list[dict] = []
    for monitor in monitors or ():
        events.extend(monitor.event_docs())
        rank_summaries.append(monitor.summary())
    if spmd is not None:
        events.extend(spmd.health_events())
        for value in spmd.values:
            if isinstance(value, dict) and value.get("health_summary"):
                rank_summaries.append(value["health_summary"])
    events = sort_events(events)
    summary = events_summary(events)
    summary["rules"] = rules.to_doc()
    result.runtime["health"] = summary
    return {"events": events, "summary": summary, "rank_summaries": rank_summaries}


def _report_summary(report) -> dict:
    """Compact JSON view of a RunReport for runtime/CLI output."""
    if report is None:
        return {}
    return {
        "n_ranks": report.n_ranks,
        "n_completed": len(report.completed),
        "n_failed": len(report.failures),
        "n_aborted": len(report.aborted),
    }


def _emit_observability(kind, cfg, params, registry, spmd=None, runtime=None,
                        health=None):
    """Write the requested metrics/events JSONL / Chrome trace / manifest.

    Returns ``{key: path}`` of everything written (also merged into
    ``runtime`` so the CLI summary can point at the files).  ``health``
    is the :func:`_collect_health` bundle (or None).  Under an MPI
    launch every rank computes the same result; only world rank 0
    writes files, so mpiexec runs do not race on the output paths.
    """
    from repro.obs import build_manifest, write_manifest, write_metrics_jsonl
    from repro.vmp.mpi_backend import world_rank_hint

    if world_rank_hint() != 0:
        return {}
    outputs: dict[str, str] = {}
    if cfg.metrics_out is not None and registry is not None:
        outputs["metrics_out"] = str(write_metrics_jsonl(cfg.metrics_out, registry))
    if cfg.trace_out is not None and spmd is not None and spmd.spans is not None:
        outputs["trace_out"] = str(
            spmd.write_chrome_trace(cfg.trace_out, metadata={"kind": kind, **params})
        )
    if cfg.events_out is not None and health is not None:
        from repro.obs.events import write_events_jsonl

        outputs["events_out"] = str(
            write_events_jsonl(cfg.events_out, health["events"])
        )
    anchor = cfg.metrics_out or cfg.trace_out or cfg.events_out
    if anchor is not None:
        extra = {"outputs": dict(outputs), "runtime": dict(runtime or {})}
        if health is not None:
            extra["health"] = {
                "summary": health["summary"],
                "rank_summaries": health["rank_summaries"],
            }
        manifest = build_manifest(
            kind,
            params,
            seed=cfg.seed,
            registry=registry,
            report=spmd.report if spmd is not None else None,
            extra=extra,
        )
        outputs["manifest"] = str(
            write_manifest(Path(anchor).parent / "manifest.json", manifest)
        )
    if runtime is not None:
        runtime.update(outputs)
    return outputs


def _resolve_layout_kernel(layout) -> str:
    """Resolve ``layout.kernel`` to a concrete sweep mode up front.

    Returns ``"scalar"`` or a concrete registered backend name
    (``auto`` picks the best available one).  Resolving *before* any
    rank programs spawn means a run requesting an uninstalled backend
    (e.g. ``--kernel cupy`` on a CPU box) fails fast with a structured
    :class:`repro.kernels.KernelUnavailableError` instead of dying
    mid-flight inside a worker.
    """
    return kernels.resolve_sweep_mode(layout.kernel)


def _estimate(name: str, series: np.ndarray) -> ObservableEstimate:
    """Binning-analysis point estimate of a time series."""
    series = np.asarray(series, dtype=float)
    if series.size >= 16:
        ba = BinningAnalysis.from_series(series)
        tau = integrated_autocorr_time(series) if series.size >= 32 else ba.tau_int
        return ObservableEstimate(name, ba.mean, ba.error, tau)
    err = float(series.std(ddof=1) / np.sqrt(series.size)) if series.size > 1 else 0.0
    return ObservableEstimate(name, float(series.mean()), err)


class Simulation:
    """Configured simulation ready to run; see the module docstring."""

    def __init__(self, config: XXZRunConfig | XXZ2DRunConfig | TfimRunConfig):
        self.config = config
        if isinstance(config, XXZRunConfig):
            self.kind = "xxz"
        elif isinstance(config, XXZ2DRunConfig):
            self.kind = "xxz2d"
        elif isinstance(config, TfimRunConfig):
            self.kind = "tfim"
        else:
            raise TypeError(f"unsupported config type {type(config).__name__}")

    def run(self) -> RunResult:
        if self.kind == "xxz":
            return self._run_xxz()
        if self.kind == "xxz2d":
            return self._run_xxz2d()
        return self._run_tfim()

    @staticmethod
    def _finish_runtime(result, registry, n_sweeps_run, t0_wall) -> None:
        """Record the always-on throughput numbers and metric summaries."""
        wall = time.perf_counter() - t0_wall
        result.runtime.update(
            wall_seconds=wall,
            n_sweeps=n_sweeps_run,
            sweeps_per_second=n_sweeps_run / wall if wall > 0 else 0.0,
        )
        if registry is not None:
            result.rank_summaries = {
                str(r): v for r, v in registry.summary().items()
            }

    # ------------------------------------------------------------------
    def _run_xxz2d(self) -> RunResult:
        cfg: XXZ2DRunConfig = self.config
        layout = cfg.layout
        n_sites = cfg.lx * cfg.ly
        kernel = _resolve_layout_kernel(layout)
        # "auto" keeps the sampler's geometry gate (scalar fallback on
        # off-grid lattices); explicit backends are passed through.
        mode = "auto" if layout.kernel == "auto" else kernel
        params = {
            "lx": cfg.lx,
            "ly": cfg.ly,
            "beta": cfg.beta,
            "jz": cfg.jz,
            "jxy": cfg.jxy,
            "n_slices": cfg.n_slices,
            "strategy": layout.strategy,
            "n_ranks": layout.n_ranks,
            "kernel": kernel,
        }
        result = RunResult(kind="xxz2d", parameters=params)
        result.runtime.update(kernel=kernel)
        registry = _obs_registry(cfg)
        rules = _health_rules(cfg)
        monitors = []
        t0_wall = time.perf_counter()
        model = XXZSquareModel(lx=cfg.lx, ly=cfg.ly, jz=cfg.jz, jxy=cfg.jxy)
        n_chains = layout.n_ranks if layout.strategy == "replica" else 1
        energy_all, mag_all, mstag_all = [], [], []
        n_att = n_acc = 0
        for chain_idx in range(n_chains):
            monitor = None
            if rules is not None:
                from repro.obs.health import HealthMonitor

                monitor = HealthMonitor(rules, rank=chain_idx)
                monitors.append(monitor)
            sampler = WorldlineSquareQmc(
                model, cfg.beta, cfg.n_slices, seed=cfg.seed + chain_idx,
                metrics=registry.scope(chain_idx) if registry is not None else None,
                health=monitor,
            )
            meas = sampler.run(
                cfg.n_sweeps, cfg.n_thermalize, cfg.measure_every, mode=mode
            )
            energy_all.append(meas.energy)
            mag_all.append(meas.magnetization)
            mstag_all.append(meas.m_stag_sq)
            n_att += sampler.n_attempted
            n_acc += sampler.n_accepted
        energy = np.concatenate(energy_all)
        mag = np.concatenate(mag_all)
        mstag = np.concatenate(mstag_all)
        result.runtime.update(n_attempted=n_att, n_accepted=n_acc)
        n_sweeps_run = n_chains * (cfg.n_sweeps + cfg.n_thermalize)
        self._finish_runtime(result, registry, n_sweeps_run, t0_wall)
        health = _collect_health(rules, result, monitors=monitors)
        _emit_observability(
            "xxz2d", cfg, params, registry, runtime=result.runtime, health=health
        )

        result.estimates["energy"] = _estimate("energy", energy)
        result.estimates["energy_per_site"] = _estimate(
            "energy_per_site", energy / n_sites
        )
        chi = cfg.beta * (np.mean(mag**2) - np.mean(mag) ** 2) / n_sites
        result.estimates["susceptibility"] = ObservableEstimate(
            "susceptibility", float(chi),
            _susceptibility_error(mag, cfg.beta, n_sites),
        )
        result.estimates["staggered_structure_factor"] = _estimate(
            "staggered_structure_factor", n_sites * mstag
        )
        result.add_series("energy", energy)
        result.add_series("magnetization", mag)
        return result

    # ------------------------------------------------------------------
    def _run_xxz(self) -> RunResult:
        cfg: XXZRunConfig = self.config
        layout = cfg.layout
        kernel = _resolve_layout_kernel(layout)
        mode = "auto" if layout.kernel == "auto" else kernel
        params = {
            "n_sites": cfg.n_sites,
            "beta": cfg.beta,
            "jz": cfg.jz,
            "jxy": cfg.jxy,
            "n_slices": cfg.n_slices,
            "periodic": cfg.periodic,
            "strategy": layout.strategy,
            "n_ranks": layout.n_ranks,
            "machine": layout.machine,
            "backend": layout.backend,
            "kernel": kernel,
            "replicas": layout.replicas,
        }
        result = RunResult(kind="xxz", parameters=params)
        result.runtime.update(kernel=kernel)
        registry = _obs_registry(cfg)
        rules = _health_rules(cfg)
        monitors = []
        t0_wall = time.perf_counter()
        spmd = None

        if layout.strategy in ("serial", "replica"):
            n_chains = layout.n_ranks if layout.strategy == "replica" else 1
            model = XXZChainModel(
                n_sites=cfg.n_sites, jz=cfg.jz, jxy=cfg.jxy, periodic=cfg.periodic
            )
            all_energy, all_mag = [], []
            n_att = n_acc = 0
            for chain_idx in range(n_chains):
                sampler = WorldlineChainQmc(
                    model, cfg.beta, cfg.n_slices, seed=cfg.seed + chain_idx
                )
                meas = sampler.run(
                    cfg.n_sweeps, cfg.n_thermalize, cfg.measure_every, mode=mode
                )
                all_energy.append(meas.energy)
                all_mag.append(meas.magnetization)
                n_att += getattr(sampler, "n_attempted", 0)
                n_acc += getattr(sampler, "n_accepted", 0)
                if rules is not None:
                    monitors.append(
                        _posthoc_health(
                            rules,
                            {"energy": meas.energy, "magnetization": meas.magnetization},
                            getattr(sampler, "n_attempted", 0),
                            getattr(sampler, "n_accepted", 0),
                            cfg.measure_every,
                            rank=chain_idx,
                        )
                    )
            energy = np.concatenate(all_energy)
            mag = np.concatenate(all_mag)
            n_sweeps_run = n_chains * (cfg.n_sweeps + cfg.n_thermalize)
            result.runtime.update(n_attempted=n_att, n_accepted=n_acc)
        else:  # strip
            wl_cfg = WorldlineStripConfig(
                n_sites=cfg.n_sites,
                jz=cfg.jz,
                jxy=cfg.jxy,
                beta=cfg.beta,
                n_slices=cfg.n_slices,
                n_sweeps=cfg.n_sweeps,
                n_thermalize=cfg.n_thermalize,
                measure_every=cfg.measure_every,
                overlap=layout.overlap,
                mode=kernel,
            )
            if layout.replicas > 1:
                from repro.qmc.two_level import TwoLevelConfig, two_level_program

                tl_cfg = TwoLevelConfig(
                    replicas=layout.replicas,
                    domain_ranks=layout.n_ranks,
                    base=wl_cfg,
                )
                program, prog_args = two_level_program, (
                    tl_cfg, _checkpoint_config(cfg), rules,
                )
                n_ranks = tl_cfg.n_ranks
            else:
                program, prog_args = worldline_strip_program, (
                    wl_cfg, _checkpoint_config(cfg), rules,
                )
                n_ranks = layout.n_ranks
            spmd = run_spmd(
                program,
                n_ranks,
                machine=MACHINES[layout.machine],
                seed=cfg.seed,
                args=prog_args,
                metrics=registry,
                spans=cfg.trace_out is not None,
                trace=cfg.trace_out is not None,
                backend=layout.backend,
            )
            out0 = spmd.values[0]
            if layout.replicas > 1 and out0["ensemble_energy"] is not None:
                # Pooled ensemble-mean series; the per-replica series
                # stay available in the rank values.
                energy = out0["ensemble_energy"]
                mag = out0["ensemble_magnetization"]
            else:
                energy = out0["energy"]
                mag = out0["magnetization"]
            result.model_time = spmd.elapsed_model_time
            result.comm_fraction = spmd.comm_fraction()
            n_sweeps_run = cfg.n_sweeps + cfg.n_thermalize
            result.runtime.update(
                n_attempted=sum(v["n_attempted"] for v in spmd.values),
                n_accepted=sum(v["n_accepted"] for v in spmd.values),
                halo_bytes=spmd.total_bytes,
                halo_messages=spmd.total_messages,
                report=_report_summary(spmd.report),
            )
            if layout.replicas > 1:
                result.runtime.update(
                    replicas=layout.replicas,
                    domain_ranks=layout.n_ranks,
                    comm_fraction_by_level=spmd.comm_fraction_by_level(),
                    ensemble_degraded=bool(out0["ensemble_degraded"]),
                )

        self._finish_runtime(result, registry, n_sweeps_run, t0_wall)
        health = _collect_health(rules, result, monitors=monitors, spmd=spmd)
        _emit_observability(
            "xxz", cfg, params, registry, spmd=spmd, runtime=result.runtime,
            health=health,
        )

        result.estimates["energy"] = _estimate("energy", energy)
        result.estimates["energy_per_site"] = _estimate(
            "energy_per_site", energy / cfg.n_sites
        )
        chi = cfg.beta * (np.mean(mag**2) - np.mean(mag) ** 2) / cfg.n_sites
        chi_err = _susceptibility_error(mag, cfg.beta, cfg.n_sites)
        result.estimates["susceptibility"] = ObservableEstimate(
            "susceptibility", float(chi), chi_err
        )
        result.add_series("energy", energy)
        result.add_series("magnetization", mag)
        return result

    # ------------------------------------------------------------------
    def _run_tfim(self) -> RunResult:
        cfg: TfimRunConfig = self.config
        layout = cfg.layout
        n_sites = int(np.prod(cfg.spatial_shape))
        kernel = _resolve_layout_kernel(layout)
        # The serial classical sampler's batched color update *is* its
        # reference implementation, so "scalar" maps to numpy there;
        # the block driver keeps a true per-site scalar path.
        serial_kernel = "numpy" if kernel == "scalar" else kernel
        params = {
            "spatial_shape": list(cfg.spatial_shape),
            "beta": cfg.beta,
            "j": cfg.j,
            "gamma": cfg.gamma,
            "n_slices": cfg.n_slices,
            "strategy": layout.strategy,
            "n_ranks": layout.n_ranks,
            "machine": layout.machine,
            "backend": layout.backend,
            "kernel": kernel,
        }
        result = RunResult(kind="tfim", parameters=params)
        result.runtime.update(kernel=kernel)
        registry = _obs_registry(cfg)
        rules = _health_rules(cfg)
        monitors = []
        t0_wall = time.perf_counter()
        spmd = None

        if layout.strategy in ("serial", "replica"):
            n_chains = layout.n_ranks if layout.strategy == "replica" else 1
            e_all, sx_all, m_all = [], [], []
            n_att = n_acc = 0
            for chain_idx in range(n_chains):
                sampler = TfimQmc(
                    cfg.spatial_shape,
                    j=cfg.j,
                    gamma=cfg.gamma,
                    beta=cfg.beta,
                    n_slices=cfg.n_slices,
                    seed=cfg.seed + chain_idx,
                    kernel=serial_kernel,
                )
                meas = sampler.run(cfg.n_sweeps, cfg.n_thermalize, cfg.measure_every)
                e_all.append(meas.energy)
                sx_all.append(meas.sigma_x)
                m_all.append(meas.abs_magnetization)
                inner = getattr(sampler, "classical", sampler)
                n_att += getattr(inner, "n_attempted", 0)
                n_acc += getattr(inner, "n_accepted", 0)
                if rules is not None:
                    monitors.append(
                        _posthoc_health(
                            rules,
                            {
                                "energy": meas.energy,
                                "sigma_x": meas.sigma_x,
                                "abs_magnetization": meas.abs_magnetization,
                            },
                            getattr(inner, "n_attempted", 0),
                            getattr(inner, "n_accepted", 0),
                            cfg.measure_every,
                            rank=chain_idx,
                        )
                    )
            energy = np.concatenate(e_all)
            sigma_x = np.concatenate(sx_all)
            abs_mag = np.concatenate(m_all)
            n_sweeps_run = n_chains * (cfg.n_sweeps + cfg.n_thermalize)
            result.runtime.update(n_attempted=n_att, n_accepted=n_acc)
        else:  # block layout over the virtual machine
            dtau = cfg.beta / cfg.n_slices
            import math

            k_space = dtau * cfg.j
            k_tau = -0.5 * math.log(math.tanh(dtau * cfg.gamma))
            if len(cfg.spatial_shape) == 1:
                lx, ly, ky = cfg.spatial_shape[0], 1, 0.0
            else:
                lx, ly = cfg.spatial_shape
                ky = k_space
            block_cfg = IsingBlockConfig(
                lx=lx,
                ly=ly,
                lt=cfg.n_slices,
                kx=k_space,
                ky=ky,
                kt=k_tau,
                n_sweeps=cfg.n_sweeps,
                n_thermalize=cfg.n_thermalize,
                measure_every=cfg.measure_every,
                sweep_seed=cfg.seed,
                overlap=layout.overlap,
                mode=kernel,
            )
            spmd = run_spmd(
                ising_block_program,
                layout.n_ranks,
                machine=MACHINES[layout.machine],
                seed=cfg.seed,
                args=(block_cfg, _checkpoint_config(cfg), rules),
                metrics=registry,
                spans=cfg.trace_out is not None,
                trace=cfg.trace_out is not None,
                backend=layout.backend,
            )
            out = spmd.values[0]
            bonds = out["bond_sums"]  # (n_meas, 3): x, y, t
            space_sum = bonds[:, 0] + (bonds[:, 1] if ky != 0.0 else 0.0)
            time_sum = bonds[:, 2]
            n_time_bonds = n_sites * cfg.n_slices
            energy = np.array(
                [
                    tfim_energy_from_bond_sums(
                        float(s), float(t), n_sites, cfg.n_slices, cfg.j,
                        cfg.gamma, dtau
                    )
                    for s, t in zip(space_sum, time_sum)
                ]
            )
            sigma_x = np.array(
                [
                    tfim_sigma_x_from_time_bonds(
                        float(t), n_time_bonds, cfg.gamma, dtau
                    )
                    for t in time_sum
                ]
            )
            abs_mag = np.abs(out["magnetization"])
            result.model_time = spmd.elapsed_model_time
            result.comm_fraction = spmd.comm_fraction()
            n_sweeps_run = cfg.n_sweeps + cfg.n_thermalize
            result.runtime.update(
                n_attempted=sum(v["n_attempted"] for v in spmd.values),
                n_accepted=sum(v["n_accepted"] for v in spmd.values),
                halo_bytes=spmd.total_bytes,
                halo_messages=spmd.total_messages,
                report=_report_summary(spmd.report),
            )

        self._finish_runtime(result, registry, n_sweeps_run, t0_wall)
        health = _collect_health(rules, result, monitors=monitors, spmd=spmd)
        _emit_observability(
            "tfim", cfg, params, registry, spmd=spmd, runtime=result.runtime,
            health=health,
        )

        result.estimates["energy"] = _estimate("energy", energy)
        result.estimates["energy_per_site"] = _estimate(
            "energy_per_site", energy / n_sites
        )
        result.estimates["sigma_x"] = _estimate("sigma_x", sigma_x)
        result.estimates["abs_magnetization"] = _estimate("abs_magnetization", abs_mag)
        result.add_series("energy", energy)
        result.add_series("sigma_x", sigma_x)
        result.add_series("abs_magnetization", abs_mag)
        return result


def _susceptibility_error(mag: np.ndarray, beta: float, n_sites: int) -> float:
    """Jackknife error of the fluctuation susceptibility."""
    from repro.stats.jackknife import jackknife

    if mag.size < 40:
        return 0.0
    _, err = jackknife(
        lambda m: beta * (np.mean(m**2) - np.mean(m) ** 2) / n_sites,
        mag,
        n_blocks=20,
    )
    return err
