"""Validated run configurations for the high-level API."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import kernels

__all__ = ["ParallelLayout", "XXZRunConfig", "XXZ2DRunConfig", "TfimRunConfig"]


@dataclass(frozen=True)
class ParallelLayout:
    """How a run maps onto the virtual machine.

    strategy:
        ``serial`` | ``strip`` | ``block`` | ``replica``.
    n_ranks:
        Logical processors.
    machine:
        Machine-model name from :data:`repro.vmp.MACHINES`.
    backend:
        Execution backend for the SPMD strategies (``strip``/``block``):
        ``thread`` (default; cooperative in-process scheduler), ``mp``
        (real OS processes), or ``mpi`` (real message passing via
        mpi4py; run the CLI under ``mpiexec -n <n_ranks>``).  All three
        produce bit-identical trajectories at the same seed.
    overlap:
        Run the SPMD sweep drivers with the five-stage halo-overlap
        pipeline (pack -> post -> update interior -> wait -> update
        boundary).  Trajectories stay bit-identical to the lockstep
        path; only the modeled timeline changes.
    kernel:
        Compiled-kernel backend for the checkerboard sweeps:
        ``auto`` (default; best available registry backend), a
        registered backend name (``numpy``/``numba``/``cupy``), or
        ``scalar`` for the per-move reference path.  Every registry
        backend produces the bit-identical trajectory; selection is
        resolved once at run start so an unavailable backend fails
        fast with a :class:`repro.kernels.KernelUnavailableError`.
    replicas:
        Number of independent strip replicas in a two-level ensemble x
        domain run.  With ``replicas > 1`` (``strip`` strategy only)
        the run uses ``replicas * n_ranks`` processors: each replica is
        a strip of ``n_ranks`` domain ranks, and the replica leaders
        pool statistics over an ensemble sub-communicator (see
        :mod:`repro.qmc.two_level`).
    """

    strategy: str = "serial"
    n_ranks: int = 1
    machine: str = "Ideal"
    backend: str = "thread"
    overlap: bool = False
    kernel: str = "auto"
    replicas: int = 1

    def __post_init__(self):
        if self.strategy not in ("serial", "strip", "block", "replica"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if self.strategy == "serial" and self.n_ranks != 1:
            raise ValueError("serial runs use exactly one rank")
        if self.backend not in ("thread", "mp", "mpi"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.backend != "thread" and self.strategy not in ("strip", "block"):
            raise ValueError(
                f"backend {self.backend!r} applies to the SPMD strategies "
                f"(strip/block); {self.strategy!r} runs in-process"
            )
        if self.overlap and self.strategy not in ("strip", "block"):
            raise ValueError(
                "halo overlap applies to the SPMD strategies (strip/block); "
                f"{self.strategy!r} has no halo to overlap"
            )
        if self.kernel not in ("auto", "scalar", "vectorized") and (
            self.kernel not in kernels.known_backends()
        ):
            raise ValueError(
                f"unknown kernel {self.kernel!r}; expected 'auto', 'scalar', "
                f"'vectorized', or a registered backend "
                f"({', '.join(kernels.known_backends())})"
            )
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.replicas > 1 and self.strategy != "strip":
            raise ValueError(
                "a two-level ensemble (replicas > 1) composes with the "
                f"'strip' strategy only, got {self.strategy!r}"
            )


def _validate_checkpoint_fields(cfg, supported_strategy: str | None) -> None:
    """Shared validation of the checkpoint_every/checkpoint_dir/resume trio.

    ``supported_strategy`` names the layout strategy whose driver
    implements distributed checkpointing (``None``: no driver of this
    config does).
    """
    wants = cfg.checkpoint_every > 0 or cfg.resume
    if cfg.checkpoint_every < 0:
        raise ValueError("checkpoint_every must be >= 0")
    if not wants:
        if cfg.checkpoint_dir is not None:
            raise ValueError(
                "checkpoint_dir given but neither checkpoint_every nor "
                "resume is set"
            )
        return
    if supported_strategy is None:
        raise ValueError(
            f"{type(cfg).__name__} runs do not support distributed "
            f"checkpointing (no domain-decomposed driver)"
        )
    if cfg.layout.strategy != supported_strategy:
        raise ValueError(
            f"distributed checkpointing needs the {supported_strategy!r} "
            f"layout, got {cfg.layout.strategy!r}"
        )
    if cfg.checkpoint_dir is None:
        raise ValueError("checkpointing/resume needs a checkpoint_dir")


def _validate_obs_fields(cfg, span_strategies: tuple[str, ...]) -> None:
    """Shared validation of the metrics_out/trace_out/obs_interval trio.

    ``span_strategies`` names the layout strategies whose drivers run
    under the SPMD scheduler and therefore can export phase-span
    traces; metrics/manifests work for every layout.
    """
    if cfg.obs_interval < 0:
        raise ValueError("obs_interval must be >= 0")
    if cfg.obs_interval > 0 and cfg.metrics_out is None:
        raise ValueError("obs_interval > 0 needs a metrics_out path")
    if cfg.trace_out is not None and cfg.layout.strategy not in span_strategies:
        supported = "/".join(span_strategies) or "(none)"
        raise ValueError(
            f"trace export needs an SPMD layout ({supported}), got "
            f"{cfg.layout.strategy!r}"
        )
    if cfg.trace_out is not None and cfg.layout.backend != "thread":
        raise ValueError(
            "trace export records per-event timelines inside the thread "
            "scheduler; it is not available for the mp/mpi backends "
            "(metrics_out and manifests work on every backend)"
        )


def _validate_health_fields(cfg) -> None:
    """Shared validation of the health/health_rules/events_out trio.

    Health works on every layout (SPMD drivers check in-loop, serial
    samplers stream the same estimators), so the only constraints are
    that the auxiliary knobs require the engine to be on.
    """
    if cfg.health_rules is not None and not cfg.health:
        raise ValueError("health_rules given but health is not enabled")
    if cfg.events_out is not None and not cfg.health:
        raise ValueError("events_out given but health is not enabled")


@dataclass(frozen=True)
class XXZRunConfig:
    """World-line run of the spin-1/2 XXZ chain."""

    n_sites: int
    beta: float
    jz: float = 1.0
    jxy: float = 1.0
    n_slices: int = 16
    periodic: bool = True
    n_sweeps: int = 2000
    n_thermalize: int = 200
    measure_every: int = 1
    seed: int = 0
    layout: ParallelLayout = field(default_factory=ParallelLayout)
    checkpoint_every: int = 0
    checkpoint_dir: str | None = None
    resume: bool = False
    metrics_out: str | None = None
    trace_out: str | None = None
    obs_interval: int = 0
    health: bool = False
    health_rules: str | None = None
    events_out: str | None = None

    def __post_init__(self):
        if self.beta <= 0:
            raise ValueError("beta must be positive")
        if self.n_slices % 2 or self.n_slices < 4:
            raise ValueError("n_slices must be even and >= 4")
        if self.n_sweeps < 1:
            raise ValueError("need at least one sweep")
        if self.layout.strategy == "block":
            raise ValueError("the chain world-line driver has no block layout")
        if self.layout.strategy == "strip":
            if self.n_sites % 4 or self.n_slices % 4:
                raise ValueError("strip layout needs L % 4 == 0 and n_slices % 4 == 0")
            if not self.periodic:
                raise ValueError("strip layout requires a periodic chain")
        _validate_checkpoint_fields(self, supported_strategy="strip")
        _validate_obs_fields(self, span_strategies=("strip",))
        _validate_health_fields(self)


@dataclass(frozen=True)
class XXZ2DRunConfig:
    """World-line run of the spin-1/2 XXZ model on the square lattice.

    Serial and replica layouts only: the 2-D sampler's segment moves
    have not been domain-decomposed (DESIGN.md lists this as future
    work; the 1-D strip driver demonstrates the technique).
    """

    lx: int
    ly: int
    beta: float
    jz: float = 1.0
    jxy: float = 1.0
    n_slices: int = 16
    n_sweeps: int = 1000
    n_thermalize: int = 100
    measure_every: int = 1
    seed: int = 0
    layout: ParallelLayout = field(default_factory=ParallelLayout)
    checkpoint_every: int = 0
    checkpoint_dir: str | None = None
    resume: bool = False
    metrics_out: str | None = None
    trace_out: str | None = None
    obs_interval: int = 0
    health: bool = False
    health_rules: str | None = None
    events_out: str | None = None

    def __post_init__(self):
        if self.beta <= 0:
            raise ValueError("beta must be positive")
        if self.n_slices % 4 or self.n_slices < 8:
            raise ValueError("n_slices must be a multiple of 4 and >= 8")
        if self.n_sweeps < 1:
            raise ValueError("need at least one sweep")
        if self.layout.strategy not in ("serial", "replica"):
            raise ValueError(
                "the 2-D world-line sampler supports serial and replica layouts"
            )
        _validate_checkpoint_fields(self, supported_strategy=None)
        _validate_obs_fields(self, span_strategies=())
        _validate_health_fields(self)


@dataclass(frozen=True)
class TfimRunConfig:
    """Transverse-field Ising run via the classical mapping."""

    spatial_shape: tuple[int, ...]
    beta: float
    j: float = 1.0
    gamma: float = 1.0
    n_slices: int = 16
    n_sweeps: int = 2000
    n_thermalize: int = 200
    measure_every: int = 1
    seed: int = 0
    layout: ParallelLayout = field(default_factory=ParallelLayout)
    checkpoint_every: int = 0
    checkpoint_dir: str | None = None
    resume: bool = False
    metrics_out: str | None = None
    trace_out: str | None = None
    obs_interval: int = 0
    health: bool = False
    health_rules: str | None = None
    events_out: str | None = None

    def __post_init__(self):
        if len(self.spatial_shape) not in (1, 2):
            raise ValueError("TFIM runs support chains and square lattices")
        if any(s % 2 or s < 2 for s in self.spatial_shape):
            raise ValueError("spatial extents must be even and >= 2")
        if self.beta <= 0 or self.gamma <= 0:
            raise ValueError("need beta > 0 and gamma > 0")
        if self.n_slices % 2 or self.n_slices < 2:
            raise ValueError("n_slices must be even and >= 2")
        if self.layout.strategy == "strip":
            raise ValueError("TFIM uses 'block' (or serial/replica) layouts")
        _validate_checkpoint_fields(self, supported_strategy="block")
        _validate_obs_fields(self, span_strategies=("block",))
        _validate_health_fields(self)
