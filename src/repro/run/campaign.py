"""Campaign service layer: sweep-spec-driven multi-run scheduling.

Weigel's first tier of Monte Carlo parallelism -- and the production
reality of every QMC group -- is the embarrassingly parallel *outer*
loop: many independent runs over a parameter grid, farmed out to
whatever processors are free, restarted after crashes, and never
recomputed once finished.  This module composes the primitives built by
the earlier PRs (run manifests with ``config_hash``, per-rank
checkpoint bundles, JSONL metrics, health events, the ``repro report``
dashboard) into that serving layer:

* :class:`CampaignSpec` -- a validated sweep specification, normally
  loaded from a TOML file (:func:`load_campaign_spec`; a small built-in
  parser covers Python 3.10 where :mod:`tomllib` is absent, and
  ``.json`` specs are accepted unchanged).  ``[base]`` holds the run
  parameters shared by every run, ``[sweep]`` maps field names to value
  lists; their cartesian product is the campaign grid.
* :func:`expand_grid` -- the grid as a list of :class:`CampaignRun`
  records, each with a stable ``run_id``, its merged parameter dict,
  and its **cache key**: :func:`repro.obs.manifest.config_hash` over
  ``{"kind": ..., "params": ...}``.  The key is a pure function of the
  spec contents, so it is stable across process restarts and machines.
* :func:`run_campaign` -- the async scheduler.  Runs fan out across a
  bounded worker pool of backend OS processes (one ``python -m repro
  run-<kind> ...`` per run), with a per-run wall-clock timeout,
  retry-with-backoff on transient failures (a surfaced
  :class:`~repro.vmp.faults.RankFailure`, a timeout, or any non-config
  crash), and a ``fail-fast`` | ``keep-going`` policy.  Completed runs
  write an atomic ``campaign_run.json`` status document keyed by the
  cache key; on ``resume=True`` those runs are **cache hits** and are
  skipped, interrupted checkpointed runs restart from their bundles,
  and a stale status/checkpoint (cache key mismatch after a spec edit)
  is rejected and the run re-executed from scratch.

Every run directory contains the full artifact set the rest of the
stack already understands (``result.json``/``result.npz``,
``metrics.jsonl``, ``manifest.json``), so ``repro report <campaign
dir>`` renders the whole campaign; the campaign itself adds a
``campaign.json`` manifest with per-run statuses and the campaign
counters (completed / cached / retried / failed, aggregate sweeps/s),
which also flow through a :class:`repro.obs.MetricsRegistry`.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import shutil
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Awaitable, Callable, Mapping, Sequence

from repro.obs.manifest import config_hash
from repro.vmp.faults import RankFailure

__all__ = [
    "CAMPAIGN_VERSION",
    "CampaignSpec",
    "CampaignRun",
    "RunAttempt",
    "RunOutcome",
    "CampaignResult",
    "load_campaign_spec",
    "parse_spec_dict",
    "expand_grid",
    "run_campaign",
]

#: Schema version stamped on ``campaign.json`` and ``campaign_run.json``.
CAMPAIGN_VERSION = 1

#: CLI exit code the run commands use for configuration errors
#: (ValueError / unknown kernel); such failures are permanent -- no
#: retry can fix a bad parameter.
_CONFIG_ERROR_EXIT = 2

_KINDS = ("xxz", "xxz2d", "tfim")

#: Spec field -> CLI flag, shared by every kind.
_COMMON_FLAGS = {
    "beta": "--beta",
    "n_slices": "--slices",
    "n_sweeps": "--sweeps",
    "n_thermalize": "--thermalize",
    "seed": "--seed",
    "strategy": "--strategy",
    "ranks": "--ranks",
    "machine": "--machine",
    "backend": "--backend",
    "kernel": "--kernel",
    "replicas": "--replicas",
}

#: Boolean spec fields that map to store-true CLI flags.
_COMMON_BOOL_FLAGS = {"overlap": "--overlap"}

#: Kind-specific spec field -> CLI flag.
_KIND_FLAGS = {
    "xxz": {"n_sites": "--sites", "jz": "--jz", "jxy": "--jxy"},
    "xxz2d": {"lx": "--lx", "ly": "--ly", "jz": "--jz", "jxy": "--jxy"},
    "tfim": {"shape": "--shape", "j": "--j", "gamma": "--gamma"},
}

#: Kind-specific boolean fields (value False emits the flag).
_KIND_FALSE_FLAGS = {"xxz": {"periodic": "--open-chain"}}

#: Fields every run of a kind must end up with after base+sweep merge.
_REQUIRED_FIELDS = {
    "xxz": ("n_sites", "beta"),
    "xxz2d": ("lx", "ly", "beta"),
    "tfim": ("shape", "beta"),
}

#: ``checkpoint_every`` is handled out of band (it also needs a
#: per-run ``--checkpoint-dir``), so it is allowed but has no flag here.
_SPECIAL_FIELDS = ("checkpoint_every",)


# ======================================================================
# spec parsing
# ======================================================================


def _parse_minimal_toml(text: str) -> dict:
    """Parse the TOML subset campaign specs use (3.10 fallback).

    Supported: one level of ``[section]`` tables; ``key = value`` with
    string (single/double quoted), integer, float, boolean, and
    single-line array values; ``#`` comments.  Anything fancier raises
    with a pointer at the stdlib parser.
    """
    doc: dict[str, Any] = {}
    section = doc
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_toml_comment(raw).strip()
        if not line:
            continue
        if line.startswith("["):
            if not line.endswith("]") or line.startswith("[["):
                raise ValueError(
                    f"spec line {lineno}: unsupported table header {line!r} "
                    f"(the built-in TOML subset has single-level tables only)"
                )
            name = line[1:-1].strip()
            section = doc.setdefault(name, {})
            continue
        key, sep, value = line.partition("=")
        if not sep:
            raise ValueError(f"spec line {lineno}: expected 'key = value'")
        section[key.strip().strip('"').strip("'")] = _parse_toml_value(
            value.strip(), lineno
        )
    return doc


def _strip_toml_comment(line: str) -> str:
    """Drop a ``#`` comment that is not inside a quoted string."""
    quote = None
    for i, ch in enumerate(line):
        if quote is None and ch in "\"'":
            quote = ch
        elif quote == ch:
            quote = None
        elif quote is None and ch == "#":
            return line[:i]
    return line


def _parse_toml_value(token: str, lineno: int):
    if not token:
        raise ValueError(f"spec line {lineno}: empty value")
    if token.startswith("[") and token.endswith("]"):
        inner = token[1:-1].strip()
        if not inner:
            return []
        return [
            _parse_toml_value(part.strip(), lineno)
            for part in _split_toml_array(inner)
        ]
    if token[0] in "\"'":
        if len(token) < 2 or token[-1] != token[0]:
            raise ValueError(f"spec line {lineno}: unterminated string {token!r}")
        return token[1:-1]
    if token == "true":
        return True
    if token == "false":
        return False
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        raise ValueError(
            f"spec line {lineno}: cannot parse value {token!r} (the "
            f"built-in TOML subset covers strings, numbers, booleans and "
            f"single-line arrays; install Python >= 3.11 for full TOML)"
        ) from None


def _split_toml_array(inner: str) -> list[str]:
    parts, depth, quote, start = [], 0, None, 0
    for i, ch in enumerate(inner):
        if quote is not None:
            if ch == quote:
                quote = None
        elif ch in "\"'":
            quote = ch
        elif ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(inner[start:i])
            start = i + 1
    parts.append(inner[start:])
    return [p for p in parts if p.strip()]


def _load_toml(path: Path) -> dict:
    text = path.read_text()
    try:
        import tomllib
    except ImportError:  # Python 3.10: stdlib tomllib landed in 3.11
        return _parse_minimal_toml(text)
    return tomllib.loads(text)


@dataclass(frozen=True)
class CampaignSpec:
    """A validated campaign: shared run parameters plus sweep axes.

    ``base`` maps spec fields to scalar values shared by every run;
    ``sweep`` maps spec fields to value lists whose cartesian product
    (in declaration order) defines the grid.  A field may appear in
    either, not both.
    """

    kind: str
    name: str = "campaign"
    base: Mapping[str, Any] = field(default_factory=dict)
    sweep: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    jobs: int = 2
    timeout: float = 600.0
    retries: int = 2
    backoff: float = 0.5
    policy: str = "keep-going"
    output_dir: str | None = None

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown campaign kind {self.kind!r}; expected one of "
                f"{', '.join(_KINDS)}"
            )
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.timeout < 0:
            raise ValueError("timeout must be >= 0 (0: no per-run timeout)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")
        if self.policy not in ("fail-fast", "keep-going"):
            raise ValueError(
                f"unknown policy {self.policy!r}; expected 'fail-fast' or "
                f"'keep-going'"
            )
        allowed = self.allowed_fields(self.kind)
        for source, mapping in (("base", self.base), ("sweep", self.sweep)):
            for key in mapping:
                if key not in allowed:
                    raise ValueError(
                        f"[{source}] field {key!r} is not a {self.kind} run "
                        f"parameter; allowed: {', '.join(sorted(allowed))}"
                    )
        for key, values in self.sweep.items():
            if key in self.base:
                raise ValueError(
                    f"field {key!r} appears in both [base] and [sweep]"
                )
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(
                    f"[sweep] field {key!r} must be a non-empty value list"
                )
        present = set(self.base) | set(self.sweep)
        missing = [f for f in _REQUIRED_FIELDS[self.kind] if f not in present]
        if missing:
            raise ValueError(
                f"{self.kind} campaign is missing required field(s): "
                f"{', '.join(missing)}"
            )

    @staticmethod
    def allowed_fields(kind: str) -> set[str]:
        return (
            set(_COMMON_FLAGS)
            | set(_COMMON_BOOL_FLAGS)
            | set(_KIND_FLAGS[kind])
            | set(_KIND_FALSE_FLAGS.get(kind, {}))
            | set(_SPECIAL_FIELDS)
        )

    @property
    def n_runs(self) -> int:
        n = 1
        for values in self.sweep.values():
            n *= len(values)
        return n


def parse_spec_dict(doc: Mapping[str, Any], name_hint: str = "campaign"
                    ) -> CampaignSpec:
    """Build a :class:`CampaignSpec` from a parsed spec document."""
    if "campaign" not in doc:
        raise ValueError("spec has no [campaign] table")
    head = dict(doc["campaign"])
    kind = head.pop("kind", None)
    if kind is None:
        raise ValueError("[campaign] table needs a 'kind' (xxz/xxz2d/tfim)")
    known = {"name", "jobs", "timeout", "retries", "backoff", "policy",
             "output_dir"}
    unknown = set(head) - known
    if unknown:
        raise ValueError(
            f"unknown [campaign] key(s): {', '.join(sorted(unknown))}; "
            f"allowed: kind, {', '.join(sorted(known))}"
        )
    extra_tables = set(doc) - {"campaign", "base", "sweep"}
    if extra_tables:
        raise ValueError(
            f"unknown spec table(s): {', '.join(sorted(extra_tables))}; "
            f"expected [campaign], [base], [sweep]"
        )
    return CampaignSpec(
        kind=str(kind),
        name=str(head.get("name", name_hint)),
        base=dict(doc.get("base", {})),
        sweep={k: list(v) for k, v in dict(doc.get("sweep", {})).items()},
        jobs=int(head.get("jobs", 2)),
        timeout=float(head.get("timeout", 600.0)),
        retries=int(head.get("retries", 2)),
        backoff=float(head.get("backoff", 0.5)),
        policy=str(head.get("policy", "keep-going")),
        output_dir=head.get("output_dir"),
    )


def load_campaign_spec(path: str | Path) -> CampaignSpec:
    """Load a campaign spec from a ``.toml`` (or ``.json``) file."""
    path = Path(path)
    if not path.is_file():
        raise ValueError(f"campaign spec {path} does not exist")
    if path.suffix == ".json":
        doc = json.loads(path.read_text())
    else:
        doc = _load_toml(path)
    return parse_spec_dict(doc, name_hint=path.stem)


# ======================================================================
# grid expansion + cache keys
# ======================================================================


@dataclass(frozen=True)
class CampaignRun:
    """One cell of the campaign grid."""

    run_id: str
    index: int
    kind: str
    params: Mapping[str, Any]  # merged base + swept values
    swept: Mapping[str, Any]  # just this run's swept values
    cache_key: str


def _slug(value: Any) -> str:
    s = str(value)
    return "".join(ch if (ch.isalnum() or ch in ".-") else "_" for ch in s)


def run_cache_key(kind: str, params: Mapping[str, Any]) -> str:
    """The campaign result-cache key of one run.

    This is the manifest machinery's :func:`config_hash` (sha256 over
    canonical JSON) applied to the run's *spec-level* identity -- its
    kind plus every parameter the spec sets.  Fields the spec does not
    mention fall to the CLI defaults and deliberately do not enter the
    key: adding a default explicitly to a spec *does* change the key,
    which errs on the side of recomputing rather than serving a stale
    result.
    """
    return config_hash({"kind": kind, "params": dict(params)})


def expand_grid(spec: CampaignSpec) -> list[CampaignRun]:
    """Expand the sweep axes into the ordered list of campaign runs."""
    axes = list(spec.sweep.items())
    names = [name for name, _values in axes]
    runs: list[CampaignRun] = []
    for index, combo in enumerate(
        itertools.product(*[values for _name, values in axes])
    ):
        swept = dict(zip(names, combo))
        params = {**spec.base, **swept}
        label = "-".join(f"{k}{_slug(v)}" for k, v in swept.items())
        run_id = f"r{index:04d}" + (f"-{label}" if label else "")
        runs.append(
            CampaignRun(
                run_id=run_id,
                index=index,
                kind=spec.kind,
                params=params,
                swept=swept,
                cache_key=run_cache_key(spec.kind, params),
            )
        )
    return runs


def build_run_argv(run: CampaignRun, run_dir: Path, resume: bool = False
                   ) -> list[str]:
    """The backend-process command line of one run.

    Every run writes the standard artifact set into its own directory:
    ``result.json``/``.npz`` (``--output``), ``metrics.jsonl`` +
    ``manifest.json`` (``--metrics-out``).  ``checkpoint_every > 0``
    adds per-rank checkpoint bundles under ``checkpoints/``; ``resume``
    restarts from them.
    """
    argv = [sys.executable, "-m", "repro", f"run-{run.kind}"]
    flags = {**_COMMON_FLAGS, **_KIND_FLAGS[run.kind]}
    bools = dict(_COMMON_BOOL_FLAGS)
    false_flags = _KIND_FALSE_FLAGS.get(run.kind, {})
    checkpoint_every = 0
    for name, value in run.params.items():
        if name == "checkpoint_every":
            checkpoint_every = int(value)
        elif name in bools:
            if value:
                argv.append(bools[name])
        elif name in false_flags:
            if not value:
                argv.append(false_flags[name])
        else:
            argv += [flags[name], str(value)]
    argv += ["--output", str(run_dir / "result")]
    argv += ["--metrics-out", str(run_dir / "metrics.jsonl")]
    if checkpoint_every > 0:
        argv += ["--checkpoint-every", str(checkpoint_every),
                 "--checkpoint-dir", str(run_dir / "checkpoints")]
        if resume:
            argv.append("--resume")
    argv.append("--quiet")
    return argv


# ======================================================================
# per-run status documents (the result cache)
# ======================================================================


def _status_path(run_dir: Path) -> Path:
    return run_dir / "campaign_run.json"


def _write_json_atomic(path: Path, doc: dict) -> None:
    """Write JSON via tmp+rename so a mid-flight kill cannot corrupt it."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True, default=str) + "\n")
    os.replace(tmp, path)


def _read_status(run_dir: Path) -> dict | None:
    path = _status_path(run_dir)
    if not path.is_file():
        return None
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return doc if isinstance(doc, dict) else None


def _run_manifest(run_dir: Path) -> dict | None:
    path = run_dir / "manifest.json"
    if not path.is_file():
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def _is_cache_hit(run: CampaignRun, run_dir: Path) -> bool:
    """Whether a prior completed run can be served from the cache.

    A hit needs all of: a completed status document whose cache key
    matches the fresh spec's key, the run's own ``manifest.json`` with
    the ``config_hash`` recorded at completion (a run whose artifacts
    were regenerated by different code/config is stale), and the
    ``result.json`` payload itself.
    """
    status = _read_status(run_dir)
    if status is None or status.get("status") != "completed":
        return False
    if status.get("cache_key") != run.cache_key:
        return False
    if not (run_dir / "result.json").is_file():
        return False
    manifest = _run_manifest(run_dir)
    if manifest is None:
        return False
    recorded = status.get("manifest_config_hash")
    return recorded is not None and manifest.get("config_hash") == recorded


def _prepare_run_dir(run: CampaignRun, run_dir: Path, resume: bool
                     ) -> tuple[bool, bool]:
    """Classify one run against its directory: (cache_hit, resume_flag).

    Without ``resume`` any previous artifacts are cleared -- a fresh
    campaign invocation recomputes everything.  With it, a completed
    matching run is a cache hit; an interrupted matching run restarts
    from its checkpoint bundles when it has any; and a *stale* status
    or checkpoint set (cache-key mismatch: the spec changed under the
    directory) is rejected and purged so the run re-executes cleanly.
    """
    status = _read_status(run_dir)
    if not resume:
        if run_dir.exists():
            shutil.rmtree(run_dir)
        return False, False
    if _is_cache_hit(run, run_dir):
        return True, False
    if status is not None and status.get("cache_key") != run.cache_key:
        # Stale: written by a different configuration.  Everything in
        # the directory (checkpoints included) describes another run.
        shutil.rmtree(run_dir)
        return False, False
    checkpoints = run_dir / "checkpoints"
    has_bundles = checkpoints.is_dir() and any(checkpoints.glob("rank*.npz"))
    wants_checkpointing = int(run.params.get("checkpoint_every", 0) or 0) > 0
    return False, bool(has_bundles and wants_checkpointing)


# ======================================================================
# the async scheduler
# ======================================================================


@dataclass
class RunAttempt:
    """What one execution attempt of one run produced."""

    returncode: int
    wall_seconds: float
    stderr_tail: str = ""
    transient: bool | None = None  # None: classify from code/stderr


@dataclass
class RunOutcome:
    """Final state of one run after scheduling."""

    run: CampaignRun
    status: str  # "completed" | "cached" | "failed" | "skipped"
    cached: bool = False
    attempts: int = 0
    wall_seconds: float = 0.0
    sweeps_per_second: float = 0.0
    n_sweeps: float = 0.0
    resumed_from_checkpoint: bool = False
    error: str | None = None


@dataclass
class CampaignResult:
    """Outcome of one campaign invocation."""

    spec: CampaignSpec
    out_dir: Path
    outcomes: list[RunOutcome]
    wall_seconds: float
    counters: dict[str, int]
    aggregate: dict[str, float]
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        return not self.interrupted and all(
            o.status in ("completed", "cached") for o in self.outcomes
        )

    def summary_table(self) -> str:
        from repro.util.tables import Table

        t = Table(
            f"campaign {self.spec.name!r}: "
            f"{self.counters['completed']} fresh, "
            f"{self.counters['cached']} cached, "
            f"{self.counters['failed']} failed, "
            f"{self.counters['retried']} retries "
            f"({self.wall_seconds:.2f} s wall, "
            f"{self.aggregate['sweeps_per_second']:.1f} sweeps/s aggregate)",
            ["run", "status", "attempts", "wall[s]", "sweeps/s"],
        )
        for o in self.outcomes:
            t.add_row(
                [
                    o.run.run_id,
                    o.status + (" (resumed)" if o.resumed_from_checkpoint else ""),
                    o.attempts,
                    round(o.wall_seconds, 3),
                    round(o.sweeps_per_second, 1),
                ]
            )
        return t.render()


Executor = Callable[[CampaignRun, Sequence[str], int], Awaitable[RunAttempt]]


def subprocess_executor(timeout: float) -> Executor:
    """The default executor: one backend OS process per attempt.

    The child is its own process group leader, so cancelling the
    campaign (``KeyboardInterrupt`` / a ``fail-fast`` abort) can kill
    the whole rank tree a run may have spawned, not just the CLI
    front process.
    """

    # The child must resolve ``import repro`` exactly as this process
    # did, installed or not: prepend our package's parent directory to
    # its PYTHONPATH.
    package_root = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )

    async def _execute(run: CampaignRun, argv: Sequence[str], attempt: int
                       ) -> RunAttempt:
        t0 = time.perf_counter()
        proc = await asyncio.create_subprocess_exec(
            *argv,
            stdout=asyncio.subprocess.DEVNULL,
            stderr=asyncio.subprocess.PIPE,
            start_new_session=True,
            env=env,
        )
        try:
            if timeout > 0:
                _out, err = await asyncio.wait_for(
                    proc.communicate(), timeout=timeout
                )
            else:
                _out, err = await proc.communicate()
        except asyncio.TimeoutError:
            _kill_process_tree(proc)
            await proc.communicate()
            return RunAttempt(
                returncode=-1,
                wall_seconds=time.perf_counter() - t0,
                stderr_tail=f"timed out after {timeout:.1f} s",
                transient=True,
            )
        except asyncio.CancelledError:
            _kill_process_tree(proc)
            await proc.communicate()
            raise
        tail = err.decode(errors="replace")[-2000:] if err else ""
        return RunAttempt(
            returncode=proc.returncode,
            wall_seconds=time.perf_counter() - t0,
            stderr_tail=tail,
        )

    return _execute


def _kill_process_tree(proc) -> None:
    try:
        os.killpg(proc.pid, 9)
    except (ProcessLookupError, PermissionError, OSError):
        try:
            proc.kill()
        except ProcessLookupError:
            pass


def _is_transient(attempt: RunAttempt) -> bool:
    """Whether an attempt's failure is worth retrying.

    Config errors (exit 2: a bad parameter will fail identically every
    time) are permanent; everything else -- a surfaced
    :class:`RankFailure`, a timeout, a crash/signal -- is transient,
    matching the farm-style production assumption that node loss is
    routine and configs are vetted.
    """
    if attempt.transient is not None:
        return attempt.transient
    return attempt.returncode != _CONFIG_ERROR_EXIT


async def _run_one(
    run: CampaignRun,
    run_dir: Path,
    spec: CampaignSpec,
    resume_from_checkpoint: bool,
    executor: Executor,
) -> RunOutcome:
    """Execute one run to completion, retrying transient failures."""
    outcome = RunOutcome(run=run, status="failed")
    t0 = time.perf_counter()
    for attempt_no in range(spec.retries + 1):
        run_dir.mkdir(parents=True, exist_ok=True)
        argv = build_run_argv(run, run_dir, resume=resume_from_checkpoint)
        _write_json_atomic(
            _status_path(run_dir),
            {
                "campaign_run_version": CAMPAIGN_VERSION,
                "run_id": run.run_id,
                "cache_key": run.cache_key,
                "status": "running",
                "attempt": attempt_no + 1,
                "params": dict(run.params),
                "argv": list(argv),
            },
        )
        outcome.attempts = attempt_no + 1
        try:
            attempt = await executor(run, argv, attempt_no)
        except RankFailure as exc:
            # In-process executors surface the structured error
            # directly; treat it exactly like a subprocess that died
            # with a RankFailure on stderr.
            attempt = RunAttempt(
                returncode=1,
                wall_seconds=time.perf_counter() - t0,
                stderr_tail=f"RankFailure: {exc}",
                transient=True,
            )
        if attempt.returncode == 0:
            manifest = _run_manifest(run_dir)
            runtime = (manifest or {}).get("runtime", {})
            outcome.status = "completed"
            outcome.wall_seconds = time.perf_counter() - t0
            outcome.sweeps_per_second = float(
                runtime.get("sweeps_per_second", 0.0) or 0.0
            )
            outcome.n_sweeps = float(runtime.get("n_sweeps", 0.0) or 0.0)
            outcome.resumed_from_checkpoint = resume_from_checkpoint
            _write_json_atomic(
                _status_path(run_dir),
                {
                    "campaign_run_version": CAMPAIGN_VERSION,
                    "run_id": run.run_id,
                    "cache_key": run.cache_key,
                    "status": "completed",
                    "attempts": outcome.attempts,
                    "wall_seconds": outcome.wall_seconds,
                    "sweeps_per_second": outcome.sweeps_per_second,
                    "n_sweeps": outcome.n_sweeps,
                    "resumed_from_checkpoint": resume_from_checkpoint,
                    "manifest_config_hash": (
                        (manifest or {}).get("config_hash")
                    ),
                    "params": dict(run.params),
                },
            )
            return outcome
        outcome.error = (
            f"exit {attempt.returncode}"
            + (f": {attempt.stderr_tail.strip().splitlines()[-1]}"
               if attempt.stderr_tail.strip() else "")
        )
        if not _is_transient(attempt) or attempt_no == spec.retries:
            break
        # A failed attempt may have left partial checkpoints behind; a
        # matching cache key means they are still this configuration's,
        # so the retry may resume from them when checkpointing is on.
        checkpoints = run_dir / "checkpoints"
        resume_from_checkpoint = bool(
            int(run.params.get("checkpoint_every", 0) or 0) > 0
            and checkpoints.is_dir()
            and any(checkpoints.glob("rank*.npz"))
        )
        await asyncio.sleep(spec.backoff * (2 ** attempt_no))
    outcome.wall_seconds = time.perf_counter() - t0
    _write_json_atomic(
        _status_path(run_dir),
        {
            "campaign_run_version": CAMPAIGN_VERSION,
            "run_id": run.run_id,
            "cache_key": run.cache_key,
            "status": "failed",
            "attempts": outcome.attempts,
            "error": outcome.error,
            "params": dict(run.params),
        },
    )
    return outcome


async def _run_campaign_async(
    spec: CampaignSpec,
    out_dir: Path,
    resume: bool,
    executor: Executor | None,
    progress: Callable[[str], None] | None,
) -> CampaignResult:
    runs = expand_grid(spec)
    runs_root = out_dir / "runs"
    if executor is None:
        executor = subprocess_executor(spec.timeout)
    say = progress or (lambda _msg: None)

    outcomes: dict[int, RunOutcome] = {}
    retried = 0
    abort = asyncio.Event()
    semaphore = asyncio.Semaphore(spec.jobs)
    t0 = time.perf_counter()

    async def _task(run: CampaignRun) -> None:
        nonlocal retried
        run_dir = runs_root / run.run_id
        cached, resume_ckpt = _prepare_run_dir(run, run_dir, resume)
        if cached:
            status = _read_status(run_dir) or {}
            outcomes[run.index] = RunOutcome(
                run=run,
                status="cached",
                cached=True,
                attempts=0,
                wall_seconds=0.0,
                sweeps_per_second=float(
                    status.get("sweeps_per_second", 0.0) or 0.0
                ),
                n_sweeps=0.0,  # nothing recomputed
            )
            say(f"[campaign] {run.run_id}: cache hit "
                f"({run.cache_key[:12]})")
            return
        async with semaphore:
            if abort.is_set():
                outcomes[run.index] = RunOutcome(run=run, status="skipped")
                return
            say(f"[campaign] {run.run_id}: running"
                + (" (resuming from checkpoints)" if resume_ckpt else ""))
            outcome = await _run_one(run, run_dir, spec, resume_ckpt, executor)
            outcomes[run.index] = outcome
            retried += max(0, outcome.attempts - 1)
            if outcome.status == "failed":
                say(f"[campaign] {run.run_id}: FAILED after "
                    f"{outcome.attempts} attempt(s) ({outcome.error})")
                if spec.policy == "fail-fast":
                    abort.set()
            else:
                say(f"[campaign] {run.run_id}: {outcome.status} in "
                    f"{outcome.wall_seconds:.2f} s")

    tasks = [asyncio.create_task(_task(run)) for run in runs]
    try:
        await asyncio.gather(*tasks)
        interrupted = False
    except asyncio.CancelledError:
        for t in tasks:
            t.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        interrupted = True
    wall = time.perf_counter() - t0

    ordered = [
        outcomes.get(run.index, RunOutcome(run=run, status="skipped"))
        for run in runs
    ]
    counters = {
        "completed": sum(1 for o in ordered if o.status == "completed"),
        "cached": sum(1 for o in ordered if o.status == "cached"),
        "failed": sum(1 for o in ordered if o.status == "failed"),
        "skipped": sum(1 for o in ordered if o.status == "skipped"),
        "retried": retried,
    }
    total_sweeps = sum(o.n_sweeps for o in ordered)
    aggregate = {
        "wall_seconds": wall,
        "total_sweeps": total_sweeps,
        "sweeps_per_second": total_sweeps / wall if wall > 0 else 0.0,
    }
    result = CampaignResult(
        spec=spec,
        out_dir=out_dir,
        outcomes=ordered,
        wall_seconds=wall,
        counters=counters,
        aggregate=aggregate,
        interrupted=interrupted,
    )
    _write_campaign_manifest(result)
    return result


def _campaign_metrics(result: CampaignResult) -> dict:
    """Fold the campaign counters through a MetricsRegistry summary.

    The campaign is "rank 0" of its own one-node registry, so the
    counters surface with the same summary schema every other telemetry
    consumer in :mod:`repro.obs` understands.
    """
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry(namespace="campaign")
    scope = registry.scope(0)
    for name, value in result.counters.items():
        scope.count(f"campaign.runs_{name}", value)
    scope.count("campaign.sweeps", result.aggregate["total_sweeps"])
    scope.set_gauge(
        "campaign.sweeps_per_second", result.aggregate["sweeps_per_second"]
    )
    scope.set_gauge("campaign.wall_seconds", result.wall_seconds)
    return {str(r): v for r, v in registry.summary().items()}


def _write_campaign_manifest(result: CampaignResult) -> Path:
    from datetime import datetime, timezone

    spec = result.spec
    doc = {
        "campaign_version": CAMPAIGN_VERSION,
        "name": spec.name,
        "kind": spec.kind,
        "n_runs": len(result.outcomes),
        "jobs": spec.jobs,
        "policy": spec.policy,
        "base": dict(spec.base),
        "sweep": {k: list(v) for k, v in spec.sweep.items()},
        "counters": dict(result.counters),
        "aggregate": dict(result.aggregate),
        "interrupted": result.interrupted,
        "metrics": _campaign_metrics(result),
        "runs": [
            {
                "run_id": o.run.run_id,
                "cache_key": o.run.cache_key,
                "status": o.status,
                "cached": o.cached,
                "attempts": o.attempts,
                "wall_seconds": o.wall_seconds,
                "sweeps_per_second": o.sweeps_per_second,
                "resumed_from_checkpoint": o.resumed_from_checkpoint,
                "error": o.error,
                "swept": dict(o.run.swept),
                "dir": str(Path("runs") / o.run.run_id),
                "manifest": str(Path("runs") / o.run.run_id / "manifest.json"),
            }
            for o in result.outcomes
        ],
        "written_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    path = result.out_dir / "campaign.json"
    _write_json_atomic(path, doc)
    return path


def run_campaign(
    spec: CampaignSpec,
    out_dir: str | Path | None = None,
    jobs: int | None = None,
    resume: bool = False,
    timeout: float | None = None,
    retries: int | None = None,
    policy: str | None = None,
    executor: Executor | None = None,
    progress: Callable[[str], None] | None = None,
) -> CampaignResult:
    """Run (or resume) a campaign; returns the :class:`CampaignResult`.

    Keyword overrides (``jobs``/``timeout``/``retries``/``policy``)
    replace the spec's values for this invocation only -- they do not
    enter any cache key.  ``executor`` replaces the backend-process
    launcher (tests inject failures through it); ``progress`` receives
    one human-readable line per scheduling event.
    """
    import dataclasses

    overrides = {}
    if jobs is not None:
        overrides["jobs"] = jobs
    if timeout is not None:
        overrides["timeout"] = timeout
    if retries is not None:
        overrides["retries"] = retries
    if policy is not None:
        overrides["policy"] = policy
    if overrides:
        spec = dataclasses.replace(spec, **overrides)
    if out_dir is None:
        out_dir = spec.output_dir or f"{spec.name}_campaign"
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    return asyncio.run(
        _run_campaign_async(spec, out_dir, resume, executor, progress)
    )
