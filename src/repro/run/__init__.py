"""High-level orchestration: configs, the Simulation facade, result I/O."""

from repro.run.campaign import (
    CampaignResult,
    CampaignSpec,
    expand_grid,
    load_campaign_spec,
    run_campaign,
)
from repro.run.checkpoint import load_checkpoint, save_checkpoint
from repro.run.config import (
    ParallelLayout,
    TfimRunConfig,
    XXZ2DRunConfig,
    XXZRunConfig,
)
from repro.run.results import ObservableEstimate, RunResult, load_result, save_result
from repro.run.simulation import Simulation

__all__ = [
    "ParallelLayout",
    "TfimRunConfig",
    "XXZRunConfig",
    "XXZ2DRunConfig",
    "Simulation",
    "ObservableEstimate",
    "RunResult",
    "save_result",
    "load_result",
    "save_checkpoint",
    "load_checkpoint",
    "CampaignSpec",
    "CampaignResult",
    "expand_grid",
    "load_campaign_spec",
    "run_campaign",
]
