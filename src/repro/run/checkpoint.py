"""Sampler checkpointing: exact resume of a Markov chain.

Long QMC runs on space-shared 1993 machines checkpointed religiously;
this module provides the same facility.  A checkpoint captures the
complete sampler state -- the spin configuration, the random
generator's internal state, and the attempt/accept counters -- so that
``save`` + ``load`` + ``run`` reproduces the uninterrupted trajectory
**bit for bit** (asserted by the test suite).

Usage::

    save_checkpoint(sampler, "run_a.ckpt.npz")
    ...
    fresh = WorldlineChainQmc(model, beta, n_slices)   # same geometry
    load_checkpoint(fresh, "run_a.ckpt.npz")

Works with any sampler exposing ``spins`` (ndarray), ``stream``
(:class:`~repro.util.rng.RankStream`) and the ``n_attempted`` /
``n_accepted`` counters -- i.e. every sampler in :mod:`repro.qmc`.
The TFIM wrapper delegates to its inner classical sampler.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path

import numpy as np

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1


def _resolve(sampler):
    """The object actually carrying spins/stream (unwraps TfimQmc)."""
    if hasattr(sampler, "classical"):  # TfimQmc delegates
        return sampler.classical
    return sampler


def save_checkpoint(sampler, path: str | Path) -> None:
    """Write the sampler's complete resumable state to ``path`` (.npz)."""
    target = _resolve(sampler)
    path = Path(path)
    meta = {
        "version": _FORMAT_VERSION,
        "sampler_class": type(target).__name__,
        "shape": list(target.spins.shape),
        "n_attempted": int(getattr(target, "n_attempted", 0)),
        "n_accepted": int(getattr(target, "n_accepted", 0)),
    }
    rng_state = pickle.dumps(target.stream.generator.bit_generator.state)
    np.savez_compressed(
        path,
        spins=target.spins,
        rng_state=np.frombuffer(rng_state, dtype=np.uint8),
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    )


def load_checkpoint(sampler, path: str | Path) -> None:
    """Restore state saved by :func:`save_checkpoint` into ``sampler``.

    The sampler must have been constructed with the same geometry (its
    spin-array shape is validated); model parameters are the caller's
    responsibility, as they are not part of the mutable state.
    """
    target = _resolve(sampler)
    path = Path(path)
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        if meta["version"] != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {meta['version']}")
        if meta["sampler_class"] != type(target).__name__:
            raise ValueError(
                f"checkpoint holds {meta['sampler_class']} state, sampler is "
                f"{type(target).__name__}"
            )
        spins = data["spins"]
        if list(spins.shape) != list(target.spins.shape):
            raise ValueError(
                f"checkpoint lattice {spins.shape} != sampler lattice "
                f"{target.spins.shape}"
            )
        target.spins = spins.astype(target.spins.dtype).copy()
        rng_state = pickle.loads(bytes(data["rng_state"]))
        target.stream.generator.bit_generator.state = rng_state
        if hasattr(target, "n_attempted"):
            target.n_attempted = meta["n_attempted"]
            target.n_accepted = meta["n_accepted"]
        # Derived caches that depend on the configuration.
        if hasattr(target, "walker"):
            raise ValueError("multicanonical walkers checkpoint via their sampler")
