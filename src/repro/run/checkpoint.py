"""Sampler checkpointing: exact resume of a Markov chain.

Long QMC runs on space-shared 1993 machines checkpointed religiously;
this module provides the same facility.  A checkpoint captures the
complete sampler state -- the spin configuration, the random
generator's internal state, and the attempt/accept counters -- so that
``save`` + ``load`` + ``run`` reproduces the uninterrupted trajectory
**bit for bit** (asserted by the test suite).

Usage::

    save_checkpoint(sampler, "run_a.ckpt.npz")
    ...
    fresh = WorldlineChainQmc(model, beta, n_slices)   # same geometry
    load_checkpoint(fresh, "run_a.ckpt.npz")

Works with any sampler exposing ``spins`` (ndarray), ``stream``
(:class:`~repro.util.rng.RankStream`) and the ``n_attempted`` /
``n_accepted`` counters -- i.e. every sampler in :mod:`repro.qmc`.
The TFIM wrapper delegates to its inner classical sampler.

Distributed runs checkpoint *per rank*: each rank of the SPMD drivers
in :mod:`repro.qmc.parallel` writes its own ``rank####.npz`` bundle
(local spins including ghost layers, RNG stream state, sweep counter,
accumulated measurement series) into a shared directory via
:func:`save_rank_checkpoint`; a restarted run with the same rank count
and seed resumes the trajectory **bit-identically**.  The paper's
machines were space-shared with preemption -- per-rank bundles mean no
rank ever holds another rank's state, exactly as on the real hardware
where each node dumped its local memory image.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointConfig",
    "rank_checkpoint_path",
    "save_rank_checkpoint",
    "load_rank_checkpoint",
    "pack_rng_state",
    "restore_rng_state",
]

_FORMAT_VERSION = 1

#: Format of the per-rank distributed bundles (independent of the
#: single-sampler format above).
_DIST_FORMAT_VERSION = 1


def _resolve(sampler):
    """The object actually carrying spins/stream (unwraps TfimQmc)."""
    if hasattr(sampler, "classical"):  # TfimQmc delegates
        return sampler.classical
    return sampler


def save_checkpoint(sampler, path: str | Path) -> None:
    """Write the sampler's complete resumable state to ``path`` (.npz)."""
    target = _resolve(sampler)
    path = Path(path)
    meta = {
        "version": _FORMAT_VERSION,
        "sampler_class": type(target).__name__,
        "shape": list(target.spins.shape),
        "n_attempted": int(getattr(target, "n_attempted", 0)),
        "n_accepted": int(getattr(target, "n_accepted", 0)),
    }
    rng_state = pickle.dumps(target.stream.generator.bit_generator.state)
    np.savez_compressed(
        path,
        spins=target.spins,
        rng_state=np.frombuffer(rng_state, dtype=np.uint8),
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    )


def load_checkpoint(sampler, path: str | Path) -> None:
    """Restore state saved by :func:`save_checkpoint` into ``sampler``.

    The sampler must have been constructed with the same geometry (its
    spin-array shape is validated); model parameters are the caller's
    responsibility, as they are not part of the mutable state.
    """
    target = _resolve(sampler)
    path = Path(path)
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        if meta["version"] != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {meta['version']}")
        if meta["sampler_class"] != type(target).__name__:
            raise ValueError(
                f"checkpoint holds {meta['sampler_class']} state, sampler is "
                f"{type(target).__name__}"
            )
        spins = data["spins"]
        if list(spins.shape) != list(target.spins.shape):
            raise ValueError(
                f"checkpoint lattice {spins.shape} != sampler lattice "
                f"{target.spins.shape}"
            )
        rng_state = pickle.loads(bytes(data["rng_state"]))
        bit_gen = target.stream.generator.bit_generator
        saved_kind = (
            rng_state.get("bit_generator") if isinstance(rng_state, dict) else None
        )
        if saved_kind != type(bit_gen).__name__:
            raise ValueError(
                f"checkpoint RNG state is for bit generator {saved_kind!r}, "
                f"sampler stream uses {type(bit_gen).__name__!r}; restoring "
                f"would not reproduce the trajectory"
            )
        if hasattr(target, "n_attempted"):
            missing = [k for k in ("n_attempted", "n_accepted") if k not in meta]
            if missing:
                raise ValueError(
                    f"checkpoint is missing sampler counters {missing}; "
                    f"refusing a partial restore (resumed acceptance "
                    f"statistics would be wrong)"
                )
        # All validation passed: mutate the sampler only now, so a bad
        # checkpoint never leaves it half-restored.
        target.spins = spins.astype(target.spins.dtype).copy()
        bit_gen.state = rng_state
        if hasattr(target, "n_attempted"):
            target.n_attempted = meta["n_attempted"]
            target.n_accepted = meta["n_accepted"]
        # Derived caches that depend on the configuration.
        if hasattr(target, "walker"):
            raise ValueError("multicanonical walkers checkpoint via their sampler")


# ======================================================================
# distributed per-rank checkpointing
# ======================================================================


@dataclass(frozen=True)
class CheckpointConfig:
    """Checkpoint policy handed to the SPMD drivers.

    ``every`` > 0 saves a per-rank bundle after every ``every``-th
    measured sweep; ``resume=True`` restores each rank's bundle from
    ``directory`` before sweeping (the bundles must exist and match the
    run's geometry/rank count).  ``every=0`` with ``resume=True`` is
    valid: finish a restored run without writing further checkpoints.
    """

    directory: str | Path
    every: int = 0
    resume: bool = False

    def __post_init__(self):
        if self.every < 0:
            raise ValueError("checkpoint interval must be >= 0")
        if self.every == 0 and not self.resume:
            raise ValueError(
                "CheckpointConfig with every=0 and resume=False does nothing"
            )


def rank_checkpoint_path(directory: str | Path, rank: int) -> Path:
    """The bundle path of one rank: ``<directory>/rank0003.npz``."""
    return Path(directory) / f"rank{rank:04d}.npz"


def pack_rng_state(generator) -> np.ndarray:
    """A generator's bit-generator state as a uint8 array (npz-storable).

    The state dict carries the bit-generator class name, which
    :func:`restore_rng_state` validates on the way back in.
    """
    return np.frombuffer(
        pickle.dumps(generator.bit_generator.state), dtype=np.uint8
    )


def restore_rng_state(generator, packed: np.ndarray) -> None:
    """Restore :func:`pack_rng_state` output, validating the generator kind."""
    state = pickle.loads(bytes(packed))
    saved_kind = state.get("bit_generator") if isinstance(state, dict) else None
    actual = type(generator.bit_generator).__name__
    if saved_kind != actual:
        raise ValueError(
            f"checkpoint RNG state is for bit generator {saved_kind!r}, "
            f"stream uses {actual!r}"
        )
    generator.bit_generator.state = state


def save_rank_checkpoint(
    directory: str | Path,
    rank: int,
    meta: dict,
    arrays: dict[str, np.ndarray],
    metrics=None,
) -> Path:
    """Atomically write one rank's bundle into ``directory``.

    ``meta`` is JSON-encoded (ints/floats/strings only); ``arrays``
    holds the rank's ndarray state (spins with ghost layers, series,
    packed RNG state...).  The write goes through a same-directory temp
    file and ``os.replace`` so a crash mid-save leaves either the old
    bundle or the new one, never a torn file -- a rank can die *during*
    its checkpoint and the run still restarts cleanly.

    ``metrics`` (a rank scope from :mod:`repro.obs.metrics`, or None)
    records snapshot count, on-disk bytes, and wall duration.
    """
    obs = metrics is not None and metrics.enabled
    if obs:
        t0 = time.perf_counter()
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = rank_checkpoint_path(directory, rank)
    full_meta = dict(meta)
    full_meta["dist_version"] = _DIST_FORMAT_VERSION
    full_meta["rank"] = int(rank)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh,
                meta=np.frombuffer(json.dumps(full_meta).encode(), dtype=np.uint8),
                **arrays,
            )
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    if obs:
        metrics.count("checkpoint.count")
        metrics.count("checkpoint.bytes", path.stat().st_size)
        metrics.count("checkpoint.wall_seconds", time.perf_counter() - t0)
    return path


def load_rank_checkpoint(
    directory: str | Path,
    rank: int,
    expect: dict | None = None,
    metrics=None,
) -> tuple[dict, dict[str, np.ndarray]]:
    """Load one rank's bundle; returns ``(meta, arrays)``.

    Every key in ``expect`` must match the stored meta exactly --
    drivers pass the run geometry (driver name, rank count, lattice
    shape, sweep seed) so a resume against the wrong run, wrong ``P``,
    or wrong seed fails loudly instead of producing a silently
    different trajectory.  ``metrics`` records restore count/bytes/wall
    duration when given.
    """
    obs = metrics is not None and metrics.enabled
    if obs:
        t0 = time.perf_counter()
    path = rank_checkpoint_path(directory, rank)
    if not path.exists():
        raise FileNotFoundError(
            f"no checkpoint bundle for rank {rank} at {path}; cannot resume"
        )
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        arrays = {k: data[k].copy() for k in data.files if k != "meta"}
    if meta.get("dist_version") != _DIST_FORMAT_VERSION:
        raise ValueError(
            f"unsupported distributed checkpoint version "
            f"{meta.get('dist_version')!r} in {path} "
            f"(this build reads version {_DIST_FORMAT_VERSION})"
        )
    if meta.get("rank") != rank:
        raise ValueError(
            f"bundle {path} holds rank {meta.get('rank')} state, asked for "
            f"rank {rank}"
        )
    for key, want in (expect or {}).items():
        got = meta.get(key)
        if got != want:
            raise ValueError(
                f"checkpoint mismatch in {path}: {key} is {got!r}, this run "
                f"expects {want!r}"
            )
    if obs:
        metrics.count("checkpoint.restore_count")
        metrics.count("checkpoint.restore_bytes", path.stat().st_size)
        metrics.count(
            "checkpoint.restore_wall_seconds", time.perf_counter() - t0
        )
    return meta, arrays
