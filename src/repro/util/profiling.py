"""Profiling helpers: "no optimization without measuring".

Thin wrappers over :mod:`cProfile` shaped for this codebase's hot loops
(sampler sweeps).  :func:`profile_callable` runs a callable under the
profiler and returns a :class:`ProfileReport` whose ``top(n)`` rows are
plain data -- so tests can assert on them and examples can print them --
rather than a wall of pstats text.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["ProfileRow", "ProfileReport", "profile_callable"]


@dataclass(frozen=True)
class ProfileRow:
    """One function's aggregate cost."""

    name: str  # "file:lineno(function)"
    calls: int
    total_time: float  # excluding subcalls
    cumulative_time: float


@dataclass
class ProfileReport:
    """Structured result of one profiled run."""

    rows: list[ProfileRow]
    total_seconds: float
    return_value: Any

    def top(self, n: int = 10, by: str = "cumulative") -> list[ProfileRow]:
        """The ``n`` most expensive rows, by 'cumulative' or 'total' time."""
        key = {
            "cumulative": lambda r: r.cumulative_time,
            "total": lambda r: r.total_time,
        }
        try:
            sort = key[by]
        except KeyError:
            raise ValueError("by must be 'cumulative' or 'total'") from None
        return sorted(self.rows, key=sort, reverse=True)[:n]

    def render(self, n: int = 10) -> str:
        lines = [
            f"profile: {self.total_seconds:.3f}s total",
            f"{'calls':>9}  {'total[s]':>9}  {'cum[s]':>9}  function",
        ]
        for r in self.top(n):
            lines.append(
                f"{r.calls:>9d}  {r.total_time:>9.4f}  {r.cumulative_time:>9.4f}  {r.name}"
            )
        return "\n".join(lines)

    def find(self, substring: str) -> list[ProfileRow]:
        """Rows whose name contains ``substring`` (e.g. 'sweep')."""
        return [r for r in self.rows if substring in r.name]


def profile_callable(fn: Callable[[], Any]) -> ProfileReport:
    """Run ``fn()`` under cProfile and return a structured report."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        value = fn()
    finally:
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    rows = []
    total = 0.0
    for (filename, lineno, funcname), (
        _cc,
        ncalls,
        tottime,
        cumtime,
        _callers,
    ) in stats.stats.items():  # type: ignore[attr-defined]
        rows.append(
            ProfileRow(
                name=f"{filename}:{lineno}({funcname})",
                calls=int(ncalls),
                total_time=float(tottime),
                cumulative_time=float(cumtime),
            )
        )
        total += float(tottime)
    return ProfileReport(rows=rows, total_seconds=total, return_value=value)
