"""Reproducible random-number streams for SPMD programs.

A massively parallel Monte Carlo run needs one *statistically
independent* stream per processor (and per replica, per Trotter thread,
...).  Re-seeding ``numpy`` ad hoc with ``seed + rank`` produces
overlapping or correlated streams; the supported mechanism is NumPy's
:class:`~numpy.random.SeedSequence` spawning, which derives
collision-free child entropy for any tree of workers.

:class:`SeedSequenceFactory` wraps that mechanism with a stable,
hashable addressing scheme so a rank program can ask for "the stream of
rank 7 of run 42" and get the same stream on every backend (cooperative
scheduler, multiprocessing, or a future real-MPI port) and every
platform.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SeedSequenceFactory", "RankStream", "spawn_streams"]


@dataclass(frozen=True)
class RankStream:
    """A labelled random stream owned by one logical worker.

    Attributes
    ----------
    rank:
        Logical owner id (MPI-style rank, replica index, ...).
    generator:
        The underlying :class:`numpy.random.Generator`.  Deliberately
        exposed: hot loops should pull vectorized samples directly.
    """

    rank: int
    generator: np.random.Generator = field(compare=False)

    # Convenience pass-throughs used throughout the QMC kernels. Keeping
    # them thin ensures there is exactly one source of randomness per rank.
    def uniform(self, size=None) -> np.ndarray | float:
        """Uniform variates on [0, 1)."""
        return self.generator.random(size)

    def integers(self, low: int, high: int, size=None):
        """Uniform integers on [low, high)."""
        return self.generator.integers(low, high, size=size)

    def choice(self, n: int) -> int:
        """A single uniform index on [0, n)."""
        return int(self.generator.integers(0, n))

    def exponential(self, scale: float = 1.0, size=None):
        """Exponential variates (used by event-driven update schedules)."""
        return self.generator.exponential(scale, size)


class SeedSequenceFactory:
    """Derive independent, reproducible child streams from one root seed.

    The factory is cheap to construct and stateless between calls: the
    stream for a given address ``(kind, index)`` is a pure function of
    ``(root_seed, kind, index)``.  Two factories with the same root seed
    hand out identical streams; distinct addresses never collide (NumPy
    ``SeedSequence`` guarantees this by design).

    ``kind`` namespaces the tree: rank programs, measurement shufflers
    and replica threads draw from disjoint subtrees even when their
    integer indices coincide.
    """

    #: Registered stream namespaces.  Using a fixed table (rather than
    #: hashing arbitrary strings) keeps cross-platform reproducibility
    #: independent of PYTHONHASHSEED.
    KINDS = {
        "rank": 0,
        "replica": 1,
        "walker": 2,
        "measurement": 3,
        "tempering": 4,
        "scratch": 5,
        # Per-(sweep, stage) shared uniforms of the strip world-line
        # driver: every rank derives the identical lattice, the source
        # of rank-count-independent trajectories.
        "wl-stage": 6,
        # Per-sweep shared uniforms (one generator per sweep, sliced
        # into the ten stage lattices): amortizes generator
        # construction over a whole sweep while keeping the same
        # every-rank-draws-identical-numbers guarantee.
        "wl-sweep": 7,
    }

    def __init__(self, root_seed: int):
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError(f"root_seed must be an int, got {type(root_seed).__name__}")
        if root_seed < 0:
            raise ValueError("root_seed must be non-negative")
        self.root_seed = int(root_seed)

    def __repr__(self) -> str:
        return f"SeedSequenceFactory(root_seed={self.root_seed})"

    def seed_sequence(self, kind: str, index: int) -> np.random.SeedSequence:
        """The raw child :class:`~numpy.random.SeedSequence` for an address."""
        try:
            kind_key = self.KINDS[kind]
        except KeyError:
            raise ValueError(
                f"unknown stream kind {kind!r}; expected one of {sorted(self.KINDS)}"
            ) from None
        if index < 0:
            raise ValueError("stream index must be non-negative")
        # spawn_key addressing: (kind, index) under the root entropy.
        return np.random.SeedSequence(entropy=self.root_seed, spawn_key=(kind_key, index))

    def stream(self, kind: str, index: int) -> RankStream:
        """A :class:`RankStream` for the given address."""
        ss = self.seed_sequence(kind, index)
        return RankStream(rank=index, generator=np.random.Generator(np.random.PCG64(ss)))

    def rank_stream(self, rank: int) -> RankStream:
        """Shorthand for ``stream('rank', rank)``."""
        return self.stream("rank", rank)


def spawn_streams(root_seed: int, n: int, kind: str = "rank") -> list[RankStream]:
    """Spawn ``n`` independent labelled streams under one root seed."""
    factory = SeedSequenceFactory(root_seed)
    return [factory.stream(kind, i) for i in range(n)]
