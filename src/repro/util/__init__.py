"""Low-level utilities shared by every other subpackage.

This subpackage is dependency-free (NumPy only) and provides:

* :mod:`repro.util.logspace` -- overflow-safe arithmetic on quantities
  stored as logarithms (densities of states, partition functions).
* :mod:`repro.util.rng` -- reproducible, collision-free random-number
  streams for SPMD rank programs and replica threads.
* :mod:`repro.util.timer` -- hierarchical timers that can account either
  real wall-clock time or *modeled* time charged by the virtual machine.
* :mod:`repro.util.tables` -- plain-text table / data-series rendering
  used by the benchmark harness to print paper-style tables and figures.
* :mod:`repro.util.correlation` -- FFT fast paths for the circular
  correlation functions measured by the samplers.
"""

from repro.util.correlation import mean_circular_correlation
from repro.util.logspace import (
    log_add,
    log_diff,
    log_mean,
    log_sub,
    log_sum,
    logsumexp,
    normalize_log_weights,
)
from repro.util.rng import RankStream, SeedSequenceFactory, spawn_streams
from repro.util.tables import Series, Table, format_float, render_series
from repro.util.timer import ModelClock, Timer, TimerRegistry

__all__ = [
    "mean_circular_correlation",
    "log_add",
    "log_diff",
    "log_mean",
    "log_sub",
    "log_sum",
    "logsumexp",
    "normalize_log_weights",
    "RankStream",
    "SeedSequenceFactory",
    "spawn_streams",
    "Series",
    "Table",
    "format_float",
    "render_series",
    "ModelClock",
    "Timer",
    "TimerRegistry",
]
