"""Wall-clock and modeled-time accounting.

Two clocks coexist in this codebase:

* real wall-clock time (``time.perf_counter``) for host-side profiling
  of the Python kernels, and
* **modeled time** -- the virtual machine charges each rank for
  computation (flop counts / machine flop rate) and communication
  (latency--bandwidth model).  Modeled time is what the scaling
  benchmarks report, because it is deterministic and represents the
  1993-era target machine rather than this container.

:class:`ModelClock` is a trivial accumulator; the richness lives in who
charges it (see :mod:`repro.vmp.costmodel`).  :class:`Timer` /
:class:`TimerRegistry` provide hierarchical wall-time sections for
profiling per the optimization guide ("no optimization without
measuring").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = [
    "ModelClock",
    "Timer",
    "TimerRegistry",
    "COMPUTE_CATEGORIES",
    "COMM_CATEGORIES",
    "WAIT_CATEGORIES",
]

#: Clock categories that count as useful computation.  The overlap
#: pipeline splits a sweep's kernel charges into ``interior`` (updates
#: with no ghost dependence, running while halos are in flight) and
#: ``boundary`` (ghost-adjacent updates after the wait); plain drivers
#: charge everything to ``compute``.
COMPUTE_CATEGORIES: tuple[str, ...] = ("compute", "interior", "boundary")

#: Categories of CPU time spent *inside* communication calls (software
#: overhead charged by the cost model, not wire time).  ``comm`` is
#: domain-level traffic (halo exchanges, intra-domain collectives);
#: ``ensemble`` is traffic over an ensemble sub-communicator (replica
#: pooling / tempering swaps in two-level layouts), kept separate so
#: telemetry can report per-level comm fractions.
COMM_CATEGORIES: tuple[str, ...] = ("comm", "ensemble")

#: Categories of idle time blocked on a message that has not arrived.
#: ``halo_wait`` is the overlap pipeline's residual wait after interior
#: computation; ``comm_wait`` is the blocking-receive wait of the
#: non-overlapped path; ``ensemble_wait`` is the blocking wait on
#: ensemble-level messages in two-level layouts.
WAIT_CATEGORIES: tuple[str, ...] = ("comm_wait", "halo_wait", "ensemble_wait")


class ModelClock:
    """Deterministic simulated-time accumulator for one rank.

    Time is split into named categories (``compute``, ``halo``,
    ``collective``, ...) so benchmarks can report communication
    fractions.  ``advance_to`` supports synchronization: a barrier or a
    blocking receive moves a rank's clock forward to the event time.
    """

    #: Optional ``(category, t_start, t_end)`` callback fired on every
    #: charge/wait -- the hook span-based tracing hangs off (see
    #: :class:`repro.obs.spans.SpanCollector`).  Class attribute so the
    #: common unobserved case costs one falsy attribute test.
    observer = None

    def __init__(self) -> None:
        self._now = 0.0
        self._by_category: dict[str, float] = {}

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def charge(self, seconds: float, category: str = "compute") -> None:
        """Advance the clock by ``seconds``, attributed to ``category``."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        start = self._now
        self._now = start + seconds
        self._by_category[category] = self._by_category.get(category, 0.0) + seconds
        if self.observer is not None:
            self.observer(category, start, self._now)

    def advance_to(self, t: float, category: str = "wait") -> None:
        """Move the clock to absolute time ``t`` if that is in the future.

        The waited interval is attributed to ``category``.  Moving to a
        past instant is a no-op (the rank was simply already late).
        """
        if t > self._now:
            start = self._now
            self._by_category[category] = self._by_category.get(category, 0.0) + (
                t - start
            )
            self._now = t
            if self.observer is not None:
                self.observer(category, start, t)

    def breakdown(self) -> dict[str, float]:
        """Seconds spent per category (copy)."""
        return dict(self._by_category)

    def fraction(self, category: str) -> float:
        """Share of total elapsed time spent in ``category``."""
        if self._now == 0.0:
            return 0.0
        return self._by_category.get(category, 0.0) / self._now

    def reset(self) -> None:
        self._now = 0.0
        self._by_category.clear()


@dataclass
class Timer:
    """One named wall-clock section, usable as a context manager."""

    name: str
    elapsed: float = 0.0
    calls: int = 0
    _started: float | None = field(default=None, repr=False)

    def __enter__(self) -> "Timer":
        if self._started is not None:
            raise RuntimeError(f"timer {self.name!r} is already running")
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._started is not None
        self.elapsed += time.perf_counter() - self._started
        self.calls += 1
        self._started = None

    @property
    def mean(self) -> float:
        """Mean seconds per call (0 when never called)."""
        return self.elapsed / self.calls if self.calls else 0.0


class TimerRegistry:
    """A flat namespace of :class:`Timer` objects.

    Usage::

        timers = TimerRegistry()
        with timers("sweep"):
            ...
        print(timers.report())
    """

    def __init__(self) -> None:
        self._timers: dict[str, Timer] = {}

    def __call__(self, name: str) -> Timer:
        if name not in self._timers:
            self._timers[name] = Timer(name)
        return self._timers[name]

    def __getitem__(self, name: str) -> Timer:
        return self._timers[name]

    def __contains__(self, name: str) -> bool:
        return name in self._timers

    def report(self) -> str:
        """Plain-text profile sorted by total elapsed time."""
        rows = sorted(self._timers.values(), key=lambda t: -t.elapsed)
        if not rows:
            return "(no timers)"
        width = max(len(t.name) for t in rows)
        lines = [f"{'section':<{width}}  {'calls':>7}  {'total[s]':>10}  {'mean[s]':>10}"]
        for t in rows:
            lines.append(
                f"{t.name:<{width}}  {t.calls:>7d}  {t.elapsed:>10.4f}  {t.mean:>10.6f}"
            )
        return "\n".join(lines)
