"""FFT fast paths for translation-averaged correlation functions.

The measurement loops of the samplers repeatedly need

    C(k) = mean( x * roll(x, -k, axis) )        for k = 0 .. max_lag,

the circular autocorrelation along one axis averaged over everything
else.  Computed lag-by-lag with ``np.roll`` this is O(extent * volume);
the Wiener--Khinchin form below gets all lags from a single real FFT in
O(volume log extent), exact to floating-point roundoff.  Periodic
geometries use this path; open-boundary estimators keep their explicit
loops (the truncated sums are not circular convolutions).
"""

from __future__ import annotations

import numpy as np

__all__ = ["mean_circular_correlation"]


def mean_circular_correlation(
    x: np.ndarray, axis: int, max_lag: int
) -> np.ndarray:
    """``out[k] = np.mean(x * np.roll(x, -k, axis=axis))`` for k = 0..max_lag.

    One rfft/irfft pair along ``axis`` replaces the per-lag roll loop;
    the remaining axes are averaged over.  ``max_lag`` may be at most
    the extent of ``axis`` (lags wrap circularly).
    """
    x = np.asarray(x, dtype=float)
    n = x.shape[axis]
    if not 0 <= max_lag <= n:
        raise ValueError(f"max_lag {max_lag} outside 0..{n}")
    f = np.fft.rfft(x, axis=axis)
    # Wiener--Khinchin: irfft(F conj(F))[k] = sum_i x[i] x[(i+k) % n].
    s = np.fft.irfft(f * np.conj(f), n=n, axis=axis)
    s = np.moveaxis(s, axis, 0)[: max_lag + 1]
    return s.reshape(s.shape[0], -1).sum(axis=1) / x.size
