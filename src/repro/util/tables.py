"""Plain-text rendering of paper-style tables and figure series.

The benchmark harness regenerates every table and figure of the
(reconstructed) evaluation as text: tables as aligned columns, figures
as labelled data series plus a crude unicode sparkline so the shape is
visible directly in terminal output.  These renderers are intentionally
dependency-free; downstream users can feed :class:`Table` /
:class:`Series` rows into real plotting code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["format_float", "Table", "Series", "render_series"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def format_float(x: Any, digits: int = 4) -> str:
    """Format a number compactly for table cells.

    Integers render without a decimal point; floats use ``digits``
    significant digits with scientific notation only when unavoidable;
    non-numbers fall back to ``str``.
    """
    if isinstance(x, bool) or not isinstance(x, (int, float)):
        return str(x)
    if isinstance(x, int):
        return str(x)
    if x != x:  # NaN
        return "nan"
    if x == 0:
        return "0"
    ax = abs(x)
    if 1e-3 <= ax < 10 ** (digits + 2):
        s = f"{x:.{digits}g}"
    else:
        s = f"{x:.{max(digits - 1, 0)}e}"
    return s


@dataclass
class Table:
    """An aligned text table with a title, e.g. one paper table.

    >>> t = Table("Table 1: speedup", ["P", "S(P)", "eff"])
    >>> t.add_row([2, 1.98, 0.99])
    >>> print(t.render())  # doctest: +SKIP
    """

    title: str
    columns: Sequence[str]
    rows: list[list[Any]] = field(default_factory=list)

    def add_row(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(row))

    def column(self, name: str) -> list[Any]:
        """Extract one column by header name."""
        try:
            j = list(self.columns).index(name)
        except ValueError:
            raise KeyError(f"no column {name!r} in {list(self.columns)}") from None
        return [r[j] for r in self.rows]

    def render(self, digits: int = 4) -> str:
        cells = [[format_float(c, digits) for c in row] for row in self.rows]
        headers = [str(c) for c in self.columns]
        widths = [
            max(len(headers[j]), *(len(r[j]) for r in cells)) if cells else len(headers[j])
            for j in range(len(headers))
        ]
        sep = "  "
        header_line = sep.join(h.rjust(w) for h, w in zip(headers, widths))
        rule = "-" * len(header_line)
        body = [sep.join(r[j].rjust(widths[j]) for j in range(len(headers))) for r in cells]
        return "\n".join([self.title, rule, header_line, rule, *body, rule])


@dataclass
class Series:
    """One labelled (x, y) data series of a figure."""

    label: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.x.append(float(x))
        self.y.append(float(y))

    def sparkline(self) -> str:
        """Unicode mini-plot of y values (empty series -> empty string)."""
        ys = [v for v in self.y if math.isfinite(v)]
        if not ys:
            return ""
        lo, hi = min(ys), max(ys)
        span = hi - lo
        out = []
        for v in self.y:
            if not math.isfinite(v):
                out.append("?")
                continue
            frac = 0.5 if span == 0 else (v - lo) / span
            out.append(_BLOCKS[min(int(frac * len(_BLOCKS)), len(_BLOCKS) - 1)])
        return "".join(out)


def render_series(title: str, series: Sequence[Series], digits: int = 4,
                  x_label: str = "x") -> str:
    """Render a 'figure' as aligned per-series data plus sparklines.

    All series sharing the same x grid are merged into one table; series
    on different grids are printed separately.
    """
    lines = [title]
    groups: dict[tuple, list[Series]] = {}
    for s in series:
        groups.setdefault(tuple(s.x), []).append(s)
    for xs, group in groups.items():
        tab = Table("", [x_label] + [s.label for s in group])
        for i, x in enumerate(xs):
            tab.add_row([x] + [s.y[i] for s in group])
        lines.append(tab.render(digits))
        for s in group:
            lines.append(f"  {s.label:<24} {s.sparkline()}")
    return "\n".join(lines)
