"""Overflow-safe arithmetic on log-represented quantities.

Densities of states and partition functions in Monte Carlo work span
hundreds to thousands of orders of magnitude, far beyond the range of
IEEE doubles.  Every routine here therefore manipulates *logarithms* of
the positive quantities of interest and never exponentiates a large
argument.

The core identity, for ``a >= b > 0`` stored as ``la = log a`` and
``lb = log b``::

    log(a + b) = la + log1p(exp(lb - la))

``exp(lb - la) <= 1`` always, so the computation cannot overflow; when
``lb - la`` underflows the result degrades gracefully to ``la``, which
is the correct answer to machine precision.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

__all__ = [
    "NEG_INF",
    "log_add",
    "log_sub",
    "log_diff",
    "log_sum",
    "log_mean",
    "logsumexp",
    "normalize_log_weights",
]

#: Logarithm of zero.  ``log_add(NEG_INF, x) == x`` for every finite x.
NEG_INF = float("-inf")


def log_add(la: float, lb: float) -> float:
    """Return ``log(exp(la) + exp(lb))`` without overflow.

    Either argument may be ``-inf`` (the log of zero), in which case the
    other argument is returned unchanged.
    """
    if la == NEG_INF:
        return lb
    if lb == NEG_INF:
        return la
    if la < lb:
        la, lb = lb, la
    return la + math.log1p(math.exp(lb - la))


def log_sub(la: float, lb: float) -> float:
    """Return ``log(exp(la) - exp(lb))`` for ``la >= lb``.

    Raises :class:`ValueError` when ``la < lb`` (the difference would be
    negative, which has no logarithm).  ``la == lb`` returns ``-inf``.
    """
    if lb == NEG_INF:
        return la
    if la < lb:
        raise ValueError(f"log_sub requires la >= lb, got la={la!r} lb={lb!r}")
    if la == lb:
        return NEG_INF
    # expm1(x) = exp(x) - 1, accurate for small x.
    return la + math.log(-math.expm1(lb - la))


def log_diff(la: float, lb: float) -> float:
    """Return ``log(|exp(la) - exp(lb)|)`` regardless of ordering."""
    if la >= lb:
        return log_sub(la, lb)
    return log_sub(lb, la)


def log_sum(values: Iterable[float]) -> float:
    """Running :func:`log_add` over an iterable of log-values.

    Numerically equivalent to :func:`logsumexp` but streaming: it never
    materializes the sequence, so it suits accumulation during a Monte
    Carlo run.  Returns ``-inf`` for an empty iterable (log of an empty
    sum).
    """
    acc = NEG_INF
    for v in values:
        acc = log_add(acc, v)
    return acc


def logsumexp(log_values: np.ndarray, axis: int | None = None) -> np.ndarray | float:
    """Vectorized ``log(sum(exp(x)))`` along ``axis``.

    Unlike :func:`scipy.special.logsumexp` this copes with slices that
    are entirely ``-inf`` (empty histogram bins) without emitting NaN
    warnings: such slices produce ``-inf``.
    """
    x = np.asarray(log_values, dtype=float)
    if x.size == 0:
        return NEG_INF if axis is None else np.full(
            np.delete(np.array(np.shape(x)), axis), NEG_INF
        )
    m = np.max(x, axis=axis, keepdims=True)
    # Slices of all -inf: keep the max finite so exp() below is well-defined.
    safe_m = np.where(np.isfinite(m), m, 0.0)
    s = np.sum(np.exp(x - safe_m), axis=axis, keepdims=True)
    with np.errstate(divide="ignore"):
        out = safe_m + np.log(s)
    out = np.where(np.isfinite(m), out, NEG_INF)
    if axis is None:
        return float(out.reshape(()))
    return np.squeeze(out, axis=axis)


def log_mean(log_values: np.ndarray) -> float:
    """Return ``log(mean(exp(x)))`` for a 1-D array of log-values."""
    x = np.asarray(log_values, dtype=float)
    if x.size == 0:
        raise ValueError("log_mean of an empty array is undefined")
    return float(logsumexp(x)) - math.log(x.size)


def normalize_log_weights(log_w: np.ndarray) -> np.ndarray:
    """Exponentiate log-weights into probabilities that sum to one.

    The common final step of reweighting: given ``log w_i`` spanning many
    orders of magnitude, return ``w_i / sum_j w_j`` computed stably.
    All ``-inf`` entries map to probability zero.
    """
    x = np.asarray(log_w, dtype=float)
    total = logsumexp(x)
    if total == NEG_INF:
        raise ValueError("all weights are zero; cannot normalize")
    with np.errstate(divide="ignore"):
        p = np.exp(x - total)
    return p
