"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``run-xxz``
    World-line QMC of the XXZ chain via the Simulation facade.
``run-tfim``
    Transverse-field Ising QMC (chain or square lattice).
``machines``
    List the calibrated machine models.
``scaling``
    Print a performance-model scaling table for a chosen machine,
    strategy and lattice.
``run-campaign``
    Expand a sweep spec (TOML) into a grid of runs and schedule them
    over a bounded pool of backend processes, with a config-hash result
    cache (``--resume`` skips completed runs), per-run timeouts, and
    retry-with-backoff on rank failures.
``report``
    Aggregate finished runs' manifests + metrics/events JSONL into a
    text or HTML dashboard (per-rank tables, convergence verdicts,
    health timeline); campaign directories add a campaign summary.

Every ``run-*`` command accepts ``--output PATH`` to persist the result
as JSON (+NPZ series) via :mod:`repro.run.results`, and ``--health`` to
stream convergence/health diagnostics during the run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.kernels import KernelUnavailableError
from repro.run.config import (
    ParallelLayout,
    TfimRunConfig,
    XXZ2DRunConfig,
    XXZRunConfig,
)
from repro.run.results import save_result
from repro.run.simulation import Simulation
from repro.util.tables import Table
from repro.vmp.machines import MACHINES

__all__ = ["main", "build_parser"]


def _add_layout_args(p: argparse.ArgumentParser, strategies: list[str]) -> None:
    p.add_argument("--strategy", choices=strategies, default="serial",
                   help="parallelization strategy")
    p.add_argument("--ranks", type=int, default=1, help="virtual processors")
    p.add_argument("--machine", choices=sorted(MACHINES), default="Ideal",
                   help="machine cost model")
    p.add_argument("--backend", choices=["thread", "mp", "mpi"],
                   default="thread",
                   help="execution backend for strip/block layouts; 'mpi' "
                        "expects the command to run under "
                        "'mpiexec -n RANKS python -m repro ...'")
    p.add_argument("--overlap", action="store_true",
                   help="overlap halo exchanges with interior updates in "
                        "the strip/block sweep drivers (bit-identical "
                        "trajectories, shorter modeled makespan)")
    p.add_argument("--kernel", default="auto",
                   help="sweep kernel backend: 'auto' (best available), a "
                        "registered backend (numpy/numba/cupy), or 'scalar' "
                        "for the per-move reference path; every backend "
                        "yields the bit-identical trajectory (default: auto)")
    p.add_argument("--replicas", type=int, default=1, metavar="R",
                   help="two-level ensemble x domain run: R independent "
                        "strip replicas of --ranks domain processors each "
                        "(R * RANKS total; strip strategy only)")


def _add_mc_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--beta", type=float, required=True, help="inverse temperature")
    p.add_argument("--slices", type=int, default=16, help="Trotter slices")
    p.add_argument("--sweeps", type=int, default=2000, help="measured sweeps")
    p.add_argument("--thermalize", type=int, default=200, help="warm-up sweeps")
    p.add_argument("--seed", type=int, default=0, help="root random seed")
    p.add_argument("--output", type=str, default=None,
                   help="save result to PATH.json/.npz")
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                   help="save per-rank checkpoints every N sweeps "
                        "(strip/block layouts)")
    p.add_argument("--checkpoint-dir", type=str, default=None, metavar="DIR",
                   help="directory for per-rank checkpoint bundles")
    p.add_argument("--resume", action="store_true",
                   help="resume bit-identically from --checkpoint-dir")
    p.add_argument("--metrics-out", type=str, default=None, metavar="PATH",
                   help="write per-rank metrics as JSONL (plus a manifest.json "
                        "next to it)")
    p.add_argument("--trace-out", type=str, default=None, metavar="PATH",
                   help="write a Chrome trace_event JSON of the run's phase "
                        "spans (strip/block layouts; open in Perfetto)")
    p.add_argument("--obs-interval", type=int, default=0, metavar="N",
                   help="snapshot metrics every N sweeps into --metrics-out "
                        "(0: summaries only); with --health also sets the "
                        "health-check cadence")
    p.add_argument("--health", action="store_true",
                   help="enable the streaming run-health engine (online "
                        "convergence estimators + alert rules; trajectories "
                        "stay bit-identical to a run without it)")
    p.add_argument("--health-rules", type=str, default=None, metavar="PATH",
                   help="JSON file overriding the default health rules "
                        "(implies nothing without --health)")
    p.add_argument("--events-out", type=str, default=None, metavar="PATH",
                   help="write health events as JSONL (requires --health)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the human-readable summary on stdout "
                        "(file sinks are still written)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel world-line quantum Monte Carlo on a simulated MPP",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_xxz = sub.add_parser("run-xxz", help="world-line QMC of the XXZ chain")
    p_xxz.add_argument("--sites", type=int, required=True)
    p_xxz.add_argument("--jz", type=float, default=1.0)
    p_xxz.add_argument("--jxy", type=float, default=1.0)
    p_xxz.add_argument("--open-chain", action="store_true",
                       help="open boundaries (default periodic)")
    _add_mc_args(p_xxz)
    _add_layout_args(p_xxz, ["serial", "replica", "strip"])

    p_xxz2d = sub.add_parser(
        "run-xxz2d", help="world-line QMC of the 2-D XXZ (Heisenberg) model"
    )
    p_xxz2d.add_argument("--lx", type=int, required=True)
    p_xxz2d.add_argument("--ly", type=int, required=True)
    p_xxz2d.add_argument("--jz", type=float, default=1.0)
    p_xxz2d.add_argument("--jxy", type=float, default=1.0)
    _add_mc_args(p_xxz2d)
    _add_layout_args(p_xxz2d, ["serial", "replica"])

    p_tfim = sub.add_parser("run-tfim", help="transverse-field Ising QMC")
    p_tfim.add_argument("--shape", type=str, required=True,
                        help="spatial shape, e.g. '32' or '8x8'")
    p_tfim.add_argument("--j", type=float, default=1.0)
    p_tfim.add_argument("--gamma", type=float, default=1.0)
    _add_mc_args(p_tfim)
    _add_layout_args(p_tfim, ["serial", "replica", "block"])

    sub.add_parser("machines", help="list calibrated machine models")

    p_sc = sub.add_parser("scaling", help="performance-model scaling table")
    p_sc.add_argument("--machine", choices=sorted(MACHINES), default="CM-5")
    p_sc.add_argument("--strategy", choices=["strip", "block", "replica"],
                      default="block")
    p_sc.add_argument("--lx", type=int, default=128)
    p_sc.add_argument("--ly", type=int, default=128)
    p_sc.add_argument("--slices", type=int, default=32)
    p_sc.add_argument("--max-p", type=int, default=1024)

    p_camp = sub.add_parser(
        "run-campaign",
        help="schedule a sweep-spec grid of runs with a result cache",
    )
    p_camp.add_argument("--spec", type=str, required=True, metavar="PATH",
                        help="campaign spec file (.toml, or .json with the "
                             "same structure)")
    p_camp.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker-pool width (overrides the spec's jobs)")
    p_camp.add_argument("--output-dir", type=str, default=None, metavar="DIR",
                        help="campaign output root (overrides the spec's "
                             "output_dir; default: <name>_campaign)")
    p_camp.add_argument("--resume", action="store_true",
                        help="serve completed runs from the config-hash "
                             "result cache and restart interrupted "
                             "checkpointed runs from their bundles")
    p_camp.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-run wall-clock timeout in seconds "
                             "(0: none; overrides the spec)")
    p_camp.add_argument("--retries", type=int, default=None, metavar="N",
                        help="max retries per run on transient failures "
                             "(overrides the spec)")
    p_camp.add_argument("--policy", choices=["fail-fast", "keep-going"],
                        default=None,
                        help="whether a failed run cancels the not-yet-"
                             "started remainder (overrides the spec)")
    p_camp.add_argument("--quiet", action="store_true",
                        help="suppress per-run progress lines and the final "
                             "summary table (campaign.json is still written)")

    p_rep = sub.add_parser(
        "report",
        help="render a run-health dashboard from finished runs' artifacts",
    )
    p_rep.add_argument("paths", nargs="+", metavar="PATH",
                       help="run manifest.json files and/or directories to "
                            "search recursively for them")
    p_rep.add_argument("--format", choices=["text", "html", "json"],
                       default="text", help="output format (default: text)")
    p_rep.add_argument("--out", type=str, default=None, metavar="FILE",
                       help="write the dashboard to FILE instead of stdout")
    return parser


def _finish_run(result, args) -> int:
    """Print/save a run result; a no-op off rank 0 under an MPI launch.

    Under ``mpiexec`` every rank runs the whole command and computes an
    identical result (the mpi backend allgathers rank values), so only
    world rank 0 talks to the terminal and the filesystem.
    """
    from repro.run.reporting import StatusReporter
    from repro.vmp.mpi_backend import world_rank_hint

    if world_rank_hint() != 0:
        return 0
    reporter = StatusReporter(quiet=getattr(args, "quiet", False))
    reporter.info(result.summary())
    if args.output:
        save_result(result, args.output)
        reporter.info(f"saved to {args.output}.json")
    reporter.flush()
    return 0


def _cmd_run_xxz(args) -> int:
    layout = ParallelLayout(args.strategy, args.ranks, args.machine,
                            args.backend, overlap=args.overlap,
                            kernel=args.kernel, replicas=args.replicas)
    cfg = XXZRunConfig(
        n_sites=args.sites,
        beta=args.beta,
        jz=args.jz,
        jxy=args.jxy,
        n_slices=args.slices,
        periodic=not args.open_chain,
        n_sweeps=args.sweeps,
        n_thermalize=args.thermalize,
        seed=args.seed,
        layout=layout,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        metrics_out=args.metrics_out,
        trace_out=args.trace_out,
        obs_interval=args.obs_interval,
        health=args.health,
        health_rules=args.health_rules,
        events_out=args.events_out,
    )
    result = Simulation(cfg).run()
    return _finish_run(result, args)


def _cmd_run_xxz2d(args) -> int:
    layout = ParallelLayout(args.strategy, args.ranks, args.machine,
                            args.backend, overlap=args.overlap,
                            kernel=args.kernel, replicas=args.replicas)
    cfg = XXZ2DRunConfig(
        lx=args.lx,
        ly=args.ly,
        beta=args.beta,
        jz=args.jz,
        jxy=args.jxy,
        n_slices=args.slices,
        n_sweeps=args.sweeps,
        n_thermalize=args.thermalize,
        seed=args.seed,
        layout=layout,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        metrics_out=args.metrics_out,
        trace_out=args.trace_out,
        obs_interval=args.obs_interval,
        health=args.health,
        health_rules=args.health_rules,
        events_out=args.events_out,
    )
    result = Simulation(cfg).run()
    return _finish_run(result, args)


def _cmd_run_tfim(args) -> int:
    shape = tuple(int(x) for x in args.shape.lower().split("x"))
    layout = ParallelLayout(args.strategy, args.ranks, args.machine,
                            args.backend, overlap=args.overlap,
                            kernel=args.kernel, replicas=args.replicas)
    cfg = TfimRunConfig(
        spatial_shape=shape,
        beta=args.beta,
        j=args.j,
        gamma=args.gamma,
        n_slices=args.slices,
        n_sweeps=args.sweeps,
        n_thermalize=args.thermalize,
        seed=args.seed,
        layout=layout,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        metrics_out=args.metrics_out,
        trace_out=args.trace_out,
        obs_interval=args.obs_interval,
        health=args.health,
        health_rules=args.health_rules,
        events_out=args.events_out,
    )
    result = Simulation(cfg).run()
    return _finish_run(result, args)


def _cmd_machines(_args) -> int:
    table = Table(
        "calibrated machine models",
        ["name", "MFLOP/s/node", "latency [us]", "MB/s", "topology", "max nodes"],
    )
    for m in MACHINES.values():
        bandwidth = (1.0 / m.byte_time / 1e6) if m.byte_time else float("inf")
        table.add_row(
            [m.name, m.flops / 1e6, m.latency * 1e6, bandwidth,
             m.topology_name, m.max_nodes]
        )
    print(table.render())
    return 0


def _cmd_scaling(args) -> int:
    from repro.qmc.classical_ising import FLOPS_PER_SPIN_UPDATE
    from repro.vmp.performance import PerformanceModel, WorkloadShape

    machine = MACHINES[args.machine]
    w = WorkloadShape(
        lx=args.lx,
        ly=args.ly,
        lt=args.slices,
        flops_per_site=2 * FLOPS_PER_SPIN_UPDATE,
        sweeps=1000,
        bytes_per_site=1,
        strategy=args.strategy,
        measurement_interval=10,
    )
    pm = PerformanceModel(machine, w)
    table = Table(
        f"{machine.name}, {args.strategy} decomposition, "
        f"{args.lx}x{args.ly}x{args.slices}",
        ["P", "T[s]", "speedup", "efficiency", "comm frac"],
    )
    p = 1
    while p <= min(args.max_p, machine.max_nodes):
        try:
            table.add_row(
                [p, pm.time(p), pm.speedup(p), pm.efficiency(p), pm.comm_fraction(p)]
            )
        except ValueError as exc:
            print(f"(stopping at P={p}: {exc})")
            break
        p *= 2
    print(table.render())
    return 0


def _cmd_run_campaign(args) -> int:
    from repro.run.campaign import load_campaign_spec, run_campaign
    from repro.run.reporting import StatusReporter

    reporter = StatusReporter(quiet=args.quiet)
    spec = load_campaign_spec(args.spec)
    progress = None if args.quiet else (lambda msg: print(msg, flush=True))
    result = run_campaign(
        spec,
        out_dir=args.output_dir,
        jobs=args.jobs,
        resume=args.resume,
        timeout=args.timeout,
        retries=args.retries,
        policy=args.policy,
        progress=progress,
    )
    reporter.info(result.summary_table())
    reporter.info(f"campaign manifest: {result.out_dir / 'campaign.json'}")
    reporter.flush()
    return 0 if result.ok else 1


def _cmd_report(args) -> int:
    import json
    from pathlib import Path

    from repro.obs.report import (
        build_report,
        discover_campaigns,
        discover_runs,
        load_campaign,
        load_run,
        render_html,
        render_text,
    )

    manifests = discover_runs(args.paths)
    campaigns = [load_campaign(c) for c in discover_campaigns(args.paths)]
    report = build_report([load_run(m) for m in manifests], campaigns)
    if args.format == "html":
        rendered = render_html(report)
    elif args.format == "json":
        rendered = json.dumps(report, indent=2, sort_keys=True) + "\n"
    else:
        rendered = render_text(report)
    if args.out:
        Path(args.out).write_text(rendered)
        print(f"report written to {args.out}")
    else:
        sys.stdout.write(rendered)
    return 0


_COMMANDS = {
    "run-xxz": _cmd_run_xxz,
    "run-xxz2d": _cmd_run_xxz2d,
    "run-tfim": _cmd_run_tfim,
    "run-campaign": _cmd_run_campaign,
    "machines": _cmd_machines,
    "scaling": _cmd_scaling,
    "report": _cmd_report,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ValueError, KeyError, KernelUnavailableError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # An interrupted campaign has already persisted every completed
        # run's status document; re-invoking with --resume serves those
        # from the cache.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
