"""repro -- parallel world-line quantum Monte Carlo on a simulated MPP.

Reproduction of *"Monte Carlo simulations of Quantum systems on
massively parallel computers"* (SC 1993); see DESIGN.md for the scope
and the paper-text mismatch notice.

Quick start::

    from repro import Simulation, XXZRunConfig, ParallelLayout

    cfg = XXZRunConfig(n_sites=16, beta=1.0, n_slices=16,
                       layout=ParallelLayout("strip", 4, "Paragon"))
    print(Simulation(cfg).run().summary())

Subpackages
-----------
``repro.qmc``
    World-line XXZ sampler, TFIM sampler, VMC baseline, parallel
    drivers (strip / block / replica / tempering).
``repro.vmp``
    The virtual massively parallel machine: MPI-like communicator,
    machine models (CM-5, Paragon, Delta, nCUBE-2), topologies,
    performance model.
``repro.models``
    Hamiltonians and exact references (ED, free fermions, Onsager).
``repro.stats``
    Binning, jackknife, autocorrelation, reweighting, WHAM.
``repro.lattice``
    Lattices and domain decompositions.
``repro.util``
    Log-space arithmetic, RNG streams, timers, table rendering.
"""

from repro.run import (
    CampaignResult,
    CampaignSpec,
    ObservableEstimate,
    ParallelLayout,
    RunResult,
    Simulation,
    TfimRunConfig,
    XXZ2DRunConfig,
    XXZRunConfig,
    load_campaign_spec,
    load_checkpoint,
    load_result,
    run_campaign,
    save_checkpoint,
    save_result,
)

__version__ = "1.0.0"

__all__ = [
    "Simulation",
    "XXZRunConfig",
    "XXZ2DRunConfig",
    "TfimRunConfig",
    "ParallelLayout",
    "RunResult",
    "ObservableEstimate",
    "save_result",
    "load_result",
    "save_checkpoint",
    "load_checkpoint",
    "CampaignSpec",
    "CampaignResult",
    "load_campaign_spec",
    "run_campaign",
    "__version__",
]
