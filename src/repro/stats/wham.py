"""Multiple-histogram reweighting (Ferrenberg--Swendsen / WHAM).

Combines energy histograms measured at several inverse temperatures
``beta_i`` into one density-of-states estimate

    g(E) = sum_i h_i(E) / sum_i M_i Z_i^{-1} exp(-beta_i E)

with the partition functions determined self-consistently from

    Z_i = sum_E g(E) exp(-beta_i E).

Everything runs in log-space (see :mod:`repro.util.logspace`): the
density of states of even a 16x16 Ising model spans ~70 orders of
magnitude, so linear-space iteration overflows immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stats.histogram import EnergyHistogram
from repro.util.logspace import logsumexp

__all__ = ["WhamResult", "multi_histogram_reweight"]


@dataclass
class WhamResult:
    """Converged multi-histogram estimate.

    Attributes
    ----------
    energies:
        Bin centers (only bins with at least one count across all
        threads are retained).
    log_g:
        Log density of states on those bins, normalized so that
        ``log_g[0] == 0`` (an overall constant is unobservable).
    log_z:
        Log partition functions of the input threads, same gauge.
    betas:
        The input inverse temperatures.
    iterations:
        Number of self-consistency iterations performed.
    converged:
        Whether the fixed point was reached within tolerance.
    """

    energies: np.ndarray
    log_g: np.ndarray
    log_z: np.ndarray
    betas: np.ndarray
    iterations: int
    converged: bool

    def log_partition(self, beta: float) -> float:
        """Interpolated ``log Z(beta)`` from the combined density of states."""
        return float(logsumexp(self.log_g - beta * self.energies))

    def canonical_distribution(self, beta: float) -> np.ndarray:
        """Normalized canonical probability over the retained bins."""
        lw = self.log_g - beta * self.energies
        return np.exp(lw - logsumexp(lw))

    def mean_energy(self, beta: float) -> float:
        """``<E>`` at an arbitrary (interpolated) inverse temperature."""
        p = self.canonical_distribution(beta)
        return float(np.dot(p, self.energies))

    def specific_heat(self, beta: float) -> float:
        """``C = beta^2 (<E^2> - <E>^2)`` at inverse temperature ``beta``."""
        p = self.canonical_distribution(beta)
        m1 = float(np.dot(p, self.energies))
        m2 = float(np.dot(p, self.energies**2))
        return beta**2 * (m2 - m1 * m1)

    def entropy(self) -> np.ndarray:
        """Microcanonical entropy ``S(E) = log g(E)`` (gauge: S[0]=0)."""
        return self.log_g.copy()


def multi_histogram_reweight(
    histograms: Sequence[EnergyHistogram],
    betas: Sequence[float],
    max_iter: int = 2000,
    tol: float = 1e-10,
) -> WhamResult:
    """Iterate the WHAM equations to convergence in log-space.

    Parameters
    ----------
    histograms:
        Energy histograms on one *shared* grid, one per temperature
        thread.
    betas:
        Inverse temperature of each thread (same order).
    max_iter, tol:
        Stop when the max absolute change of any ``log Z_i`` between
        iterations falls below ``tol`` (or after ``max_iter``).
    """
    if len(histograms) != len(betas):
        raise ValueError("need one beta per histogram")
    if len(histograms) == 0:
        raise ValueError("need at least one histogram")
    grid = (histograms[0].e_min, histograms[0].e_max, histograms[0].n_bins)
    for h in histograms[1:]:
        if (h.e_min, h.e_max, h.n_bins) != grid:
            raise ValueError("all histograms must share one bin grid")

    betas_arr = np.asarray(betas, dtype=float)
    counts = np.stack([h.counts for h in histograms])  # (I, K)
    m_i = np.array([h.n_samples for h in histograms], dtype=float)
    if np.any(m_i == 0):
        raise ValueError("every thread must contain at least one sample")

    support = np.nonzero(counts.sum(axis=0))[0]
    if support.size == 0:
        raise ValueError("all histograms are empty")
    energies = histograms[0].bin_centers[support]
    counts = counts[:, support].astype(float)

    with np.errstate(divide="ignore"):
        log_total_counts = np.log(counts.sum(axis=0))  # (K,) finite on support
        log_m = np.log(m_i)

    # beta_i * E_k matrix, fixed throughout the iteration.
    be = betas_arr[:, None] * energies[None, :]  # (I, K)

    log_z = np.zeros(len(histograms))
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        # Denominator: log sum_i exp(log M_i - log Z_i - beta_i E_k).
        log_denom = logsumexp(log_m[:, None] - log_z[:, None] - be, axis=0)  # (K,)
        log_g = log_total_counts - log_denom
        log_g = log_g - log_g[0]  # gauge fixing
        new_log_z = logsumexp(log_g[None, :] - be, axis=1)  # (I,)
        delta = float(np.max(np.abs(new_log_z - log_z)))
        log_z = new_log_z
        if delta < tol:
            converged = True
            break

    log_denom = logsumexp(log_m[:, None] - log_z[:, None] - be, axis=0)
    log_g = log_total_counts - log_denom
    log_g = log_g - log_g[0]

    return WhamResult(
        energies=energies,
        log_g=log_g,
        log_z=np.asarray(log_z),
        betas=betas_arr,
        iterations=iteration,
        converged=converged,
    )
