"""Binning (blocking) analysis for correlated Monte Carlo time series.

Markov-chain samples are correlated, so the naive error
``sigma / sqrt(M)`` underestimates the true statistical error by a
factor ``sqrt(2 * tau_int)``.  Binning groups the series into blocks of
growing length; once blocks are longer than the autocorrelation time
the block means are effectively independent and the naive error of the
*block means* converges (plateaus) to the true error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["binning_levels", "binned_error", "BinningAnalysis"]


def _block_means(x: np.ndarray, block: int) -> np.ndarray:
    """Means of consecutive length-``block`` blocks (tail discarded)."""
    n = (len(x) // block) * block
    if n == 0:
        raise ValueError(f"series of length {len(x)} too short for block size {block}")
    return x[:n].reshape(-1, block).mean(axis=1)


def binning_levels(series: np.ndarray, min_blocks: int = 8) -> list[tuple[int, float]]:
    """Naive standard error of block means for block sizes 1, 2, 4, ...

    Returns ``[(block_size, error), ...]`` for every power-of-two block
    size that leaves at least ``min_blocks`` blocks.  The plateau of the
    error sequence is the true statistical error of the mean.
    """
    x = np.asarray(series, dtype=float).ravel()
    if x.size < 2 * min_blocks:
        raise ValueError(
            f"need at least {2 * min_blocks} samples for a binning analysis, got {x.size}"
        )
    levels = []
    block = 1
    while x.size // block >= min_blocks:
        means = _block_means(x, block)
        m = means.size
        err = float(means.std(ddof=1) / math.sqrt(m))
        levels.append((block, err))
        block *= 2
    return levels


def binned_error(series: np.ndarray, min_blocks: int = 8) -> float:
    """Plateau estimate of the statistical error of ``mean(series)``.

    Uses the largest usable block size.  For an uncorrelated series this
    coincides (up to noise) with ``std/sqrt(M)``; for correlated series
    it is larger by ``sqrt(2 tau_int)``.
    """
    levels = binning_levels(series, min_blocks=min_blocks)
    return levels[-1][1]


@dataclass
class BinningAnalysis:
    """Full binning analysis of one scalar time series.

    Attributes
    ----------
    mean:
        Sample mean of the series.
    naive_error:
        ``std/sqrt(M)`` ignoring correlations (binning level 0).
    error:
        Plateau (largest-block) error estimate.
    tau_int:
        Implied integrated autocorrelation time,
        ``0.5 * (error/naive_error)**2``; equals 0.5 for an
        uncorrelated series by convention.
    levels:
        The raw ``(block_size, error)`` ladder.
    """

    mean: float
    naive_error: float
    error: float
    tau_int: float
    levels: list[tuple[int, float]]

    @classmethod
    def from_series(cls, series: np.ndarray, min_blocks: int = 8) -> "BinningAnalysis":
        x = np.asarray(series, dtype=float).ravel()
        levels = binning_levels(x, min_blocks=min_blocks)
        naive = levels[0][1]
        err = levels[-1][1]
        if naive > 0:
            tau = 0.5 * (err / naive) ** 2
        else:
            tau = 0.5
        return cls(
            mean=float(x.mean()),
            naive_error=naive,
            error=err,
            tau_int=tau,
            levels=levels,
        )

    def is_converged(self, rtol: float = 0.15) -> bool:
        """Whether the last two binning levels agree within ``rtol``.

        A non-converged ladder means the series is shorter than ~100
        autocorrelation times and the quoted error is a lower bound.
        """
        if len(self.levels) < 2:
            return False
        (_, e1), (_, e2) = self.levels[-2], self.levels[-1]
        if e2 == 0:
            return e1 == 0
        return abs(e2 - e1) / e2 <= rtol
