"""Bootstrap resampling (Efron) for derived observables.

The jackknife's sibling: instead of delete-one-block resamples, draw
``n_resamples`` datasets *with replacement* (at block granularity, to
respect autocorrelation) and take the spread of the estimator over them
as its error.  Preferable to the jackknife for strongly nonlinear
estimators (medians, maxima of reweighted curves) where the linear
jackknife variance misbehaves.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["bootstrap", "block_bootstrap_indices"]


def block_bootstrap_indices(
    n_samples: int, block: int, rng: np.random.Generator
) -> np.ndarray:
    """Index array of one block-bootstrap resample.

    The series is cut into contiguous blocks of length ``block`` (tail
    dropped); blocks are drawn with replacement and concatenated.
    """
    if block < 1:
        raise ValueError("block length must be >= 1")
    n_blocks = n_samples // block
    if n_blocks < 2:
        raise ValueError(
            f"series of {n_samples} too short for block length {block}"
        )
    starts = rng.integers(0, n_blocks, size=n_blocks) * block
    return (starts[:, None] + np.arange(block)[None, :]).ravel()


def bootstrap(
    estimator: Callable[..., float],
    series: Sequence[np.ndarray] | np.ndarray,
    n_resamples: int = 200,
    block: int = 1,
    seed: int = 0,
) -> tuple[float, float]:
    """Bootstrap estimate and error of ``estimator`` over (blocked) series.

    Parameters
    ----------
    estimator:
        Function of one or more sample arrays returning a scalar.
    series:
        One 1-D array or a sequence of equal-length 1-D arrays
        (resampled jointly, preserving cross-correlations).
    n_resamples:
        Bootstrap replicates.
    block:
        Block length; set it to a few autocorrelation times (use the
        binning analysis) so resampled blocks are independent.

    Returns
    -------
    (value, error):
        The full-sample estimate and the standard deviation of the
        bootstrap distribution.
    """
    if isinstance(series, np.ndarray) and series.ndim == 1:
        arrays = [np.asarray(series, dtype=float)]
    else:
        arrays = [np.asarray(s, dtype=float).ravel() for s in series]
    n = arrays[0].size
    if any(a.size != n for a in arrays):
        raise ValueError("all observable series must have equal length")
    if n_resamples < 2:
        raise ValueError("need at least 2 resamples")

    value = float(estimator(*arrays))
    rng = np.random.default_rng(seed)
    replicates = np.empty(n_resamples)
    for k in range(n_resamples):
        idx = block_bootstrap_indices(n, block, rng)
        replicates[k] = estimator(*(a[idx] for a in arrays))
    return value, float(replicates.std(ddof=1))
