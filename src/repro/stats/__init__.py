"""Statistical error analysis and histogram reweighting.

Every Monte Carlo result in this repository is reported with an error
bar produced by the routines here:

* :mod:`repro.stats.binning` -- blocking/binning analysis for correlated
  time series (the workhorse error estimator).
* :mod:`repro.stats.jackknife` -- jackknife resampling for nonlinear
  derived quantities (specific heat, susceptibilities, ratios).
* :mod:`repro.stats.autocorr` -- autocorrelation function and integrated
  autocorrelation time.
* :mod:`repro.stats.histogram` -- energy histograms.
* :mod:`repro.stats.reweight` -- single-histogram (temperature)
  reweighting of canonical time series.
* :mod:`repro.stats.wham` -- multiple-histogram reweighting
  (Ferrenberg--Swendsen / WHAM) combining runs at several temperatures
  into one density-of-states estimate, in log-space.
"""

from repro.stats.autocorr import autocorrelation_function, integrated_autocorr_time
from repro.stats.binning import BinningAnalysis, binned_error, binning_levels
from repro.stats.finite_size import (
    BinderCurve,
    binder_cumulant,
    crossing_temperature,
)
from repro.stats.histogram import EnergyHistogram
from repro.stats.jackknife import jackknife, jackknife_blocks, jackknife_ratio
from repro.stats.reweight import reweight_observable, reweighted_moments
from repro.stats.wham import WhamResult, multi_histogram_reweight

__all__ = [
    "autocorrelation_function",
    "integrated_autocorr_time",
    "BinderCurve",
    "binder_cumulant",
    "crossing_temperature",
    "BinningAnalysis",
    "binned_error",
    "binning_levels",
    "EnergyHistogram",
    "jackknife",
    "jackknife_blocks",
    "jackknife_ratio",
    "reweight_observable",
    "reweighted_moments",
    "WhamResult",
    "multi_histogram_reweight",
]
