"""Single-histogram (single-run) temperature reweighting.

A canonical time series sampled at inverse temperature ``beta0`` can be
reweighted to a nearby ``beta``:

    <O>_beta = < O * exp(-(beta-beta0) E) >_beta0 / < exp(-(beta-beta0) E) >_beta0

All exponentials are computed relative to their maximum so the ratio is
overflow-safe for arbitrary temperature shifts (accuracy, of course,
still degrades with the distance |beta - beta0| as the effective sample
size collapses -- see :func:`effective_sample_fraction`).
"""

from __future__ import annotations

import numpy as np

from repro.stats.jackknife import jackknife

__all__ = ["reweight_observable", "reweighted_moments", "effective_sample_fraction"]


def _log_weights(energies: np.ndarray, beta0: float, beta: float) -> np.ndarray:
    e = np.asarray(energies, dtype=float).ravel()
    lw = -(beta - beta0) * e
    return lw - lw.max()


def reweight_observable(
    observable: np.ndarray,
    energies: np.ndarray,
    beta0: float,
    beta: float,
    n_blocks: int = 20,
) -> tuple[float, float]:
    """Reweighted ``<O>_beta`` with a jackknife error.

    Parameters
    ----------
    observable, energies:
        Time series measured on the same sweeps at ``beta0``.
    beta0, beta:
        Simulation and target inverse temperatures.
    """
    o = np.asarray(observable, dtype=float).ravel()
    e = np.asarray(energies, dtype=float).ravel()
    if o.size != e.size:
        raise ValueError("observable and energy series must have equal length")
    w = np.exp(_log_weights(e, beta0, beta))
    return jackknife(
        lambda ow, ww: float(np.mean(ow) / np.mean(ww)), [o * w, w], n_blocks=n_blocks
    )


def reweighted_moments(
    energies: np.ndarray, beta0: float, beta: float
) -> tuple[float, float]:
    """Reweighted ``(<E>_beta, <E^2>_beta - <E>_beta^2)`` (point estimates)."""
    e = np.asarray(energies, dtype=float).ravel()
    w = np.exp(_log_weights(e, beta0, beta))
    z = w.sum()
    m1 = float((w * e).sum() / z)
    m2 = float((w * e * e).sum() / z)
    return m1, m2 - m1 * m1


def effective_sample_fraction(
    energies: np.ndarray, beta0: float, beta: float
) -> float:
    """Kish effective sample size fraction of the reweighting weights.

    ``(sum w)^2 / (M sum w^2)`` in [1/M, 1]; values near 1 mean the
    reweighting is safe, values near 1/M mean a single sweep dominates
    and the reweighted estimate is unreliable.
    """
    e = np.asarray(energies, dtype=float).ravel()
    w = np.exp(_log_weights(e, beta0, beta))
    return float(w.sum() ** 2 / (e.size * (w * w).sum()))
