"""Finite-size scaling analysis: Binder-cumulant crossings.

The Binder cumulant ``U4(T, L) = 1 - <m^4> / (3 <m^2>^2)`` is
scale-invariant at a critical point: curves for different lattice sizes
cross at ``T_c`` (up to corrections to scaling).  Locating that
crossing was the standard era technique for extracting critical
temperatures from Monte Carlo data, and is what benchmark F12 exercises
on the 2-D Ising model against Onsager's exact ``T_c``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BinderCurve", "binder_cumulant", "crossing_temperature"]


def binder_cumulant(magnetizations: np.ndarray) -> float:
    """``U4 = 1 - <m^4>/(3 <m^2>^2)`` of a magnetization series.

    Limits: 2/3 in a perfectly ordered phase (|m| constant), 0 for a
    Gaussian-disordered phase.
    """
    m = np.asarray(magnetizations, dtype=float)
    if m.size < 2:
        raise ValueError("need at least two measurements")
    m2 = float(np.mean(m**2))
    if m2 == 0:
        return 0.0
    m4 = float(np.mean(m**4))
    return 1.0 - m4 / (3.0 * m2 * m2)


@dataclass(frozen=True)
class BinderCurve:
    """U4 versus temperature for one lattice size."""

    size: int
    temperatures: np.ndarray
    u4: np.ndarray

    def __post_init__(self):
        t = np.asarray(self.temperatures, dtype=float)
        u = np.asarray(self.u4, dtype=float)
        if t.shape != u.shape or t.ndim != 1:
            raise ValueError("temperatures and u4 must be equal-length 1-D arrays")
        if t.size < 2:
            raise ValueError("need at least two temperatures")
        if np.any(np.diff(t) <= 0):
            raise ValueError("temperatures must be strictly increasing")

    def interpolate(self, t: float) -> float:
        """Linear interpolation of U4 at temperature ``t`` (in range)."""
        t_arr = np.asarray(self.temperatures, dtype=float)
        if not t_arr[0] <= t <= t_arr[-1]:
            raise ValueError(f"t={t} outside scanned range [{t_arr[0]}, {t_arr[-1]}]")
        return float(np.interp(t, t_arr, self.u4))


def crossing_temperature(a: BinderCurve, b: BinderCurve) -> float:
    """Temperature where two Binder curves cross (linear interpolation).

    Requires the difference ``U4_a - U4_b`` to change sign exactly once
    on the common grid -- the normal situation when the scan brackets
    ``T_c`` and statistical noise is under control.  Raises otherwise
    (ambiguous data should not silently yield a number).
    """
    if a.size == b.size:
        raise ValueError("crossing needs two different lattice sizes")
    t = np.asarray(a.temperatures, dtype=float)
    if not np.array_equal(t, np.asarray(b.temperatures, dtype=float)):
        raise ValueError("curves must share one temperature grid")
    diff = np.asarray(a.u4, dtype=float) - np.asarray(b.u4, dtype=float)
    signs = np.sign(diff)
    nonzero = signs != 0
    changes = np.nonzero(np.diff(signs[nonzero]) != 0)[0]
    if changes.size == 0:
        raise ValueError("curves do not cross on the scanned grid")
    if changes.size > 1:
        raise ValueError(
            f"curves cross {changes.size} times (noisy data); refine the scan"
        )
    idx_nonzero = np.nonzero(nonzero)[0]
    k = idx_nonzero[changes[0]]
    k2 = idx_nonzero[changes[0] + 1]
    # Linear root of diff between t[k] and t[k2].
    t1, t2 = t[k], t[k2]
    d1, d2 = diff[k], diff[k2]
    return float(t1 - d1 * (t2 - t1) / (d2 - d1))
