"""Jackknife resampling for nonlinear derived observables.

Quantities like the specific heat ``C = beta^2 (<E^2> - <E>^2)`` or any
ratio of means are *nonlinear* functions of sample means; their naive
plug-in estimators are biased at O(1/M) and their errors cannot be
propagated linearly from the raw series.  The delete-one-block
jackknife handles both: it removes the leading 1/M bias and yields a
consistent error estimate, provided blocks are longer than the
autocorrelation time (combine with the binning analysis to choose the
block length).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

__all__ = ["jackknife_blocks", "jackknife", "jackknife_ratio"]


def jackknife_blocks(series: np.ndarray, n_blocks: int) -> np.ndarray:
    """Delete-one-block means: row ``k`` is the mean with block ``k`` removed.

    Accepts a 1-D series of length >= ``n_blocks``; a trailing remainder
    that does not fill a block is discarded, as is conventional.
    """
    x = np.asarray(series, dtype=float).ravel()
    if n_blocks < 2:
        raise ValueError("jackknife needs at least 2 blocks")
    block = x.size // n_blocks
    if block == 0:
        raise ValueError(f"series of length {x.size} too short for {n_blocks} blocks")
    n = block * n_blocks
    blocks = x[:n].reshape(n_blocks, block)
    total = blocks.sum()
    # Mean of all data except block k, for every k, in one vectorized pass.
    return (total - blocks.sum(axis=1)) / (n - block)


def jackknife(
    estimator: Callable[..., float],
    series: Sequence[np.ndarray] | np.ndarray,
    n_blocks: int = 20,
) -> tuple[float, float]:
    """Bias-corrected jackknife estimate and error of ``estimator``.

    Parameters
    ----------
    estimator:
        A function of one or more *sample arrays* returning a scalar
        (e.g. ``lambda e: beta**2 * (np.mean(e**2) - np.mean(e)**2)``).
        It is called once on the full data and once per delete-one-block
        resample.
    series:
        A single 1-D array or a sequence of equally long 1-D arrays
        (multiple observables measured on the same sweeps).
    n_blocks:
        Number of jackknife blocks.

    Returns
    -------
    (value, error):
        Bias-corrected point estimate and jackknife standard error.
    """
    if isinstance(series, np.ndarray) and series.ndim == 1:
        arrays = [np.asarray(series, dtype=float)]
    else:
        arrays = [np.asarray(s, dtype=float).ravel() for s in series]
    length = arrays[0].size
    if any(a.size != length for a in arrays):
        raise ValueError("all observable series must have equal length")
    block = length // n_blocks
    if block == 0:
        raise ValueError(f"series of length {length} too short for {n_blocks} blocks")
    n = block * n_blocks
    trimmed = [a[:n] for a in arrays]

    full = float(estimator(*trimmed))
    resampled = np.empty(n_blocks)
    mask = np.ones(n, dtype=bool)
    for k in range(n_blocks):
        mask[k * block : (k + 1) * block] = False
        resampled[k] = estimator(*(a[mask] for a in trimmed))
        mask[k * block : (k + 1) * block] = True

    mean_resampled = float(resampled.mean())
    # Standard jackknife bias correction and variance.
    value = n_blocks * full - (n_blocks - 1) * mean_resampled
    var = (n_blocks - 1) / n_blocks * float(np.sum((resampled - mean_resampled) ** 2))
    return value, math.sqrt(var)


def jackknife_ratio(
    numerator: np.ndarray, denominator: np.ndarray, n_blocks: int = 20
) -> tuple[float, float]:
    """Jackknife estimate of ``mean(numerator)/mean(denominator)``.

    The canonical use is reweighted averages
    ``<O w> / <w>`` where both series come from the same sweeps and are
    strongly correlated -- exactly the situation where naive error
    propagation fails.
    """
    return jackknife(
        lambda a, b: float(np.mean(a) / np.mean(b)),
        [numerator, denominator],
        n_blocks=n_blocks,
    )
