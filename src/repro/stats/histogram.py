"""Energy histograms with a fixed binning grid.

A shared grid is what lets histograms from different temperature
threads be combined by WHAM: bin ``k`` means the same energy interval
in every thread.  The class stores raw counts (integers) plus the
number of sweeps, so normalization choices stay explicit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EnergyHistogram"]


class EnergyHistogram:
    """Histogram of a scalar observable on a uniform bin grid.

    Parameters
    ----------
    e_min, e_max:
        Inclusive range covered by the grid.  Samples outside the range
        raise by default (they indicate a mis-sized grid) unless
        ``clip=True``.
    n_bins:
        Number of uniform bins.
    """

    def __init__(self, e_min: float, e_max: float, n_bins: int, clip: bool = False):
        if not e_max > e_min:
            raise ValueError(f"need e_max > e_min, got [{e_min}, {e_max}]")
        if n_bins < 1:
            raise ValueError("need at least one bin")
        self.e_min = float(e_min)
        self.e_max = float(e_max)
        self.n_bins = int(n_bins)
        self.clip = bool(clip)
        self.counts = np.zeros(n_bins, dtype=np.int64)
        self.n_samples = 0

    # -- grid geometry -------------------------------------------------
    @property
    def bin_width(self) -> float:
        return (self.e_max - self.e_min) / self.n_bins

    @property
    def bin_centers(self) -> np.ndarray:
        return self.e_min + (np.arange(self.n_bins) + 0.5) * self.bin_width

    def bin_index(self, energy: np.ndarray | float) -> np.ndarray:
        """Bin indices for the given energies (vectorized)."""
        e = np.atleast_1d(np.asarray(energy, dtype=float))
        idx = np.floor((e - self.e_min) / self.bin_width).astype(np.int64)
        # The right edge belongs to the last bin.
        idx[e == self.e_max] = self.n_bins - 1
        out_of_range = (idx < 0) | (idx >= self.n_bins)
        if np.any(out_of_range):
            if not self.clip:
                bad = e[out_of_range][0]
                raise ValueError(
                    f"sample {bad} outside histogram range [{self.e_min}, {self.e_max}]"
                )
            idx = np.clip(idx, 0, self.n_bins - 1)
        return idx

    # -- accumulation ----------------------------------------------------
    def add(self, energy: np.ndarray | float) -> None:
        """Accumulate one sample or an array of samples."""
        idx = self.bin_index(energy)
        np.add.at(self.counts, idx, 1)
        self.n_samples += idx.size

    def merge(self, other: "EnergyHistogram") -> None:
        """Accumulate another histogram on the identical grid in place."""
        if (other.e_min, other.e_max, other.n_bins) != (self.e_min, self.e_max, self.n_bins):
            raise ValueError("histograms live on different grids")
        self.counts += other.counts
        self.n_samples += other.n_samples

    # -- views -----------------------------------------------------------
    def normalized(self) -> np.ndarray:
        """Probability density estimate (integrates to 1 over the grid)."""
        if self.n_samples == 0:
            raise ValueError("empty histogram")
        return self.counts / (self.n_samples * self.bin_width)

    def nonzero_support(self) -> np.ndarray:
        """Indices of bins with at least one count."""
        return np.nonzero(self.counts)[0]

    def flatness(self) -> float:
        """min/mean ratio over occupied bins (1 = perfectly flat).

        The multicanonical/Wang-Landau stopping criterion.  Returns 0
        for an empty histogram.
        """
        occupied = self.counts[self.counts > 0]
        if occupied.size == 0:
            return 0.0
        return float(occupied.min() / occupied.mean())

    def __repr__(self) -> str:
        return (
            f"EnergyHistogram([{self.e_min}, {self.e_max}], n_bins={self.n_bins}, "
            f"n_samples={self.n_samples})"
        )
