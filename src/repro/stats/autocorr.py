"""Autocorrelation function and integrated autocorrelation time.

The integrated autocorrelation time ``tau_int`` measures how many
sweeps separate effectively independent measurements; the effective
statistics of a length-``M`` series is ``M / (2 tau_int)``.  Comparing
``tau_int`` between samplers (local Metropolis vs parallel tempering)
is the standard efficiency metric and is what benchmark F7 reports.
"""

from __future__ import annotations

import numpy as np

__all__ = ["autocorrelation_function", "integrated_autocorr_time"]


def autocorrelation_function(series: np.ndarray, max_lag: int | None = None) -> np.ndarray:
    """Normalized autocorrelation ``A(t)`` for lags ``0..max_lag``.

    Computed via FFT in O(M log M).  ``A(0) == 1`` by construction; a
    constant series (zero variance) returns ``A(t>0) == 0`` rather than
    dividing by zero.
    """
    x = np.asarray(series, dtype=float).ravel()
    m = x.size
    if m < 2:
        raise ValueError("need at least 2 samples")
    if max_lag is None:
        max_lag = m // 4
    max_lag = min(max_lag, m - 1)
    x = x - x.mean()
    # FFT-based autocovariance with zero padding to avoid circular wrap.
    nfft = 1 << (2 * m - 1).bit_length()
    f = np.fft.rfft(x, nfft)
    acov = np.fft.irfft(f * np.conjugate(f), nfft)[: max_lag + 1]
    acov /= np.arange(m, m - max_lag - 1, -1)  # unbiased normalization
    if acov[0] <= 0:
        out = np.zeros(max_lag + 1)
        out[0] = 1.0
        return out
    return acov / acov[0]


def integrated_autocorr_time(
    series: np.ndarray, c: float = 6.0, max_lag: int | None = None
) -> float:
    """Integrated autocorrelation time with automatic windowing.

    Uses the standard self-consistent window (Sokal): sum ``A(t)`` up to
    the smallest ``W`` with ``W >= c * tau_int(W)``.  Returns a value
    ``>= 0.5``; an uncorrelated series gives ``~0.5`` (so that
    ``M_eff = M / (2 tau) = M``).
    """
    a = autocorrelation_function(series, max_lag=max_lag)
    tau = 0.5
    for w in range(1, len(a)):
        tau = 0.5 + float(np.sum(a[1 : w + 1]))
        if w >= c * tau:
            break
    return max(tau, 0.5)
