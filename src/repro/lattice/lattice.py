"""Finite lattices with periodic boundaries.

These are *spatial* lattices; the QMC kernels extend them with a
Trotter (imaginary-time) axis themselves.  Bonds carry a *color* --
the index of the Suzuki--Trotter breakup term they belong to -- such
that bonds of one color share no site and can be updated
simultaneously (the vectorization and parallelization unit).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Chain", "SquareLattice"]


class Chain:
    """1-D chain of ``n_sites`` spins.

    Periodic chains used with the checkerboard breakup must have an
    even number of sites, so that bonds split into the two
    non-overlapping colors (even bonds ``(2i, 2i+1)``, odd bonds
    ``(2i+1, 2i+2)``).
    """

    def __init__(self, n_sites: int, periodic: bool = True):
        if n_sites < 2:
            raise ValueError("chain needs at least 2 sites")
        if periodic and n_sites % 2:
            raise ValueError(
                "periodic checkerboard chains need an even site count, "
                f"got {n_sites}"
            )
        self.n_sites = int(n_sites)
        self.periodic = bool(periodic)

    @property
    def n_bonds(self) -> int:
        return self.n_sites if self.periodic else self.n_sites - 1

    def bonds(self) -> list[tuple[int, int, int]]:
        """All bonds as ``(site_a, site_b, color)`` with color = a mod 2."""
        out = []
        for a in range(self.n_bonds):
            b = (a + 1) % self.n_sites
            out.append((a, b, a % 2))
        return out

    def bonds_of_color(self, color: int) -> np.ndarray:
        """Left sites of all bonds of one color, as an index array."""
        if color not in (0, 1):
            raise ValueError("chain bonds have colors 0 and 1")
        return np.array(
            [a for a, _, c in self.bonds() if c == color], dtype=np.intp
        )

    def neighbors(self, site: int) -> list[int]:
        if not 0 <= site < self.n_sites:
            raise ValueError(f"site {site} out of range")
        out = []
        if self.periodic:
            return [(site - 1) % self.n_sites, (site + 1) % self.n_sites]
        if site > 0:
            out.append(site - 1)
        if site < self.n_sites - 1:
            out.append(site + 1)
        return out

    def sublattice(self, site: int) -> int:
        """Bipartite sublattice index (0 = A, 1 = B)."""
        return site % 2

    def __repr__(self) -> str:
        bc = "periodic" if self.periodic else "open"
        return f"Chain(n_sites={self.n_sites}, {bc})"


class SquareLattice:
    """2-D square lattice, sites indexed row-major as ``x * ly + y``.

    Bonds carry four colors (two x-direction, two y-direction,
    alternating), the standard 2-D checkerboard breakup.  Periodic
    directions must have even extent for the coloring to close.
    """

    def __init__(self, lx: int, ly: int, periodic: bool = True):
        if lx < 2 or ly < 2:
            raise ValueError("square lattice needs extents >= 2")
        if periodic and (lx % 2 or ly % 2):
            raise ValueError("periodic checkerboard lattices need even extents")
        self.lx, self.ly = int(lx), int(ly)
        self.periodic = bool(periodic)

    @property
    def n_sites(self) -> int:
        return self.lx * self.ly

    def site(self, x: int, y: int) -> int:
        return (x % self.lx) * self.ly + (y % self.ly)

    def coords(self, site: int) -> tuple[int, int]:
        if not 0 <= site < self.n_sites:
            raise ValueError(f"site {site} out of range")
        return divmod(site, self.ly)

    def bonds(self) -> list[tuple[int, int, int]]:
        """Bonds as ``(a, b, color)``; colors 0/1 along x, 2/3 along y."""
        out = []
        for x in range(self.lx):
            for y in range(self.ly):
                a = self.site(x, y)
                if self.periodic or x + 1 < self.lx:
                    out.append((a, self.site(x + 1, y), x % 2))
                if self.periodic or y + 1 < self.ly:
                    out.append((a, self.site(x, y + 1), 2 + y % 2))
        return out

    @property
    def n_bonds(self) -> int:
        return len(self.bonds())

    def neighbors(self, site: int) -> list[int]:
        x, y = self.coords(site)
        out = []
        for dx, dy in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            nx, ny = x + dx, y + dy
            if self.periodic:
                out.append(self.site(nx, ny))
            elif 0 <= nx < self.lx and 0 <= ny < self.ly:
                out.append(self.site(nx, ny))
        # PBC on a 2-wide lattice duplicates neighbors; keep them unique.
        seen: list[int] = []
        for s in out:
            if s not in seen and s != site:
                seen.append(s)
        return seen

    def sublattice(self, site: int) -> int:
        x, y = self.coords(site)
        return (x + y) % 2

    def __repr__(self) -> str:
        bc = "periodic" if self.periodic else "open"
        return f"SquareLattice({self.lx}x{self.ly}, {bc})"
