"""Lattice geometry and domain decomposition.

* :mod:`repro.lattice.lattice` -- chains and square lattices with
  periodic boundaries, bond lists, and bipartite (checkerboard)
  colorings.
* :mod:`repro.lattice.decomposition` -- strip and block domain
  decompositions with owned/ghost index bookkeeping for halo exchange.
"""

from repro.lattice.decomposition import BlockDecomposition, StripDecomposition
from repro.lattice.lattice import Chain, SquareLattice

__all__ = ["Chain", "SquareLattice", "StripDecomposition", "BlockDecomposition"]
