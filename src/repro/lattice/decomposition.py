"""Domain decompositions with owned/ghost bookkeeping.

A decomposition assigns each spatial site (column of the space--time
lattice) to exactly one rank and records, per rank, which remote
columns it must mirror as *ghosts* to evaluate its boundary plaquettes.
The QMC parallel drivers use these index maps for halo exchange; the
performance model uses the same geometry for its byte counts, keeping
executed and modeled communication consistent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "StripDecomposition",
    "BlockDecomposition",
    "HaloSpec",
    "OverlapPartition",
    "pack_plane",
    "unpack_plane",
]


# ----------------------------------------------------------------------
# aggregated-halo protocol helpers
# ----------------------------------------------------------------------


def pack_plane(plane: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
    """Pack one boundary plane into a single contiguous wire buffer.

    With ``mask=None`` the whole plane ships (measurement exchanges);
    with a boolean ``mask`` only the selected sites ship, flattened in
    C order -- the checkerboard drivers use this to send just the
    parity a color actually reads, halving the bytes per message.
    """
    if mask is None:
        return np.ascontiguousarray(plane)
    return plane[mask]


def unpack_plane(
    dest: np.ndarray, buf: np.ndarray, mask: np.ndarray | None = None
) -> None:
    """Scatter a wire buffer produced by :func:`pack_plane` into ``dest``.

    Pack and unpack both traverse the mask in C order, so as long as
    sender and receiver evaluate the mask at the same *global* plane
    coordinate the sites land where they came from.
    """
    if mask is None:
        dest[...] = buf
    else:
        dest[mask] = buf


@dataclass(frozen=True)
class HaloSpec:
    """Modeled shape of one rank's aggregated halo exchange.

    Under the alpha--beta cost model a message of ``n`` bytes costs
    ``alpha + n * beta``; aggregating the ``w`` boundary columns (or
    the packed plane) a neighbor needs into ONE buffer pays a single
    alpha per neighbor per exchange instead of ``w`` of them, while
    the beta (bandwidth) term is unchanged -- the protocol both
    drivers in :mod:`repro.qmc.parallel` implement.

    Attributes
    ----------
    neighbors:
        Ranks this rank exchanges with (2 for strips; 2 or 4 for
        blocks depending on which axes the process grid splits).
    sites_per_message:
        Lattice sites packed into the single per-neighbor buffer.
    messages_per_neighbor:
        Messages sent to each neighbor per exchange (1 = aggregated).
    """

    neighbors: int
    sites_per_message: float
    messages_per_neighbor: int = 1

    @property
    def messages_per_exchange(self) -> int:
        return self.neighbors * self.messages_per_neighbor

    def bytes_per_message(self, bytes_per_site: int = 1) -> float:
        return self.sites_per_message * bytes_per_site

    def seconds_per_exchange(self, machine, bytes_per_site: int = 1,
                             hops: int = 1) -> float:
        """Alpha--beta cost of one full exchange on ``machine``."""
        per_message = machine.message_time(
            int(round(self.bytes_per_message(bytes_per_site))), hops
        )
        return self.messages_per_exchange * per_message

    def post_seconds_per_exchange(self, machine) -> float:
        """CPU cost of *posting* one overlapped exchange.

        Under the offloaded cost convention (see
        :mod:`repro.vmp.comm`) each message costs the CPU one isend
        post and one irecv post; the wire transfer itself rides the
        message coprocessor and can hide behind interior computation.
        """
        return self.messages_per_exchange * 2.0 * machine.post_overhead

    def wire_seconds_per_message(self, machine, bytes_per_site: int = 1,
                                 hops: int = 1) -> float:
        """In-flight time of one halo message (what overlap must hide)."""
        return machine.message_time(
            int(round(self.bytes_per_message(bytes_per_site))), hops
        )


@dataclass(frozen=True)
class OverlapPartition:
    """One independence class's site split for the overlap pipeline.

    ``interior`` and ``boundary`` are boolean masks over the class's
    index table (same length, elementwise complementary): interior
    entries touch no ghost data and may be updated while halo messages
    are in flight; boundary entries read ghost planes and must wait for
    the exchange to complete.  Built once per class by the
    decomposition and cached, analogous to the drivers' fused gather
    tables.
    """

    interior: np.ndarray
    boundary: np.ndarray

    def __post_init__(self):
        if self.interior.shape != self.boundary.shape:
            raise ValueError("interior/boundary masks must share a shape")

    @property
    def n_interior(self) -> int:
        return int(np.count_nonzero(self.interior))

    @property
    def n_boundary(self) -> int:
        return int(np.count_nonzero(self.boundary))

    @property
    def all_boundary(self) -> bool:
        """True when nothing can overlap (degenerate thin strip)."""
        return self.n_interior == 0


@dataclass(frozen=True)
class StripPiece:
    """One rank's share of a 1-D strip decomposition."""

    rank: int
    start: int  # first owned column (global index)
    stop: int  # one past last owned column
    left_rank: int
    right_rank: int

    @property
    def n_owned(self) -> int:
        return self.stop - self.start

    def owned_slice(self) -> slice:
        return slice(self.start, self.stop)


class StripDecomposition:
    """Contiguous 1-D split of ``n_columns`` columns over ``n_ranks`` ranks.

    Columns are dealt in contiguous blocks of near-equal size (the first
    ``n_columns % n_ranks`` ranks get one extra).  For checkerboard QMC
    each rank's block size must be even so bond colors align across rank
    boundaries; ``require_even=True`` enforces this.
    """

    def __init__(self, n_columns: int, n_ranks: int, require_even: bool = False):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        if n_columns < n_ranks:
            raise ValueError(
                f"cannot split {n_columns} columns over {n_ranks} ranks "
                "(each rank needs at least one column)"
            )
        self.n_columns = int(n_columns)
        self.n_ranks = int(n_ranks)
        base, extra = divmod(n_columns, n_ranks)
        sizes = [base + (1 if r < extra else 0) for r in range(n_ranks)]
        if require_even and any(s % 2 for s in sizes):
            raise ValueError(
                f"strip decomposition of {n_columns} columns over {n_ranks} ranks "
                f"yields odd block sizes {sizes}; checkerboard QMC needs even blocks"
            )
        starts = np.concatenate([[0], np.cumsum(sizes)])
        self.pieces = [
            StripPiece(
                rank=r,
                start=int(starts[r]),
                stop=int(starts[r + 1]),
                left_rank=(r - 1) % n_ranks,
                right_rank=(r + 1) % n_ranks,
            )
            for r in range(n_ranks)
        ]
        self._overlap_cache: dict = {}

    def piece(self, rank: int) -> StripPiece:
        return self.pieces[rank]

    def overlap_partition(
        self, key, local_indices: np.ndarray, lo: int, hi: int
    ) -> OverlapPartition:
        """Cached interior/boundary split of one class's local indices.

        ``local_indices`` is the class's table of local coordinates
        (bond or column indices in the rank's ghosted frame) and
        ``[lo, hi]`` the inclusive range whose stencil stays entirely
        inside owned columns -- entries inside the range are interior,
        the rest are boundary.  Results are cached under ``key`` (one
        per independence class), so repeated sweeps reuse the same
        mask objects, mirroring the fused gather tables.
        """
        part = self._overlap_cache.get(key)
        if part is None:
            idx = np.asarray(local_indices)
            interior = (idx >= lo) & (idx <= hi)
            part = OverlapPartition(interior=interior, boundary=~interior)
            self._overlap_cache[key] = part
        return part

    def halo_spec(self, n_slices: int, ghost_width: int = 2) -> HaloSpec:
        """Aggregated halo of the strip world-line driver.

        Each exchange ships the ``ghost_width`` boundary columns a
        neighbor mirrors as one ``(ghost_width, n_slices)`` buffer.
        """
        if self.n_ranks == 1:
            return HaloSpec(neighbors=0, sites_per_message=0.0)
        return HaloSpec(neighbors=2, sites_per_message=float(ghost_width * n_slices))

    def owner_of(self, column: int) -> int:
        """Rank owning a global column index."""
        if not 0 <= column < self.n_columns:
            raise ValueError(f"column {column} out of range")
        for p in self.pieces:
            if p.start <= column < p.stop:
                return p.rank
        raise AssertionError("unreachable")

    def scatter(self, global_array: np.ndarray, rank: int) -> np.ndarray:
        """The slice of a (columns, ...) array owned by ``rank`` (copy)."""
        p = self.pieces[rank]
        return np.array(global_array[p.start : p.stop])

    def gather(self, locals_: list[np.ndarray]) -> np.ndarray:
        """Reassemble per-rank owned slices into the global array."""
        if len(locals_) != self.n_ranks:
            raise ValueError("need one local array per rank")
        for r, arr in enumerate(locals_):
            if arr.shape[0] != self.pieces[r].n_owned:
                raise ValueError(
                    f"rank {r} supplied {arr.shape[0]} columns, owns "
                    f"{self.pieces[r].n_owned}"
                )
        return np.concatenate(locals_, axis=0)


@dataclass(frozen=True)
class BlockPiece:
    """One rank's rectangular share of a 2-D block decomposition."""

    rank: int
    x_start: int
    x_stop: int
    y_start: int
    y_stop: int
    north: int  # rank owning the +y neighbor block
    south: int
    east: int  # +x
    west: int

    @property
    def shape(self) -> tuple[int, int]:
        return (self.x_stop - self.x_start, self.y_stop - self.y_start)


class BlockDecomposition:
    """2-D split of an ``lx x ly`` grid over a ``px x py`` process grid.

    The process grid defaults to the most-square factorization of the
    rank count.  Ranks are row-major in the process grid, matching
    :class:`repro.vmp.topology.Mesh2D`, so neighbor exchanges map to
    physically adjacent mesh nodes.
    """

    def __init__(
        self,
        lx: int,
        ly: int,
        n_ranks: int,
        process_grid: tuple[int, int] | None = None,
        require_even: bool = False,
    ):
        if process_grid is None:
            px = int(math.isqrt(n_ranks))
            while n_ranks % px:
                px -= 1
            process_grid = (px, n_ranks // px)
        px, py = process_grid
        if px * py != n_ranks:
            raise ValueError(f"process grid {px}x{py} != {n_ranks} ranks")
        if lx < px or ly < py:
            raise ValueError(
                f"grid {lx}x{ly} too small for process grid {px}x{py}"
            )
        self.lx, self.ly = int(lx), int(ly)
        self.px, self.py = int(px), int(py)
        self.n_ranks = int(n_ranks)

        def cuts(n: int, parts: int) -> list[int]:
            base, extra = divmod(n, parts)
            sizes = [base + (1 if i < extra else 0) for i in range(parts)]
            if require_even and any(s % 2 for s in sizes):
                raise ValueError(
                    f"block decomposition yields odd extents {sizes}; "
                    "checkerboard QMC needs even blocks"
                )
            out = [0]
            for s in sizes:
                out.append(out[-1] + s)
            return out

        xs = cuts(self.lx, px)
        ys = cuts(self.ly, py)
        self._overlap_cache: dict[int, OverlapPartition] = {}
        self.pieces = []
        for gx in range(px):
            for gy in range(py):
                rank = gx * py + gy
                self.pieces.append(
                    BlockPiece(
                        rank=rank,
                        x_start=xs[gx],
                        x_stop=xs[gx + 1],
                        y_start=ys[gy],
                        y_stop=ys[gy + 1],
                        east=((gx + 1) % px) * py + gy,
                        west=((gx - 1) % px) * py + gy,
                        north=gx * py + (gy + 1) % py,
                        south=gx * py + (gy - 1) % py,
                    )
                )

    def piece(self, rank: int) -> BlockPiece:
        return self.pieces[rank]

    def halo_spec(self, rank: int, n_slices: int,
                  color_packed: bool = False) -> HaloSpec:
        """Aggregated halo of one rank's block exchange.

        One packed boundary plane per split-axis neighbor;
        ``color_packed=True`` models the checkerboard exchanges that
        ship only the parity the updated color reads (half the sites).
        ``sites_per_message`` is the mean over the participating
        directions when the x and y planes differ in size.
        """
        bx, by = self.piece(rank).shape
        planes: list[float] = []
        if self.px > 1:
            planes += [float(by * n_slices)] * 2
        if self.py > 1:
            planes += [float(bx * n_slices)] * 2
        if not planes:
            return HaloSpec(neighbors=0, sites_per_message=0.0)
        mean_sites = sum(planes) / len(planes)
        if color_packed:
            mean_sites /= 2.0
        return HaloSpec(neighbors=len(planes), sites_per_message=mean_sites)

    def overlap_partition(self, rank: int) -> OverlapPartition:
        """Cached interior/boundary masks over one rank's ``(bx, by)`` block.

        A site is boundary when it sits on the first or last plane of
        an axis the process grid actually splits (its stencil reads a
        ghost plane); unsplit axes wrap locally and contribute no
        boundary.  The masks are spatial -- drivers AND them with their
        color masks.
        """
        part = self._overlap_cache.get(rank)
        if part is None:
            bx, by = self.piece(rank).shape
            interior = np.ones((bx, by), dtype=bool)
            if self.px > 1:
                interior[0, :] = False
                interior[-1, :] = False
            if self.py > 1:
                interior[:, 0] = False
                interior[:, -1] = False
            part = OverlapPartition(interior=interior, boundary=~interior)
            self._overlap_cache[rank] = part
        return part

    def owner_of(self, x: int, y: int) -> int:
        if not (0 <= x < self.lx and 0 <= y < self.ly):
            raise ValueError(f"site ({x}, {y}) out of range")
        for p in self.pieces:
            if p.x_start <= x < p.x_stop and p.y_start <= y < p.y_stop:
                return p.rank
        raise AssertionError("unreachable")

    def scatter(self, global_array: np.ndarray, rank: int) -> np.ndarray:
        """The (x, y, ...) sub-block owned by ``rank`` (copy)."""
        p = self.pieces[rank]
        return np.array(global_array[p.x_start : p.x_stop, p.y_start : p.y_stop])

    def gather(self, locals_: list[np.ndarray]) -> np.ndarray:
        """Reassemble per-rank blocks into the global (lx, ly, ...) array."""
        if len(locals_) != self.n_ranks:
            raise ValueError("need one local array per rank")
        trailing = locals_[0].shape[2:]
        out = np.empty((self.lx, self.ly) + trailing, dtype=locals_[0].dtype)
        for p, arr in zip(self.pieces, locals_):
            if arr.shape[:2] != p.shape:
                raise ValueError(
                    f"rank {p.rank} supplied block {arr.shape[:2]}, owns {p.shape}"
                )
            out[p.x_start : p.x_stop, p.y_start : p.y_stop] = arr
        return out
