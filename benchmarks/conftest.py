"""Shared benchmark fixtures.

Every benchmark regenerates one table or figure of the reconstructed
evaluation (see DESIGN.md).  The rendered text is printed to the
terminal *and* persisted under ``benchmarks/output/`` so EXPERIMENTS.md
can cite stable artifacts.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture
def record():
    """record(name, text): persist + print one rendered table/figure."""

    def _record(name: str, text: str) -> None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n[saved to benchmarks/output/{name}.txt]")

    return _record


def run_once(benchmark, fn):
    """Benchmark a table-producing callable exactly once and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
