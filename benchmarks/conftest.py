"""Shared benchmark fixtures.

Every benchmark regenerates one table or figure of the reconstructed
evaluation (see DESIGN.md).  The rendered text is printed to the
terminal *and* persisted under ``benchmarks/output/`` so EXPERIMENTS.md
can cite stable artifacts.

Two execution tiers:

* full (default) -- production workloads; regenerates the committed
  artifacts and enforces every shape criterion.
* ``--smoke`` -- drastically scaled-down workloads that exercise every
  code path in seconds.  Statistical shape criteria are relaxed (they
  are meaningless at smoke sizes) and artifacts are written under
  ``benchmarks/output/smoke/`` so committed outputs never mix tiers.

All benchmark items also carry the ``tier2_benchmark`` marker, so CI
can run the whole directory as a rot-check with
``pytest benchmarks --smoke -m tier2_benchmark``.
"""

from __future__ import annotations

import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path

import numpy as np
import pytest

OUTPUT_DIR = Path(__file__).parent / "output"
REPO_ROOT = Path(__file__).resolve().parent.parent


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run benchmarks on scaled-down workloads (seconds, not minutes)",
    )


def pytest_collection_modifyitems(config, items):
    for item in items:
        item.add_marker(pytest.mark.tier2_benchmark)


@pytest.fixture
def smoke(request) -> bool:
    """True when ``--smoke`` was passed: scale workloads down."""
    return bool(request.config.getoption("--smoke"))


@pytest.fixture
def record(request):
    """record(name, text): persist + print one rendered table/figure."""
    out_dir = OUTPUT_DIR
    if request.config.getoption("--smoke"):
        out_dir = OUTPUT_DIR / "smoke"

    def _record(name: str, text: str) -> None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{name}.txt").write_text(text + "\n")
        rel = out_dir.relative_to(REPO_ROOT)
        print(f"\n{text}\n[saved to {rel}/{name}.txt]")

    return _record


def run_once(benchmark, fn):
    """Benchmark a table-producing callable exactly once and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def run_metadata() -> dict:
    """Provenance stamp for persisted perf records (BENCH_perf.json).

    Git SHA, UTC timestamp, numpy version and CPU count make the perf
    trajectory across PRs attributable to a code state and a host.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        sha = "unknown"
    try:
        # Honest parallelism budget: cgroup/affinity-limited CPU count
        # (CI containers often expose fewer cores than os.cpu_count()).
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        cpus = os.cpu_count()
    from repro import kernels

    return {
        "git_sha": sha,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "numpy_version": np.__version__,
        "cpu_count": cpus,
        "kernel_backend": kernels.resolve_kernel("auto"),
        "numba_version": kernels.backend_version("numba"),
        "cupy_version": kernels.backend_version("cupy"),
    }
