"""Figure 1 -- efficiency of the three parallelization strategies.

Strip vs block vs replica decomposition of a 2-D TFIM workload on the
Paragon model.  Shape criteria (who wins where): all three are
equivalent at small P; on *latency-bound* (thin-halo) workloads strip
stays competitive because it sends half as many messages, but only
block scales past P = Lx; on *bandwidth-bound* (thick-halo) workloads
block wins outright since its per-rank halo shrinks like 1/sqrt(P);
replica is flat until its serial (equilibration) fraction caps it.
"""

from benchmarks.conftest import run_once
from repro.qmc.classical_ising import FLOPS_PER_SPIN_UPDATE
from repro.util.tables import Series, render_series
from repro.vmp import PARAGON
from repro.vmp.performance import PerformanceModel, WorkloadShape

COMMON = dict(
    lx=128, ly=128, lt=16,
    flops_per_site=2 * FLOPS_PER_SPIN_UPDATE,
    sweeps=500, bytes_per_site=1,
    measurement_interval=10,
)

P_GRID = [1, 4, 16, 64, 256, 1024]


def build_series() -> dict[str, Series]:
    out = {}
    for strategy, extra in (
        ("strip", {}),
        ("block", {}),
        ("replica", {"serial_fraction": 0.02}),  # shared equilibration cost
    ):
        w = WorkloadShape(strategy=strategy, **COMMON, **extra)
        pm = PerformanceModel(PARAGON, w)
        s = Series(strategy)
        for p in P_GRID:
            if strategy == "strip" and p > COMMON["lx"]:
                continue
            s.add(p, pm.efficiency(p))
        out[strategy] = s
    return out


def bandwidth_bound_crossover() -> tuple[float, float]:
    """Block vs strip efficiency at P=64 with thick (8-byte, 64-slice) halos."""
    thick = dict(COMMON, bytes_per_site=8, lt=64)
    e = {}
    for strategy in ("strip", "block"):
        pm = PerformanceModel(PARAGON, WorkloadShape(strategy=strategy, **thick))
        e[strategy] = pm.efficiency(64)
    return e["strip"], e["block"]


def test_fig1_decomposition(benchmark, record):
    series = run_once(benchmark, build_series)

    def eff(strategy, p):
        s = series[strategy]
        return s.y[s.x.index(p)]

    # Small P: everything near 1.
    for strategy in series:
        assert eff(strategy, 4) > 0.9
    # Thin halos: strip's lower message count keeps it within a few
    # percent of block wherever both exist...
    assert abs(eff("block", 64) - eff("strip", 64)) < 0.05
    # ...but only block reaches P = 1024 at all (strip is capped at Lx).
    assert 1024 in series["block"].x
    assert 1024 not in series["strip"].x
    # Thick halos: block wins outright (bandwidth-bound crossover).
    strip_thick, block_thick = bandwidth_bound_crossover()
    assert block_thick > strip_thick
    # Replica's Amdahl cap: below the domain-decomposed strategies once
    # P exceeds 1/serial_fraction.
    assert eff("replica", 256) < eff("block", 256)
    assert eff("replica", 1024) < 0.25

    record(
        "fig1_decomposition",
        render_series(
            "Figure 1: parallel efficiency by strategy (Paragon, 128x128x16 TFIM)",
            list(series.values()),
            x_label="P",
        )
        + f"\n\nbandwidth-bound variant at P=64 (8 B/site, 64 slices): "
        f"strip eff {strip_thick:.3f} < block eff {block_thick:.3f}",
    )
