"""Table 3 -- spin-update rates: host kernels and modeled machines.

Two halves, as era papers reported:

* measured update throughput of this implementation's serial kernels on
  the host (pytest-benchmark timing of real sweeps), and
* modeled whole-machine update rates (updates/s) for the 1993 MPPs at
  several node counts -- the number the paper's abstract would quote.

Shape criteria: vectorized world-line kernel beats the scalar reference
by >= 5x; machine update rates grow by >= 100x from 1 to 256 nodes.
"""

import time

from benchmarks.conftest import run_once
from repro.models.hamiltonians import XXZChainModel
from repro.qmc.classical_ising import AnisotropicIsing
from repro.qmc.worldline import FLOPS_PER_CORNER_MOVE, WorldlineChainQmc
from repro.util.tables import Table
from repro.vmp import CM5, NCUBE2, PARAGON
from repro.vmp.performance import PerformanceModel, WorkloadShape


def measure_host_rates() -> Table:
    table = Table(
        "Table 3a: measured host kernel throughput (site updates / s)",
        ["kernel", "lattice", "updates/s"],
    )
    model = XXZChainModel(n_sites=64, periodic=True)

    q = WorldlineChainQmc(model, beta=2.0, n_slices=32, seed=1)
    t0 = time.perf_counter()
    for _ in range(100):
        q.sweep_vectorized()
    dt = time.perf_counter() - t0
    table.add_row(["world-line vectorized", "64x32", 100 * 64 * 32 / dt])

    qs = WorldlineChainQmc(
        XXZChainModel(n_sites=16, periodic=True), beta=2.0, n_slices=16, seed=1
    )
    t0 = time.perf_counter()
    for _ in range(20):
        qs.sweep_scalar()
    dt = time.perf_counter() - t0
    table.add_row(["world-line scalar ref", "16x16", 20 * 16 * 16 / dt])

    ising = AnisotropicIsing((64, 64, 16), (0.1, 0.1, 0.5), seed=1)
    t0 = time.perf_counter()
    for _ in range(30):
        ising.sweep()
    dt = time.perf_counter() - t0
    table.add_row(["classical checkerboard", "64x64x16", 30 * ising.n_sites / dt])
    return table


def modeled_machine_rates() -> Table:
    table = Table(
        "Table 3b: modeled machine update rates (world-line sweep, "
        "1024x64 space-time lattice)",
        ["machine", "P=1", "P=16", "P=256"],
    )
    w = WorkloadShape(
        lx=1024, ly=1, lt=64, flops_per_site=FLOPS_PER_CORNER_MOVE,
        sweeps=100, bytes_per_site=1, strategy="strip",
        measurement_interval=10,
    )
    for machine in (CM5, PARAGON, NCUBE2):
        pm = PerformanceModel(machine, w)
        table.add_row(
            [machine.name] + [pm.updates_per_second(p) for p in (1, 16, 256)]
        )
    return table


def test_table3_update_rates(benchmark, record):
    host = run_once(benchmark, measure_host_rates)
    machines = modeled_machine_rates()

    rates = dict(zip(host.column("kernel"), host.column("updates/s")))
    assert rates["world-line vectorized"] > 5 * rates["world-line scalar ref"]
    assert rates["classical checkerboard"] > 1e5

    for row in machines.rows:
        name, r1, r16, r256 = row
        # Latency-bound machines (CM-5) saturate below perfect scaling on
        # this strip workload; require >= 50x at 256 nodes, >= 10x at 16.
        assert r256 > 50 * r1, f"{name} scaling too weak"
        assert r16 > 10 * r1

    record("table3_update_rates", host.render() + "\n\n" + machines.render())
