"""Table 1 -- fixed-size speedup and efficiency versus node count.

The headline table of the paper genre: one Heisenberg-chain world-line
workload, strip-decomposed, on the CM-5 machine model from 1 to 1024
nodes.  Small node counts are *executed* on the simulated fabric (data
really moves); the full sweep comes from the cross-validated analytic
model.  Shape criteria: monotone speedup, near-linear at small P,
efficiency decaying monotonically, >= 25% at P = 256.
"""

from benchmarks.conftest import run_once
from repro.qmc.parallel import WorldlineStripConfig, worldline_strip_program
from repro.qmc.worldline import FLOPS_PER_CORNER_MOVE
from repro.util.tables import Table
from repro.vmp import CM5, run_spmd
from repro.vmp.performance import PerformanceModel, WorkloadShape

LX, LT = 1024, 64
WORKLOAD = WorkloadShape(
    lx=LX, ly=1, lt=LT,
    flops_per_site=FLOPS_PER_CORNER_MOVE,
    sweeps=500, bytes_per_site=1, strategy="strip",
    measurement_interval=10,  # reductions every 10 sweeps, as era codes did
)


def build_table() -> Table:
    pm = PerformanceModel(CM5, WORKLOAD)
    table = Table(
        f"Table 1: fixed-size speedup, {LX}-site Heisenberg chain x {LT} "
        "slices, CM-5 model (strip decomposition)",
        ["P", "T[s]", "speedup", "efficiency"],
    )
    p = 1
    while p <= 1024:
        table.add_row([p, pm.time(p), pm.speedup(p), pm.efficiency(p)])
        p *= 2
    return table


def executed_anchor() -> dict[int, float]:
    """Executed small-P makespans of the *fine-grained* 8-class driver.

    The executed driver refreshes ghosts around every independence
    class (~20 messages per sweep per rank), a deliberately
    conservative schedule; at this toy size it is latency-bound and
    does NOT speed up -- the ablation the model's
    ``halo_messages_per_sweep`` override captures.  Production-scale
    rows in the main table use the genre-standard half-sweep-batched
    schedule (4 messages per sweep).
    """
    cfg = WorldlineStripConfig(
        n_sites=32, jz=1.0, jxy=1.0, beta=2.0, n_slices=16,
        n_sweeps=60, n_thermalize=10, measure_every=10,
    )
    out = {}
    for p in (1, 2, 4):
        res = run_spmd(worldline_strip_program, p, machine=CM5, seed=7, args=(cfg,))
        out[p] = res.elapsed_model_time
    return out


def test_table1_fixed_speedup(benchmark, record):
    table = run_once(benchmark, build_table)
    anchors = executed_anchor()

    speedups = table.column("speedup")
    effs = table.column("efficiency")
    ps = table.column("P")

    # Shape criteria (reconstructed evaluation, see EXPERIMENTS.md).
    # Fixed-size speedup may saturate at extreme P on a latency-bound
    # machine (the honest era story), but must be monotone through 128.
    upto128 = [s for p, s in zip(ps, speedups) if p <= 128]
    assert all(a < b for a, b in zip(upto128, upto128[1:])), "speedup monotone"
    assert speedups[ps.index(16)] > 14, "near-linear at small P"
    assert all(a >= b for a, b in zip(effs, effs[1:])), "efficiency monotone"
    assert effs[ps.index(256)] > 0.25

    # Executed anchor: compare against the model configured with the
    # driver's actual fine-grained message schedule.  Agreement within a
    # structural factor validates the large-P rows above.
    import dataclasses

    fine = dataclasses.replace(
        WORKLOAD, lx=32, lt=16, sweeps=60, halo_messages_per_sweep=20
    )
    fine_pm = PerformanceModel(CM5, fine)
    anchor_tab = Table(
        "executed anchor: fine-grained (8-class) schedule, 32-site chain "
        "x 16 slices, 60 sweeps",
        ["P", "T_exec[s]", "T_model[s]", "ratio"],
    )
    for p in (1, 2, 4):
        t_model = fine_pm.time(p) + fine.sweeps * 0  # same sweep count
        ratio = anchors[p] / t_model
        anchor_tab.add_row([p, anchors[p], t_model, ratio])
        assert 0.3 < ratio < 3.0, (
            f"executed/model mismatch at P={p}: {anchors[p]:.4g} vs {t_model:.4g}"
        )

    record("table1_fixed_speedup", table.render() + "\n\n" + anchor_tab.render())
