"""Figure 8 -- machine comparison: time-to-solution vs node count.

One fixed Heisenberg world-line workload, timed on the CM-5, Paragon,
Delta and nCUBE-2 models from 1 to each machine's maximum size.  Shape
criteria: single-node ordering follows node compute speed (CM-5 <
Paragon < Delta < nCUBE-2 in time); every machine gains from more
nodes up to 64; the CM-5 keeps the absolute lead at moderate P; the
efficiency ordering *reverses* the node-speed ordering (slow nodes
scale better).
"""

from benchmarks.conftest import run_once
from repro.qmc.worldline import FLOPS_PER_CORNER_MOVE
from repro.util.tables import Table
from repro.vmp import CM5, DELTA, NCUBE2, PARAGON
from repro.vmp.performance import PerformanceModel, WorkloadShape

MACHINE_LIST = (CM5, PARAGON, DELTA, NCUBE2)

WORKLOAD = WorkloadShape(
    lx=512, ly=1, lt=64,
    flops_per_site=FLOPS_PER_CORNER_MOVE,
    sweeps=2000, bytes_per_site=1, strategy="strip",
    measurement_interval=10,
)

P_GRID = (1, 16, 64, 256)


def build_table() -> Table:
    table = Table(
        "Figure 8 (as data): modeled time-to-solution [s], 512-site chain "
        "x 64 slices, 2000 sweeps",
        ["machine"] + [f"P={p}" for p in P_GRID] + ["eff@256"],
    )
    for machine in MACHINE_LIST:
        pm = PerformanceModel(machine, WORKLOAD)
        times = [pm.time(p) for p in P_GRID]
        table.add_row([machine.name] + times + [pm.efficiency(256)])
    return table


def test_fig8_machine_comparison(benchmark, record):
    table = run_once(benchmark, build_table)
    rows = {r[0]: r[1:] for r in table.rows}

    # Single-node ordering = node speed ordering.
    t1 = {name: vals[0] for name, vals in rows.items()}
    assert t1["CM-5"] < t1["Paragon"] < t1["Delta"] < t1["nCUBE-2"]

    # Everyone gains through P=64.
    for name, vals in rows.items():
        assert vals[2] < vals[1] < vals[0], f"{name} must speed up to P=64"

    # CM-5 keeps the absolute lead at P=64.
    t64 = {name: vals[2] for name, vals in rows.items()}
    assert t64["CM-5"] == min(t64.values())

    # Efficiency at 256 reverses the node-speed ordering.
    eff = {name: vals[-1] for name, vals in rows.items()}
    assert eff["nCUBE-2"] > eff["Paragon"] > eff["CM-5"]

    record("fig8_machines", table.render())
