"""Figure 9 -- replica-exchange acceptance vs grid spacing, and WHAM.

(a) exchange acceptance as a function of temperature-grid spacing: a
    finer grid (more overlap between neighboring canonical energy
    distributions) must yield higher swap acceptance;
(b) the WHAM-combined density of states from the tempering histograms
    interpolates the specific heat, whose peak brackets the exact
    2-D Ising T_c.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.models.ising_exact import onsager_critical_temperature
from repro.qmc.tempering import (
    TemperingConfig,
    histograms_from_results,
    tempering_program,
)
from repro.stats.wham import multi_histogram_reweight
from repro.util.tables import Series, Table, render_series
from repro.vmp import IDEAL, run_spmd

L = 12
TC = onsager_critical_temperature()


def run_grid(t_lo: float, t_hi: float, n: int, seed: int, scale: int = 1):
    temps = np.linspace(t_lo, t_hi, n)
    cfg = TemperingConfig(
        shape=(L, L),
        couplings_j=(1.0, 1.0),
        betas=tuple(1.0 / t for t in temps),
        n_sweeps=1500 // scale,
        n_thermalize=300 // scale,
        exchange_every=4,
        histogram_bins=96,
    )
    res = run_spmd(tempering_program, n, machine=IDEAL, seed=seed, args=(cfg,))
    att = sum(r["exchange_attempts"] for r in res.values)
    acc = sum(r["exchange_accepts"] for r in res.values)
    return res.values, acc / max(att, 1)


def build(smoke: bool = False):
    scale = 10 if smoke else 1
    acc_table = Table(
        f"Figure 9a (as data): swap acceptance vs grid spacing, {L}x{L} Ising",
        ["replicas over [2.0, 3.2]", "mean dT", "acceptance"],
    )
    rates = {}
    for n, seed in ((4, 31), (8, 32)):
        _, rate = run_grid(2.0, 3.2, n, seed, scale=scale)
        rates[n] = rate
        acc_table.add_row([n, 1.2 / (n - 1), rate])

    results, _ = run_grid(1.9, 3.1, 8, 33, scale=scale)
    hists = histograms_from_results(results)
    wham = multi_histogram_reweight(hists, [r["beta"] for r in results])
    c = Series("C/N")
    ts = np.linspace(2.0, 3.0, 21)
    for t in ts:
        c.add(t, wham.specific_heat(1.0 / t) / L**2)
    return acc_table, rates, c, wham.converged


def test_fig9_tempering_wham(benchmark, record, smoke):
    acc_table, rates, c, converged = run_once(benchmark, lambda: build(smoke))

    if not smoke:
        # Finer grid -> higher swap acceptance.
        assert rates[8] > rates[4]
        assert rates[8] > 0.4

        assert converged
        # Specific-heat peak near (finite-size shifted above) T_c.
        t_peak = c.x[int(np.argmax(c.y))]
        assert TC - 0.15 < t_peak < TC + 0.35, f"C peak at {t_peak}, Tc = {TC:.3f}"
        # The peak is a genuine interior maximum.
        assert max(c.y) > 1.3 * c.y[0]
        assert max(c.y) > 1.3 * c.y[-1]

    record(
        "fig9_tempering_wham",
        acc_table.render()
        + "\n\n"
        + render_series("Figure 9b: WHAM-interpolated specific heat per site",
                        [c], x_label="T"),
    )
