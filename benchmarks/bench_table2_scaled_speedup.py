"""Table 2 -- scaled (Gustafson) speedup: constant work per node.

Memory-per-node was the binding constraint on 1993 MPPs, so papers
reported weak scaling: the lattice grows with P.  Shape criteria:
scaled speedup stays near-linear far beyond the fixed-size roll-off,
and exceeds the fixed-size speedup at every P > 1.
"""

from benchmarks.conftest import run_once
from repro.qmc.worldline import FLOPS_PER_CORNER_MOVE
from repro.util.tables import Table
from repro.vmp import CM5, PARAGON
from repro.vmp.performance import PerformanceModel, WorkloadShape

BASE = WorkloadShape(
    lx=64, ly=64, lt=32,
    flops_per_site=FLOPS_PER_CORNER_MOVE,
    sweeps=500, bytes_per_site=1, strategy="block",
)


def build_table() -> Table:
    table = Table(
        "Table 2: scaled vs fixed-size speedup (64x64-per-node base "
        "lattice, 32 slices)",
        ["P", "CM-5 fixed", "CM-5 scaled", "Paragon fixed", "Paragon scaled"],
    )
    cm5 = PerformanceModel(CM5, BASE)
    par = PerformanceModel(PARAGON, BASE)
    p = 1
    while p <= 1024:
        table.add_row(
            [p, cm5.speedup(p), cm5.scaled_speedup(p), par.speedup(p),
             par.scaled_speedup(p)]
        )
        p *= 4
    return table


def test_table2_scaled_speedup(benchmark, record):
    table = run_once(benchmark, build_table)
    ps = table.column("P")
    for machine in ("CM-5", "Paragon"):
        fixed = table.column(f"{machine} fixed")
        scaled = table.column(f"{machine} scaled")
        # Scaled beats fixed for every P > 1 and stays near-linear.
        for p, f, s in zip(ps, fixed, scaled):
            if p > 1:
                assert s > f, f"{machine}: scaled {s} <= fixed {f} at P={p}"
        assert scaled[ps.index(1024)] > 0.8 * 1024 or machine == "CM-5"
        assert scaled[ps.index(256)] > 0.85 * 256
    record("table2_scaled_speedup", table.render())
