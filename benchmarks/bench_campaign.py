"""Campaign scheduler throughput and result-cache benchmark.

Runs one small XXZ sweep campaign twice through the real scheduler
(:func:`repro.run.campaign.run_campaign`, backend OS processes, bounded
pool) and records the numbers the serving layer lives on:

* the **fresh** leg executes every grid cell (``jobs=2``) and yields
  the campaign's aggregate sweeps/s (total sweeps swept anywhere,
  divided by campaign wall time -- scheduling overhead included);
* the **resumed** leg re-invokes the identical spec with ``resume=True``
  and must serve every run from the config-hash result cache, so its
  wall time measures pure cache-lookup overhead.

The record lands in ``BENCH_perf.json`` under ``campaign_records`` and
is gated by ``tools/check_bench.py``: the cached rerun must report at
least one cache hit (structurally: *all* runs cached), and the
fresh/resumed wall ratio (``cache_speedup``) plus the aggregate
throughput must clear conservative floors.  Absolute per-runner speed
is deliberately not compared across machines.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.run.campaign import CampaignSpec, run_campaign
from repro.util.tables import Table

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_perf.json"
SMOKE_JSON_PATH = (
    REPO_ROOT / "benchmarks" / "output" / "smoke" / "BENCH_perf_smoke.json"
)
OUTPUT_DIR = Path(__file__).parent / "output"


def _campaign_spec(smoke: bool) -> CampaignSpec:
    """The benchmark grid: 6 runs at smoke scale, 8 at full tier."""
    betas = [0.5, 1.0, 1.5] if smoke else [0.5, 0.75, 1.0, 1.5]
    return CampaignSpec(
        kind="xxz",
        name="bench",
        base={
            "n_sites": 8,
            "n_slices": 8,
            "n_sweeps": 40 if smoke else 120,
            "n_thermalize": 5 if smoke else 20,
        },
        sweep={"beta": betas, "seed": [0, 1]},
        jobs=2,
        timeout=300.0,
        retries=1,
    )


def collect_campaign(smoke: bool, out_root: Path) -> dict:
    """Run the fresh + resumed legs; return one campaign record."""
    spec = _campaign_spec(smoke)
    campaign_dir = out_root / "campaign_bench"
    fresh = run_campaign(spec, out_dir=campaign_dir, resume=False)
    resumed = run_campaign(spec, out_dir=campaign_dir, resume=True)
    record = {
        "tier": "smoke" if smoke else "full",
        "kind": spec.kind,
        "n_runs": spec.n_runs,
        "jobs": spec.jobs,
        "fresh": {
            "wall_seconds": fresh.wall_seconds,
            "completed": fresh.counters["completed"],
            "cached": fresh.counters["cached"],
            "failed": fresh.counters["failed"],
            "retried": fresh.counters["retried"],
            "total_sweeps": fresh.aggregate["total_sweeps"],
            "sweeps_per_second": fresh.aggregate["sweeps_per_second"],
        },
        "resumed": {
            "wall_seconds": resumed.wall_seconds,
            "completed": resumed.counters["completed"],
            "cache_hits": resumed.counters["cached"],
            "failed": resumed.counters["failed"],
        },
        "cache_speedup": (
            fresh.wall_seconds / resumed.wall_seconds
            if resumed.wall_seconds > 0
            else float("inf")
        ),
    }
    return record


def render(record: dict) -> Table:
    t = Table(
        f"campaign scheduler ({record['n_runs']} runs, "
        f"jobs={record['jobs']}, tier={record['tier']})",
        ["leg", "wall[s]", "completed", "cached", "agg sweeps/s"],
    )
    t.add_row(
        [
            "fresh",
            round(record["fresh"]["wall_seconds"], 3),
            record["fresh"]["completed"],
            record["fresh"]["cached"],
            round(record["fresh"]["sweeps_per_second"], 1),
        ]
    )
    t.add_row(
        [
            "resumed",
            round(record["resumed"]["wall_seconds"], 3),
            record["resumed"]["completed"],
            record["resumed"]["cache_hits"],
            "-",
        ]
    )
    t.add_row(
        ["cache speedup", round(record["cache_speedup"], 1), "-", "-", "-"]
    )
    return t


def test_campaign_scheduler(record, smoke):
    out_root = OUTPUT_DIR / "smoke" if smoke else OUTPUT_DIR
    rec = collect_campaign(smoke, out_root)
    record("campaign", render(rec).render())

    # Merge rather than rewrite: the other benchmark modules store
    # their sections in the same document in collection order.
    json_path = SMOKE_JSON_PATH if smoke else JSON_PATH
    json_path.parent.mkdir(parents=True, exist_ok=True)
    doc = json.loads(json_path.read_text()) if json_path.exists() else {}
    doc["campaign_records"] = [rec]
    json_path.write_text(json.dumps(doc, indent=2) + "\n")

    # Hard invariants at every tier; the perf floors live in
    # tools/check_bench.py where they can be waived explicitly.
    assert rec["fresh"]["completed"] == rec["n_runs"]
    assert rec["fresh"]["failed"] == 0
    assert rec["resumed"]["cache_hits"] == rec["n_runs"], (
        "cached rerun re-executed runs instead of serving the cache"
    )
    assert rec["resumed"]["completed"] == 0
