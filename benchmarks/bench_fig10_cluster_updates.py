"""Figure 10 (extension) -- cluster versus local updates.

The Swendsen--Wang ablation: near the 2-D Ising critical point the
cluster algorithm collapses the order-parameter autocorrelation time
that local Metropolis suffers (critical slowing down); the same
machinery accelerates the TFIM's classical mapping, whose time-axis
coupling K_tau strengthens as dtau shrinks and glues local dynamics.

Shape criteria: tau_m(SW) < tau_m(local)/5 near criticality; SW
magnetization agrees with Onsager below T_c; for the TFIM mapping at
small dtau, the cluster sampler's energy matches ED while decorrelating
at least as fast as the local sampler.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.models.ising_exact import onsager_spontaneous_magnetization
from repro.qmc.classical_ising import AnisotropicIsing
from repro.qmc.cluster import SwendsenWangIsing
from repro.stats.autocorr import integrated_autocorr_time
from repro.util.tables import Table

L = 16
N_SWEEPS = 5000


def critical_comparison(scale: int = 1) -> Table:
    table = Table(
        f"Figure 10a (as data): tau_m near criticality, {L}x{L} Ising",
        ["T", "tau_m local", "tau_m SW", "ratio"],
    )
    for temp, seed in ((2.6, 1), (2.3, 2)):
        beta = 1.0 / temp
        local = AnisotropicIsing((L, L), (beta, beta), seed=seed, hot_start=True)
        obs_l = local.run(n_sweeps=N_SWEEPS // scale, n_thermalize=600 // scale)
        tau_l = integrated_autocorr_time(obs_l.magnetization)
        sw = SwendsenWangIsing((L, L), (beta, beta), seed=seed + 10, hot_start=True)
        obs_c = sw.run(n_sweeps=N_SWEEPS // scale, n_thermalize=200 // scale)
        tau_c = integrated_autocorr_time(obs_c.magnetization)
        table.add_row([temp, tau_l, tau_c, tau_l / tau_c])
    return table


def ordered_phase_accuracy(scale: int = 1) -> tuple[float, float]:
    beta = 0.6
    sw = SwendsenWangIsing((L, L), (beta, beta), seed=21)
    obs = sw.run(n_sweeps=2000 // scale, n_thermalize=200 // scale)
    return float(np.mean(obs.abs_magnetization)), onsager_spontaneous_magnetization(beta)


def test_fig10_cluster_updates(benchmark, record, smoke):
    scale = 20 if smoke else 1
    table = run_once(benchmark, lambda: critical_comparison(scale))

    m_sw, m_exact = ordered_phase_accuracy(scale)
    if not smoke:
        ratios = table.column("ratio")
        assert ratios[-1] > 5, f"SW speedup near Tc only {ratios[-1]:.1f}x"
        assert all(r > 1 for r in ratios)

        assert abs(m_sw - m_exact) < 0.02

    record(
        "fig10_cluster_updates",
        table.render()
        + f"\n\nFigure 10b: ordered-phase |m| -- SW {m_sw:.4f} vs Onsager "
        f"{m_exact:.4f}",
    )
