"""Figure 4 -- uniform susceptibility of the Heisenberg chain vs T.

The Bonner--Fisher-type curve: chi(T) rises from the high-temperature
Curie tail as T falls, passes a broad maximum near T/J ~ 0.6, and bends
down toward low T.  World-line QMC vs exact diagonalization at L = 8.
Shape criteria: each point matches ED within its window; the maximum
sits at an interior temperature of the scanned grid.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.models.ed import ExactDiagonalization
from repro.models.hamiltonians import XXZChainModel
from repro.qmc.worldline import WorldlineChainQmc
from repro.util.tables import Table

L = 8
MODEL = XXZChainModel(n_sites=L, periodic=True)
TEMPS = [2.0, 1.0, 0.7, 0.5]


def build_table(smoke: bool = False) -> Table:
    scale = 20 if smoke else 1
    ed = ExactDiagonalization(MODEL.build_sparse(), L)
    table = Table(
        f"Figure 4 (as data): uniform susceptibility, Heisenberg chain L={L}",
        ["T/J", "chi QMC", "chi exact", "rel dev"],
    )
    for k, temp in enumerate(TEMPS):
        beta = 1.0 / temp
        n_slices = max(8, 4 * int(np.ceil(2 * beta)))
        n_slices += n_slices % 4  # keep the vectorized path eligible
        q = WorldlineChainQmc(MODEL, beta, n_slices, seed=60 + k)
        meas = q.run(n_sweeps=6000 // scale, n_thermalize=600 // scale)
        chi = meas.susceptibility(L)
        chi_ed = ed.thermal(beta).susceptibility
        table.add_row([temp, chi, chi_ed, abs(chi - chi_ed) / chi_ed])
    return table


def test_fig4_susceptibility(benchmark, record, smoke):
    table = run_once(benchmark, lambda: build_table(smoke))

    if not smoke:
        rel_devs = table.column("rel dev")
        assert all(d < 0.20 for d in rel_devs), f"chi off ED: {rel_devs}"

        chis = table.column("chi exact")
        # ED itself shows the Bonner-Fisher rise toward the T ~ 0.6
        # maximum: the scanned window is on the rising side, so chi
        # grows as T falls, and the QMC curve must reproduce that
        # ordering.
        qmc = table.column("chi QMC")
        assert qmc[-1] > qmc[0], "chi must grow toward the maximum as T falls"
        assert chis[-1] > chis[0]

    record("fig4_susceptibility", table.render())
