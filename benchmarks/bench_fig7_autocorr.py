"""Figure 7 -- autocorrelation times: critical slowing down and tempering.

Two panels of the sampling-efficiency story:

(a) local Metropolis on the 2-D Ising model: the integrated
    autocorrelation time of the *signed magnetization* (the
    order-parameter tunneling time) grows sharply as T falls toward
    T_c, while the energy decorrelates comparatively quickly, and
(b) at a fixed near-critical temperature, parallel tempering collapses
    the magnetization tunneling time: hot replicas flip freely and the
    flipped configurations migrate down the temperature ladder.

Shape criteria: tau_m(T ~ Tc) > 4x tau_m(T >> Tc); tau_m >> tau_E near
Tc; tempering reduces the near-critical tau_m by at least 2x.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.models.ising_exact import onsager_critical_temperature
from repro.qmc.classical_ising import AnisotropicIsing
from repro.qmc.tempering import TemperingConfig, tempering_program
from repro.stats.autocorr import integrated_autocorr_time
from repro.util.tables import Table
from repro.vmp import IDEAL, run_spmd

L = 16
TC = onsager_critical_temperature()
N_SWEEPS = 8000
T_NEAR = 2.3


def local_taus(temperature: float, seed: int, scale: int = 1) -> tuple[float, float]:
    beta = 1.0 / temperature
    s = AnisotropicIsing((L, L), (beta, beta), seed=seed, hot_start=True)
    obs = s.run(n_sweeps=N_SWEEPS // scale, n_thermalize=1000 // scale)
    energy = -(obs.bond_sums[:, 0] + obs.bond_sums[:, 1])
    return (
        integrated_autocorr_time(obs.magnetization),
        integrated_autocorr_time(energy),
    )


def tempered_tau_m(target_temperature: float, scale: int = 1) -> float:
    temps = np.array([target_temperature, 2.6, 3.0, 3.6])
    cfg = TemperingConfig(
        shape=(L, L),
        couplings_j=(1.0, 1.0),
        betas=tuple(1.0 / t for t in temps),
        n_sweeps=N_SWEEPS // scale,
        n_thermalize=1000 // scale,
        exchange_every=2,
    )
    res = run_spmd(tempering_program, 4, machine=IDEAL, seed=9, args=(cfg,))
    return integrated_autocorr_time(res.values[0]["magnetization"])


def build(smoke: bool = False) -> tuple[Table, float, float]:
    scale = 20 if smoke else 1
    panel_a = Table(
        f"Figure 7a (as data): tau_int, local Metropolis, {L}x{L} Ising",
        ["T", "T/Tc", "tau_m", "tau_E"],
    )
    taus_m = {}
    for k, temp in enumerate((4.0, 3.0, 2.6, T_NEAR)):
        tau_m, tau_e = local_taus(temp, seed=80 + k, scale=scale)
        taus_m[temp] = tau_m
        panel_a.add_row([temp, temp / TC, tau_m, tau_e])
    tau_pt = tempered_tau_m(T_NEAR, scale=scale)
    return panel_a, taus_m[T_NEAR], tau_pt


def test_fig7_autocorrelation(benchmark, record, smoke):
    panel_a, tau_local, tau_pt = run_once(benchmark, lambda: build(smoke))

    if not smoke:
        taus_m = panel_a.column("tau_m")
        taus_e = panel_a.column("tau_E")
        # Critical slowing down of the order parameter.
        assert taus_m[-1] > 4 * taus_m[0]
        # Near Tc the magnetization tunneling time dwarfs the energy time.
        assert taus_m[-1] > 3 * taus_e[-1]

        # Tempering collapses the tunneling time.
        assert tau_pt < 0.5 * tau_local, (
            f"tempering tau_m {tau_pt:.1f} vs local {tau_local:.1f}"
        )

    record(
        "fig7_autocorr",
        panel_a.render()
        + f"\n\nFigure 7b: tau_m at T={T_NEAR} -- local {tau_local:.1f} "
        f"vs parallel tempering {tau_pt:.1f}",
    )
