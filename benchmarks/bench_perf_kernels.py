"""Performance trajectory of the batched world-line kernels.

Times the scalar reference sweep against the vectorized class-batched
sweep for the 1-D chain and the 2-D square-lattice samplers on fixed
geometries with fixed seeds, plus the **parallel** strip driver in both
kernel modes and on both backends, and records the trajectory twice:

* ``benchmarks/output/perf_kernels.txt`` -- the human-readable table;
* ``BENCH_perf.json`` at the repository root -- machine-readable, one
  record per (sampler, geometry, mode[, P, backend]) with sweeps/s and
  site-updates/s (space--time sites swept per wall-clock second), so
  successive PRs can diff kernel throughput.  Each record set carries a
  provenance stamp (git SHA, UTC timestamp, numpy version, CPU count).

Shape criteria (the acceptance bars of the batching work):

* the vectorized 2-D sweep sustains >= 5x the scalar site-update rate
  on the 16 x 16, T = 64 lattice;
* the vectorized strip driver at P = 4 sustains >= 10x the scalar
  strip driver's site-update rate on the 64-site chain at T = 64;
* where the numba JIT backend is installed, its warm sweep rate beats
  batched numpy >= 3x on the 16 x 16, T = 64 lattice (``kernel_records``
  in the JSON; compile time reported separately, never in the rate).

The ``two_level_records`` section carries the two-level ensemble x
domain campaign: executed composed R x P runs with per-level (halo vs
ensemble) modeled comm fractions, plus the modeled 64 x 16 = 1024-node
scaled-speedup record extrapolated from the executed 2 x 16 run.

Wall-clock numbers vary with the host; the *ratios* are what the JSON
trajectory tracks.  This container has a single core, so parallel
records measure aggregate throughput of the SPMD machinery (the ranks
time-share the core), not wall-clock scaling; the modeled comm
fraction column carries the scaling story on the era machines.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from benchmarks.conftest import run_metadata, run_once
from repro import kernels
from repro.models.hamiltonians import XXZChainModel, XXZSquareModel
from repro.qmc.parallel import (
    IsingBlockConfig,
    WorldlineStripConfig,
    ising_block_program,
    worldline_strip_program,
)
from repro.qmc.two_level import TwoLevelConfig, two_level_program
from repro.qmc.worldline import WorldlineChainQmc
from repro.qmc.worldline2d import WorldlineSquareQmc
from repro.util.tables import Table
from repro.vmp.machines import PARAGON
from repro.vmp.performance import PerformanceModel, worldline_strip_workload
from repro.vmp.process_backend import run_multiprocessing
from repro.vmp.scheduler import run_spmd

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_perf.json"
#: Smoke runs persist the same schema here (never mixed with the
#: committed full-tier trajectory); tools/check_bench.py diffs its
#: ratio metrics against benchmarks/BENCH_smoke_baseline.json.
SMOKE_JSON_PATH = REPO_ROOT / "benchmarks" / "output" / "smoke" / "BENCH_perf_smoke.json"

BETA = 1.0
#: (label, factory, sweeps)
CASES = [
    (
        "chain L=64 T=64",
        lambda: WorldlineChainQmc(XXZChainModel(64), beta=BETA, n_slices=64, seed=11),
        30,
    ),
    (
        "square 8x8 T=32",
        lambda: WorldlineSquareQmc(
            XXZSquareModel(8, 8), beta=BETA, n_slices=32, seed=12
        ),
        20,
    ),
    (
        "square 16x16 T=64",
        lambda: WorldlineSquareQmc(
            XXZSquareModel(16, 16), beta=BETA, n_slices=64, seed=13
        ),
        8,
    ),
]

#: Geometry of the parallel strip records (matches "chain L=64 T=64").
STRIP_L, STRIP_T = 64, 64
STRIP_CASE = f"strip chain L={STRIP_L} T={STRIP_T}"

#: Geometry of the overlap A/B block records.
BLOCK_L, BLOCK_T = 32, 8
BLOCK_CASE = f"block ising {BLOCK_L}x{BLOCK_L} T={BLOCK_T}"


def _space_time_sites(sampler) -> int:
    if isinstance(sampler, WorldlineChainQmc):
        return sampler.L * sampler.n_slices
    return sampler.n_sites * sampler.n_slices


def _time_mode(factory, mode: str, n_sweeps: int) -> dict:
    sampler = factory()
    sweep = sampler.sweep_scalar if mode == "scalar" else sampler.sweep_vectorized
    sweep()  # warm up gather tables / allocator outside the timed region
    t0 = time.perf_counter()
    for _ in range(n_sweeps):
        sweep()
    elapsed = time.perf_counter() - t0
    sites = _space_time_sites(sampler)
    return {
        "mode": mode,
        "n_sweeps": n_sweeps,
        "seconds_per_sweep": elapsed / n_sweeps,
        "sweeps_per_s": n_sweeps / elapsed,
        "site_updates_per_s": sites * n_sweeps / elapsed,
        "space_time_sites": sites,
        "acceptance": sampler.acceptance_rate,
    }


def _strip_config(
    mode: str, n_sweeps: int, overlap: bool = False
) -> WorldlineStripConfig:
    return WorldlineStripConfig(
        n_sites=STRIP_L, jz=1.0, jxy=1.0, beta=BETA, n_slices=STRIP_T,
        n_sweeps=n_sweeps, n_thermalize=2, measure_every=10, mode=mode,
        overlap=overlap,
    )


def _time_strip(
    p: int, mode: str, n_sweeps: int, backend: str, overlap: bool = False
) -> dict:
    """Time the SPMD strip driver end to end (halo exchange included).

    Runs on the PARAGON machine model so the same run yields both the
    wall-clock throughput and the modeled communication fraction.
    """
    cfg = _strip_config(mode, n_sweeps, overlap)
    sweeps_total = cfg.n_sweeps + cfg.n_thermalize
    t0 = time.perf_counter()
    if backend == "thread":
        res = run_spmd(worldline_strip_program, p, machine=PARAGON, seed=11,
                       args=(cfg,))
        comm_fraction = res.comm_fraction()
    else:
        run_multiprocessing(worldline_strip_program, p, machine=PARAGON,
                            seed=11, args=(cfg,))
        comm_fraction = None
    elapsed = time.perf_counter() - t0
    sites = STRIP_L * STRIP_T  # the ranks jointly sweep the full lattice
    return {
        "case": STRIP_CASE,
        "mode": mode,
        "backend": backend,
        "p": p,
        "overlap": overlap,
        "n_sweeps": sweeps_total,
        "seconds_per_sweep": elapsed / sweeps_total,
        "sweeps_per_s": sweeps_total / elapsed,
        "site_updates_per_s": sites * sweeps_total / elapsed,
        "space_time_sites": sites,
        "comm_fraction_modeled": comm_fraction,
    }


def _time_block(p: int, n_sweeps: int, overlap: bool) -> dict:
    """Time the SPMD block Ising driver (thread backend, vectorized)."""
    cfg = IsingBlockConfig(
        lx=BLOCK_L, ly=BLOCK_L, lt=BLOCK_T, kx=0.3, ky=0.3, kt=0.4,
        n_sweeps=n_sweeps, n_thermalize=2, measure_every=10,
        overlap=overlap,
    )
    sweeps_total = cfg.n_sweeps + cfg.n_thermalize
    t0 = time.perf_counter()
    res = run_spmd(ising_block_program, p, machine=PARAGON, seed=11,
                   args=(cfg,))
    elapsed = time.perf_counter() - t0
    sites = BLOCK_L * BLOCK_L * BLOCK_T
    return {
        "case": BLOCK_CASE,
        "mode": "vectorized",
        "backend": "thread",
        "p": p,
        "overlap": overlap,
        "n_sweeps": sweeps_total,
        "seconds_per_sweep": elapsed / sweeps_total,
        "sweeps_per_s": sweeps_total / elapsed,
        "site_updates_per_s": sites * sweeps_total / elapsed,
        "space_time_sites": sites,
        "comm_fraction_modeled": res.comm_fraction(),
    }


def collect_overlap(smoke: bool = False) -> list[dict]:
    """Overlap A/B records: lockstep vs pipelined halos, same run setup.

    Strip and block drivers at P in {2, 4} on the thread backend
    (vectorized kernels); each record carries the modeled comm fraction
    so ``BENCH_perf.json`` tracks how much halo time the five-stage
    pipeline hides on the Paragon cost model.
    """
    records = []
    ps = (2,) if smoke else (2, 4)
    strip_sweeps = 4 if smoke else 20
    block_sweeps = 2 if smoke else 10
    for p in ps:
        for overlap in (False, True):
            records.append(
                _time_strip(p, "vectorized", strip_sweeps, backend="thread",
                            overlap=overlap)
            )
            records.append(_time_block(p, block_sweeps, overlap))
    return records


#: Geometry of the two-level ensemble x domain records.  The modeled
#: scaled-speedup campaign targets 64 replicas x 16-rank strips = 1024
#: nodes -- the full-machine configuration of the era the source paper
#: reports on.
TWO_LEVEL_CASE = f"two-level strip chain L={STRIP_L} T={STRIP_T}"
TARGET_REPLICAS, TARGET_P = 64, 16


def _two_level_config(replicas: int, p: int, n_sweeps: int) -> TwoLevelConfig:
    base = WorldlineStripConfig(
        n_sites=STRIP_L, jz=1.0, jxy=1.0, beta=BETA, n_slices=STRIP_T,
        n_sweeps=n_sweeps, n_thermalize=2, measure_every=2,
        mode="vectorized",
    )
    return TwoLevelConfig(replicas=replicas, domain_ranks=p, base=base)


def _time_two_level(replicas: int, p: int, n_sweeps: int) -> dict:
    """Execute a composed R x P campaign on the thread backend.

    The same run yields the wall-clock throughput (the ranks time-share
    the core) and the per-level modeled comm fractions on Paragon:
    ``halo_comm_fraction`` is the domain-level share (halo exchange plus
    halo waits inside each replica's strip), ``ensemble_comm_fraction``
    the ensemble-level share (leader allreduces plus the end-of-run
    pooling).  ``modeled_scaled_speedup`` is the Gustafson-style scaled
    speedup ``nodes * (1 - comm_fraction)``: every node carries the same
    per-node workload, so the non-comm share of the makespan is work.
    """
    cfg = _two_level_config(replicas, p, n_sweeps)
    sweeps_total = n_sweeps + cfg.base.n_thermalize
    t0 = time.perf_counter()
    res = run_spmd(two_level_program, cfg.n_ranks, machine=PARAGON, seed=11,
                   args=(cfg,))
    elapsed = time.perf_counter() - t0
    by_level = res.comm_fraction_by_level()
    comm = by_level["comm"] + by_level["ensemble"]
    nodes = replicas * p
    sites = STRIP_L * STRIP_T * replicas  # each replica sweeps a full lattice
    return {
        "case": TWO_LEVEL_CASE,
        "layout": f"{replicas}x{p}",
        "replicas": replicas,
        "p": p,
        "nodes": nodes,
        "executed": True,
        "n_sweeps": sweeps_total,
        "seconds_per_sweep": elapsed / sweeps_total,
        "sweeps_per_s": sweeps_total / elapsed,
        "site_updates_per_s": sites * sweeps_total / elapsed,
        "space_time_sites": sites,
        "halo_comm_fraction": by_level["comm"],
        "ensemble_comm_fraction": by_level["ensemble"],
        "comm_fraction_modeled": comm,
        "modeled_scaled_speedup": nodes * (1.0 - comm),
    }


def _extrapolate_two_level(source: dict) -> dict:
    """Modeled full-machine record from one executed composed run.

    Two facts about the cost model make the extrapolation exact rather
    than a guess (see repro/vmp/collectives.py): the ensemble allreduce
    is a reduce+bcast pair of binomial trees, so its cost per heartbeat
    scales as ``ceil(log2 R)``; and halo traffic never leaves a
    replica's domain sub-communicator, so per unit of makespan it is
    independent of R.  Scaling the executed run's ensemble share by the
    round ratio and renormalising the makespan gives the modeled
    per-level fractions at the target replica count.
    """
    replicas, p = TARGET_REPLICAS, source["p"]
    scale = (math.ceil(math.log2(replicas))
             / math.ceil(math.log2(source["replicas"])))
    f_halo = source["halo_comm_fraction"]
    f_ens = source["ensemble_comm_fraction"]
    makespan = (1.0 - f_ens) + f_ens * scale  # relative to the source run
    halo = f_halo / makespan
    ens = f_ens * scale / makespan
    comm = halo + ens
    nodes = replicas * p
    return {
        "case": TWO_LEVEL_CASE,
        "layout": f"{replicas}x{p}",
        "replicas": replicas,
        "p": p,
        "nodes": nodes,
        "executed": False,
        "extrapolated_from": source["layout"],
        "halo_comm_fraction": halo,
        "ensemble_comm_fraction": ens,
        "comm_fraction_modeled": comm,
        "modeled_scaled_speedup": nodes * (1.0 - comm),
    }


def collect_two_level(smoke: bool = False) -> list[dict]:
    """Two-level ensemble x domain records (``two_level_records``).

    Executed composed runs on the thread backend -- R=2 over the target
    strip width P=16 (full tier adds a small 2x2 cross-check) -- plus
    the modeled 64x16 = 1024-node scaled-speedup record extrapolated
    from the executed 2x16 run.  tools/check_bench.py gates the comm
    fractions of every record with the same ceiling it applies to the
    overlap records.
    """
    records = [_time_two_level(2, TARGET_P, 2 if smoke else 12)]
    if not smoke:
        records.insert(0, _time_two_level(2, 2, 12))
    records.append(_extrapolate_two_level(records[-1]))
    return records


#: Geometry of the per-backend kernel-registry records (and of the CI
#: numba >= 3x gate in tools/check_bench.py).
KERNEL_CASE = "square 16x16 T=64"


def _kernel_factory():
    return WorldlineSquareQmc(XXZSquareModel(16, 16), beta=BETA, n_slices=64, seed=13)


def _time_kernel(backend: str, n_sweeps: int) -> dict:
    """Time one registry backend on the 16x16, T=64 lattice (warm).

    The first sweep is timed separately as ``compile_seconds``: for the
    JIT backends it is dominated by compilation (or the on-disk cache
    load) and must never pollute the steady-state rate the perf gate
    compares.  A second warm-up sweep then absorbs allocator effects
    before the timed loop.
    """
    sampler = _kernel_factory()
    t0 = time.perf_counter()
    sampler.sweep_vectorized(kernel=backend)
    compile_seconds = time.perf_counter() - t0
    sampler.sweep_vectorized(kernel=backend)
    t0 = time.perf_counter()
    for _ in range(n_sweeps):
        sampler.sweep_vectorized(kernel=backend)
    elapsed = time.perf_counter() - t0
    sites = _space_time_sites(sampler)
    return {
        "case": KERNEL_CASE,
        "backend": backend,
        "n_sweeps": n_sweeps,
        "seconds_per_sweep": elapsed / n_sweeps,
        "sweeps_per_s": n_sweeps / elapsed,
        "site_updates_per_s": sites * n_sweeps / elapsed,
        "space_time_sites": sites,
        "compile_seconds": compile_seconds,
        "acceptance": sampler.acceptance_rate,
    }


def collect_kernels(smoke: bool = False) -> list[dict]:
    """Registry-backend A/B records on the 16x16, T=64 lattice.

    One record per *available* backend (numpy always; numba/cupy when
    importable), each with warm sweeps/s plus the separately-reported
    first-sweep ``compile_seconds``, and ``speedup_vs_numpy`` so
    ``tools/check_bench.py --require-kernel numba=3.0`` can gate the
    JIT backend against the batched-numpy reference.
    """
    n_sweeps = 3 if smoke else 10
    records = [
        _time_kernel(backend, n_sweeps)
        for backend in kernels.available_backends()
    ]
    base = next(r["sweeps_per_s"] for r in records if r["backend"] == "numpy")
    for rec in records:
        rec["speedup_vs_numpy"] = rec["sweeps_per_s"] / base
    return records


def collect(smoke: bool = False) -> list[dict]:
    scale = 5 if smoke else 1
    records = []
    for label, factory, n_sweeps in CASES:
        assert factory().can_vectorize, label
        for mode in ("scalar", "vectorized"):
            rec = _time_mode(factory, mode, max(n_sweeps // scale, 2))
            rec["case"] = label
            records.append(rec)
    return records


def collect_parallel(smoke: bool = False) -> list[dict]:
    """Parallel strip-driver records.

    Thread backend at P in {1, 2, 4}: both kernel modes (the mode
    ratio is the acceptance bar).  Multiprocessing backend at
    P in {1, 2, 4, 8}: vectorized only -- it carries real ndarray
    halo traffic through OS queues, so its throughput tracks the
    buffer transport, not the kernels.
    """
    records = []
    thread_ps = (1, 2) if smoke else (1, 2, 4)
    mp_ps = (1, 2) if smoke else (1, 2, 4, 8)
    vec_sweeps = 6 if smoke else 40
    scal_sweeps = 2 if smoke else 10
    for p in thread_ps:
        for mode, n_sweeps in (("scalar", scal_sweeps), ("vectorized", vec_sweeps)):
            records.append(_time_strip(p, mode, n_sweeps, backend="thread"))
    for p in mp_ps:
        records.append(
            _time_strip(p, "vectorized", 4 if smoke else 12, backend="mp")
        )
    # Modeled comm fraction of the aggregated-halo workload on Paragon
    # (the closed-form counterpart of the executed thread-backend runs).
    pm = PerformanceModel(
        PARAGON, worldline_strip_workload(STRIP_L, STRIP_T, sweeps=100)
    )
    for rec in records:
        if rec["backend"] == "mp":
            rec["comm_fraction_modeled"] = pm.comm_fraction(rec["p"])
    return records


def render(records: list[dict]) -> Table:
    table = Table(
        "Batched-kernel performance trajectory (scalar vs vectorized sweeps)",
        ["case", "mode", "ms/sweep", "site-updates/s", "speedup"],
    )
    by_case: dict[str, dict[str, dict]] = {}
    for rec in records:
        by_case.setdefault(rec["case"], {})[rec["mode"]] = rec
    for case, modes in by_case.items():
        base = modes["scalar"]["site_updates_per_s"]
        for mode in ("scalar", "vectorized"):
            rec = modes[mode]
            table.add_row(
                [
                    case,
                    mode,
                    1e3 * rec["seconds_per_sweep"],
                    rec["site_updates_per_s"],
                    rec["site_updates_per_s"] / base,
                ]
            )
    return table


def render_parallel(records: list[dict], serial_rate: float) -> Table:
    table = Table(
        "Strip-driver parallel trajectory (aggregated ndarray halos)",
        ["backend", "P", "mode", "ms/sweep", "site-updates/s",
         "vs serial vec", "comm frac (model)"],
    )
    for rec in records:
        frac = rec["comm_fraction_modeled"]
        table.add_row(
            [
                rec["backend"],
                rec["p"],
                rec["mode"],
                1e3 * rec["seconds_per_sweep"],
                rec["site_updates_per_s"],
                rec["site_updates_per_s"] / serial_rate,
                float("nan") if frac is None else frac,
            ]
        )
    return table


def render_kernels(records: list[dict]) -> Table:
    table = Table(
        "Kernel-registry backends (16x16 T=64, warm; compile time excluded)",
        ["backend", "ms/sweep", "sweeps/s", "compile s", "vs numpy"],
    )
    for rec in records:
        table.add_row(
            [
                rec["backend"],
                1e3 * rec["seconds_per_sweep"],
                rec["sweeps_per_s"],
                rec["compile_seconds"],
                rec["speedup_vs_numpy"],
            ]
        )
    return table


def render_overlap(records: list[dict]) -> Table:
    table = Table(
        "Halo-overlap A/B (lockstep vs five-stage pipeline, Paragon model)",
        ["case", "P", "overlap", "ms/sweep", "comm frac (model)"],
    )
    for rec in records:
        table.add_row(
            [
                rec["case"],
                rec["p"],
                "on" if rec["overlap"] else "off",
                1e3 * rec["seconds_per_sweep"],
                rec["comm_fraction_modeled"],
            ]
        )
    return table


def render_two_level(records: list[dict]) -> Table:
    table = Table(
        "Two-level ensemble x domain campaign (R replicas x P-rank strips, "
        "Paragon model)",
        ["layout", "nodes", "kind", "halo frac", "ens frac", "comm frac",
         "scaled speedup"],
    )
    for rec in records:
        table.add_row(
            [
                rec["layout"],
                rec["nodes"],
                "executed" if rec["executed"] else "modeled",
                rec["halo_comm_fraction"],
                rec["ensemble_comm_fraction"],
                rec["comm_fraction_modeled"],
                rec["modeled_scaled_speedup"],
            ]
        )
    return table


def _mode_rate(records: list[dict], backend: str, p: int, mode: str) -> float:
    for rec in records:
        if rec["backend"] == backend and rec["p"] == p and rec["mode"] == mode:
            return rec["site_updates_per_s"]
    raise KeyError((backend, p, mode))


def _overlap_fraction(records: list[dict], case: str, p: int,
                      overlap: bool) -> float:
    for rec in records:
        if (rec["case"] == case and rec["p"] == p
                and rec["overlap"] is overlap):
            return rec["comm_fraction_modeled"]
    raise KeyError((case, p, overlap))


def test_perf_kernels(benchmark, record, smoke):
    records = run_once(benchmark, lambda: collect(smoke))
    parallel_records = collect_parallel(smoke)
    overlap_records = collect_overlap(smoke)
    kernel_records = collect_kernels(smoke)
    two_level_records = collect_two_level(smoke)
    serial_vec_rate = next(
        r["site_updates_per_s"]
        for r in records
        if r["case"] == "chain L=64 T=64" and r["mode"] == "vectorized"
    )
    table = render(records)
    ptable = render_parallel(parallel_records, serial_vec_rate)
    otable = render_overlap(overlap_records)
    ktable = render_kernels(kernel_records)
    ttable = render_two_level(two_level_records)
    record(
        "perf_kernels",
        table.render() + "\n\n" + ptable.render() + "\n\n" + otable.render()
        + "\n\n" + ktable.render() + "\n\n" + ttable.render(),
    )

    json_path = SMOKE_JSON_PATH if smoke else JSON_PATH
    json_path.parent.mkdir(parents=True, exist_ok=True)
    # Merge rather than rewrite: bench_obs_overhead.py stores its
    # section in the same document, and pytest may collect it first.
    doc = json.loads(json_path.read_text()) if json_path.exists() else {}
    doc.update(
        {
            "beta": BETA,
            "metadata": run_metadata(),
            "records": records,
            "parallel_records": parallel_records,
            "overlap_records": overlap_records,
            "kernel_records": kernel_records,
            "two_level_records": two_level_records,
        }
    )
    json_path.write_text(json.dumps(doc, indent=2) + "\n")

    # Overlap sanity at every tier: the pipeline must never *raise* the
    # modeled comm fraction of the identical run.
    for rec in overlap_records:
        if rec["overlap"]:
            off = _overlap_fraction(
                overlap_records, rec["case"], rec["p"], False
            )
            assert rec["comm_fraction_modeled"] <= off + 1e-9, (
                f"{rec['case']} P={rec['p']}: overlap raised comm fraction "
                f"{off:.3f} -> {rec['comm_fraction_modeled']:.3f}"
            )

    # Two-level sanity at every tier: both levels of every record carry
    # traffic, the total stays a proper fraction, and the campaign ends
    # in the modeled full-machine (1024-node) record.
    for rec in two_level_records:
        assert 0.0 < rec["comm_fraction_modeled"] < 1.0, rec["layout"]
        assert rec["halo_comm_fraction"] > 0.0, rec["layout"]
        assert rec["ensemble_comm_fraction"] > 0.0, rec["layout"]
    modeled = next(r for r in two_level_records if not r["executed"])
    assert modeled["nodes"] == TARGET_REPLICAS * TARGET_P
    assert modeled["modeled_scaled_speedup"] > 1.0

    speedups = {}
    by_case: dict[str, dict[str, dict]] = {}
    for rec in records:
        by_case.setdefault(rec["case"], {})[rec["mode"]] = rec
    for case, modes in by_case.items():
        speedups[case] = (
            modes["vectorized"]["site_updates_per_s"]
            / modes["scalar"]["site_updates_per_s"]
        )
        if not smoke:
            assert speedups[case] > 1.0, f"{case}: no speedup ({speedups[case]:.2f}x)"
    if smoke:
        return
    assert speedups["square 16x16 T=64"] >= 5.0, (
        f"16x16 vectorized sweep only "
        f"{speedups['square 16x16 T=64']:.1f}x over scalar"
    )
    # Acceptance bar of this PR: the vectorized strip driver at P=4
    # beats the scalar strip driver's site-update rate >= 10x on the
    # 64-site chain at T=64.
    strip_ratio = (
        _mode_rate(parallel_records, "thread", 4, "vectorized")
        / _mode_rate(parallel_records, "thread", 4, "scalar")
    )
    assert strip_ratio >= 10.0, (
        f"strip P=4 vectorized only {strip_ratio:.1f}x over scalar"
    )
    # Acceptance bar of the overlap pipeline: the vectorized strip
    # driver at P=4 drops its modeled comm fraction to <= 0.45 when
    # halo exchanges overlap interior updates.
    frac_on = _overlap_fraction(overlap_records, STRIP_CASE, 4, True)
    frac_off = _overlap_fraction(overlap_records, STRIP_CASE, 4, False)
    assert frac_on <= 0.45, (
        f"strip P=4 overlapped comm fraction {frac_on:.3f} > 0.45 "
        f"(lockstep {frac_off:.3f})"
    )
    # Acceptance bar of the kernel registry: where the numba JIT
    # backend is installed, its warm sweep rate beats the batched-numpy
    # reference >= 3x on the 16x16, T=64 lattice (compile time is
    # reported separately and excluded).  The CI numba job enforces the
    # same bar through tools/check_bench.py --require-kernel numba=3.0.
    numba_rec = next(
        (r for r in kernel_records if r["backend"] == "numba"), None
    )
    if numba_rec is not None:
        assert numba_rec["speedup_vs_numpy"] >= 3.0, (
            f"numba kernel only {numba_rec['speedup_vs_numpy']:.2f}x over "
            f"numpy on {KERNEL_CASE}"
        )
