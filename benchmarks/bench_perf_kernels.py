"""Performance trajectory of the batched world-line kernels.

Times the scalar reference sweep against the vectorized class-batched
sweep for the 1-D chain and the 2-D square-lattice samplers on fixed
geometries with fixed seeds, and records the trajectory twice:

* ``benchmarks/output/perf_kernels.txt`` -- the human-readable table;
* ``BENCH_perf.json`` at the repository root -- machine-readable, one
  record per (sampler, geometry, mode) with sweeps/s and site-updates/s
  (space--time sites swept per wall-clock second), so successive PRs
  can diff kernel throughput.

Shape criterion (the acceptance bar of the batching work): the
vectorized 2-D sweep sustains >= 5x the scalar site-update rate on the
16 x 16, T = 64 lattice.  Wall-clock numbers vary with the host; the
*ratio* is what the JSON trajectory tracks.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.models.hamiltonians import XXZChainModel, XXZSquareModel
from repro.qmc.worldline import WorldlineChainQmc
from repro.qmc.worldline2d import WorldlineSquareQmc
from repro.util.tables import Table

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_perf.json"

BETA = 1.0
#: (label, factory, scalar sweep attr, vectorized sweep attr, sweeps)
CASES = [
    (
        "chain L=64 T=64",
        lambda: WorldlineChainQmc(XXZChainModel(64), beta=BETA, n_slices=64, seed=11),
        30,
    ),
    (
        "square 8x8 T=32",
        lambda: WorldlineSquareQmc(
            XXZSquareModel(8, 8), beta=BETA, n_slices=32, seed=12
        ),
        20,
    ),
    (
        "square 16x16 T=64",
        lambda: WorldlineSquareQmc(
            XXZSquareModel(16, 16), beta=BETA, n_slices=64, seed=13
        ),
        8,
    ),
]


def _space_time_sites(sampler) -> int:
    if isinstance(sampler, WorldlineChainQmc):
        return sampler.L * sampler.n_slices
    return sampler.n_sites * sampler.n_slices


def _time_mode(factory, mode: str, n_sweeps: int) -> dict:
    sampler = factory()
    sweep = sampler.sweep_scalar if mode == "scalar" else sampler.sweep_vectorized
    sweep()  # warm up gather tables / allocator outside the timed region
    t0 = time.perf_counter()
    for _ in range(n_sweeps):
        sweep()
    elapsed = time.perf_counter() - t0
    sites = _space_time_sites(sampler)
    return {
        "mode": mode,
        "n_sweeps": n_sweeps,
        "seconds_per_sweep": elapsed / n_sweeps,
        "sweeps_per_s": n_sweeps / elapsed,
        "site_updates_per_s": sites * n_sweeps / elapsed,
        "space_time_sites": sites,
        "acceptance": sampler.acceptance_rate,
    }


def collect() -> list[dict]:
    records = []
    for label, factory, n_sweeps in CASES:
        assert factory().can_vectorize, label
        for mode in ("scalar", "vectorized"):
            rec = _time_mode(factory, mode, n_sweeps)
            rec["case"] = label
            records.append(rec)
    return records


def render(records: list[dict]) -> Table:
    table = Table(
        "Batched-kernel performance trajectory (scalar vs vectorized sweeps)",
        ["case", "mode", "ms/sweep", "site-updates/s", "speedup"],
    )
    by_case: dict[str, dict[str, dict]] = {}
    for rec in records:
        by_case.setdefault(rec["case"], {})[rec["mode"]] = rec
    for case, modes in by_case.items():
        base = modes["scalar"]["site_updates_per_s"]
        for mode in ("scalar", "vectorized"):
            rec = modes[mode]
            table.add_row(
                [
                    case,
                    mode,
                    1e3 * rec["seconds_per_sweep"],
                    rec["site_updates_per_s"],
                    rec["site_updates_per_s"] / base,
                ]
            )
    return table


def test_perf_kernels(benchmark, record):
    records = run_once(benchmark, collect)
    table = render(records)
    record("perf_kernels", table.render())

    JSON_PATH.write_text(
        json.dumps({"beta": BETA, "records": records}, indent=2) + "\n"
    )

    speedups = {}
    by_case: dict[str, dict[str, dict]] = {}
    for rec in records:
        by_case.setdefault(rec["case"], {})[rec["mode"]] = rec
    for case, modes in by_case.items():
        speedups[case] = (
            modes["vectorized"]["site_updates_per_s"]
            / modes["scalar"]["site_updates_per_s"]
        )
        assert speedups[case] > 1.0, f"{case}: no speedup ({speedups[case]:.2f}x)"
    assert speedups["square 16x16 T=64"] >= 5.0, (
        f"16x16 vectorized sweep only "
        f"{speedups['square 16x16 T=64']:.1f}x over scalar"
    )
