"""Figure 12 (extension) -- Binder-cumulant crossing locates T_c.

The era-standard finite-size-scaling analysis: U4(T, L) curves for two
lattice sizes, sampled with Swendsen--Wang clusters (so the
near-critical points decorrelate), cross at the critical temperature.
Shape criteria: each curve decreases monotonically in T; the larger
lattice's curve is steeper; the crossing lands within 2% of Onsager's
exact T_c = 2.2692.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.models.ising_exact import onsager_critical_temperature
from repro.qmc.cluster import SwendsenWangIsing
from repro.stats.finite_size import BinderCurve, binder_cumulant, crossing_temperature
from repro.util.tables import Table

TC = onsager_critical_temperature()
TEMPS = np.array([2.10, 2.18, 2.24, 2.30, 2.38, 2.50])
SIZES = (8, 16)
N_SWEEPS = 4000


def measure_curve(size: int, seed: int, scale: int = 1) -> BinderCurve:
    u4 = []
    for k, temp in enumerate(TEMPS):
        beta = 1.0 / temp
        s = SwendsenWangIsing((size, size), (beta, beta), seed=seed + k)
        obs = s.run(n_sweeps=N_SWEEPS // scale, n_thermalize=300 // scale)
        u4.append(binder_cumulant(obs.magnetization))
    return BinderCurve(size, TEMPS, np.array(u4))


def build(smoke: bool = False) -> tuple[Table, float]:
    scale = 20 if smoke else 1
    curves = [measure_curve(size, seed=100 * size, scale=scale) for size in SIZES]
    table = Table(
        "Figure 12 (as data): Binder cumulant U4(T, L), 2-D Ising (SW clusters)",
        ["T", "T/Tc"] + [f"L={s}" for s in SIZES],
    )
    for i, t in enumerate(TEMPS):
        table.add_row([t, t / TC] + [float(c.u4[i]) for c in curves])
    t_cross = crossing_temperature(curves[0], curves[1])
    return table, t_cross


def test_fig12_binder_crossing(benchmark, record, smoke):
    table, t_cross = run_once(benchmark, lambda: build(smoke))

    if not smoke:
        for size in SIZES:
            u4 = table.column(f"L={size}")
            # Monotone decreasing through the critical region (small
            # noise slack).
            assert all(a >= b - 0.03 for a, b in zip(u4, u4[1:])), f"L={size}"
        # Larger lattice = steeper curve (bigger drop over the window).
        drop8 = table.column("L=8")[0] - table.column("L=8")[-1]
        drop16 = table.column("L=16")[0] - table.column("L=16")[-1]
        assert drop16 > drop8

        assert abs(t_cross - TC) < 0.02 * TC, (
            f"crossing {t_cross:.3f} vs Tc {TC:.3f}"
        )

    record(
        "fig12_binder_crossing",
        table.render()
        + f"\n\nBinder crossing: T = {t_cross:.4f}   (Onsager T_c = {TC:.4f})",
    )
