"""Figure 2 -- communication fraction and its halo/collective split.

Modeled halo and collective shares of per-sweep time versus P for the
strip-decomposed Heisenberg workload, anchored by an executed run whose
clock categories are measured, not modeled.  Shape criteria: comm
fraction grows monotonically with P; halos dominate collectives at
moderate P for frequent-halo workloads; the executed anchor's comm
fraction lands within a factor ~2 of the model.
"""

from benchmarks.conftest import run_once
from repro.qmc.parallel import WorldlineStripConfig, worldline_strip_program
from repro.qmc.worldline import FLOPS_PER_CORNER_MOVE
from repro.util.tables import Series, Table, render_series
from repro.vmp import PARAGON, run_spmd
from repro.vmp.performance import PerformanceModel, WorkloadShape

WORKLOAD = WorkloadShape(
    lx=512, ly=1, lt=64,
    flops_per_site=FLOPS_PER_CORNER_MOVE,
    sweeps=100, bytes_per_site=1, strategy="strip",
    measurement_interval=10,
)


def build() -> tuple[Series, Series, Series]:
    pm = PerformanceModel(PARAGON, WORKLOAD)
    total = Series("comm fraction")
    halo = Series("halo share")
    coll = Series("collective share")
    p = 2
    while p <= 512:
        comp = pm.compute_seconds_per_sweep(p)
        h = pm.halo_seconds_per_sweep(p)
        c = pm.collective_seconds_per_sweep(p)
        t = comp + h + c
        total.add(p, (h + c) / t)
        halo.add(p, h / t)
        coll.add(p, c / t)
        p *= 4
    return total, halo, coll


def executed_anchor() -> tuple[int, float]:
    cfg = WorldlineStripConfig(
        n_sites=32, jz=1.0, jxy=1.0, beta=2.0, n_slices=16,
        n_sweeps=40, n_thermalize=5, measure_every=10,
    )
    res = run_spmd(worldline_strip_program, 4, machine=PARAGON, seed=3, args=(cfg,))
    return 4, res.comm_fraction()


def test_fig2_comm_fraction(benchmark, record):
    total, halo, coll = run_once(benchmark, build)

    assert all(a <= b + 1e-12 for a, b in zip(total.y, total.y[1:])), (
        "comm fraction must grow with P"
    )
    # Halos dominate collectives at moderate P on this workload.
    assert halo.y[1] > coll.y[1]

    p_exec, frac_exec = executed_anchor()
    anchor = Table("executed anchor (32-site chain, P=4, Paragon)",
                   ["P", "comm fraction (executed)"])
    anchor.add_row([p_exec, frac_exec])
    assert 0.0 < frac_exec < 1.0

    record(
        "fig2_comm_fraction",
        render_series(
            "Figure 2: modeled communication fraction (strip Heisenberg, Paragon)",
            [total, halo, coll],
            x_label="P",
        )
        + "\n\n"
        + anchor.render(),
    )
