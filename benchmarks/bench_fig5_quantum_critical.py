"""Figure 5 -- quantum critical crossover of the 1-D TFIM.

Order parameter <|m|> versus transverse field at low temperature: ~1
deep in the ordered phase, collapsing around Gamma = J, ~0 beyond.
<sigma^x> is simultaneously validated against the free-fermion curve.
Shape criteria: monotone collapse, ordered/disordered contrast > 5x,
crossover bracketing Gamma = J, sigma_x within 5% of exact everywhere.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.models.tfim_exact import tfim_transverse_magnetization
from repro.qmc.tfim import TfimQmc
from repro.util.tables import Table

L, BETA, M = 16, 6.0, 48
GAMMAS = [0.3, 0.7, 1.0, 1.3, 2.0]


def build_table(smoke: bool = False) -> Table:
    scale = 20 if smoke else 1
    table = Table(
        f"Figure 5 (as data): TFIM L={L}, beta={BETA}: order parameter vs Gamma",
        ["Gamma/J", "<|m|>", "<sx> QMC", "<sx> exact"],
    )
    for k, gamma in enumerate(GAMMAS):
        q = TfimQmc((L,), j=1.0, gamma=gamma, beta=BETA, n_slices=M, seed=70 + k)
        meas = q.run(n_sweeps=2500 // scale, n_thermalize=400 // scale)
        table.add_row(
            [
                gamma,
                float(np.mean(meas.abs_magnetization)),
                float(np.mean(meas.sigma_x)),
                tfim_transverse_magnetization(L, BETA, 1.0, gamma),
            ]
        )
    return table


def test_fig5_quantum_critical(benchmark, record, smoke):
    table = run_once(benchmark, lambda: build_table(smoke))

    if not smoke:
        m = table.column("<|m|>")
        assert all(a >= b - 0.03 for a, b in zip(m, m[1:])), "collapse monotone"
        assert m[0] > 0.9, "deep ordered phase magnetized"
        assert m[-1] < m[0] / 5, "disordered phase collapsed"
        # Crossover brackets Gamma = J: big drop between 0.7 and 1.3.
        assert m[1] - m[3] > 0.3

        sx_qmc = table.column("<sx> QMC")
        sx_exact = table.column("<sx> exact")
        for q, e in zip(sx_qmc, sx_exact):
            assert abs(q - e) < 0.05 * max(e, 0.1), f"sigma_x {q} vs exact {e}"

    record("fig5_quantum_critical", table.render())
