"""Table 4 -- physics validation: QMC versus exact diagonalization.

Every QMC estimator used in the other benchmarks, pinned against an
independent exact method on small systems.  Shape criterion: every row
agrees within its quoted statistical window plus the known Trotter
allowance.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.models.ed import ExactDiagonalization
from repro.models.hamiltonians import TFIM1D, XXZChainModel
from repro.models.trotter_ref import trotter_reference_energy
from repro.qmc.tfim import TfimQmc
from repro.qmc.worldline import WorldlineChainQmc
from repro.stats.binning import BinningAnalysis
from repro.util.tables import Table


def build_table(smoke: bool = False) -> Table:
    scale = 20 if smoke else 1
    table = Table(
        "Table 4: QMC vs exact references",
        ["system", "observable", "QMC", "err", "reference", "|dev|/sigma"],
    )

    # World-line XXZ rows: reference = matrix-product Trotter value
    # (same dtau), so deviations are purely statistical.
    for label, jz, beta, m_trotter, seed in (
        ("Heisenberg L=4 open", 1.0, 1.0, 4, 11),
        ("XXZ(Jz=0.5) L=4 open", 0.5, 1.0, 4, 12),
        ("Heisenberg L=8 ring", 1.0, 0.5, 4, 13),
    ):
        periodic = "ring" in label
        L = 8 if periodic else 4
        model = XXZChainModel(n_sites=L, jz=jz, jxy=1.0, periodic=periodic)
        q = WorldlineChainQmc(model, beta, 2 * m_trotter, seed=seed)
        meas = q.run(n_sweeps=5000 // scale, n_thermalize=500 // scale)
        ba = BinningAnalysis.from_series(meas.energy)
        ref = trotter_reference_energy(model, beta, m_trotter)
        dev = abs(ba.mean - ref) / max(ba.error, 1e-12)
        table.add_row([label, "E", ba.mean, ba.error, ref, dev])

    # TFIM rows: reference = true ED (Trotter bias folded into sigma via
    # the documented 1% allowance, shown in the dev column conservatively).
    for gamma, seed in ((0.7, 21), (1.3, 22)):
        n, beta, m = 8, 2.0, 32
        ed = ExactDiagonalization(TFIM1D(n_sites=n, gamma=gamma).build_sparse(), n)
        ref = ed.thermal(beta).energy
        q = TfimQmc((n,), j=1.0, gamma=gamma, beta=beta, n_slices=m, seed=seed)
        meas = q.run(n_sweeps=5000 // scale, n_thermalize=500 // scale)
        ba = BinningAnalysis.from_series(meas.energy)
        sigma_eff = np.hypot(ba.error, 0.01 * abs(ref))
        dev = abs(ba.mean - ref) / sigma_eff
        table.add_row([f"TFIM L=8 G={gamma}", "E", ba.mean, ba.error, ref, dev])

        chi_ref = ed.thermal(beta).susceptibility  # placeholder row check
        _ = chi_ref
    return table


def test_table4_validation(benchmark, record, smoke):
    table = run_once(benchmark, lambda: build_table(smoke))
    if not smoke:
        devs = table.column("|dev|/sigma")
        assert all(d < 4.5 for d in devs), f"validation deviations too large: {devs}"
    record("table4_validation", table.render())
