"""Table 5 (extension) -- statistical error scaling and effective statistics.

The statistics table every serious MC paper carries: the error of the
energy estimate falls like 1/sqrt(n_sweeps), and the binning analysis
quantifies how many sweeps one autocorrelation time eats.  Shape
criteria: quadrupling the sweeps roughly halves the binned error
(within the chi^2 noise of error-of-error estimation); tau_int is
consistent across run lengths.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.qmc.tfim import TfimQmc
from repro.stats.binning import BinningAnalysis
from repro.util.tables import Table

SWEEP_GRID = [1000, 4000, 16000]


def build(smoke: bool = False) -> Table:
    scale = 20 if smoke else 1
    table = Table(
        "Table 5: error scaling, TFIM chain L=16 (Gamma=1, beta=2)",
        ["sweeps", "E mean", "binned err", "err*sqrt(sweeps)", "tau_int"],
    )
    for k, sweeps in enumerate(SWEEP_GRID):
        sweeps //= scale
        q = TfimQmc((16,), j=1.0, gamma=1.0, beta=2.0, n_slices=32, seed=300 + k)
        meas = q.run(n_sweeps=sweeps, n_thermalize=400 // scale)
        ba = BinningAnalysis.from_series(meas.energy)
        table.add_row(
            [sweeps, ba.mean, ba.error, ba.error * np.sqrt(sweeps), ba.tau_int]
        )
    return table


def test_table5_error_scaling(benchmark, record, smoke):
    table = run_once(benchmark, lambda: build(smoke))

    if not smoke:
        errs = table.column("binned err")
        # Errors fall with sweeps...
        assert all(a > b for a, b in zip(errs, errs[1:]))
        # ...like 1/sqrt(M): the normalized column is flat within a factor 2.
        normalized = table.column("err*sqrt(sweeps)")
        assert max(normalized) < 2.5 * min(normalized)

        # All runs see the same underlying physics.
        means = table.column("E mean")
        assert max(means) - min(means) < 6 * max(errs)

    record("table5_error_scaling", table.render())
