"""Figure 11 (extension) -- the 2-D Heisenberg antiferromagnet.

The flagship physics target of early parallel world-line QMC: energy
and staggered structure factor of the 4x4 Heisenberg model versus
temperature, with the ground-state energy computed *in-repo* by sparse
Lanczos (E0 = -11.2285, the well-known 4x4 value) as the T -> 0 anchor.

Shape criteria: E(beta) decreases monotonically toward E0 and lands
within the documented systematic window (thermal + Trotter + winding
restriction + slow local-update mixing at low T: 8%); the staggered
structure factor S(pi,pi) *grows* as T falls -- the antiferromagnetic
correlation buildup that motivated these simulations.
"""

from benchmarks.conftest import run_once
from repro.models.ed import lanczos_ground_state
from repro.models.hamiltonians import XXZSquareModel
from repro.qmc.worldline2d import WorldlineSquareQmc
from repro.stats.binning import BinningAnalysis
from repro.util.tables import Table

MODEL = XXZSquareModel(lx=4, ly=4)
N = 16
POINTS = [  # (beta, M, sweeps)
    (0.5, 6, 2500),
    (1.0, 12, 2000),
    (2.0, 20, 1500),
    (4.0, 40, 1500),
]


def build(smoke: bool = False) -> tuple[Table, float]:
    scale = 20 if smoke else 1
    e0 = float(lanczos_ground_state(MODEL.build_sparse())[0])
    table = Table(
        "Figure 11 (as data): 4x4 Heisenberg AFM vs temperature",
        ["beta", "E QMC", "err", "S(pi,pi)", "E0 (Lanczos)"],
    )
    for k, (beta, m, sweeps) in enumerate(POINTS):
        sweeps = max(sweeps // scale, 20)
        q = WorldlineSquareQmc(MODEL, beta, 4 * m, seed=90 + k)
        meas = q.run(n_sweeps=sweeps, n_thermalize=sweeps // 5)
        ba = BinningAnalysis.from_series(meas.energy)
        table.add_row(
            [beta, ba.mean, ba.error, meas.staggered_structure_factor(N), e0]
        )
    return table, e0


def test_fig11_heisenberg_2d(benchmark, record, smoke):
    table, e0 = run_once(benchmark, lambda: build(smoke))

    if not smoke:
        energies = table.column("E QMC")
        s_afm = table.column("S(pi,pi)")

        # Energy falls monotonically with beta toward the ground state.
        assert all(a > b for a, b in zip(energies, energies[1:]))
        assert energies[-1] > e0 - 0.05  # variational-like bound (up to noise)
        assert abs(energies[-1] - e0) < 0.08 * abs(e0), (
            f"E(beta=4) = {energies[-1]:.3f} vs E0 = {e0:.3f}"
        )
        # Antiferromagnetic order builds up as T falls.
        assert all(a < b for a, b in zip(s_afm, s_afm[1:]))
        assert s_afm[-1] > 2 * s_afm[0]

    record("fig11_heisenberg2d", table.render())
