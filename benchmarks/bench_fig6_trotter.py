"""Figure 6 -- Trotter-error extrapolation E(dtau) -> E(0).

World-line energies of the open Heisenberg 4-chain at several Trotter
numbers, the dtau^2 fit, and the comparison of the intercept with true
exact diagonalization.  Shape criteria: E(dtau) bends *away* from the
exact value quadratically (deviations scale ~4x when dtau doubles,
within noise) and the extrapolated intercept agrees with ED.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.models.ed import ExactDiagonalization
from repro.models.hamiltonians import XXZChainModel
from repro.models.trotter_ref import trotter_reference_energy
from repro.qmc.trotter import trotter_extrapolate
from repro.qmc.worldline import WorldlineChainQmc
from repro.util.tables import Table

MODEL = XXZChainModel(n_sites=4, periodic=False)
BETA = 1.0
TROTTER_NUMBERS = [2, 3, 4, 8]


def build(smoke: bool = False) -> tuple[Table, float, float]:
    scale = 20 if smoke else 1
    ed = ExactDiagonalization(MODEL.build_sparse(), 4)
    exact = ed.thermal(BETA).energy

    def run_at(m):
        q = WorldlineChainQmc(MODEL, BETA, 2 * m, seed=200 + m)
        return q.run(n_sweeps=6000 // scale, n_thermalize=500 // scale).energy

    v0, points = trotter_extrapolate(run_at, BETA, TROTTER_NUMBERS)

    table = Table(
        "Figure 6 (as data): Trotter extrapolation, Heisenberg L=4 open, beta=1",
        ["M", "dtau", "E QMC", "err", "E Trotter-exact", "E true ED"],
    )
    for m, p in zip(TROTTER_NUMBERS, points):
        table.add_row(
            [m, p.dtau, p.value, p.error,
             trotter_reference_energy(MODEL, BETA, m), exact]
        )
    return table, v0, exact


def test_fig6_trotter_extrapolation(benchmark, record, smoke):
    table, v0, exact = run_once(benchmark, lambda: build(smoke))

    if not smoke:
        # Each Monte Carlo point sits on its own finite-dtau exact value.
        for m, e_qmc, err, e_ref in zip(
            table.column("M"), table.column("E QMC"), table.column("err"),
            table.column("E Trotter-exact"),
        ):
            assert abs(e_qmc - e_ref) < 4.5 * err, f"M={m} off its Trotter target"

        # The exact Trotter curve itself converges quadratically to ED.
        refs = np.array(table.column("E Trotter-exact"), dtype=float)
        dtaus = np.array(table.column("dtau"), dtype=float)
        devs = np.abs(refs - exact)
        ratio = (devs[0] / devs[-1]) / (dtaus[0] ** 2 / dtaus[-1] ** 2)
        assert 0.5 < ratio < 2.0, "dtau^2 scaling of the systematic error"

        # Extrapolated intercept agrees with true ED.
        errs = [e for e in table.column("err")]
        assert abs(v0 - exact) < 5 * max(errs) + 0.01

    record(
        "fig6_trotter",
        table.render()
        + f"\n\nextrapolated E(dtau->0) = {v0:.4f}   true ED = {exact:.4f}",
    )
