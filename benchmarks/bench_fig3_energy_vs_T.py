"""Figure 3 -- energy versus temperature, QMC against the exact curve.

TFIM chain at fixed Gamma: QMC energies across a temperature sweep,
compared point-by-point with the exact free-fermion solution.  Shape
criteria: every point agrees within its window; the curve is monotone
in T and approaches the exact ground-state energy as T -> 0.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.models.tfim_exact import (
    tfim_finite_temperature_energy,
    tfim_ground_state_energy,
)
from repro.qmc.tfim import TfimQmc
from repro.stats.binning import BinningAnalysis
from repro.util.tables import Table

L, GAMMA = 16, 0.8
TEMPS = [4.0, 2.0, 1.0, 0.5, 0.25]


def build_table(smoke: bool = False) -> Table:
    scale = 20 if smoke else 1
    table = Table(
        f"Figure 3 (as data): E/N vs T, TFIM chain L={L}, Gamma={GAMMA}",
        ["T", "QMC", "err", "exact", "|dev|/sigma"],
    )
    for k, temp in enumerate(TEMPS):
        beta = 1.0 / temp
        n_slices = max(8, 2 * int(np.ceil(8 * beta)))  # keep dtau <= 1/16
        if n_slices % 2:
            n_slices += 1
        q = TfimQmc((L,), j=1.0, gamma=GAMMA, beta=beta, n_slices=n_slices,
                    seed=50 + k)
        meas = q.run(n_sweeps=2500 // scale, n_thermalize=300 // scale)
        ba = BinningAnalysis.from_series(meas.energy / L)
        exact = tfim_finite_temperature_energy(L, beta, 1.0, GAMMA) / L
        sigma_eff = float(np.hypot(ba.error, 0.01 * abs(exact)))
        table.add_row([temp, ba.mean, ba.error, exact, abs(ba.mean - exact) / sigma_eff])
    return table


def test_fig3_energy_vs_temperature(benchmark, record, smoke):
    table = run_once(benchmark, lambda: build_table(smoke))

    if not smoke:
        devs = table.column("|dev|/sigma")
        assert all(d < 4.5 for d in devs), f"points off the exact curve: {devs}"

        qmc = table.column("QMC")
        assert all(a > b for a, b in zip(qmc, qmc[1:])), "E must fall as T falls"

        e_gs = tfim_ground_state_energy(L, 1.0, GAMMA) / L
        assert abs(qmc[-1] - e_gs) < 0.05 * abs(e_gs), "T->0 limit"

    record("fig3_energy_vs_T", table.render())
