"""Overhead of the telemetry layer on the vectorized strip driver.

Times the SPMD world-line strip driver (P = 4, vectorized kernels,
PARAGON machine model) in three configurations:

* ``disabled`` -- no registry: every hot path sees the NOOP recorder
  and pays one falsy attribute test per sweep/message;
* ``metrics`` -- a live :class:`~repro.obs.MetricsRegistry` with
  periodic snapshots, as ``--metrics-out --obs-interval 10`` would
  configure it;
* ``health`` -- no registry, but a live :class:`~repro.obs.HealthMonitor`
  fed per-measurement observations and windowed rule checks, as
  ``--health`` would configure it (isolates the health engine's own
  cost from the metrics recorder's);
* ``metrics+trace`` -- metrics plus phase-span collection (the
  ModelClock observer fires on every charge) and message tracing, as
  ``--trace-out`` configures it.

The acceptance bar: the ``metrics`` variant AND the ``health`` variant
each stay within 3% of ``disabled``.  Overhead is measured in *process
CPU time* (``time.process_time``) as the ratio of **best-of-reps**
times over interleaved runs.  CPU time counts exactly the extra work
the instrumentation performs, and on a time-shared container the
noise -- descheduling, GC bursts, cache eviction by neighbors -- is
strictly *additive*: identical runs spread +-30% upward from a stable
floor, so the minimum over enough interleaved reps converges to the
true cost from above while medians and paired ratios still swing by
more than the effect being measured.  Wall-clock numbers ride along in
the records for reference.  ``metrics+trace`` is recorded but not gated: per-event
span and message collection is opt-in diagnostics, not a production
mode.

Records land in ``BENCH_perf.json`` under ``observability_overhead``
via read-modify-write, so the kernel-trajectory records written by
``bench_perf_kernels.py`` survive.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

from benchmarks.conftest import run_metadata, run_once
from repro.obs import HealthRules, MetricsRegistry
from repro.qmc.parallel import WorldlineStripConfig, worldline_strip_program
from repro.util.tables import Table
from repro.vmp.machines import PARAGON
from repro.vmp.scheduler import run_spmd

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_perf.json"
SMOKE_JSON_PATH = REPO_ROOT / "benchmarks" / "output" / "smoke" / "BENCH_perf_smoke.json"

P = 4
# Large enough that one run takes ~1.5 s: on this time-shared
# single-core container, paired ratios of sub-second runs swing by
# +-10% from thread scheduling alone, swamping a few-percent effect.
STRIP_L, STRIP_T = 256, 64
SNAPSHOT_INTERVAL = 10
VARIANTS = ("disabled", "metrics", "health", "metrics+trace")
OVERHEAD_BAR = 0.03


def _run_variant(variant: str, n_sweeps: int) -> tuple[float, float]:
    """One timed run; returns (cpu_seconds, wall_seconds)."""
    cfg = WorldlineStripConfig(
        n_sites=STRIP_L, jz=1.0, jxy=1.0, beta=1.0, n_slices=STRIP_T,
        n_sweeps=n_sweeps, n_thermalize=2, measure_every=10, mode="vectorized",
    )
    kwargs = {}
    args: tuple = (cfg,)
    if variant == "health":
        args = (cfg, None, HealthRules(interval=SNAPSHOT_INTERVAL))
    elif variant != "disabled":
        kwargs["metrics"] = MetricsRegistry(interval=SNAPSHOT_INTERVAL)
    if variant == "metrics+trace":
        kwargs["spans"] = True
        kwargs["trace"] = True
    # Start every timed region from the same collector state: the trace
    # variant leaves tens of thousands of event objects behind, and the
    # collection they eventually trigger would otherwise land inside a
    # *neighboring* variant's timing.
    gc.collect()
    c0 = time.process_time()
    t0 = time.perf_counter()
    run_spmd(
        worldline_strip_program, P, machine=PARAGON, seed=11, args=args,
        **kwargs,
    )
    return time.process_time() - c0, time.perf_counter() - t0


def collect(smoke: bool = False) -> list[dict]:
    n_sweeps = 8 if smoke else 400
    # Odd rep count: the ABBA order flip below needs no tie-break, and
    # the median of paired ratios lands on an actual sample.  9 reps
    # hold the median steady against the +-10% per-pair scheduling
    # noise of a shared container.
    reps = 2 if smoke else 9
    # Warm up thoroughly: the first timed region in a fresh process
    # runs measurably slower (allocator, gather tables, thread pools).
    for variant in VARIANTS:
        _run_variant(variant, 2 if smoke else 30)
    # Interleave the variants so drift in host load hits all of them
    # within each repetition, and alternate the within-rep order (ABBA)
    # so *monotonic* drift -- which a fixed order converts into a
    # systematic bias of the paired ratio -- cancels across reps too.
    cpu = {v: [] for v in VARIANTS}
    wall = {v: [] for v in VARIANTS}
    for rep in range(reps):
        order = VARIANTS if rep % 2 == 0 else tuple(reversed(VARIANTS))
        for variant in order:
            c, w = _run_variant(variant, n_sweeps)
            cpu[variant].append(c)
            wall[variant].append(w)
    sweeps_total = n_sweeps + 2
    overhead = {
        variant: min(cpu[variant]) / min(cpu["disabled"]) - 1.0
        for variant in VARIANTS
    }
    return [
        {
            "variant": variant,
            "p": P,
            "mode": "vectorized",
            "case": f"strip chain L={STRIP_L} T={STRIP_T}",
            "n_sweeps": sweeps_total,
            "reps": reps,
            "best_cpu_seconds": min(cpu[variant]),
            "best_wall_seconds": min(wall[variant]),
            "seconds_per_sweep": min(wall[variant]) / sweeps_total,
            "sweeps_per_s": sweeps_total / min(wall[variant]),
            "overhead_vs_disabled": overhead[variant],
        }
        for variant in VARIANTS
    ]


def render(records: list[dict]) -> Table:
    table = Table(
        f"Telemetry overhead, strip driver P={P} vectorized "
        f"(best-of-reps CPU-time ratio over {records[0]['reps']} "
        f"interleaved reps)",
        ["variant", "ms/sweep", "sweeps/s", "overhead vs disabled"],
    )
    for rec in records:
        table.add_row(
            [
                rec["variant"],
                1e3 * rec["seconds_per_sweep"],
                rec["sweeps_per_s"],
                rec["overhead_vs_disabled"],
            ]
        )
    return table


def _persist(records: list[dict], smoke: bool) -> None:
    json_path = SMOKE_JSON_PATH if smoke else JSON_PATH
    json_path.parent.mkdir(parents=True, exist_ok=True)
    doc = {}
    if json_path.exists():
        doc = json.loads(json_path.read_text())
    doc["observability_overhead"] = {
        "metadata": run_metadata(),
        "overhead_bar": OVERHEAD_BAR,
        # Smoke-tier runs are ~50 ms: far too short for percent-level
        # CPU ratios, so their overhead numbers are indicative only and
        # check_bench skips them (the committed full-tier record is
        # what gets gated against the bar).
        "tier": "smoke" if smoke else "full",
        "records": records,
    }
    json_path.write_text(json.dumps(doc, indent=2) + "\n")


def test_obs_overhead(benchmark, record, smoke):
    records = run_once(benchmark, lambda: collect(smoke))
    record("obs_overhead", render(records).render())
    _persist(records, smoke)
    if smoke:
        return
    by_variant = {rec["variant"]: rec for rec in records}
    for gated in ("metrics", "health"):
        overhead = by_variant[gated]["overhead_vs_disabled"]
        assert overhead < OVERHEAD_BAR, (
            f"{gated} recording costs {overhead:.1%} on the strip driver "
            f"(bar: {OVERHEAD_BAR:.0%})"
        )
