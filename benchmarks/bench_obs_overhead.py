"""Overhead of the telemetry layer on the vectorized strip driver.

Times the SPMD world-line strip driver (P = 4, vectorized kernels,
PARAGON machine model) in three configurations:

* ``disabled`` -- no registry: every hot path sees the NOOP recorder
  and pays one falsy attribute test per sweep/message;
* ``metrics`` -- a live :class:`~repro.obs.MetricsRegistry` with
  periodic snapshots, as ``--metrics-out --obs-interval 10`` would
  configure it;
* ``metrics+trace`` -- metrics plus phase-span collection (the
  ModelClock observer fires on every charge) and message tracing, as
  ``--trace-out`` configures it.

The acceptance bar of the observability PR: the ``metrics`` variant
stays within 3% of ``disabled``.  Overhead is measured in *process CPU
time* (``time.process_time``), as the median of paired per-repetition
ratios over interleaved runs: CPU time counts exactly the extra work
the instrumentation performs, while wall time on this shared
single-core container carries +-5% descheduling noise -- more than the
effect being measured.  Wall-clock numbers ride along in the records
for reference.  ``metrics+trace`` is recorded but not gated: per-event
span and message collection is opt-in diagnostics, not a production
mode.

Records land in ``BENCH_perf.json`` under ``observability_overhead``
via read-modify-write, so the kernel-trajectory records written by
``bench_perf_kernels.py`` survive.
"""

from __future__ import annotations

import gc
import json
import statistics
import time
from pathlib import Path

from benchmarks.conftest import run_metadata, run_once
from repro.obs import MetricsRegistry
from repro.qmc.parallel import WorldlineStripConfig, worldline_strip_program
from repro.util.tables import Table
from repro.vmp.machines import PARAGON
from repro.vmp.scheduler import run_spmd

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_perf.json"
SMOKE_JSON_PATH = REPO_ROOT / "benchmarks" / "output" / "smoke" / "BENCH_perf_smoke.json"

P = 4
# Large enough that one run takes ~1.5 s: on this time-shared
# single-core container, paired ratios of sub-second runs swing by
# +-10% from thread scheduling alone, swamping a few-percent effect.
STRIP_L, STRIP_T = 256, 64
SNAPSHOT_INTERVAL = 10
VARIANTS = ("disabled", "metrics", "metrics+trace")
OVERHEAD_BAR = 0.03


def _run_variant(variant: str, n_sweeps: int) -> tuple[float, float]:
    """One timed run; returns (cpu_seconds, wall_seconds)."""
    cfg = WorldlineStripConfig(
        n_sites=STRIP_L, jz=1.0, jxy=1.0, beta=1.0, n_slices=STRIP_T,
        n_sweeps=n_sweeps, n_thermalize=2, measure_every=10, mode="vectorized",
    )
    kwargs = {}
    if variant != "disabled":
        kwargs["metrics"] = MetricsRegistry(interval=SNAPSHOT_INTERVAL)
    if variant == "metrics+trace":
        kwargs["spans"] = True
        kwargs["trace"] = True
    # Start every timed region from the same collector state: the trace
    # variant leaves tens of thousands of event objects behind, and the
    # collection they eventually trigger would otherwise land inside a
    # *neighboring* variant's timing.
    gc.collect()
    c0 = time.process_time()
    t0 = time.perf_counter()
    run_spmd(
        worldline_strip_program, P, machine=PARAGON, seed=11, args=(cfg,),
        **kwargs,
    )
    return time.process_time() - c0, time.perf_counter() - t0


def collect(smoke: bool = False) -> list[dict]:
    n_sweeps = 8 if smoke else 400
    reps = 2 if smoke else 5
    # Warm up thoroughly: the first timed region in a fresh process
    # runs measurably slower (allocator, gather tables, thread pools).
    for variant in VARIANTS:
        _run_variant(variant, 2 if smoke else 30)
    # Interleave the variants so drift in host load hits all of them
    # within each repetition; the paired ratio then cancels it.
    cpu = {v: [] for v in VARIANTS}
    wall = {v: [] for v in VARIANTS}
    for _ in range(reps):
        for variant in VARIANTS:
            c, w = _run_variant(variant, n_sweeps)
            cpu[variant].append(c)
            wall[variant].append(w)
    sweeps_total = n_sweeps + 2
    overhead = {
        variant: statistics.median(
            m / d - 1.0 for m, d in zip(cpu[variant], cpu["disabled"])
        )
        for variant in VARIANTS
    }
    return [
        {
            "variant": variant,
            "p": P,
            "mode": "vectorized",
            "case": f"strip chain L={STRIP_L} T={STRIP_T}",
            "n_sweeps": sweeps_total,
            "reps": reps,
            "best_cpu_seconds": min(cpu[variant]),
            "best_wall_seconds": min(wall[variant]),
            "seconds_per_sweep": min(wall[variant]) / sweeps_total,
            "sweeps_per_s": sweeps_total / min(wall[variant]),
            "overhead_vs_disabled": overhead[variant],
        }
        for variant in VARIANTS
    ]


def render(records: list[dict]) -> Table:
    table = Table(
        f"Telemetry overhead, strip driver P={P} vectorized "
        f"(median paired CPU-time ratio over {records[0]['reps']} "
        f"interleaved reps)",
        ["variant", "ms/sweep", "sweeps/s", "overhead vs disabled"],
    )
    for rec in records:
        table.add_row(
            [
                rec["variant"],
                1e3 * rec["seconds_per_sweep"],
                rec["sweeps_per_s"],
                rec["overhead_vs_disabled"],
            ]
        )
    return table


def _persist(records: list[dict], smoke: bool) -> None:
    json_path = SMOKE_JSON_PATH if smoke else JSON_PATH
    json_path.parent.mkdir(parents=True, exist_ok=True)
    doc = {}
    if json_path.exists():
        doc = json.loads(json_path.read_text())
    doc["observability_overhead"] = {
        "metadata": run_metadata(),
        "overhead_bar": OVERHEAD_BAR,
        "records": records,
    }
    json_path.write_text(json.dumps(doc, indent=2) + "\n")


def test_obs_overhead(benchmark, record, smoke):
    records = run_once(benchmark, lambda: collect(smoke))
    record("obs_overhead", render(records).render())
    _persist(records, smoke)
    if smoke:
        return
    by_variant = {rec["variant"]: rec for rec in records}
    overhead = by_variant["metrics"]["overhead_vs_disabled"]
    assert overhead < OVERHEAD_BAR, (
        f"metrics recording costs {overhead:.1%} on the strip driver "
        f"(bar: {OVERHEAD_BAR:.0%})"
    )
