"""Legacy shim so `pip install -e .` works without the wheel package.

The container's setuptools (65.x) lacks an importable `wheel`, which
PEP-517 editable installs require; `setup.py develop` does not.
"""
from setuptools import setup

setup()
