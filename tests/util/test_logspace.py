"""Unit and property tests for overflow-safe log arithmetic."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.logspace import (
    NEG_INF,
    log_add,
    log_diff,
    log_mean,
    log_sub,
    log_sum,
    logsumexp,
    normalize_log_weights,
)

finite_logs = st.floats(min_value=-600.0, max_value=600.0, allow_nan=False)


class TestLogAdd:
    def test_matches_direct_computation(self):
        assert log_add(math.log(2.0), math.log(3.0)) == pytest.approx(math.log(5.0))

    def test_identity_with_neg_inf(self):
        assert log_add(NEG_INF, 1.5) == 1.5
        assert log_add(1.5, NEG_INF) == 1.5
        assert log_add(NEG_INF, NEG_INF) == NEG_INF

    def test_huge_arguments_do_not_overflow(self):
        # exp(1e5) overflows a double; the log-space sum must not.
        out = log_add(1e5, 1e5)
        assert out == pytest.approx(1e5 + math.log(2.0))

    def test_vastly_different_magnitudes_degrade_gracefully(self):
        assert log_add(0.0, -1e9) == 0.0

    @given(finite_logs, finite_logs)
    def test_commutative(self, a, b):
        assert log_add(a, b) == pytest.approx(log_add(b, a))

    @given(finite_logs, finite_logs, finite_logs)
    def test_associative_within_tolerance(self, a, b, c):
        left = log_add(log_add(a, b), c)
        right = log_add(a, log_add(b, c))
        assert left == pytest.approx(right, abs=1e-9)

    @given(finite_logs, finite_logs)
    def test_result_at_least_max(self, a, b):
        # log(e^a + e^b) >= max(a, b) always.
        assert log_add(a, b) >= max(a, b)


class TestLogSub:
    def test_matches_direct_computation(self):
        assert log_sub(math.log(5.0), math.log(3.0)) == pytest.approx(math.log(2.0))

    def test_equal_arguments_give_neg_inf(self):
        assert log_sub(2.5, 2.5) == NEG_INF

    def test_subtracting_zero(self):
        assert log_sub(1.0, NEG_INF) == 1.0

    def test_rejects_negative_difference(self):
        with pytest.raises(ValueError):
            log_sub(1.0, 2.0)

    @given(
        st.floats(min_value=-30.0, max_value=30.0, allow_nan=False),
        st.floats(min_value=-30.0, max_value=30.0, allow_nan=False),
    )
    def test_add_then_sub_roundtrip(self, a, b):
        # Catastrophic cancellation is inherent when |a - b| is large
        # (the roundtrip error grows like eps * exp(|b - a|)), so the
        # property is asserted on a bounded dynamic range in linear space.
        total = log_add(a, b)
        back = log_sub(total, b)
        tolerance = 1e-12 * math.exp(abs(b - a)) + 1e-9
        assert abs(math.exp(back - a) - 1.0) <= tolerance

    def test_log_diff_is_symmetric(self):
        assert log_diff(1.0, 3.0) == pytest.approx(log_diff(3.0, 1.0))


class TestLogSumAndLogsumexp:
    def test_log_sum_empty_is_neg_inf(self):
        assert log_sum([]) == NEG_INF

    def test_log_sum_matches_logsumexp(self):
        vals = [0.3, -2.0, 5.5, 5.5, -100.0]
        assert log_sum(vals) == pytest.approx(logsumexp(np.array(vals)))

    def test_logsumexp_axis(self):
        x = np.log(np.array([[1.0, 2.0], [3.0, 4.0]]))
        np.testing.assert_allclose(logsumexp(x, axis=0), np.log([4.0, 6.0]))
        np.testing.assert_allclose(logsumexp(x, axis=1), np.log([3.0, 7.0]))

    def test_logsumexp_all_neg_inf_slice(self):
        x = np.array([[NEG_INF, NEG_INF], [0.0, 0.0]])
        out = logsumexp(x, axis=1)
        assert out[0] == NEG_INF
        assert out[1] == pytest.approx(math.log(2.0))

    def test_logsumexp_extreme_range(self):
        x = np.array([1e4, -1e4, 0.0])
        assert logsumexp(x) == pytest.approx(1e4)

    @given(st.lists(finite_logs, min_size=1, max_size=30))
    def test_scaling_invariance(self, vals):
        # logsumexp(x + c) == logsumexp(x) + c exactly in exact arithmetic.
        x = np.array(vals)
        c = 123.456
        assert logsumexp(x + c) == pytest.approx(logsumexp(x) + c, abs=1e-8)


class TestNormalizeAndMean:
    def test_normalize_sums_to_one(self):
        p = normalize_log_weights(np.array([0.0, math.log(3.0), -800.0]))
        assert p.sum() == pytest.approx(1.0)
        assert p[1] == pytest.approx(0.75, abs=1e-12)

    def test_normalize_handles_huge_offsets(self):
        p = normalize_log_weights(np.array([1e6, 1e6 - math.log(2.0)]))
        assert p.sum() == pytest.approx(1.0)
        assert p[0] == pytest.approx(2.0 / 3.0)

    def test_normalize_all_zero_raises(self):
        with pytest.raises(ValueError):
            normalize_log_weights(np.array([NEG_INF, NEG_INF]))

    def test_log_mean(self):
        vals = np.log(np.array([1.0, 2.0, 3.0]))
        assert log_mean(vals) == pytest.approx(math.log(2.0))

    def test_log_mean_empty_raises(self):
        with pytest.raises(ValueError):
            log_mean(np.array([]))
