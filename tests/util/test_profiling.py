"""Tests for the structured profiling helper."""


import pytest

from repro.util.profiling import profile_callable


def workload():
    def inner_hot():
        s = 0.0
        for k in range(20000):
            s += k * 0.5
        return s

    def inner_cold():
        return 1

    for _ in range(5):
        inner_hot()
    inner_cold()
    return "done"


class TestProfileCallable:
    def test_returns_value(self):
        report = profile_callable(workload)
        assert report.return_value == "done"

    def test_finds_hot_function(self):
        report = profile_callable(workload)
        hot = report.find("inner_hot")
        cold = report.find("inner_cold")
        assert hot and cold
        assert hot[0].calls == 5
        assert hot[0].total_time >= cold[0].total_time

    def test_top_sorting(self):
        report = profile_callable(workload)
        top = report.top(5, by="total")
        assert all(
            a.total_time >= b.total_time for a, b in zip(top, top[1:])
        )
        with pytest.raises(ValueError):
            report.top(3, by="wallclock")

    def test_render_contains_header(self):
        report = profile_callable(workload)
        text = report.render(3)
        assert "profile:" in text
        assert "calls" in text

    def test_profiles_sampler_sweep(self):
        # Integration: profile a real QMC sweep and find the kernel.
        from repro.qmc.classical_ising import AnisotropicIsing

        sampler = AnisotropicIsing((32, 32), (0.3, 0.3), seed=1)

        def run():
            for _ in range(10):
                sampler.sweep()

        report = profile_callable(run)
        assert report.find("sweep")
        assert report.total_seconds > 0

    def test_exception_propagates(self):
        def boom():
            raise RuntimeError("kaboom")

        with pytest.raises(RuntimeError, match="kaboom"):
            profile_callable(boom)
