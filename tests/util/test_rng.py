"""Tests for reproducible SPMD random streams."""

import numpy as np
import pytest

from repro.util.rng import SeedSequenceFactory, spawn_streams


class TestSeedSequenceFactory:
    def test_same_address_same_stream(self):
        a = SeedSequenceFactory(42).rank_stream(3).uniform(size=10)
        b = SeedSequenceFactory(42).rank_stream(3).uniform(size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_ranks_differ(self):
        a = SeedSequenceFactory(42).rank_stream(0).uniform(size=10)
        b = SeedSequenceFactory(42).rank_stream(1).uniform(size=10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = SeedSequenceFactory(1).rank_stream(0).uniform(size=10)
        b = SeedSequenceFactory(2).rank_stream(0).uniform(size=10)
        assert not np.array_equal(a, b)

    def test_kinds_are_disjoint_namespaces(self):
        f = SeedSequenceFactory(7)
        a = f.stream("rank", 5).uniform(size=10)
        b = f.stream("replica", 5).uniform(size=10)
        assert not np.array_equal(a, b)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown stream kind"):
            SeedSequenceFactory(0).stream("bogus", 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            SeedSequenceFactory(0).stream("rank", -1)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            SeedSequenceFactory(-1)

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            SeedSequenceFactory("42")  # type: ignore[arg-type]


class TestRankStream:
    def test_uniform_range(self):
        s = SeedSequenceFactory(0).rank_stream(0)
        u = s.uniform(size=1000)
        assert np.all((u >= 0) & (u < 1))

    def test_integers_range(self):
        s = SeedSequenceFactory(0).rank_stream(0)
        v = s.integers(2, 5, size=500)
        assert set(np.unique(v)) <= {2, 3, 4}

    def test_choice_range(self):
        s = SeedSequenceFactory(0).rank_stream(1)
        vals = {s.choice(4) for _ in range(100)}
        assert vals <= {0, 1, 2, 3}
        assert len(vals) > 1

    def test_rank_label(self):
        assert SeedSequenceFactory(0).rank_stream(9).rank == 9


class TestSpawnStreams:
    def test_spawn_count_and_independence(self):
        streams = spawn_streams(99, 8)
        assert [s.rank for s in streams] == list(range(8))
        draws = [s.uniform(size=4).tolist() for s in streams]
        # All pairwise distinct (probability of collision ~ 0).
        flat = {tuple(d) for d in draws}
        assert len(flat) == 8

    def test_streams_statistically_uncorrelated(self):
        s0, s1 = spawn_streams(5, 2)
        a, b = s0.uniform(size=20000), s1.uniform(size=20000)
        corr = np.corrcoef(a, b)[0, 1]
        assert abs(corr) < 0.03
