"""Tests for the table / series renderers used by the bench harness."""

import pytest

from repro.util.tables import Series, Table, format_float, render_series


class TestFormatFloat:
    def test_integers_stay_plain(self):
        assert format_float(42) == "42"

    def test_float_sig_digits(self):
        assert format_float(3.14159, digits=3) == "3.14"

    def test_tiny_numbers_go_scientific(self):
        assert "e" in format_float(1.5e-7)

    def test_zero_and_nan(self):
        assert format_float(0.0) == "0"
        assert format_float(float("nan")) == "nan"

    def test_non_number_falls_back(self):
        assert format_float("CM-5") == "CM-5"
        assert format_float(True) == "True"


class TestTable:
    def test_render_alignment_and_content(self):
        t = Table("Table 1: speedup", ["P", "S(P)"])
        t.add_row([1, 1.0])
        t.add_row([1024, 812.5])
        out = t.render()
        assert "Table 1: speedup" in out
        assert "1024" in out and "812.5" in out
        lines = out.splitlines()
        # All body lines equal width (alignment check)
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_row_width_mismatch_rejected(self):
        t = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_column_extraction(self):
        t = Table("t", ["P", "eff"])
        t.add_row([2, 0.9])
        t.add_row([4, 0.8])
        assert t.column("eff") == [0.9, 0.8]
        with pytest.raises(KeyError):
            t.column("missing")

    def test_empty_table_renders(self):
        out = Table("empty", ["x"]).render()
        assert "empty" in out


class TestSeries:
    def test_add_and_sparkline(self):
        s = Series("energy")
        for x, y in [(0, 1.0), (1, 2.0), (2, 3.0)]:
            s.add(x, y)
        spark = s.sparkline()
        assert len(spark) == 3
        assert spark[0] != spark[-1]  # rising series spans block range

    def test_constant_series_sparkline(self):
        s = Series("flat")
        s.add(0, 5.0)
        s.add(1, 5.0)
        assert len(s.sparkline()) == 2

    def test_empty_sparkline(self):
        assert Series("none").sparkline() == ""

    def test_nonfinite_marked(self):
        s = Series("gaps")
        s.add(0, 1.0)
        s.add(1, float("nan"))
        assert "?" in s.sparkline()


class TestRenderSeries:
    def test_shared_grid_merges_into_one_table(self):
        a = Series("A")
        b = Series("B")
        for x in (1, 2, 4):
            a.add(x, x * 1.0)
            b.add(x, x * 2.0)
        out = render_series("Fig 1", [a, b], x_label="P")
        assert "Fig 1" in out
        assert out.count("P") >= 1
        assert "A" in out and "B" in out

    def test_distinct_grids_render_separately(self):
        a = Series("A")
        a.add(1, 1.0)
        b = Series("B")
        b.add(2, 2.0)
        out = render_series("Fig", [a, b])
        assert "A" in out and "B" in out
