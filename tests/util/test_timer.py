"""Tests for the model clock and wall timers."""

import time

import pytest

from repro.util.timer import ModelClock, Timer, TimerRegistry


class TestModelClock:
    def test_charge_accumulates(self):
        c = ModelClock()
        c.charge(1.5, "compute")
        c.charge(0.5, "comm")
        assert c.now == pytest.approx(2.0)
        assert c.breakdown() == {"compute": 1.5, "comm": 0.5}

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            ModelClock().charge(-1.0)

    def test_advance_to_future(self):
        c = ModelClock()
        c.charge(1.0)
        c.advance_to(3.0, "wait")
        assert c.now == pytest.approx(3.0)
        assert c.breakdown()["wait"] == pytest.approx(2.0)

    def test_advance_to_past_is_noop(self):
        c = ModelClock()
        c.charge(5.0)
        c.advance_to(2.0)
        assert c.now == pytest.approx(5.0)
        assert "wait" not in c.breakdown()

    def test_fraction(self):
        c = ModelClock()
        c.charge(3.0, "compute")
        c.charge(1.0, "comm")
        assert c.fraction("comm") == pytest.approx(0.25)
        assert c.fraction("missing") == 0.0

    def test_fraction_of_zero_clock(self):
        assert ModelClock().fraction("compute") == 0.0

    def test_reset(self):
        c = ModelClock()
        c.charge(1.0)
        c.reset()
        assert c.now == 0.0
        assert c.breakdown() == {}


class TestTimer:
    def test_measures_elapsed(self):
        t = Timer("x")
        with t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009
        assert t.calls == 1
        assert t.mean == pytest.approx(t.elapsed)

    def test_reentry_rejected(self):
        t = Timer("x")
        with pytest.raises(RuntimeError):
            with t:
                with t:
                    pass

    def test_mean_of_unused_timer(self):
        assert Timer("y").mean == 0.0


class TestTimerRegistry:
    def test_reuses_named_timers(self):
        reg = TimerRegistry()
        with reg("a"):
            pass
        with reg("a"):
            pass
        assert reg["a"].calls == 2
        assert "a" in reg

    def test_report_contains_sections(self):
        reg = TimerRegistry()
        with reg("sweep"):
            pass
        report = reg.report()
        assert "sweep" in report
        assert "calls" in report

    def test_empty_report(self):
        assert TimerRegistry().report() == "(no timers)"
