"""Cross-validation: analytic performance model vs executed simulator.

The scaling benchmarks trust the closed-form model for P beyond what
the thread scheduler can execute; these tests pin the model to the
executed virtual machine at small P.  Compute seconds must match
exactly (same flop counts, same machine rate); communication seconds
must agree within a structural factor (the model idealizes message
schedules, the driver also ships measurement halos).
"""

import pytest

from repro.qmc.classical_ising import FLOPS_PER_SPIN_UPDATE
from repro.qmc.parallel import IsingBlockConfig, ising_block_program
from repro.vmp.machines import PARAGON
from repro.vmp.performance import PerformanceModel, WorkloadShape
from repro.vmp.scheduler import run_spmd

LX = LY = 16
LT = 8
SWEEPS = 12


def block_workload() -> WorkloadShape:
    return WorkloadShape(
        lx=LX,
        ly=LY,
        lt=LT,
        flops_per_site=2 * FLOPS_PER_SPIN_UPDATE,  # two colors per sweep
        sweeps=SWEEPS,
        bytes_per_site=1,  # int8 spin planes
        strategy="block",
        measurement_interval=1,
    )


def executed(p: int):
    cfg = IsingBlockConfig(
        lx=LX, ly=LY, lt=LT, kx=0.2, ky=0.2, kt=0.1,
        n_sweeps=SWEEPS, n_thermalize=0,
    )
    return run_spmd(ising_block_program, p, machine=PARAGON, seed=1, args=(cfg,))


class TestComputeAgreement:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_compute_seconds_match_exactly(self, p):
        model = PerformanceModel(PARAGON, block_workload())
        predicted = SWEEPS * model.compute_seconds_per_sweep(p)
        measured = executed(p).category_seconds("compute")
        assert measured == pytest.approx(predicted, rel=1e-6)


class TestCommunicationAgreement:
    @pytest.mark.parametrize("p", [2, 4])
    def test_comm_seconds_within_structural_factor(self, p):
        model = PerformanceModel(PARAGON, block_workload())
        predicted = SWEEPS * (
            model.halo_seconds_per_sweep(p) + model.collective_seconds_per_sweep(p)
        )
        res = executed(p)
        measured = res.category_seconds("comm") + res.category_seconds("comm_wait")
        assert predicted / 4 < measured < predicted * 4, (
            f"P={p}: modeled {predicted:.4g}s vs executed {measured:.4g}s"
        )

    def test_speedup_trends_agree(self):
        model = PerformanceModel(PARAGON, block_workload())
        t_exec = {p: executed(p).elapsed_model_time for p in (1, 2, 4)}
        for p in (2, 4):
            s_exec = t_exec[1] / t_exec[p]
            s_model = model.speedup(p)
            # Same qualitative story: real speedup, same side of P/2.
            assert s_exec > 1.0
            assert s_exec == pytest.approx(s_model, rel=0.5)


class TestMessageAccounting:
    def test_executed_message_count_matches_halo_structure(self):
        res = executed(4)  # 2x2 process grid: both axes split
        # Per sweep per rank: 2 colors x 4 plane messages (halo) +
        # measurement (_exchange_planes again: 4) + allreduce traffic.
        halo_msgs = SWEEPS * (2 * 4 + 4)
        per_rank = res.total_messages / 4
        assert per_rank >= halo_msgs  # collectives add more on top
        assert per_rank < halo_msgs + SWEEPS * 12  # but not unboundedly
