"""Property-based detailed-balance and stationarity checks.

These are the deepest correctness guards of the sampler layer: for
randomly generated parameters and configurations, each Monte Carlo
kernel's acceptance ratio must equal the true weight ratio of the
global configurations it connects.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.models.hamiltonians import XXZChainModel
from repro.qmc.classical_ising import AnisotropicIsing
from repro.qmc.worldline import WorldlineChainQmc

couplings = st.floats(min_value=-1.5, max_value=1.5, allow_nan=False)
positive_dtau = st.floats(min_value=0.02, max_value=0.4, allow_nan=False)


class TestWorldlineWeightRatios:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        jz=couplings,
        jxy=st.floats(min_value=0.1, max_value=1.5),
        beta=st.floats(min_value=0.2, max_value=2.0),
        seed=st.integers(0, 10_000),
    )
    def test_corner_flip_ratio_equals_global_ratio(self, jz, jxy, beta, seed):
        """Local 4-plaquette ratio == global config-weight ratio."""
        model = XXZChainModel(n_sites=4, jz=jz, jxy=jxy, periodic=True)
        q = WorldlineChainQmc(model, beta, 8, seed=seed)
        for _ in range(10):
            q.sweep()
        rng = np.random.default_rng(seed)
        for _ in range(5):
            i = int(rng.integers(0, q.n_bonds))
            t = int(rng.integers(0, q.n_slices))
            if (i + t) % 2 == 0:
                continue
            lw_old = q.config_log_weight()
            # Apply the candidate flip manually and compare ratios.
            j, t1 = (i + 1) % q.L, (t + 1) % q.n_slices
            idx = ([i, i, j, j], [t, t1, t, t1])
            q.spins[idx] ^= 1
            lw_new = q.config_log_weight()
            q.spins[idx] ^= 1
            # Reproduce the sampler's local ratio.
            w = q.table.weights
            im1, ip1 = (i - 1) % q.L, (i + 1) % q.L
            tm1, tp1 = (t - 1) % q.n_slices, (t + 1) % q.n_slices
            a = np.array
            prod_old = float(
                (
                    w[q._codes(a([im1]), a([t]))]
                    * w[q._codes(a([ip1]), a([t]))]
                    * w[q._codes(a([i]), a([tm1]))]
                    * w[q._codes(a([i]), a([tp1]))]
                )[0]
            )
            q.spins[idx] ^= 1
            prod_new = float(
                (
                    w[q._codes(a([im1]), a([t]))]
                    * w[q._codes(a([ip1]), a([t]))]
                    * w[q._codes(a([i]), a([tm1]))]
                    * w[q._codes(a([i]), a([tp1]))]
                )[0]
            )
            q.spins[idx] ^= 1
            if np.isfinite(lw_new):
                assert np.log(prod_new / prod_old) == pytest.approx(
                    lw_new - lw_old, abs=1e-9
                )
            else:
                assert prod_new == 0.0

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000), beta=st.floats(0.2, 1.5))
    def test_sweeps_never_leave_the_legal_manifold(self, seed, beta):
        model = XXZChainModel(n_sites=8, periodic=True)
        q = WorldlineChainQmc(model, beta, 8, seed=seed)
        for _ in range(15):
            q.sweep()
        q.check_invariants()
        assert np.isfinite(q.config_log_weight())


class TestIsingStationarity:
    @settings(max_examples=20, deadline=None)
    @given(
        kx=st.floats(min_value=-0.8, max_value=0.8),
        ky=st.floats(min_value=-0.8, max_value=0.8),
        seed=st.integers(0, 10_000),
    )
    def test_metropolis_ratio_is_boltzmann(self, kx, ky, seed):
        """One accepted color-sweep step changes the reduced energy in a
        way consistent with the Boltzmann acceptance rule: every flip
        with dE < 0 would always be accepted, so running at strong
        negative field from aligned start must lower the energy."""
        s = AnisotropicIsing((6, 6), (kx, ky), seed=seed, hot_start=True)
        e0 = s.reduced_energy()
        for _ in range(30):
            s.sweep()
        # Stationarity proxy: reduced energy moved toward (or stayed in)
        # the typical set; with |K| < 0.9 it must remain finite & bounded.
        e1 = s.reduced_energy()
        bound = (abs(kx) + abs(ky)) * s.n_sites + 1e-9
        assert -bound <= e1 <= bound
        assert np.isfinite(e0)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_ferromagnetic_ground_state_is_absorbing_at_zero_t(self, seed):
        # Huge couplings ~ zero temperature: aligned lattice never moves.
        s = AnisotropicIsing((4, 4), (20.0, 20.0), seed=seed)
        for _ in range(5):
            s.sweep()
        assert abs(s.magnetization()) == 1.0
