"""Cross-backend agreement: thread vs mp vs mpi, bit for bit.

The whole point of the backend abstraction is that the *same* rank
program produces the *same* trajectory -- observables, acceptance
counts, modeled makespan -- whether the ranks are cooperative threads,
OS processes, or real MPI processes under mpiexec.  This suite pins
that guarantee at P in {1, 2, 4} for both sweep kernels (scalar and
vectorized) of the strip world-line driver, plus the block Ising
driver.  The mpi leg skips where mpi4py/mpiexec are absent; CI's MPI
job runs it.
"""

import numpy as np
import pytest

from repro.qmc.parallel import (
    IsingBlockConfig,
    WorldlineStripConfig,
    ising_block_program,
    worldline_strip_program,
)
from repro.vmp.machines import PARAGON
from repro.vmp.mpi_backend import mpi_available, mpiexec_available
from repro.vmp.scheduler import run_spmd

HAVE_REAL_MPI = mpi_available() and mpiexec_available()

BACKENDS_UNDER_TEST = ["mp"] + (["mpi"] if HAVE_REAL_MPI else [])


def _strip_cfg(mode: str) -> WorldlineStripConfig:
    return WorldlineStripConfig(
        n_sites=16, jz=1.0, jxy=0.8, beta=0.9, n_slices=8,
        n_sweeps=24, n_thermalize=6, mode=mode,
    )


def _block_cfg() -> IsingBlockConfig:
    return IsingBlockConfig(
        lx=8, ly=8, lt=8, kx=0.25, ky=0.25, kt=0.4,
        n_sweeps=20, n_thermalize=5,
    )


def _run_strip(backend: str, n_ranks: int, mode: str):
    return run_spmd(
        worldline_strip_program, n_ranks, machine=PARAGON, seed=42,
        args=(_strip_cfg(mode), None), backend=backend,
    )


def _assert_identical(ref, got) -> None:
    """Full trajectory + accounting equality between two SpmdResults."""
    for r_ref, r_got in zip(ref.values, got.values):
        np.testing.assert_array_equal(r_ref["energy"], r_got["energy"])
        np.testing.assert_array_equal(
            r_ref["magnetization"], r_got["magnetization"]
        )
        assert r_ref["n_attempted"] == r_got["n_attempted"]
        assert r_ref["n_accepted"] == r_got["n_accepted"]
    assert got.elapsed_model_time == ref.elapsed_model_time
    assert got.total_messages == ref.total_messages
    assert got.total_bytes == ref.total_bytes


@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("mode", ["scalar", "vectorized"])
@pytest.mark.parametrize("n_ranks", [1, 2, 4])
class TestStripAgreement:
    def test_bit_identical_to_thread(self, backend, mode, n_ranks):
        ref = _run_strip("thread", n_ranks, mode)
        got = _run_strip(backend, n_ranks, mode)
        _assert_identical(ref, got)


@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
def test_block_driver_agrees(backend):
    def run(b):
        return run_spmd(
            ising_block_program, 4, machine=PARAGON, seed=7,
            args=(_block_cfg(), None), backend=b,
        )

    ref, got = run("thread"), run(backend)
    for r_ref, r_got in zip(ref.values, got.values):
        np.testing.assert_array_equal(r_ref["bond_sums"], r_got["bond_sums"])
        np.testing.assert_array_equal(
            r_ref["magnetization"], r_got["magnetization"]
        )
    assert got.elapsed_model_time == ref.elapsed_model_time


@pytest.mark.parametrize("backend", ["thread"] + BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("mode", ["scalar", "vectorized"])
def test_rerun_is_deterministic(backend, mode):
    # Same seed, same backend, run twice: byte-for-byte repeatable.
    a = _run_strip(backend, 2, mode)
    b = _run_strip(backend, 2, mode)
    _assert_identical(a, b)
