"""Cross-backend agreement: thread vs mp vs mpi, bit for bit.

The whole point of the backend abstraction is that the *same* rank
program produces the *same* trajectory -- observables, acceptance
counts, modeled makespan -- whether the ranks are cooperative threads,
OS processes, or real MPI processes under mpiexec.  This suite pins
that guarantee at P in {1, 2, 4} for both sweep kernels (scalar and
vectorized) of the strip world-line driver, plus the block Ising
driver.  The mpi leg skips where mpi4py/mpiexec are absent; CI's MPI
job runs it.

All cells run through the shared ``tests.conftest.run_driver_matrix``
/ ``assert_bit_identical`` helpers with ``accounting=True`` -- this
suite owns the strictest contract (same trajectory AND same modeled
makespan/message totals on every transport).
"""

import pytest

from repro.qmc.parallel import (
    IsingBlockConfig,
    WorldlineStripConfig,
    ising_block_program,
    worldline_strip_program,
)
from repro.vmp.mpi_backend import mpi_available, mpiexec_available
from tests.conftest import (
    BLOCK_KEYS,
    STRIP_KEYS,
    assert_bit_identical,
    run_driver_matrix,
)

HAVE_REAL_MPI = mpi_available() and mpiexec_available()

BACKENDS_UNDER_TEST = ["mp"] + (["mpi"] if HAVE_REAL_MPI else [])


def _strip_cfg(mode: str) -> WorldlineStripConfig:
    return WorldlineStripConfig(
        n_sites=16, jz=1.0, jxy=0.8, beta=0.9, n_slices=8,
        n_sweeps=24, n_thermalize=6, mode=mode,
    )


def _block_cfg() -> IsingBlockConfig:
    return IsingBlockConfig(
        lx=8, ly=8, lt=8, kx=0.25, ky=0.25, kt=0.4,
        n_sweeps=20, n_thermalize=5,
    )


def _run_strip(backend: str, n_ranks: int, mode: str):
    return run_driver_matrix(
        worldline_strip_program, n_ranks, _strip_cfg(mode),
        seed=42, backend=backend,
    )


@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("mode", ["scalar", "vectorized"])
@pytest.mark.parametrize("n_ranks", [1, 2, 4])
class TestStripAgreement:
    def test_bit_identical_to_thread(self, backend, mode, n_ranks):
        ref = _run_strip("thread", n_ranks, mode)
        got = _run_strip(backend, n_ranks, mode)
        assert_bit_identical(ref, got, STRIP_KEYS, accounting=True)


@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
def test_block_driver_agrees(backend):
    def run(b):
        return run_driver_matrix(
            ising_block_program, 4, _block_cfg(), seed=7, backend=b
        )

    ref, got = run("thread"), run(backend)
    assert_bit_identical(ref, got, BLOCK_KEYS, accounting=True)


@pytest.mark.parametrize("backend", ["thread"] + BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("mode", ["scalar", "vectorized"])
def test_rerun_is_deterministic(backend, mode):
    # Same seed, same backend, run twice: byte-for-byte repeatable.
    a = _run_strip(backend, 2, mode)
    b = _run_strip(backend, 2, mode)
    assert_bit_identical(a, b, STRIP_KEYS, accounting=True)
