"""Property-based tests: collectives vs reference semantics.

For random rank counts, roots, and payload shapes, every collective
must reproduce the obvious sequential reference computation -- the
algorithmic sophistication (trees, rings) must be observationally
invisible.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.vmp.comm import ReduceOp, payload_nbytes
from repro.vmp.machines import IDEAL
from repro.vmp.scheduler import run_spmd

ranks = st.integers(min_value=1, max_value=7)


@settings(max_examples=15, deadline=None)
@given(p=ranks, root=st.integers(0, 6), payload_len=st.integers(1, 5))
def test_bcast_delivers_identical_object_everywhere(p, root, payload_len):
    root = root % p

    def prog(comm):
        obj = list(range(payload_len)) if comm.rank == root else None
        return comm.bcast(obj, root=root)

    res = run_spmd(prog, p, machine=IDEAL)
    assert all(v == list(range(payload_len)) for v in res.values)


@settings(max_examples=15, deadline=None)
@given(p=ranks, values=st.lists(st.integers(-100, 100), min_size=7, max_size=7))
def test_allreduce_equals_python_reduction(p, values):
    vals = values[:p]

    def prog(comm):
        x = vals[comm.rank]
        return (
            comm.allreduce(x, ReduceOp.SUM),
            comm.allreduce(x, ReduceOp.MAX),
            comm.allreduce(x, ReduceOp.MIN),
            comm.allreduce(x, ReduceOp.PROD),
        )

    res = run_spmd(prog, p, machine=IDEAL)
    import math

    expected = (sum(vals), max(vals), min(vals), math.prod(vals))
    assert all(v == expected for v in res.values)


@settings(max_examples=10, deadline=None)
@given(p=ranks, root=st.integers(0, 6))
def test_scatter_then_gather_roundtrip(p, root):
    root = root % p

    def prog(comm):
        values = [f"item{r}" for r in range(comm.size)] if comm.rank == root else None
        mine = comm.scatter(values, root=root)
        return comm.gather(mine, root=root)

    res = run_spmd(prog, p, machine=IDEAL)
    assert res.values[root] == [f"item{r}" for r in range(p)]


@settings(max_examples=10, deadline=None)
@given(p=ranks)
def test_alltoall_is_a_transpose(p):
    def prog(comm):
        return comm.alltoall([(comm.rank, dst) for dst in range(comm.size)])

    res = run_spmd(prog, p, machine=IDEAL)
    for r, row in enumerate(res.values):
        assert row == [(src, r) for src in range(p)]


@settings(max_examples=10, deadline=None)
@given(p=ranks, shape=st.integers(1, 20))
def test_allgather_array_payloads(p, shape):
    def prog(comm):
        return comm.allgather(np.full(shape, float(comm.rank)))

    res = run_spmd(prog, p, machine=IDEAL)
    for v in res.values:
        assert len(v) == p
        for r, arr in enumerate(v):
            np.testing.assert_array_equal(arr, np.full(shape, float(r)))


@settings(max_examples=30, deadline=None)
@given(
    data=st.one_of(
        st.integers(-(2**40), 2**40),
        st.floats(allow_nan=False, allow_infinity=False),
        st.binary(max_size=64),
        st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=8),
        st.dictionaries(st.text(max_size=4), st.integers(-5, 5), max_size=4),
    )
)
def test_payload_nbytes_is_positive_and_deterministic(data):
    n1 = payload_nbytes(data)
    n2 = payload_nbytes(data)
    assert n1 == n2
    assert n1 >= 0


@settings(max_examples=20, deadline=None)
@given(shape=st.tuples(st.integers(1, 8), st.integers(1, 8)),
       dtype=st.sampled_from([np.int8, np.float64, np.complex128]))
def test_payload_nbytes_matches_numpy_buffers(shape, dtype):
    arr = np.zeros(shape, dtype=dtype)
    assert payload_nbytes(arr) == arr.nbytes
