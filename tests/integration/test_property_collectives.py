"""Property-based tests: collectives vs reference semantics.

For random rank counts, roots, and payload shapes, every collective
must reproduce the obvious sequential reference computation -- the
algorithmic sophistication (trees, rings) must be observationally
invisible.  Injected message delays (see :mod:`repro.vmp.faults`) must
be equally invisible to the *values*: a late message changes modeled
time, never the result.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.vmp.comm import ReduceOp, payload_nbytes
from repro.vmp.faults import FaultPlan, MessageDelayFault
from repro.vmp.machines import IDEAL, PARAGON
from repro.vmp.process_backend import run_multiprocessing
from repro.vmp.scheduler import run_spmd

ranks = st.integers(min_value=1, max_value=7)


@settings(max_examples=15, deadline=None)
@given(p=ranks, root=st.integers(0, 6), payload_len=st.integers(1, 5))
def test_bcast_delivers_identical_object_everywhere(p, root, payload_len):
    root = root % p

    def prog(comm):
        obj = list(range(payload_len)) if comm.rank == root else None
        return comm.bcast(obj, root=root)

    res = run_spmd(prog, p, machine=IDEAL)
    assert all(v == list(range(payload_len)) for v in res.values)


@settings(max_examples=15, deadline=None)
@given(p=ranks, values=st.lists(st.integers(-100, 100), min_size=7, max_size=7))
def test_allreduce_equals_python_reduction(p, values):
    vals = values[:p]

    def prog(comm):
        x = vals[comm.rank]
        return (
            comm.allreduce(x, ReduceOp.SUM),
            comm.allreduce(x, ReduceOp.MAX),
            comm.allreduce(x, ReduceOp.MIN),
            comm.allreduce(x, ReduceOp.PROD),
        )

    res = run_spmd(prog, p, machine=IDEAL)
    import math

    expected = (sum(vals), max(vals), min(vals), math.prod(vals))
    assert all(v == expected for v in res.values)


@settings(max_examples=10, deadline=None)
@given(p=ranks, root=st.integers(0, 6))
def test_scatter_then_gather_roundtrip(p, root):
    root = root % p

    def prog(comm):
        values = [f"item{r}" for r in range(comm.size)] if comm.rank == root else None
        mine = comm.scatter(values, root=root)
        return comm.gather(mine, root=root)

    res = run_spmd(prog, p, machine=IDEAL)
    assert res.values[root] == [f"item{r}" for r in range(p)]


@settings(max_examples=10, deadline=None)
@given(p=ranks)
def test_alltoall_is_a_transpose(p):
    def prog(comm):
        return comm.alltoall([(comm.rank, dst) for dst in range(comm.size)])

    res = run_spmd(prog, p, machine=IDEAL)
    for r, row in enumerate(res.values):
        assert row == [(src, r) for src in range(p)]


@settings(max_examples=10, deadline=None)
@given(p=ranks, shape=st.integers(1, 20))
def test_allgather_array_payloads(p, shape):
    def prog(comm):
        return comm.allgather(np.full(shape, float(comm.rank)))

    res = run_spmd(prog, p, machine=IDEAL)
    for v in res.values:
        assert len(v) == p
        for r, arr in enumerate(v):
            np.testing.assert_array_equal(arr, np.full(shape, float(r)))


# Module-scope program: the modeled-time parity case also runs under
# the multiprocessing backend, which must pickle it.
def prog_allreduce_array(comm, shape, dtype_name):
    arr = np.full(shape, comm.rank + 1, dtype=np.dtype(dtype_name))
    return comm.allreduce(arr)


@settings(max_examples=15, deadline=None)
@given(
    p=st.integers(2, 6),
    shape=st.tuples(st.integers(1, 6), st.integers(1, 6)),
    dtype_name=st.sampled_from(["int8", "int64", "float32", "float64"]),
    src=st.integers(0, 5),
    dst=st.integers(0, 5),
    nth=st.integers(0, 3),
    delay=st.floats(0.0, 2.0),
)
def test_allreduce_correct_under_injected_delay(
    p, shape, dtype_name, src, dst, nth, delay
):
    """A delayed message changes timing, never collective results."""
    src, dst = src % p, dst % p
    if src == dst:
        dst = (dst + 1) % p
    plan = FaultPlan((MessageDelayFault(src=src, dst=dst, nth=nth, seconds=delay),))
    res = run_spmd(
        prog_allreduce_array, p, machine=IDEAL,
        args=(shape, dtype_name), fault_plan=plan,
    )
    expected = np.full(shape, sum(range(1, p + 1)), dtype=np.dtype(dtype_name))
    for v in res.values:
        assert v.dtype == expected.dtype
        np.testing.assert_array_equal(v, expected)
    # Determinism: the same plan yields the same modeled makespan.
    res2 = run_spmd(
        prog_allreduce_array, p, machine=IDEAL,
        args=(shape, dtype_name), fault_plan=plan,
    )
    assert res2.elapsed_model_time == res.elapsed_model_time


@pytest.mark.tier1_fault
def test_modeled_time_parity_thread_vs_mp_under_delay():
    """Identical modeled-time accounting on both backends, faults included.

    A nonzero cost model (Paragon) plus an injected mid-collective
    delay: per-rank modeled clocks must agree to the bit between the
    thread scheduler and real processes.
    """
    plan = FaultPlan((MessageDelayFault(src=0, dst=1, nth=1, seconds=0.125),))
    args = ((3, 4), "float64")
    th = run_spmd(
        prog_allreduce_array, 4, machine=PARAGON, args=args, fault_plan=plan
    )
    mp_ = run_multiprocessing(
        prog_allreduce_array, 4, machine=PARAGON, args=args, fault_plan=plan
    )
    assert mp_.model_times == [o.model_time for o in th.outcomes]
    for a, b in zip(mp_.values, th.values):
        np.testing.assert_array_equal(a, b)


@settings(max_examples=30, deadline=None)
@given(
    data=st.one_of(
        st.integers(-(2**40), 2**40),
        st.floats(allow_nan=False, allow_infinity=False),
        st.binary(max_size=64),
        st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=8),
        st.dictionaries(st.text(max_size=4), st.integers(-5, 5), max_size=4),
    )
)
def test_payload_nbytes_is_positive_and_deterministic(data):
    n1 = payload_nbytes(data)
    n2 = payload_nbytes(data)
    assert n1 == n2
    assert n1 >= 0


@settings(max_examples=20, deadline=None)
@given(shape=st.tuples(st.integers(1, 8), st.integers(1, 8)),
       dtype=st.sampled_from([np.int8, np.float64, np.complex128]))
def test_payload_nbytes_matches_numpy_buffers(shape, dtype):
    arr = np.zeros(shape, dtype=dtype)
    assert payload_nbytes(arr) == arr.nbytes
