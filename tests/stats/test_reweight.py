"""Tests for single-histogram reweighting against exact two-level systems."""

import numpy as np
import pytest

from repro.stats.reweight import (
    effective_sample_fraction,
    reweight_observable,
    reweighted_moments,
)


def sample_two_level(rng, beta, n, e0=0.0, e1=1.0):
    """Exact canonical sampling of a two-level system."""
    p1 = np.exp(-beta * e1) / (np.exp(-beta * e0) + np.exp(-beta * e1))
    return np.where(rng.random(n) < p1, e1, e0)


def exact_mean_energy(beta, e0=0.0, e1=1.0):
    w0, w1 = np.exp(-beta * e0), np.exp(-beta * e1)
    return (e0 * w0 + e1 * w1) / (w0 + w1)


class TestReweightObservable:
    def test_identity_reweighting(self, rng):
        e = sample_two_level(rng, 1.0, 20000)
        v, err = reweight_observable(e, e, beta0=1.0, beta=1.0)
        assert v == pytest.approx(e.mean(), abs=1e-12)

    def test_small_shift_matches_exact(self, rng):
        beta0, beta = 1.0, 1.3
        e = sample_two_level(rng, beta0, 60000)
        v, err = reweight_observable(e, e, beta0, beta)
        assert v == pytest.approx(exact_mean_energy(beta), abs=5 * err + 0.005)

    def test_downshift_too(self, rng):
        beta0, beta = 1.0, 0.6
        e = sample_two_level(rng, beta0, 60000)
        v, err = reweight_observable(e, e, beta0, beta)
        assert v == pytest.approx(exact_mean_energy(beta), abs=5 * err + 0.005)

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError):
            reweight_observable(np.zeros(5), np.zeros(6), 1.0, 1.1)

    def test_huge_shift_is_stable(self, rng):
        # Overflow safety: shifting by Delta-beta = 1000 must not produce
        # inf/nan even though the estimate itself is garbage.
        e = sample_two_level(rng, 1.0, 1000)
        v, err = reweight_observable(e, e, 1.0, 1001.0)
        assert np.isfinite(v)


class TestReweightedMoments:
    def test_moments_match_exact(self, rng):
        beta0, beta = 1.0, 1.2
        e = sample_two_level(rng, beta0, 80000)
        m1, var = reweighted_moments(e, beta0, beta)
        assert m1 == pytest.approx(exact_mean_energy(beta), abs=0.01)
        p1 = np.exp(-beta) / (1 + np.exp(-beta))
        assert var == pytest.approx(p1 * (1 - p1), abs=0.01)


class TestEffectiveSampleFraction:
    def test_no_shift_gives_one(self, rng):
        e = sample_two_level(rng, 1.0, 1000)
        assert effective_sample_fraction(e, 1.0, 1.0) == pytest.approx(1.0)

    def test_decreases_with_shift(self, rng):
        e = rng.normal(size=5000)
        f_small = effective_sample_fraction(e, 1.0, 1.1)
        f_large = effective_sample_fraction(e, 1.0, 3.0)
        assert f_large < f_small <= 1.0

    def test_bounded_below(self, rng):
        e = rng.normal(size=100)
        f = effective_sample_fraction(e, 1.0, 50.0)
        assert f >= 1.0 / 100 - 1e-12
