"""Tests for autocorrelation analysis."""

import numpy as np
import pytest

from repro.stats.autocorr import autocorrelation_function, integrated_autocorr_time


def ar1(rng, n, rho):
    x = np.empty(n)
    x[0] = rng.normal()
    noise = rng.normal(size=n) * np.sqrt(1 - rho**2)
    for i in range(1, n):
        x[i] = rho * x[i - 1] + noise[i]
    return x


class TestAutocorrelationFunction:
    def test_normalized_at_zero(self, rng):
        a = autocorrelation_function(rng.normal(size=1024))
        assert a[0] == pytest.approx(1.0)

    def test_white_noise_decorrelates(self, rng):
        a = autocorrelation_function(rng.normal(size=2**14), max_lag=50)
        assert np.all(np.abs(a[1:]) < 0.05)

    def test_ar1_matches_theory(self, rng):
        rho = 0.7
        a = autocorrelation_function(ar1(rng, 2**16, rho), max_lag=10)
        for t in range(1, 6):
            assert a[t] == pytest.approx(rho**t, abs=0.05)

    def test_constant_series(self):
        a = autocorrelation_function(np.full(100, 2.0), max_lag=5)
        assert a[0] == 1.0
        assert np.all(a[1:] == 0.0)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            autocorrelation_function(np.array([1.0]))

    def test_max_lag_clamped(self, rng):
        a = autocorrelation_function(rng.normal(size=16), max_lag=100)
        assert len(a) == 16


class TestIntegratedAutocorrTime:
    def test_white_noise_near_half(self, rng):
        tau = integrated_autocorr_time(rng.normal(size=2**15))
        assert tau == pytest.approx(0.5, abs=0.2)

    def test_ar1_matches_theory(self, rng):
        # tau_int = 0.5 + sum_t rho^t = 0.5 + rho/(1-rho)
        rho = 0.8
        tau_true = 0.5 + rho / (1 - rho)
        tau = integrated_autocorr_time(ar1(rng, 2**17, rho))
        assert tau == pytest.approx(tau_true, rel=0.25)

    def test_monotone_in_correlation(self, rng):
        t1 = integrated_autocorr_time(ar1(rng, 2**15, 0.3))
        t2 = integrated_autocorr_time(ar1(rng, 2**15, 0.9))
        assert t2 > t1

    def test_never_below_half(self, rng):
        # Anticorrelated series would push the raw sum below 0.5.
        x = rng.normal(size=4096)
        x[1::2] = -x[::2]
        assert integrated_autocorr_time(x) >= 0.5
