"""Tests for multiple-histogram reweighting (WHAM).

The oracle is a discrete system with a *known* density of states
g(E) = binomial(N, k): N independent spins in a field, E = k.  Exact
canonical sampling at several temperatures feeds WHAM, which must
recover g(E) and interpolate thermodynamics between the simulated
temperatures.
"""

import numpy as np
import pytest
from scipy.special import gammaln

from repro.stats.histogram import EnergyHistogram
from repro.stats.wham import multi_histogram_reweight

N_SPINS = 24


def log_g_exact(k):
    return gammaln(N_SPINS + 1) - gammaln(k + 1) - gammaln(N_SPINS - k + 1)


def sample_energies(rng, beta, n):
    """Exact canonical sampling: E = number of up spins, each with
    Boltzmann factor exp(-beta) per unit energy."""
    p_up = np.exp(-beta) / (1 + np.exp(-beta))
    return rng.binomial(N_SPINS, p_up, size=n).astype(float)


def exact_mean_energy(beta):
    p_up = np.exp(-beta) / (1 + np.exp(-beta))
    return N_SPINS * p_up


@pytest.fixture
def wham_result(rng):
    betas = [0.2, 0.6, 1.0, 1.4]
    hists = []
    for i, b in enumerate(betas):
        h = EnergyHistogram(-0.5, N_SPINS + 0.5, N_SPINS + 1)
        h.add(sample_energies(rng, b, 40000))
        hists.append(h)
    return multi_histogram_reweight(hists, betas), betas


class TestConvergence:
    def test_converges(self, wham_result):
        result, _ = wham_result
        assert result.converged
        assert result.iterations < 2000

    def test_gauge_fixed(self, wham_result):
        result, _ = wham_result
        assert result.log_g[0] == pytest.approx(0.0)


class TestDensityOfStates:
    def test_recovers_binomial_dos(self, wham_result):
        result, _ = wham_result
        # Compare log g differences (the absolute scale is gauge).
        ks = np.round(result.energies).astype(int)
        expected = log_g_exact(ks) - log_g_exact(ks[0])
        # Only well-sampled bins: even the hottest thread (beta=0.2,
        # p_up=0.45) puts only a handful of counts at k near N, so the
        # high-energy tail carries O(1/sqrt(counts)) ~ 0.5 noise in log g.
        sel = (ks >= 2) & (ks <= N_SPINS - 6)
        np.testing.assert_allclose(result.log_g[sel], expected[sel], atol=0.35)


class TestInterpolation:
    def test_mean_energy_at_simulated_temperatures(self, wham_result):
        result, betas = wham_result
        for b in betas:
            assert result.mean_energy(b) == pytest.approx(
                exact_mean_energy(b), abs=0.15
            )

    def test_mean_energy_between_temperatures(self, wham_result):
        result, _ = wham_result
        b = 0.8  # never simulated
        assert result.mean_energy(b) == pytest.approx(exact_mean_energy(b), abs=0.15)

    def test_specific_heat_positive(self, wham_result):
        result, _ = wham_result
        assert result.specific_heat(0.8) > 0

    def test_canonical_distribution_normalized(self, wham_result):
        result, _ = wham_result
        p = result.canonical_distribution(0.7)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= 0)

    def test_log_partition_monotone_decreasing_in_beta(self, wham_result):
        result, _ = wham_result
        # For positive energies, Z decreases with beta.
        assert result.log_partition(0.5) > result.log_partition(1.2)


class TestValidation:
    def test_mismatched_lengths_rejected(self):
        h = EnergyHistogram(0, 1, 4)
        h.add(0.5)
        with pytest.raises(ValueError):
            multi_histogram_reweight([h], [1.0, 2.0])

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            multi_histogram_reweight([], [])

    def test_grid_mismatch_rejected(self):
        a = EnergyHistogram(0, 1, 4)
        b = EnergyHistogram(0, 2, 4)
        a.add(0.5)
        b.add(0.5)
        with pytest.raises(ValueError):
            multi_histogram_reweight([a, b], [1.0, 2.0])

    def test_empty_thread_rejected(self):
        a = EnergyHistogram(0, 1, 4)
        a.add(0.5)
        b = EnergyHistogram(0, 1, 4)
        with pytest.raises(ValueError):
            multi_histogram_reweight([a, b], [1.0, 2.0])

    def test_single_histogram_works(self, rng):
        h = EnergyHistogram(-0.5, N_SPINS + 0.5, N_SPINS + 1)
        h.add(sample_energies(rng, 0.5, 20000))
        result = multi_histogram_reweight([h], [0.5])
        assert result.converged
        assert result.mean_energy(0.5) == pytest.approx(exact_mean_energy(0.5), abs=0.2)
