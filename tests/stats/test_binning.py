"""Tests for binning (blocking) error analysis."""

import numpy as np
import pytest

from repro.stats.binning import BinningAnalysis, binned_error, binning_levels


def ar1_series(rng, n, rho, sigma=1.0):
    """AR(1) process with autocorrelation ``rho`` and known tau_int."""
    x = np.empty(n)
    x[0] = rng.normal()
    noise = rng.normal(size=n) * np.sqrt(1 - rho**2)
    for i in range(1, n):
        x[i] = rho * x[i - 1] + noise[i]
    return sigma * x


class TestBinningLevels:
    def test_levels_are_powers_of_two(self, rng):
        levels = binning_levels(rng.normal(size=1024))
        blocks = [b for b, _ in levels]
        assert blocks == [2**k for k in range(len(blocks))]

    def test_short_series_rejected(self):
        with pytest.raises(ValueError):
            binning_levels(np.arange(5.0))

    def test_uncorrelated_series_is_flat(self, rng):
        levels = binning_levels(rng.normal(size=2**14))
        errs = np.array([e for _, e in levels])
        # All levels within 30% of level zero for white noise.
        assert np.all(np.abs(errs - errs[0]) < 0.3 * errs[0])

    def test_correlated_series_error_grows(self, rng):
        x = ar1_series(rng, 2**14, rho=0.9)
        levels = binning_levels(x)
        assert levels[-1][1] > 2.0 * levels[0][1]


class TestBinnedError:
    def test_matches_naive_for_white_noise(self, rng):
        x = rng.normal(size=2**13)
        naive = x.std(ddof=1) / np.sqrt(x.size)
        assert binned_error(x) == pytest.approx(naive, rel=0.5)

    def test_recovers_true_error_of_ar1(self, rng):
        # AR(1): tau_int = (1+rho)/(2(1-rho)); true error of the mean is
        # naive * sqrt(2 tau_int).  The top binning level holds only ~8
        # blocks (chi^2_7 noise, ~27% rel. std), so average the estimate
        # over several independent series before comparing.
        rho = 0.8
        tau = (1 + rho) / (2 * (1 - rho))
        estimates, truths = [], []
        for k in range(6):
            x = ar1_series(np.random.default_rng(1000 + k), 2**15, rho=rho)
            truths.append(x.std(ddof=1) / np.sqrt(x.size) * np.sqrt(2 * tau))
            estimates.append(binned_error(x))
        assert np.mean(estimates) == pytest.approx(np.mean(truths), rel=0.3)


class TestBinningAnalysis:
    def test_fields_consistent(self, rng):
        x = rng.normal(loc=3.0, size=4096)
        ba = BinningAnalysis.from_series(x)
        assert ba.mean == pytest.approx(3.0, abs=5 * ba.error)
        assert ba.error >= 0.8 * ba.naive_error
        assert ba.tau_int >= 0.2

    def test_tau_of_white_noise_near_half(self, rng):
        ba = BinningAnalysis.from_series(rng.normal(size=2**14))
        assert ba.tau_int == pytest.approx(0.5, abs=0.3)

    def test_tau_of_correlated_series_large(self, rng):
        ba = BinningAnalysis.from_series(ar1_series(rng, 2**14, rho=0.9))
        assert ba.tau_int > 3.0

    def test_converged_flag_for_white_noise(self, rng):
        ba = BinningAnalysis.from_series(rng.normal(size=2**15))
        assert ba.is_converged(rtol=0.3)

    def test_constant_series(self):
        ba = BinningAnalysis.from_series(np.full(256, 7.0))
        assert ba.mean == 7.0
        assert ba.error == 0.0
        assert ba.tau_int == 0.5
