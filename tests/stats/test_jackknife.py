"""Tests for jackknife resampling."""

import numpy as np
import pytest

from repro.stats.jackknife import jackknife, jackknife_blocks, jackknife_ratio


class TestJackknifeBlocks:
    def test_delete_one_means(self):
        x = np.arange(12.0)
        jk = jackknife_blocks(x, 4)
        assert jk.shape == (4,)
        # Removing block 0 (0,1,2): mean of 3..11 = 7.
        assert jk[0] == pytest.approx(7.0)

    def test_tail_discarded(self):
        x = np.arange(10.0)  # 3 blocks of 3, one sample dropped
        jk = jackknife_blocks(x, 3)
        assert jk.shape == (3,)
        assert jk[0] == pytest.approx(np.mean(x[3:9]))

    def test_too_few_blocks_rejected(self):
        with pytest.raises(ValueError):
            jackknife_blocks(np.arange(10.0), 1)

    def test_too_short_series_rejected(self):
        with pytest.raises(ValueError):
            jackknife_blocks(np.arange(3.0), 8)


class TestJackknife:
    def test_mean_estimator_matches_classic_error(self, rng):
        x = rng.normal(size=2000)
        value, err = jackknife(lambda a: float(np.mean(a)), x, n_blocks=20)
        assert value == pytest.approx(x[: (2000 // 20) * 20].mean(), abs=1e-10)
        classic = x.std(ddof=1) / np.sqrt(x.size)
        assert err == pytest.approx(classic, rel=0.35)

    def test_variance_estimator_bias_corrected(self, rng):
        # The plug-in variance is biased by -sigma^2/M; jackknife removes
        # the leading term, so the estimate should be closer to 1.
        sigma2 = 1.0
        estimates = []
        for k in range(40):
            x = np.random.default_rng(k).normal(size=200)
            v, _ = jackknife(lambda a: float(np.mean(a**2) - np.mean(a) ** 2), x, 20)
            estimates.append(v)
        assert np.mean(estimates) == pytest.approx(sigma2, abs=0.03)

    def test_multi_series_estimator(self, rng):
        e = rng.normal(loc=2.0, size=1000)
        w = rng.normal(loc=4.0, size=1000) * 0.01 + 1.0
        v, err = jackknife(
            lambda a, b: float(np.mean(a) / np.mean(b)), [e, w], n_blocks=10
        )
        assert v == pytest.approx(2.0 / np.mean(w), abs=5 * err + 0.05)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            jackknife(lambda a, b: 0.0, [np.arange(10.0), np.arange(9.0)])

    def test_error_positive_for_noisy_data(self, rng):
        _, err = jackknife(lambda a: float(np.mean(a)), rng.normal(size=400))
        assert err > 0


class TestJackknifeRatio:
    def test_correlated_ratio(self, rng):
        # numerator = 2 * denominator + noise: ratio ~ 2 with small error
        # despite both series being noisy (correlation cancels).
        d = 1.0 + 0.1 * rng.normal(size=4000)
        n = 2.0 * d + 0.001 * rng.normal(size=4000)
        v, err = jackknife_ratio(n, d)
        assert v == pytest.approx(2.0, abs=0.01)
        assert err < 0.01

    def test_reweighting_shape(self, rng):
        o = rng.normal(size=500)
        w = np.exp(0.1 * rng.normal(size=500))
        v, err = jackknife_ratio(o * w, w)
        assert np.isfinite(v) and err >= 0
