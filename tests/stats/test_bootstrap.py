"""Tests for block-bootstrap resampling."""

import numpy as np
import pytest

from repro.stats.bootstrap import block_bootstrap_indices, bootstrap


def ar1(rng, n, rho):
    x = np.empty(n)
    x[0] = rng.normal()
    noise = rng.normal(size=n) * np.sqrt(1 - rho**2)
    for i in range(1, n):
        x[i] = rho * x[i - 1] + noise[i]
    return x


class TestIndices:
    def test_shape_and_range(self, rng):
        idx = block_bootstrap_indices(100, 10, rng)
        assert idx.shape == (100,)
        assert idx.min() >= 0 and idx.max() < 100

    def test_blocks_are_contiguous(self, rng):
        idx = block_bootstrap_indices(100, 5, rng).reshape(-1, 5)
        diffs = np.diff(idx, axis=1)
        assert np.all(diffs == 1)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            block_bootstrap_indices(10, 0, rng)
        with pytest.raises(ValueError):
            block_bootstrap_indices(10, 8, rng)


class TestBootstrap:
    def test_mean_error_matches_classic(self, rng):
        x = rng.normal(size=4000)
        value, err = bootstrap(lambda a: float(np.mean(a)), x, n_resamples=400)
        classic = x.std(ddof=1) / np.sqrt(x.size)
        assert value == pytest.approx(x.mean())
        assert err == pytest.approx(classic, rel=0.25)

    def test_blocked_bootstrap_sees_autocorrelation(self, rng):
        # AR(1): unblocked bootstrap underestimates the error of the
        # mean; blocking with block >> tau recovers it.
        x = ar1(rng, 2**13, rho=0.9)
        _, err_blocked = bootstrap(lambda a: float(np.mean(a)), x,
                                   n_resamples=200, block=256)
        _, err_naive = bootstrap(lambda a: float(np.mean(a)), x,
                                 n_resamples=200, block=1)
        assert err_blocked > 2 * err_naive

    def test_multi_series_joint_resampling(self, rng):
        # Ratio of perfectly correlated series: error ~ 0 even though
        # each series alone is noisy -- only joint resampling sees this.
        d = 1.0 + 0.2 * rng.normal(size=2000)
        n = 3.0 * d
        value, err = bootstrap(
            lambda a, b: float(np.mean(a) / np.mean(b)), [n, d], n_resamples=100
        )
        assert value == pytest.approx(3.0, abs=1e-9)
        assert err < 1e-9

    def test_nonlinear_estimator(self, rng):
        x = rng.normal(size=3000)
        value, err = bootstrap(lambda a: float(np.median(a)), x, n_resamples=300)
        assert abs(value) < 0.1
        assert 0 < err < 0.1

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            bootstrap(lambda a: 0.0, rng.normal(size=10), n_resamples=1)
        with pytest.raises(ValueError):
            bootstrap(lambda a, b: 0.0, [np.zeros(5), np.zeros(6)])

    def test_reproducible_with_seed(self, rng):
        x = rng.normal(size=500)
        r1 = bootstrap(lambda a: float(np.mean(a)), x, seed=7)
        r2 = bootstrap(lambda a: float(np.mean(a)), x, seed=7)
        assert r1 == r2
