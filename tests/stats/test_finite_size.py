"""Tests for Binder-cumulant finite-size analysis."""

import numpy as np
import pytest

from repro.stats.finite_size import BinderCurve, binder_cumulant, crossing_temperature


class TestBinderCumulant:
    def test_ordered_limit(self):
        # |m| constant: <m^4> = <m^2>^2 -> U4 = 2/3.
        m = np.array([1.0, -1.0, 1.0, -1.0])
        assert binder_cumulant(m) == pytest.approx(2.0 / 3.0)

    def test_gaussian_limit(self, rng):
        # Gaussian m: <m^4> = 3 <m^2>^2 -> U4 = 0.
        m = rng.normal(size=200_000)
        assert binder_cumulant(m) == pytest.approx(0.0, abs=0.01)

    def test_zero_magnetization(self):
        assert binder_cumulant(np.zeros(10)) == 0.0

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            binder_cumulant(np.array([1.0]))


class TestBinderCurve:
    def test_validation(self):
        with pytest.raises(ValueError):
            BinderCurve(8, np.array([1.0, 2.0]), np.array([0.5]))
        with pytest.raises(ValueError):
            BinderCurve(8, np.array([2.0, 1.0]), np.array([0.5, 0.4]))

    def test_interpolation(self):
        c = BinderCurve(8, np.array([1.0, 2.0, 3.0]), np.array([0.6, 0.4, 0.2]))
        assert c.interpolate(1.5) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            c.interpolate(4.0)


class TestCrossing:
    def synthetic_curves(self, tc=2.5):
        # U4(T, L) = f((T - tc) * L): bigger L = steeper curve; all curves
        # pass through the same value at tc -> exact crossing at tc.
        t = np.linspace(2.0, 3.0, 11)
        curves = []
        for L in (8, 16):
            u4 = 0.4 - 0.3 * np.tanh((t - tc) * L / 4.0)
            curves.append(BinderCurve(L, t, u4))
        return curves

    def test_recovers_known_crossing(self):
        a, b = self.synthetic_curves(tc=2.5)
        assert crossing_temperature(a, b) == pytest.approx(2.5, abs=0.01)

    def test_off_grid_crossing_interpolated(self):
        a, b = self.synthetic_curves(tc=2.53)
        assert crossing_temperature(a, b) == pytest.approx(2.53, abs=0.02)

    def test_same_size_rejected(self):
        a, _ = self.synthetic_curves()
        with pytest.raises(ValueError, match="different lattice sizes"):
            crossing_temperature(a, a)

    def test_grid_mismatch_rejected(self):
        a, b = self.synthetic_curves()
        shifted = BinderCurve(32, b.temperatures + 0.1, b.u4)
        with pytest.raises(ValueError, match="share one temperature grid"):
            crossing_temperature(a, shifted)

    def test_no_crossing_rejected(self):
        t = np.linspace(2.0, 3.0, 5)
        a = BinderCurve(8, t, np.full(5, 0.6))
        b = BinderCurve(16, t, np.full(5, 0.3))
        with pytest.raises(ValueError, match="do not cross"):
            crossing_temperature(a, b)

    def test_multiple_crossings_rejected(self):
        t = np.linspace(2.0, 3.0, 5)
        a = BinderCurve(8, t, np.array([0.5, 0.3, 0.5, 0.3, 0.5]))
        b = BinderCurve(16, t, np.full(5, 0.4))
        with pytest.raises(ValueError, match="refine the scan"):
            crossing_temperature(a, b)
