"""Tests for the shared-grid energy histogram."""

import numpy as np
import pytest

from repro.stats.histogram import EnergyHistogram


class TestGrid:
    def test_bin_geometry(self):
        h = EnergyHistogram(0.0, 10.0, 5)
        assert h.bin_width == 2.0
        np.testing.assert_allclose(h.bin_centers, [1, 3, 5, 7, 9])

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            EnergyHistogram(1.0, 1.0, 4)
        with pytest.raises(ValueError):
            EnergyHistogram(0.0, 1.0, 0)

    def test_right_edge_belongs_to_last_bin(self):
        h = EnergyHistogram(0.0, 10.0, 5)
        assert h.bin_index(10.0)[0] == 4

    def test_out_of_range_raises_by_default(self):
        h = EnergyHistogram(0.0, 1.0, 4)
        with pytest.raises(ValueError, match="outside histogram range"):
            h.add(2.0)

    def test_clip_mode(self):
        h = EnergyHistogram(0.0, 1.0, 4, clip=True)
        h.add(np.array([-5.0, 5.0]))
        assert h.counts[0] == 1 and h.counts[-1] == 1


class TestAccumulation:
    def test_scalar_and_vector_add(self):
        h = EnergyHistogram(0.0, 4.0, 4)
        h.add(0.5)
        h.add(np.array([1.5, 1.6, 3.9]))
        assert h.n_samples == 4
        np.testing.assert_array_equal(h.counts, [1, 2, 0, 1])

    def test_duplicate_bins_counted(self):
        # np.add.at must accumulate repeated indices (plain fancy
        # indexing would lose them).
        h = EnergyHistogram(0.0, 1.0, 2)
        h.add(np.full(100, 0.25))
        assert h.counts[0] == 100

    def test_merge_same_grid(self):
        a = EnergyHistogram(0.0, 1.0, 4)
        b = EnergyHistogram(0.0, 1.0, 4)
        a.add(0.1)
        b.add(0.9)
        a.merge(b)
        assert a.n_samples == 2
        assert a.counts[0] == 1 and a.counts[-1] == 1

    def test_merge_grid_mismatch_rejected(self):
        a = EnergyHistogram(0.0, 1.0, 4)
        b = EnergyHistogram(0.0, 2.0, 4)
        with pytest.raises(ValueError):
            a.merge(b)


class TestViews:
    def test_normalized_integrates_to_one(self, rng):
        h = EnergyHistogram(-4.0, 4.0, 32, clip=True)
        h.add(rng.normal(size=10000))
        assert h.normalized().sum() * h.bin_width == pytest.approx(1.0)

    def test_normalized_empty_rejected(self):
        with pytest.raises(ValueError):
            EnergyHistogram(0.0, 1.0, 4).normalized()

    def test_nonzero_support(self):
        h = EnergyHistogram(0.0, 4.0, 4)
        h.add(np.array([0.5, 3.5]))
        np.testing.assert_array_equal(h.nonzero_support(), [0, 3])

    def test_flatness(self):
        h = EnergyHistogram(0.0, 4.0, 4)
        assert h.flatness() == 0.0
        h.add(np.array([0.5, 1.5, 2.5, 3.5]))
        assert h.flatness() == pytest.approx(1.0)
        h.add(np.full(9, 0.5))
        assert h.flatness() < 0.5
