"""``repro report``: aggregation of run artifacts into a dashboard.

A real health-enabled CLI run (2 replicas x 2 domain ranks, injected
acceptance fault) produces the manifest + metrics/events JSONL that
``discover_runs``/``load_run``/``build_report`` aggregate; the text,
HTML, and JSON renderings are then checked for the load-bearing
content: per-rank tables, convergence verdicts, comm fractions, and
the health timeline.
"""

import json

import pytest

from repro.cli import main
from repro.obs.report import (
    REPORT_VERSION,
    build_report,
    discover_campaigns,
    discover_runs,
    load_campaign,
    load_run,
    render_html,
    render_text,
)


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """One finished health-enabled run with every sink turned on."""
    d = tmp_path_factory.mktemp("run")
    rules = d / "rules.json"
    rules.write_text(json.dumps({"acceptance_band": [0.9, 1.0]}))
    code = main([
        "run-xxz", "--sites", "16", "--beta", "1.0", "--slices", "8",
        "--sweeps", "40", "--thermalize", "5", "--strategy", "strip",
        "--ranks", "2", "--replicas", "2", "--machine", "CM-5",
        "--health", "--health-rules", str(rules), "--obs-interval", "10",
        "--metrics-out", str(d / "metrics.jsonl"),
        "--events-out", str(d / "events.jsonl"),
        "--trace-out", str(d / "trace.json"),
        "--quiet",
    ])
    assert code == 0
    return d


class TestDiscovery:
    def test_finds_manifest_recursively(self, run_dir):
        (manifest,) = discover_runs([run_dir])
        assert manifest.name == "manifest.json"
        # Direct file paths work too.
        assert discover_runs([manifest]) == [manifest]

    def test_empty_search_is_an_error(self, tmp_path):
        with pytest.raises(ValueError, match="no manifest"):
            discover_runs([tmp_path])

    def test_missing_path_is_an_error(self, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            discover_runs([tmp_path / "nope"])

    def test_non_manifest_json_rejected(self, tmp_path):
        bogus = tmp_path / "manifest.json"
        bogus.write_text('{"hello": 1}')
        with pytest.raises(ValueError, match="not a run manifest"):
            load_run(bogus)


class TestBuildReport:
    def test_document_shape(self, run_dir):
        report = build_report([load_run(m) for m in discover_runs([run_dir])])
        assert report["report_version"] == REPORT_VERSION
        assert report["n_runs"] == 1
        assert report["n_unhealthy"] == 1  # injected fault
        (run,) = report["runs"]
        assert run["kind"] == "xxz"
        assert {r["rank"] for r in run["rank_table"]} == {0, 1, 2, 3}
        assert any(e["rule"] == "acceptance" for e in run["events"])
        observables = {c["observable"] for c in run["convergence"]}
        assert "energy" in observables
        assert run["comm"].get("comm_fraction_by_level") or \
            run["comm"].get("comm_fraction") is not None
        assert run["n_metrics_rows"] > 0

    def test_report_is_json_serializable(self, run_dir):
        report = build_report([load_run(m) for m in discover_runs([run_dir])])
        assert json.loads(json.dumps(report)) == report


class TestRendering:
    def test_text_dashboard(self, run_dir):
        report = build_report([load_run(m) for m in discover_runs([run_dir])])
        text = render_text(report)
        for needle in ("ATTENTION", "per-rank metrics", "convergence",
                       "health timeline", "acceptance", "comm by level"):
            assert needle in text

    def test_html_dashboard(self, run_dir):
        report = build_report([load_run(m) for m in discover_runs([run_dir])])
        html = render_html(report)
        assert html.startswith("<!DOCTYPE html>")
        assert html.endswith("</body></html>")
        assert "health timeline" in html
        assert "<script" not in html  # self-contained, no active content

    def test_run_without_health_renders(self, tmp_path):
        """Metrics-only runs (no --health) still get a dashboard row."""
        code = main([
            "run-xxz", "--sites", "8", "--beta", "0.5", "--slices", "8",
            "--sweeps", "20", "--thermalize", "2", "--strategy", "strip",
            "--ranks", "2", "--metrics-out", str(tmp_path / "m.jsonl"),
            "--quiet",
        ])
        assert code == 0
        report = build_report([load_run(m) for m in discover_runs([tmp_path])])
        assert report["n_unhealthy"] == 0
        text = render_text(report)
        assert "no health data" in text


class TestCliReport:
    def test_text_to_stdout(self, run_dir, capsys):
        assert main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "repro report" in out and "health timeline" in out

    def test_html_to_file(self, run_dir, tmp_path, capsys):
        out_file = tmp_path / "dash.html"
        assert main(["report", str(run_dir), "--format", "html",
                     "--out", str(out_file)]) == 0
        assert out_file.read_text().startswith("<!DOCTYPE html>")
        assert "report written to" in capsys.readouterr().out

    def test_json_format(self, run_dir, capsys):
        assert main(["report", str(run_dir), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["report_version"] == REPORT_VERSION

    def test_missing_path_exits_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err


@pytest.mark.tier1_fault
class TestCampaignSection:
    """Reports over a real ``run-campaign`` output directory."""

    @pytest.fixture(scope="class")
    def campaign_dir(self, tmp_path_factory):
        d = tmp_path_factory.mktemp("campaign")
        spec = d / "spec.json"
        spec.write_text(json.dumps({
            "campaign": {"kind": "xxz", "name": "report-demo"},
            "base": {"n_sites": 6, "n_slices": 4, "n_sweeps": 10,
                     "n_thermalize": 2},
            "sweep": {"beta": [0.5, 1.0]},
        }))
        out = d / "out"
        assert main(["run-campaign", "--spec", str(spec),
                     "--output-dir", str(out), "--quiet"]) == 0
        return out

    def test_discovery_is_optional(self, tmp_path, campaign_dir):
        assert discover_campaigns([tmp_path]) == []
        (found,) = discover_campaigns([campaign_dir])
        assert found.name == "campaign.json"
        # Direct file paths work too.
        assert discover_campaigns([found]) == [found]

    def test_non_campaign_json_rejected(self, tmp_path):
        bogus = tmp_path / "campaign.json"
        bogus.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="not a campaign manifest"):
            load_campaign(bogus)

    def test_report_carries_campaign_summary(self, campaign_dir):
        campaigns = [load_campaign(p)
                     for p in discover_campaigns([campaign_dir])]
        runs = [load_run(m) for m in discover_runs([campaign_dir])]
        report = build_report(runs, campaigns=campaigns)
        assert report["n_runs"] == 2
        (summary,) = report["campaigns"]
        assert summary["name"] == "report-demo"
        assert summary["n_runs"] == 2
        assert summary["counters"]["completed"] == 2
        assert {r["status"] for r in summary["runs"]} == {"completed"}
        json.dumps(report)  # stays JSON-serializable

    def test_text_and_html_render_campaign(self, campaign_dir):
        campaigns = [load_campaign(p)
                     for p in discover_campaigns([campaign_dir])]
        runs = [load_run(m) for m in discover_runs([campaign_dir])]
        report = build_report(runs, campaigns=campaigns)
        text = render_text(report)
        assert "report-demo" in text
        assert "2 fresh" in text and "0 cached" in text
        html = render_html(report)
        assert "report-demo" in html and "campaign" in html.lower()

    def test_cli_report_over_campaign_dir(self, campaign_dir, capsys):
        assert main(["report", str(campaign_dir), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["campaigns"]) == 1
        assert doc["campaigns"][0]["counters"]["completed"] == 2
