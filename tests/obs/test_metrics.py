"""Tests for the per-rank metrics registry."""

import threading

import pytest

from repro.obs.metrics import (
    ACCEPTANCE_EDGES,
    NOOP,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopMetrics,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert c.to_value() == 3.5

    def test_direct_value_bumps_match_inc(self):
        # Hot paths write c.value += n directly; same observable effect.
        c = Counter("x")
        c.value += 4
        assert c.to_value() == 4.0


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("q")
        g.set(3)
        g.set(1.5)
        assert g.to_value() == 1.5


class TestHistogram:
    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (3.0, 1.0))

    def test_bucket_assignment_upper_inclusive(self):
        h = Histogram("h", (1.0, 2.0))
        for v in (0.5, 1.0):  # both land in bucket 0: v <= 1.0
            h.observe(v)
        h.observe(1.5)  # bucket 1: 1.0 < v <= 2.0
        h.observe(9.0)  # overflow bucket
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(12.0)
        assert h.mean == pytest.approx(3.0)

    def test_to_value_round_trips_edges(self):
        h = Histogram("h", ACCEPTANCE_EDGES)
        h.observe(0.25)
        doc = h.to_value()
        assert doc["edges"] == list(ACCEPTANCE_EDGES)
        assert sum(doc["counts"]) == 1


class TestRankIsolation:
    def test_scopes_do_not_share_metrics(self):
        reg = MetricsRegistry()
        a, b = reg.scope(0), reg.scope(1)
        a.count("sweep.count", 5)
        b.count("sweep.count", 2)
        summary = reg.summary()
        assert summary[0]["sweep.count"] == 5
        assert summary[1]["sweep.count"] == 2

    def test_same_rank_scopes_share_metrics(self):
        reg = MetricsRegistry()
        reg.scope(3).count("n", 1)
        reg.scope(3).count("n", 1)
        assert reg.summary()[3]["n"] == 2

    def test_concurrent_ranks_record_independently(self):
        reg = MetricsRegistry()

        def work(rank):
            scope = reg.scope(rank)
            c = scope.counter("ops")
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work, args=(r,)) for r in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(reg.summary()[r]["ops"] == 1000 for r in range(4))

    def test_type_mismatch_rejected(self):
        scope = MetricsRegistry().scope(0)
        scope.counter("x")
        with pytest.raises(TypeError, match="not a Gauge"):
            scope.gauge("x")


class TestSnapshots:
    def test_snapshot_rows_carry_rank_and_labels(self):
        reg = MetricsRegistry(interval=5)
        scope = reg.scope(1)
        assert scope.interval == 5
        scope.count("sweep.count", 10)
        scope.snapshot(sweep=10, t_model=1.25)
        (row,) = reg.snapshots()
        assert row["rank"] == 1
        assert row["sweep"] == 10
        assert row["t_model"] == 1.25
        assert row["sweep.count"] == 10

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry(interval=-1)


class TestNoop:
    def test_noop_is_the_disabled_identity(self):
        assert NOOP.enabled is False
        assert isinstance(NOOP, NoopMetrics)
        # Identity is the documented "is telemetry off?" test.
        assert NOOP is NOOP

    def test_noop_recorders_are_inert_and_shared(self):
        c = NOOP.counter("anything")
        g = NOOP.gauge("other")
        h = NOOP.histogram("h", (1.0,))
        assert c is g is h  # one shared inert metric object
        c.inc(100)
        g.set(5)
        h.observe(2.0)
        assert c.to_value() == 0.0
        NOOP.count("x")
        NOOP.set_gauge("y", 1)
        NOOP.observe("z", 0.5)
        NOOP.snapshot(sweep=1)
