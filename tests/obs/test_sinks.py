"""Metrics JSONL schema versioning: stamped on write, checked on read."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import (
    METRICS_SCHEMA,
    METRICS_SCHEMA_VERSION,
    read_metrics_jsonl,
    write_metrics_jsonl,
)


def _registry():
    reg = MetricsRegistry()
    reg.scope(0).counter("sweep.count").inc(5)
    return reg


class TestSchemaVersion:
    def test_writer_stamps_header(self, tmp_path):
        path = write_metrics_jsonl(tmp_path / "m.jsonl", _registry())
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {
            "kind": "schema",
            "schema": METRICS_SCHEMA,
            "version": METRICS_SCHEMA_VERSION,
        }

    def test_reader_pops_header(self, tmp_path):
        path = write_metrics_jsonl(tmp_path / "m.jsonl", _registry())
        rows = read_metrics_jsonl(path)
        assert rows and all(r.get("kind") != "schema" for r in rows)

    def test_legacy_headerless_accepted(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        path.write_text('{"kind": "summary", "rank": 0, "metrics": {}}\n')
        rows = read_metrics_jsonl(path)
        assert rows == [{"kind": "summary", "rank": 0, "metrics": {}}]

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(
            json.dumps({"kind": "schema", "schema": METRICS_SCHEMA,
                        "version": 999}) + "\n"
        )
        with pytest.raises(ValueError, match="version"):
            read_metrics_jsonl(path)

    def test_wrong_schema_name_rejected(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(
            '{"kind": "schema", "schema": "somebody.else", "version": 1}\n'
        )
        with pytest.raises(ValueError, match="schema"):
            read_metrics_jsonl(path)
