"""Tests for span collection and Chrome trace_event export."""

import json
from pathlib import Path

import pytest

from repro.obs.chrome_trace import (
    chrome_trace_doc,
    chrome_trace_events,
    write_chrome_trace,
)
from repro.obs.spans import Span, SpanCollector
from repro.qmc.parallel import WorldlineStripConfig, worldline_strip_program
from repro.vmp.machines import PARAGON
from repro.vmp.scheduler import run_spmd
from repro.vmp.trace import MessageEvent

GOLDEN = Path(__file__).parent / "data" / "golden_trace.json"

#: A fixed two-rank timeline: the golden-file fixture.
FIXED_SPANS = [
    Span(0, "compute", 0.0, 1.5e-3),
    Span(0, "comm", 1.5e-3, 1.6e-3),
    Span(0, "comm_wait", 1.6e-3, 2.0e-3),
    Span(1, "compute", 0.0, 2.0e-3),
]
FIXED_MESSAGES = [
    MessageEvent(src=1, dst=0, tag=7, nbytes=256, t_send=1.9e-3,
                 t_arrival=1.95e-3),
]


class TestSpanCollector:
    def test_coalesces_adjacent_same_category(self):
        c = SpanCollector(0)
        c("compute", 0.0, 1.0)
        c("compute", 1.0, 2.5)  # adjacent, same category: extends
        c("comm", 2.5, 3.0)
        spans = c.spans()
        assert [(s.category, s.t_start, s.t_end) for s in spans] == [
            ("compute", 0.0, 2.5),
            ("comm", 2.5, 3.0),
        ]

    def test_skips_empty_intervals(self):
        c = SpanCollector(2)
        c("comm", 1.0, 1.0)
        assert c.n_spans == 0


class TestEventSchema:
    def test_trace_event_schema(self):
        events = chrome_trace_events(FIXED_SPANS, FIXED_MESSAGES, ranks=[0, 1])
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "s", "f"}
        for e in events:
            assert e["pid"] == 0
            assert isinstance(e["tid"], int)
        for e in events:
            if e["ph"] == "X":
                assert e["ts"] >= 0 and e["dur"] > 0
                assert e["name"] == e["cat"]
        # comm_wait is exported under the viewer-friendly name "idle".
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert names == {"compute", "comm", "idle"}
        # Flow pair shares an id, starts at the sender, finishes at the dst.
        start = next(e for e in events if e["ph"] == "s")
        finish = next(e for e in events if e["ph"] == "f")
        assert start["id"] == finish["id"]
        assert start["tid"] == 1 and finish["tid"] == 0

    def test_doc_round_trips_json(self, tmp_path):
        path = write_chrome_trace(
            tmp_path / "sub" / "trace.json", FIXED_SPANS, FIXED_MESSAGES,
            metadata={"kind": "test"},
        )
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"] == {"kind": "test"}
        assert doc == chrome_trace_doc(
            FIXED_SPANS, FIXED_MESSAGES, metadata={"kind": "test"}
        )

    def test_golden_file(self, tmp_path):
        """The export of a fixed timeline is byte-stable.

        Regenerate after an intentional format change with:
        ``python -c "from tests.obs.test_chrome_trace import regenerate_golden;
        regenerate_golden()"``
        """
        path = write_chrome_trace(
            tmp_path / "trace.json", FIXED_SPANS, FIXED_MESSAGES,
            ranks=[0, 1], metadata={"kind": "golden"},
        )
        assert path.read_text() == GOLDEN.read_text()


def regenerate_golden() -> None:
    write_chrome_trace(
        GOLDEN, FIXED_SPANS, FIXED_MESSAGES, ranks=[0, 1],
        metadata={"kind": "golden"},
    )


class TestStripDriverTrace:
    """The ISSUE acceptance criterion: a P=4 strip run exports a valid
    Chrome trace with compute/comm/idle spans for every rank."""

    @pytest.fixture(scope="class")
    def spmd(self):
        from repro.obs.metrics import MetricsRegistry

        cfg = WorldlineStripConfig(
            n_sites=16, jz=1.0, jxy=1.0, beta=1.0, n_slices=16,
            n_sweeps=4, n_thermalize=2, measure_every=1,
        )
        return run_spmd(
            worldline_strip_program, 4, machine=PARAGON, seed=3,
            args=(cfg,), metrics=MetricsRegistry(), spans=True, trace=True,
        )

    def test_every_rank_has_all_three_phases(self, spmd):
        doc = spmd.chrome_trace()
        by_rank = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                by_rank.setdefault(e["tid"], set()).add(e["name"])
        assert sorted(by_rank) == [0, 1, 2, 3]
        for rank, cats in by_rank.items():
            assert {"compute", "comm", "idle"} <= cats, (rank, cats)

    def test_spans_tile_the_rank_timeline(self, spmd):
        for rank in range(4):
            spans = sorted(
                (s for s in spmd.spans if s.rank == rank),
                key=lambda s: s.t_start,
            )
            assert spans[0].t_start == 0.0
            for a, b in zip(spans, spans[1:]):
                assert a.t_end == pytest.approx(b.t_start)
            assert spans[-1].t_end == pytest.approx(
                spmd.outcomes[rank].model_time
            )

    def test_file_loads_back(self, spmd, tmp_path):
        path = spmd.write_chrome_trace(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        flow_ids = [e["id"] for e in doc["traceEvents"] if e["ph"] == "s"]
        assert len(flow_ids) == len(spmd.trace)

    def test_export_is_deterministic(self, spmd):
        from repro.obs.metrics import MetricsRegistry

        cfg = WorldlineStripConfig(
            n_sites=16, jz=1.0, jxy=1.0, beta=1.0, n_slices=16,
            n_sweeps=4, n_thermalize=2, measure_every=1,
        )
        again = run_spmd(
            worldline_strip_program, 4, machine=PARAGON, seed=3,
            args=(cfg,), metrics=MetricsRegistry(), spans=True, trace=True,
        )
        assert json.dumps(again.chrome_trace()) == json.dumps(
            spmd.chrome_trace()
        )

    def test_spans_require_opt_in(self):
        cfg = WorldlineStripConfig(
            n_sites=16, jz=1.0, jxy=1.0, beta=1.0, n_slices=16,
            n_sweeps=2, n_thermalize=1, measure_every=1,
        )
        res = run_spmd(
            worldline_strip_program, 2, machine=PARAGON, seed=3, args=(cfg,)
        )
        assert res.spans is None
        with pytest.raises(ValueError, match="spans=True"):
            res.chrome_trace()
