"""Streaming estimators must agree with the batch ``stats`` results.

The health engine's single-pass estimators (Welford moments, streaming
logarithmic binning, pooled-moment Gelman-Rubin) are validated here
against NumPy and against :mod:`repro.stats.binning` /
:mod:`repro.stats.autocorr` on fixed seeded series -- same numbers, no
second pass over the data.
"""

import numpy as np
import pytest

from repro.obs.online import (
    StreamingBinning,
    Welford,
    gelman_rubin,
    gelman_rubin_from_moments,
    gelman_rubin_from_pooled_sums,
)
from repro.stats.binning import BinningAnalysis, binning_levels


def _ar1(n: int, rho: float, seed: int) -> np.ndarray:
    """A correlated AR(1) series with a known autocorrelation scale."""
    rng = np.random.default_rng(seed)
    x = np.empty(n)
    x[0] = rng.standard_normal()
    noise = rng.standard_normal(n)
    for i in range(1, n):
        x[i] = rho * x[i - 1] + noise[i]
    return x


class TestWelford:
    def test_matches_numpy_moments(self):
        rng = np.random.default_rng(42)
        series = rng.standard_normal(257) * 3.0 + 1.5
        w = Welford()
        for v in series:
            w.push(float(v))
        assert w.count == 257
        assert w.mean == pytest.approx(series.mean(), rel=1e-12)
        assert w.variance == pytest.approx(series.var(ddof=1), rel=1e-12)
        assert w.std_error == pytest.approx(
            series.std(ddof=1) / np.sqrt(series.size), rel=1e-12
        )

    def test_degenerate_counts(self):
        w = Welford()
        assert w.variance == 0.0 and w.std_error == 0.0
        w.push(2.0)
        assert w.mean == 2.0 and w.variance == 0.0

    def test_moments_tuple(self):
        w = Welford()
        for v in (1.0, 2.0, 3.0):
            w.push(v)
        count, mean, var = w.moments()
        assert (count, mean) == (3, 2.0)
        assert var == pytest.approx(1.0)


class TestStreamingBinning:
    @pytest.mark.parametrize("n", [64, 100, 1000])
    def test_levels_match_batch_binning(self, n):
        series = _ar1(n, rho=0.8, seed=7)
        sb = StreamingBinning()
        for v in series:
            sb.push(float(v))
        batch = binning_levels(series, min_blocks=8)
        stream = sb.levels()
        assert [b for b, _ in stream] == [b for b, _ in batch]
        for (_, e_stream), (_, e_batch) in zip(stream, batch):
            assert e_stream == pytest.approx(e_batch, rel=1e-9)

    def test_error_and_tau_match_batch_analysis(self):
        series = _ar1(2000, rho=0.9, seed=11)
        sb = StreamingBinning()
        for v in series:
            sb.push(float(v))
        batch = BinningAnalysis.from_series(series)
        assert sb.mean == pytest.approx(batch.mean, rel=1e-12)
        assert sb.naive_error == pytest.approx(batch.naive_error, rel=1e-9)
        assert sb.error == pytest.approx(batch.error, rel=1e-9)
        assert sb.tau_int == pytest.approx(batch.tau_int, rel=1e-8)
        assert sb.is_converged() == batch.is_converged()

    def test_tau_int_tracks_correlation(self):
        """More correlated series -> larger streaming tau_int."""
        taus = []
        for rho in (0.0, 0.9):
            sb = StreamingBinning()
            for v in _ar1(4000, rho=rho, seed=3):
                sb.push(float(v))
            taus.append(sb.tau_int)
        assert taus[1] > 2 * taus[0]
        # Uncorrelated series: tau_int ~ 0.5 by construction.
        assert taus[0] == pytest.approx(0.5, abs=0.25)

    def test_summary_keys(self):
        sb = StreamingBinning()
        for v in _ar1(128, rho=0.5, seed=1):
            sb.push(float(v))
        s = sb.summary()
        assert set(s) == {
            "count", "mean", "naive_error", "error", "tau_int",
            "n_levels", "converged",
        }
        assert s["count"] == 128


class TestGelmanRubin:
    def test_identical_chains_give_unity(self):
        rng = np.random.default_rng(0)
        chain = rng.standard_normal(500)
        rhat = gelman_rubin([chain, chain.copy()])
        # B ~ 0 between identical chains: var+ < W so R-hat <= 1.
        assert rhat == pytest.approx(1.0, abs=5e-3)

    def test_shifted_chains_flag_divergence(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal(400)
        b = rng.standard_normal(400) + 5.0
        assert gelman_rubin([a, b]) > 2.0

    def test_moments_form_matches_series_form(self):
        rng = np.random.default_rng(2)
        chains = [rng.standard_normal(300) + 0.1 * i for i in range(4)]
        direct = gelman_rubin(chains)
        via_moments = gelman_rubin_from_moments(
            [c.size for c in chains],
            [c.mean() for c in chains],
            [c.var(ddof=1) for c in chains],
        )
        assert via_moments == pytest.approx(direct, rel=1e-12)

    def test_pooled_sums_form_matches_moments_form(self):
        """The allreduce-sum form used on the ensemble communicator."""
        rng = np.random.default_rng(3)
        chains = [rng.standard_normal(250) + 0.2 * i for i in range(3)]
        means = np.array([c.mean() for c in chains])
        variances = np.array([c.var(ddof=1) for c in chains])
        via_sums = gelman_rubin_from_pooled_sums(
            250,
            len(chains),
            float(means.sum()),
            float((means**2).sum()),
            float(variances.sum()),
        )
        direct = gelman_rubin(chains)
        assert via_sums == pytest.approx(direct, rel=1e-12)

    def test_unequal_chains_truncated(self):
        rng = np.random.default_rng(4)
        a, b = rng.standard_normal(300), rng.standard_normal(200)
        assert gelman_rubin([a, b]) == gelman_rubin([a[:200], b])

    def test_needs_two_chains_and_two_samples(self):
        with pytest.raises(ValueError):
            gelman_rubin_from_moments([10], [0.0], [1.0])
        with pytest.raises(ValueError):
            gelman_rubin_from_moments([1, 1], [0.0, 0.0], [0.0, 0.0])
